//! The workspace-wide error type.

use std::error::Error as StdError;
use std::fmt;

use lion_baselines::BaselineError;
use lion_core::CoreError;
use lion_geom::GeomError;
use lion_linalg::LinalgError;
use lion_sim::SimError;

/// Any error the LION workspace can produce, one variant per crate.
///
/// Cross-crate programs (examples, services, tests) that would otherwise
/// juggle five per-crate error types can `?` everything into this one:
/// every per-crate error converts via `From`, sources chain through
/// [`StdError::source`], and [`Error::kind`] exposes the same stable
/// snake_case taxonomy as the per-crate `kind()` methods (useful as a
/// failure-counter label that survives refactors of the error payloads).
///
/// Construction doubles as the flight-recorder failure hook: every
/// `From` conversion calls [`lion_obs::note_failure`], so when a
/// [`lion_obs::FlightRecorder`] is installed, each surfaced error files
/// a dump carrying the trace tail that led to it (a no-op otherwise).
///
/// ```
/// use lion::Error;
///
/// fn pipeline() -> Result<(), Error> {
///     let config = lion::core::LocalizerConfig::builder()
///         .smoothing_window(0)
///         .build()?; // CoreError → Error
///     let _ = config;
///     Ok(())
/// }
///
/// let err = pipeline().unwrap_err();
/// assert_eq!(err.kind(), "invalid_config");
/// assert_eq!(err.domain(), "core");
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// From the localization/calibration pipeline (`lion-core`).
    Core(CoreError),
    /// From the simulator (`lion-sim`).
    Sim(SimError),
    /// From the geometry substrate (`lion-geom`).
    Geom(GeomError),
    /// From the linear-algebra kernels (`lion-linalg`).
    Linalg(LinalgError),
    /// From the baseline methods (`lion-baselines`).
    Baseline(BaselineError),
}

impl Error {
    /// A stable snake_case label for the underlying error's variant —
    /// delegates to the wrapped error's own `kind()`, so the label is
    /// identical whether a caller matched the per-crate type or this one.
    pub fn kind(&self) -> &'static str {
        match self {
            Error::Core(e) => e.kind(),
            Error::Sim(e) => e.kind(),
            Error::Geom(e) => e.kind(),
            Error::Linalg(e) => e.kind(),
            Error::Baseline(e) => e.kind(),
        }
    }

    /// Which crate the error came from: `"core"`, `"sim"`, `"geom"`,
    /// `"linalg"`, or `"baselines"`.
    pub fn domain(&self) -> &'static str {
        match self {
            Error::Core(_) => "core",
            Error::Sim(_) => "sim",
            Error::Geom(_) => "geom",
            Error::Linalg(_) => "linalg",
            Error::Baseline(_) => "baselines",
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Core(e) => write!(f, "core: {e}"),
            Error::Sim(e) => write!(f, "sim: {e}"),
            Error::Geom(e) => write!(f, "geom: {e}"),
            Error::Linalg(e) => write!(f, "linalg: {e}"),
            Error::Baseline(e) => write!(f, "baselines: {e}"),
        }
    }
}

impl StdError for Error {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            Error::Core(e) => Some(e),
            Error::Sim(e) => Some(e),
            Error::Geom(e) => Some(e),
            Error::Linalg(e) => Some(e),
            Error::Baseline(e) => Some(e),
        }
    }
}

impl From<CoreError> for Error {
    fn from(e: CoreError) -> Self {
        lion_obs::note_failure("core", e.kind());
        Error::Core(e)
    }
}

impl From<SimError> for Error {
    fn from(e: SimError) -> Self {
        lion_obs::note_failure("sim", e.kind());
        Error::Sim(e)
    }
}

impl From<GeomError> for Error {
    fn from(e: GeomError) -> Self {
        lion_obs::note_failure("geom", e.kind());
        Error::Geom(e)
    }
}

impl From<LinalgError> for Error {
    fn from(e: LinalgError) -> Self {
        lion_obs::note_failure("linalg", e.kind());
        Error::Linalg(e)
    }
}

impl From<BaselineError> for Error {
    fn from(e: BaselineError) -> Self {
        lion_obs::note_failure("baselines", e.kind());
        Error::Baseline(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_matches_wrapped_error() {
        let core = CoreError::NoPairs;
        assert_eq!(Error::from(core.clone()).kind(), core.kind());
        let linalg = LinalgError::Singular;
        assert_eq!(Error::from(linalg.clone()).kind(), linalg.kind());
        let geom = GeomError::Degenerate {
            operation: "radical line",
        };
        assert_eq!(Error::from(geom.clone()).kind(), geom.kind());
    }

    #[test]
    fn domains_cover_every_variant() {
        let errors: Vec<Error> = vec![
            CoreError::NoPairs.into(),
            GeomError::Degenerate { operation: "x" }.into(),
            LinalgError::Singular.into(),
            BaselineError::NonFiniteInput { index: 0 }.into(),
        ];
        let domains: Vec<&str> = errors.iter().map(Error::domain).collect();
        assert_eq!(domains, vec!["core", "geom", "linalg", "baselines"]);
        for e in &errors {
            assert!(!e.to_string().is_empty());
            assert!(std::error::Error::source(e).is_some());
        }
    }

    #[test]
    fn question_mark_converts_per_crate_errors() {
        fn cross_crate(bad: bool) -> Result<f64, Error> {
            if bad {
                lion_geom::radical_line(
                    &lion_geom::Circle::new(lion_geom::Point2::new(0.0, 0.0), 1.0),
                    &lion_geom::Circle::new(lion_geom::Point2::new(0.0, 0.0), 2.0),
                )?; // GeomError (concentric)
            }
            let config = lion_core::LocalizerConfig::builder().build()?; // CoreError
            Ok(config.wavelength)
        }
        assert!(cross_crate(false).is_ok());
        assert_eq!(cross_crate(true).unwrap_err().domain(), "geom");
    }
}
