//! # LION — Linear Localization for RFID Antenna Phase Calibration
//!
//! A from-scratch Rust reproduction of *"Pinpoint Achilles' Heel in RFID
//! Localization: Phase Calibration of RFID Antenna based on Linear
//! Localization Model"* (Bu et al., ICDCS 2022).
//!
//! This facade crate re-exports the whole workspace:
//!
//! - [`linalg`] — dense linear algebra (QR/LU/Cholesky/SVD, weighted and
//!   iteratively-reweighted least squares, Levenberg–Marquardt),
//! - [`geom`] — points, circles/spheres, radical lines/planes, trajectories,
//! - [`sim`] — the RF substrate: antennas with hidden phase centers, tags,
//!   multipath, noise, and a reader sampling phase measurements,
//! - [`core`] — the paper's contribution: the linear localization model,
//!   WLS estimation, adaptive parameter selection, and phase calibration,
//! - [`baselines`] — comparison methods: Tagoram's differential augmented
//!   hologram (DAH), hyperbola TDoA, and the parabola fit,
//! - [`engine`] — the parallel batch execution engine with per-stage
//!   instrumentation (and [`engine::Engine::run_streams`] for many
//!   concurrent tag streams),
//! - [`stream`] — the online pipeline: reads in one at a time, bounded
//!   sliding-window re-solves out, with convergence detection —
//!   bit-identical to the batch solver on the same window in replay
//!   mode, or O(delta) incremental re-solves
//!   ([`stream::ResolveMode::Incremental`]) within a documented 1e-6,
//! - [`obs`] — zero-dependency observability: structured spans/events
//!   with causal trace propagation, an always-on flight recorder that
//!   dumps the trace tail on failure, calibration-health watchdogs with
//!   fleet-wide rollups and SLO budgets, log-linear latency histograms,
//!   a telemetry registry with JSON-lines, Prometheus, and Chrome-trace
//!   (Perfetto) exporters, an embedded metrics time-series store with
//!   multi-resolution downsampling and a deterministic alerting engine
//!   ([`obs::tsdb`], [`obs::alert`]), and a live HTTP scrape plane
//!   ([`obs::http::TelemetryServer`]: `/metrics`, `/health`,
//!   `/snapshot`, `/trace`, `/profile`, `/query`, `/alerts`),
//!
//! and bundles the types most programs touch into [`prelude`], plus the
//! workspace-wide [`Error`] that every per-crate error converts into.
//!
//! # Quickstart
//!
//! Calibrate a simulated antenna's phase center in the 2D plane:
//!
//! ```
//! use lion::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // An antenna whose true phase center is 2 cm off its physical center.
//! let antenna = Antenna::builder(Point3::new(0.0, 0.8, 0.0))
//!     .phase_center_displacement(0.02, 0.0, 0.0)
//!     .build();
//! let track = LineSegment::along_x(-0.4, 0.4, 0.0, 0.0)?;
//! let trace = ScenarioBuilder::new()
//!     .antenna(antenna)
//!     .tag(Tag::new("E51-quickstart"))
//!     .seed(7)
//!     .build()?
//!     .scan(&track, 0.1, 100.0)?;
//!
//! let estimate = Localizer2d::new(LocalizerConfig::paper())
//!     .locate(&trace.to_measurements())?;
//! // The estimate recovers the hidden phase center, not the physical one.
//! assert!((estimate.position.x - 0.02).abs() < 0.01);
//! assert!((estimate.position.y - 0.8).abs() < 0.01);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

mod error;

pub use error::Error;

pub use lion_baselines as baselines;
pub use lion_core as core;
pub use lion_engine as engine;
pub use lion_geom as geom;
pub use lion_linalg as linalg;
pub use lion_obs as obs;
pub use lion_sim as sim;
pub use lion_stream as stream;

/// One-stop imports for the common LION workflow: simulate (or load) a
/// trace, localize or calibrate, and optionally batch the work across
/// cores with the [`engine`].
///
/// ```
/// use lion::prelude::*;
///
/// let config = LocalizerConfig::builder().smoothing_window(21).build().unwrap();
/// let _localizer = Localizer2d::new(config);
/// let _engine = Engine::serial();
/// ```
pub mod prelude {
    pub use crate::Error;
    pub use lion_core::{
        locate_window_in, AdaptiveConfig, AdaptiveOutcome, Calibration, Calibrator,
        ConveyorTracker, CoreError, Estimate, GridConfig, GridSolver, IncrementalState,
        LinearSolver, Localizer2d, Localizer3d, LocalizerConfig, PairStrategy, PhaseProfile,
        PushOutcome, ResolvePath, SlidingWindow, SolveSpace, Solver, SolverKind, StageMetrics,
        TrackerConfig, Weighting, WindowDelta, Workspace,
    };
    pub use lion_engine::{
        BatchOutcome, Engine, Job, JobKind, JobOutput, JobTiming, MetricsReport,
        StageDistributions, StreamJob, StreamOutcome,
    };
    pub use lion_geom::{CircularArc, LineSegment, Point2, Point3, Trajectory, Vec3};
    pub use lion_obs::{
        install_flight_recorder, install_telemetry_hub, uninstall_telemetry_hub, AlertEngine,
        AlertExpr, AlertRule, BackgroundSampler, Doctor, DoctorConfig, FleetDoctor, FleetReport,
        FlightRecorder, FlightSnapshot, HealthReport, Histogram, HistogramTimer, HistoryConfig,
        ManualClock, Registry, Sampler, SloConfig, Snapshot, TelemetryServer, Tier, TraceContext,
        Tsdb, TsdbConfig, WallClock,
    };
    pub use lion_sim::{
        Antenna, Environment, NoiseModel, PhaseTrace, SampleSource, Scenario, ScenarioBuilder, Tag,
    };
    pub use lion_stream::{
        Cadence, ConvergenceConfig, ResolveMode, StreamConfig, StreamEstimate, StreamLocalizer,
        StreamRead,
    };
}
