//! Integration tests for the HTTP scrape plane: a raw `TcpStream`
//! client against a real [`TelemetryServer`] on an ephemeral port.
//!
//! The server reads process-global state (registry, telemetry hub,
//! flight recorder), so the tests serialize on one mutex.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

use lion_obs::http::TelemetryServer;
use lion_obs::{DoctorConfig, SloConfig};

fn global_state_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// One raw HTTP/1.1 exchange: write the request bytes, read to EOF,
/// split head from body.
fn exchange(server: &TelemetryServer, request: &str) -> (String, Vec<u8>) {
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    stream.write_all(request.as_bytes()).expect("send");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read");
    let split = response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response has a head");
    let head = String::from_utf8(response[..split].to_vec()).expect("utf8 head");
    (head, response[split + 4..].to_vec())
}

fn get(server: &TelemetryServer, path: &str) -> (String, Vec<u8>) {
    exchange(
        server,
        &format!("GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"),
    )
}

fn header_value<'a>(head: &'a str, name: &str) -> Option<&'a str> {
    head.lines().find_map(|line| {
        let (key, value) = line.split_once(':')?;
        key.eq_ignore_ascii_case(name).then(|| value.trim())
    })
}

#[test]
fn all_five_routes_serve_parseable_bodies_with_correct_types() {
    let _serial = global_state_lock();
    // Give every route something real to serve.
    lion_obs::global().clear();
    lion_obs::global().counter_add("plane.requests", 7);
    lion_obs::global().histogram_record("plane.latency_ns", 1234);
    let recorder = lion_obs::install_flight_recorder(1024);
    {
        let _outer = lion_obs::span!("plane.job");
        let _inner = lion_obs::span!("plane.solve");
    }
    let hub = lion_obs::install_telemetry_hub(SloConfig::default());
    hub.with_fleet(|fleet| {
        let mut doctor = lion_obs::Doctor::new(DoctorConfig::default());
        doctor.observe(lion_obs::SolveObservation {
            time: 0.0,
            mean_residual: 1e-3,
            converged: true,
            solve_ns: 900,
            reads_in: 30,
            shed: 0,
            solver_disagreement_m: None,
            resolve_fallback: None,
        });
        fleet.ingest("portal-7", &doctor.report());
        fleet.observe_solve(900);
        fleet.observe_failure("too_few_measurements");
    });

    let server = TelemetryServer::bind("127.0.0.1:0").expect("bind");

    // /metrics: Prometheus text with the version content type, carrying
    // both the raw metric and the refreshed fleet gauges.
    let (head, body) = get(&server, "/metrics");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    assert_eq!(
        header_value(&head, "Content-Type"),
        Some("text/plain; version=0.0.4; charset=utf-8")
    );
    assert_eq!(
        header_value(&head, "Content-Length"),
        Some(body.len().to_string().as_str())
    );
    let metrics = String::from_utf8(body).expect("utf8 metrics");
    assert!(metrics.contains("# TYPE plane_requests_total counter"));
    assert!(metrics.contains("plane_requests_total 7"));
    assert!(metrics.contains("fleet_streams 1"));

    // /health: JSON envelope with the fleet rollup and SLO budget burn.
    let (head, body) = get(&server, "/health");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    assert_eq!(
        header_value(&head, "Content-Type"),
        Some("application/json")
    );
    let health = String::from_utf8(body).expect("utf8 health");
    let doc = lion_obs::json::parse(health.trim()).expect("health parses");
    assert_eq!(
        doc.get("hub_installed").and_then(|v| v.as_bool()),
        Some(true)
    );
    let fleet = doc.get("fleet").expect("fleet present");
    assert_eq!(fleet.get("streams").and_then(|v| v.as_u64()), Some(1));
    assert!(fleet
        .get("slo")
        .and_then(|s| s.get("burn_rate"))
        .and_then(|v| v.as_f64())
        .is_some());

    // /snapshot: one JSON line that round-trips through the parser.
    let (head, body) = get(&server, "/snapshot");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    assert_eq!(
        header_value(&head, "Content-Type"),
        Some("application/x-ndjson")
    );
    let line = String::from_utf8(body).expect("utf8 snapshot");
    let (label, snapshot) =
        lion_obs::export::parse_json_line(line.trim()).expect("snapshot parses");
    assert_eq!(label, "global");
    assert_eq!(snapshot.counter("plane.requests"), Some(7));

    // /trace: Chrome trace JSON holding the recorded spans.
    let (head, body) = get(&server, "/trace");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    assert_eq!(
        header_value(&head, "Content-Type"),
        Some("application/json")
    );
    let trace = String::from_utf8(body).expect("utf8 trace");
    let doc = lion_obs::json::parse(&trace).expect("trace parses");
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    assert!(events.len() >= 2, "{} events", events.len());

    // /profile: collapsed stacks — `frames SP number` per line, with the
    // recorded parent;child chain present.
    let (head, body) = get(&server, "/profile");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    assert_eq!(
        header_value(&head, "Content-Type"),
        Some("text/plain; charset=utf-8")
    );
    let profile = String::from_utf8(body).expect("utf8 profile");
    assert!(profile.contains("plane.job;plane.solve "));
    for line in profile.lines() {
        let (stack, weight) = line.rsplit_once(' ').expect("stack SP weight");
        assert!(!stack.is_empty());
        weight.parse::<u64>().expect("numeric weight");
    }

    // Scraping twice is non-draining and deterministic.
    let (_, again) = get(&server, "/profile");
    assert_eq!(String::from_utf8(again).expect("utf8"), profile);

    server.shutdown();
    lion_obs::uninstall_telemetry_hub();
    lion_obs::uninstall_flight_recorder();
    drop(recorder);
    lion_obs::global().clear();
}

#[test]
fn unknown_routes_404_and_non_get_405_with_allow() {
    let _serial = global_state_lock();
    let server = TelemetryServer::bind("127.0.0.1:0").expect("bind");

    let (head, _) = get(&server, "/nope");
    assert!(head.starts_with("HTTP/1.1 404 Not Found"), "{head}");

    let (head, _) = exchange(
        &server,
        "POST /metrics HTTP/1.1\r\nHost: test\r\nContent-Length: 0\r\n\r\n",
    );
    assert!(
        head.starts_with("HTTP/1.1 405 Method Not Allowed"),
        "{head}"
    );
    assert_eq!(header_value(&head, "Allow"), Some("GET, HEAD"));

    let (head, _) = exchange(&server, "DELETE /bogus HTTP/1.1\r\nHost: test\r\n\r\n");
    assert!(head.starts_with("HTTP/1.1 404 Not Found"), "{head}");

    let (head, _) = exchange(&server, "this is not http\r\n\r\n");
    assert!(head.starts_with("HTTP/1.1 400 Bad Request"), "{head}");

    // An oversized request head is named for what it is: 414, not a
    // generic 400.
    let huge_target = format!("/metrics?pad={}", "x".repeat(9 * 1024));
    let (head, _) = exchange(
        &server,
        &format!("GET {huge_target} HTTP/1.1\r\nHost: test\r\n\r\n"),
    );
    assert!(head.starts_with("HTTP/1.1 414 URI Too Long"), "{head}");

    // The index lists the routes.
    let (head, body) = get(&server, "/");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    let index = String::from_utf8(body).expect("utf8 index");
    for route in [
        "/metrics",
        "/health",
        "/snapshot",
        "/trace",
        "/profile",
        "/query",
        "/alerts",
    ] {
        assert!(index.contains(route), "index missing {route}");
    }
    server.shutdown();
}

#[test]
fn head_answers_every_route_with_headers_and_no_body() {
    let _serial = global_state_lock();
    lion_obs::global().clear();
    lion_obs::global().counter_add("plane.requests", 3);
    let server = TelemetryServer::bind("127.0.0.1:0").expect("bind");

    for path in [
        "/",
        "/metrics",
        "/health",
        "/snapshot",
        "/trace",
        "/profile",
        "/query",
        "/alerts",
    ] {
        let (head, body) = exchange(
            &server,
            &format!("HEAD {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"),
        );
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{path}: {head}");
        assert!(body.is_empty(), "{path}: HEAD returned a body");
        // Content-Length advertises what the GET would carry.
        let advertised: usize = header_value(&head, "Content-Length")
            .expect("Content-Length present")
            .parse()
            .expect("numeric length");
        let (get_head, get_body) = get(&server, path);
        assert!(get_head.starts_with("HTTP/1.1 200 OK"), "{path}");
        assert_eq!(advertised, get_body.len(), "{path}: length mismatch");
    }

    // HEAD on an unknown route: 404 head, still no body.
    let (head, body) = exchange(&server, "HEAD /nope HTTP/1.1\r\nHost: test\r\n\r\n");
    assert!(head.starts_with("HTTP/1.1 404 Not Found"), "{head}");
    assert!(body.is_empty());

    server.shutdown();
    lion_obs::global().clear();
}

#[test]
fn query_and_alerts_serve_the_history_plane() {
    let _serial = global_state_lock();
    lion_obs::global().clear();
    let server = TelemetryServer::bind("127.0.0.1:0").expect("bind");

    // Without a hub the routes answer with explicit not-installed
    // envelopes rather than errors.
    let (head, body) = get(&server, "/query");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    assert!(String::from_utf8(body)
        .expect("utf8")
        .contains("\"history_installed\":false"));
    let (head, body) = get(&server, "/alerts");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    assert!(String::from_utf8(body)
        .expect("utf8")
        .contains("\"alerts_installed\":false"));

    // Install the hub with history and feed it deterministic samples on
    // a manual clock.
    let hub = lion_obs::install_telemetry_hub(SloConfig::default());
    let clock = lion_obs::ManualClock::new(0);
    let tsdb = hub.enable_history(lion_obs::fleet::HistoryConfig {
        clock: clock.clone(),
        alert_rules: vec![lion_obs::AlertRule::above(
            "hot_gauge",
            lion_obs::AlertExpr::GaugeLast {
                series: "plane.load".to_string(),
            },
            0.5,
        )
        .clear_at(0.25)],
        ..Default::default()
    });
    tsdb.push_gauge("plane.load", 1_000_000_000, 0.9);
    hub.sample_tick();

    // /query without params lists the stored series.
    let (head, body) = get(&server, "/query");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    assert_eq!(
        header_value(&head, "Content-Type"),
        Some("application/x-ndjson")
    );
    let listing = String::from_utf8(body).expect("utf8 listing");
    assert!(listing.contains("\"series\":\"plane.load\""), "{listing}");
    assert!(listing.contains("\"stats\":{"), "{listing}");

    // /query?series=… returns a meta line plus one line per point, each
    // parseable JSON.
    let (head, body) = get(
        &server,
        "/query?series=plane.load&tier=raw&from=0&to=2000000000",
    );
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    let text = String::from_utf8(body).expect("utf8 points");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2, "{text}");
    let meta = lion_obs::json::parse(lines[0]).expect("meta parses");
    assert_eq!(
        meta.get("series").and_then(|v| v.as_str()),
        Some("plane.load")
    );
    assert_eq!(meta.get("points").and_then(|v| v.as_u64()), Some(1));
    let point = lion_obs::json::parse(lines[1]).expect("point parses");
    assert_eq!(
        point.get("t_ns").and_then(|v| v.as_u64()),
        Some(1_000_000_000)
    );

    // Bad parameters map to 400/404, not 200 garbage.
    let (head, _) = get(&server, "/query?series=plane.load&tier=5s");
    assert!(head.starts_with("HTTP/1.1 400 Bad Request"), "{head}");
    let (head, _) = get(&server, "/query?series=no.such.series");
    assert!(head.starts_with("HTTP/1.1 404 Not Found"), "{head}");

    // /alerts: the engine saw the breaching gauge on the first tick.
    let (head, body) = get(&server, "/alerts");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    assert_eq!(
        header_value(&head, "Content-Type"),
        Some("application/json")
    );
    let alerts = String::from_utf8(body).expect("utf8 alerts");
    let doc = lion_obs::json::parse(alerts.trim()).expect("alerts parse");
    assert_eq!(
        doc.get("alerts_installed").and_then(|v| v.as_bool()),
        Some(true)
    );
    let rules = doc
        .get("alerts")
        .and_then(|a| a.get("rules"))
        .and_then(|v| v.as_array())
        .expect("rules array");
    assert!(!rules.is_empty());

    server.shutdown();
    lion_obs::uninstall_telemetry_hub();
    lion_obs::global().clear();
}

#[test]
fn shutdown_joins_the_worker_and_frees_the_port() {
    let _serial = global_state_lock();
    let server = TelemetryServer::bind("127.0.0.1:0").expect("bind");
    let addr = server.local_addr();
    let (head, _) = get(&server, "/health");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    server.shutdown();
    // The worker is joined: the port can be rebound immediately (no
    // leaked listener; SO_REUSEADDR is not set, so a live listener would
    // make this bind fail).
    let rebound = std::net::TcpListener::bind(addr);
    assert!(rebound.is_ok(), "port still held after shutdown");

    // Dropping (without an explicit shutdown call) also joins cleanly.
    let server = TelemetryServer::bind("127.0.0.1:0").expect("bind");
    let addr = server.local_addr();
    drop(server);
    assert!(std::net::TcpListener::bind(addr).is_ok());
}
