//! Concurrency tests for the metric registry: merging histograms from
//! many threads must produce *exactly* the same distribution as the
//! equivalent sequential merge — bucket-for-bucket, not approximately.

use lion_obs::{Histogram, Metric, Registry};

/// The values thread `t` contributes: a deterministic spread across
/// several histogram buckets.
fn values_for_thread(t: u64) -> Vec<u64> {
    (0..256)
        .map(|i| (t + 1) * 37 + i * 113 + (i * i) % 1009)
        .collect()
}

#[test]
fn concurrent_histogram_merge_equals_sequential_merge_exactly() {
    const THREADS: u64 = 8;

    // Sequential reference: one thread records everything in order.
    let reference = Registry::new();
    for t in 0..THREADS {
        let mut local = Histogram::new();
        for v in values_for_thread(t) {
            local.record(v);
        }
        reference.histogram_merge("solve_ns", &local);
        reference.counter_add("solves", 256);
    }

    // Concurrent run: each thread builds the same local histogram and
    // merges it into the shared registry in whatever order the scheduler
    // picks.
    let concurrent = Registry::new();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let concurrent = &concurrent;
            scope.spawn(move || {
                let mut local = Histogram::new();
                for v in values_for_thread(t) {
                    local.record(v);
                }
                concurrent.histogram_merge("solve_ns", &local);
                concurrent.counter_add("solves", 256);
            });
        }
    });

    // Exact equality: Histogram's PartialEq compares every bucket.
    let expected = reference.snapshot();
    let got = concurrent.snapshot();
    assert_eq!(expected.counter("solves"), Some(THREADS * 256));
    assert_eq!(got.counter("solves"), Some(THREADS * 256));
    let expected_hist = expected.histogram("solve_ns").expect("histogram");
    let got_hist = got.histogram("solve_ns").expect("histogram");
    assert_eq!(expected_hist, got_hist);
    assert_eq!(got_hist.count(), THREADS * 256);
    // And the whole snapshots match metric-for-metric.
    assert_eq!(expected.metrics, got.metrics);
}

#[test]
fn interleaved_point_records_match_sequential_distribution() {
    const THREADS: u64 = 4;

    let reference = Registry::new();
    for t in 0..THREADS {
        for v in values_for_thread(t) {
            reference.histogram_record("lag_ns", v);
        }
    }

    let concurrent = Registry::new();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let concurrent = &concurrent;
            scope.spawn(move || {
                for v in values_for_thread(t) {
                    concurrent.histogram_record("lag_ns", v);
                }
            });
        }
    });

    // Point records interleave arbitrarily, but histograms are
    // order-insensitive: the final buckets must be identical.
    match (
        reference.snapshot().get("lag_ns"),
        concurrent.snapshot().get("lag_ns"),
    ) {
        (Some(Metric::Histogram(a)), Some(Metric::Histogram(b))) => assert_eq!(a, b),
        other => panic!("expected two histograms, got {other:?}"),
    }
}
