//! Property-based tests for the log-linear histogram.

use proptest::prelude::*;

use lion_obs::{Histogram, SUB_BUCKETS};

/// Exact quantile of a value list: rank-⌈q·n⌉ order statistic.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

fn values() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..2_000_000_000, 1..200)
}

proptest! {
    #[test]
    fn quantiles_bracket_the_exact_order_statistic(vs in values(), q in 0.0f64..1.0) {
        let mut h = Histogram::new();
        for &v in &vs {
            h.record(v);
        }
        let mut sorted = vs.clone();
        sorted.sort_unstable();
        let exact = exact_quantile(&sorted, q);
        let approx = h.quantile(q);
        // Never below the true quantile, at most one sub-bucket above.
        prop_assert!(approx >= exact, "approx {approx} < exact {exact}");
        let bound = exact as f64 * (1.0 + 1.0 / SUB_BUCKETS as f64) + 1.0;
        prop_assert!((approx as f64) <= bound, "approx {approx} > bound {bound}");
    }

    #[test]
    fn merge_quantiles_bound_the_inputs(a in values(), b in values(), q in 0.0f64..1.0) {
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        for &v in &a {
            ha.record(v);
        }
        for &v in &b {
            hb.record(v);
        }
        let (qa, qb) = (ha.quantile(q), hb.quantile(q));
        let mut merged = ha.clone();
        merged.merge(&hb);
        let qm = merged.quantile(q);
        // The exact merged q-quantile lies between the inputs' exact
        // quantiles; each reported quantile sits within one sub-bucket of
        // its exact value, so the merged report is bounded by the input
        // reports up to that quantization slack on either side.
        let eps = 1.0 + 1.0 / SUB_BUCKETS as f64;
        let low = (qa.min(qb) as f64 - 1.0) / eps;
        let high = qa.max(qb) as f64 * eps + 1.0;
        prop_assert!(qm as f64 >= low, "merged {qm} below input bound {low} ({qa}/{qb})");
        prop_assert!(qm as f64 <= high, "merged {qm} above input bound {high} ({qa}/{qb})");
    }

    #[test]
    fn merge_is_exactly_recording_the_concatenation(a in values(), b in values()) {
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        let mut both = Histogram::new();
        for &v in &a {
            ha.record(v);
            both.record(v);
        }
        for &v in &b {
            hb.record(v);
            both.record(v);
        }
        ha.merge(&hb);
        prop_assert_eq!(ha, both);
    }

    #[test]
    fn extreme_values_do_not_overflow_bucket_math(v in 0u64..u64::MAX, n in 1u64..4) {
        let mut h = Histogram::new();
        h.record_n(v, n);
        h.record(u64::MAX);
        h.record(0);
        // Count/sum saturate; max and the 1.0-quantile report u64::MAX.
        prop_assert_eq!(h.count(), n + 2);
        prop_assert_eq!(h.max(), u64::MAX);
        prop_assert_eq!(h.quantile(1.0), u64::MAX);
        prop_assert_eq!(h.min(), 0);
        prop_assert!(h.quantile(0.5) >= h.min());
        // Merging two saturated histograms stays well-defined.
        let mut other = h.clone();
        other.merge(&h);
        prop_assert_eq!(other.count(), (n + 2) * 2);
        prop_assert_eq!(other.quantile(1.0), u64::MAX);
    }

    #[test]
    fn json_round_trip_preserves_everything(vs in values()) {
        let mut h = Histogram::new();
        for &v in &vs {
            h.record(v);
        }
        let line = h.to_json();
        let parsed = lion_obs::json::parse(&line).expect("valid json");
        let back = Histogram::from_json(&parsed).expect("well-formed");
        prop_assert_eq!(h, back);
    }
}
