//! Fixed-bucket log-linear latency histograms (HDR-style).
//!
//! A [`Histogram`] records `u64` values (nanoseconds, counts, bytes — any
//! non-negative magnitude) into a fixed set of buckets whose width grows
//! with the value: every power of two is split into [`SUB_BUCKETS`] linear
//! sub-buckets, so the relative quantization error is bounded by
//! `1 / SUB_BUCKETS` (6.25%) across the full `u64` range. The bucket
//! layout is identical for every histogram, which makes two histograms
//! mergeable by bucket-wise addition — the property batch aggregation
//! relies on.
//!
//! Recording is branch-light (a leading-zeros count and two shifts),
//! allocation-free after construction, and never overflows: counts and
//! sums saturate instead of wrapping, and `record(u64::MAX)` lands in the
//! last bucket whose upper bound is exactly `u64::MAX`.

use serde::{Deserialize, Serialize};

/// log2 of the linear sub-buckets per power of two.
const SUB_BITS: u32 = 4;
/// Linear sub-buckets per power of two (16 → ≤ 6.25% relative error).
pub const SUB_BUCKETS: u64 = 1 << SUB_BITS;
/// Total bucket count covering the whole `u64` range.
const BUCKETS: usize = ((63 - SUB_BITS as usize) + 1) * SUB_BUCKETS as usize + SUB_BUCKETS as usize;

/// Bucket index for a value (log-linear: 16 sub-buckets per octave).
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let shift = msb - SUB_BITS;
        let sub = ((v >> shift) - SUB_BUCKETS) as usize;
        ((msb - SUB_BITS + 1) as usize) * SUB_BUCKETS as usize + sub
    }
}

/// Inclusive upper bound of a bucket (the value quantiles report).
#[inline]
fn bucket_upper(idx: usize) -> u64 {
    let octave = idx / SUB_BUCKETS as usize;
    let sub = (idx % SUB_BUCKETS as usize) as u64;
    if octave == 0 {
        sub
    } else {
        let shift = (octave - 1) as u32;
        ((SUB_BUCKETS + sub) << shift) + ((1u64 << shift) - 1)
    }
}

/// Exemplars retained per histogram (the largest recorded values win,
/// so a latency histogram keeps trace ids for its slowest observations).
pub const MAX_EXEMPLARS: usize = 4;

/// A recorded value tagged with the trace id active when it was
/// recorded, linking a histogram bucket back to a
/// [`FlightRecorder`](crate::FlightRecorder) span tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Exemplar {
    /// The recorded value (same unit as the histogram).
    pub value: u64,
    /// Trace id of the span tree that produced the value.
    pub trace_id: u64,
}

/// Merges `incoming` into `kept`, keeping the `MAX_EXEMPLARS` largest
/// `(value, trace_id)` pairs. Sorting makes the result independent of
/// arrival order, so merged exemplar sets stay deterministic.
pub(crate) fn merge_exemplars(kept: &mut Vec<Exemplar>, incoming: &[Exemplar]) {
    if incoming.is_empty() {
        return;
    }
    kept.extend_from_slice(incoming);
    kept.sort_unstable();
    kept.dedup();
    if kept.len() > MAX_EXEMPLARS {
        kept.drain(..kept.len() - MAX_EXEMPLARS);
    }
}

/// A mergeable log-linear histogram with bounded relative error.
///
/// # Example
///
/// ```
/// use lion_obs::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [100u64, 200, 300, 400, 1_000_000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert!(h.p50() >= 300 && h.p50() <= 320); // ≤ 6.25% above the true 300
/// assert!(h.max() >= 1_000_000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    exemplars: Vec<Exemplar>,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            exemplars: Vec::new(),
        }
    }

    /// Records one value. Count and sum saturate rather than wrap.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` occurrences of `value`.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_index(value)] = self.counts[bucket_index(value)].saturating_add(n);
        self.count = self.count.saturating_add(n);
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Records one value tagged with the trace id that produced it. The
    /// histogram keeps the [`MAX_EXEMPLARS`] largest tagged values, so a
    /// latency histogram retains trace ids for its slowest observations.
    /// Plain [`Histogram::record`] never attaches exemplars, which keeps
    /// untraced histograms bit-identical to pre-exemplar ones.
    pub fn record_with_exemplar(&mut self, value: u64, trace_id: u64) {
        self.record(value);
        merge_exemplars(&mut self.exemplars, &[Exemplar { value, trace_id }]);
    }

    /// Retained exemplars, ascending by `(value, trace_id)`.
    pub fn exemplars(&self) -> &[Exemplar] {
        &self.exemplars
    }

    /// Adds every bucket of `other` into `self`. Because all histograms
    /// share one bucket layout this is exact: the merged histogram is
    /// identical to recording both input streams into one histogram.
    /// Exemplar sets are unioned, keeping the largest values; the result
    /// does not depend on merge order.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        merge_exemplars(&mut self.exemplars, &other.exemplars);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Saturating sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (exact, not quantized; 0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`q` clamped to `[0, 1]`) as the upper bound of
    /// the bucket holding the rank-`⌈q·count⌉` value, clamped to the exact
    /// observed `[min, max]`. Returns 0 when empty. The reported value is
    /// never below the true quantile and at most 6.25% above it.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.is_empty() {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                return bucket_upper(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median (see [`Histogram::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Non-empty buckets as `(inclusive upper bound, count)` pairs in
    /// ascending bound order — the exporters' iteration primitive.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_upper(i), c))
    }

    /// Resets to the empty state, keeping the allocation.
    pub fn reset(&mut self) {
        self.counts.fill(0);
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
        self.exemplars.clear();
    }

    /// Bucket-wise delta against an earlier snapshot of the same
    /// (monotonically growing) histogram, as sparse `(bucket index,
    /// count delta)` pairs plus the count and sum deltas. With
    /// `prev = None` the delta is the histogram itself. This is the
    /// sampler's primitive for storing histogram history as exact,
    /// mergeable per-interval increments (see `tsdb`).
    pub fn sparse_delta(&self, prev: Option<&Histogram>) -> (Vec<(u32, u64)>, u64, u64) {
        let mut buckets = Vec::new();
        for (idx, &cur) in self.counts.iter().enumerate() {
            let before = prev.map_or(0, |p| p.counts[idx]);
            let delta = cur.saturating_sub(before);
            if delta > 0 {
                buckets.push((idx as u32, delta));
            }
        }
        let dcount = self.count.saturating_sub(prev.map_or(0, |p| p.count));
        let dsum = self.sum.saturating_sub(prev.map_or(0, |p| p.sum));
        (buckets, dcount, dsum)
    }

    /// Reconstructs a histogram from sparse `(bucket index, count)` pairs
    /// (the inverse of [`Histogram::sparse_delta`], after summing the
    /// per-interval deltas over a window). Bucket counts are exact;
    /// `min`/`max`/`sum` are reconstructed from the bucket bounds, so
    /// quantiles carry the usual ≤ 6.25% quantization error. Out-of-range
    /// indexes are ignored.
    pub fn from_sparse(buckets: &[(u32, u64)]) -> Histogram {
        let mut h = Histogram::new();
        for &(idx, c) in buckets {
            let idx = idx as usize;
            if idx >= BUCKETS || c == 0 {
                continue;
            }
            h.counts[idx] = h.counts[idx].saturating_add(c);
            h.count = h.count.saturating_add(c);
            let upper = bucket_upper(idx);
            h.sum = h.sum.saturating_add(upper.saturating_mul(c));
            let lower = if idx == 0 {
                0
            } else {
                bucket_upper(idx - 1) + 1
            };
            h.min = h.min.min(lower);
            h.max = h.max.max(upper);
        }
        h
    }

    /// Full-fidelity JSON encoding (sparse buckets), the inverse of
    /// [`Histogram::from_json`]. Used by the snapshot exporter so a
    /// persisted histogram can be reloaded and re-merged exactly.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push_str(&format!(
            "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[",
            self.count,
            self.sum,
            self.min(),
            self.max,
            self.p50(),
            self.p90(),
            self.p99()
        ));
        let mut first = true;
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("[{idx},{c}]"));
        }
        out.push(']');
        if !self.exemplars.is_empty() {
            out.push_str(",\"exemplars\":[");
            for (i, e) in self.exemplars.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{},{}]", e.value, e.trace_id));
            }
            out.push(']');
        }
        out.push('}');
        out
    }

    /// Reconstructs a histogram from the object produced by
    /// [`Histogram::to_json`] (parsed with [`crate::json::parse`]).
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or malformed field.
    pub fn from_json(value: &crate::json::Json) -> Result<Self, String> {
        let mut h = Histogram::new();
        let count = value
            .get("count")
            .and_then(|v| v.as_u64())
            .ok_or("histogram: missing count")?;
        let sum = value
            .get("sum")
            .and_then(|v| v.as_u64())
            .ok_or("histogram: missing sum")?;
        let max = value
            .get("max")
            .and_then(|v| v.as_u64())
            .ok_or("histogram: missing max")?;
        let min = value
            .get("min")
            .and_then(|v| v.as_u64())
            .ok_or("histogram: missing min")?;
        let buckets = value
            .get("buckets")
            .and_then(|v| v.as_array())
            .ok_or("histogram: missing buckets")?;
        for pair in buckets {
            let entries = pair.as_array().ok_or("histogram: bucket not an array")?;
            let (Some(idx), Some(c)) = (
                entries.first().and_then(|v| v.as_u64()),
                entries.get(1).and_then(|v| v.as_u64()),
            ) else {
                return Err("histogram: malformed bucket pair".to_string());
            };
            let idx = idx as usize;
            if idx >= BUCKETS {
                return Err(format!("histogram: bucket index {idx} out of range"));
            }
            h.counts[idx] = c;
        }
        h.count = count;
        h.sum = sum;
        h.max = max;
        h.min = if count == 0 { u64::MAX } else { min };
        // Exemplars are optional: snapshots written before exemplar
        // support (or from untraced histograms) omit the field.
        if let Some(pairs) = value.get("exemplars").and_then(|v| v.as_array()) {
            for pair in pairs {
                let entries = pair.as_array().ok_or("histogram: exemplar not an array")?;
                let (Some(v), Some(id)) = (
                    entries.first().and_then(|e| e.as_u64()),
                    entries.get(1).and_then(|e| e.as_u64()),
                ) else {
                    return Err("histogram: malformed exemplar pair".to_string());
                };
                merge_exemplars(
                    &mut h.exemplars,
                    &[Exemplar {
                        value: v,
                        trace_id: id,
                    }],
                );
            }
        }
        Ok(h)
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert!(h.is_empty());
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn small_values_are_exact() {
        // Values below SUB_BUCKETS get one bucket each → exact quantiles.
        let mut h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.p50(), 7);
        assert_eq!(h.quantile(1.0), 15);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
    }

    #[test]
    fn quantile_error_is_bounded() {
        let mut h = Histogram::new();
        h.record_n(1_000_000, 100);
        let p50 = h.p50();
        assert!(p50 >= 1_000_000);
        assert!(p50 as f64 <= 1_000_000.0 * (1.0 + 1.0 / SUB_BUCKETS as f64));
    }

    #[test]
    fn u64_max_round_trips_through_buckets() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(0);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);
        assert_eq!(h.count(), 2);
        // Saturating sum, no panic.
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
    }

    #[test]
    fn merge_equals_recording_both_streams() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for v in [3u64, 900, 1_000_000, 77] {
            a.record(v);
            both.record(v);
        }
        for v in [12u64, 40_000, 5] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn bucket_bounds_are_monotone_and_cover_u64() {
        let mut prev = None;
        for idx in 0..BUCKETS {
            let upper = bucket_upper(idx);
            if let Some(p) = prev {
                assert!(upper > p, "bucket {idx} bound {upper} <= {p}");
            }
            prev = Some(upper);
        }
        assert_eq!(bucket_upper(BUCKETS - 1), u64::MAX);
        // Every value maps into a bucket whose bound brackets it.
        for v in [0u64, 1, 15, 16, 17, 1023, 1024, 1 << 40, u64::MAX] {
            let idx = bucket_index(v);
            assert!(bucket_upper(idx) >= v);
            if idx > 0 {
                assert!(bucket_upper(idx - 1) < v);
            }
        }
    }

    #[test]
    fn exemplars_keep_largest_values_order_independently() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for (v, id) in [(100u64, 1u64), (900, 2), (50, 3)] {
            a.record_with_exemplar(v, id);
        }
        for (v, id) in [(700u64, 4u64), (300, 5), (2_000, 6)] {
            b.record_with_exemplar(v, id);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.exemplars(), ba.exemplars());
        assert_eq!(ab.exemplars().len(), MAX_EXEMPLARS);
        // Largest values survive; the smallest two (50, 100) are dropped.
        let values: Vec<u64> = ab.exemplars().iter().map(|e| e.value).collect();
        assert_eq!(values, vec![300, 700, 900, 2_000]);
    }

    #[test]
    fn plain_record_attaches_no_exemplars() {
        let mut h = Histogram::new();
        h.record(1_000);
        assert!(h.exemplars().is_empty());
        h.record_with_exemplar(2_000, 42);
        assert_eq!(
            h.exemplars(),
            &[Exemplar {
                value: 2_000,
                trace_id: 42
            }]
        );
        h.reset();
        assert!(h.exemplars().is_empty());
    }

    #[test]
    fn exemplars_round_trip_through_json() {
        let mut h = Histogram::new();
        h.record_with_exemplar(123_456, 7);
        h.record_with_exemplar(99, 8);
        let parsed = crate::json::parse(&h.to_json()).expect("valid json");
        let back = Histogram::from_json(&parsed).expect("well-formed");
        assert_eq!(h, back);
    }

    #[test]
    fn sparse_delta_reconstructs_the_increment_exactly() {
        let mut h = Histogram::new();
        for v in [10u64, 500, 70_000] {
            h.record(v);
        }
        let prev = h.clone();
        for v in [10u64, 9_000_000, 12] {
            h.record(v);
        }
        let (buckets, dcount, dsum) = h.sparse_delta(Some(&prev));
        assert_eq!(dcount, 3);
        assert_eq!(dsum, 10 + 9_000_000 + 12);
        assert_eq!(buckets.iter().map(|&(_, c)| c).sum::<u64>(), 3);
        // Reconstructing from the sparse delta matches a histogram of
        // just the new values, bucket for bucket.
        let mut fresh = Histogram::new();
        for v in [10u64, 9_000_000, 12] {
            fresh.record(v);
        }
        let rebuilt = Histogram::from_sparse(&buckets);
        let (fresh_buckets, _, _) = fresh.sparse_delta(None);
        let (rebuilt_buckets, _, _) = rebuilt.sparse_delta(None);
        assert_eq!(fresh_buckets, rebuilt_buckets);
        assert_eq!(rebuilt.count(), 3);
        // Quantiles from the rebuilt histogram stay within bucket error.
        assert!(rebuilt.quantile(1.0) >= 9_000_000);
        assert!(rebuilt.quantile(1.0) as f64 <= 9_000_000.0 * 1.0625);
    }

    #[test]
    fn json_round_trip_is_exact() {
        let mut h = Histogram::new();
        for v in [0u64, 5, 1_000, 123_456_789, u64::MAX] {
            h.record(v);
        }
        let text = h.to_json();
        let parsed = crate::json::parse(&text).expect("valid json");
        let back = Histogram::from_json(&parsed).expect("well-formed");
        assert_eq!(h, back);
        // Empty histograms round-trip too (min sentinel preserved).
        let empty = Histogram::new();
        let parsed = crate::json::parse(&empty.to_json()).expect("valid json");
        assert_eq!(Histogram::from_json(&parsed).expect("well-formed"), empty);
    }
}
