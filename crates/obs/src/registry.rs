//! A named-metric registry: counters, gauges, and histograms.
//!
//! A [`Registry`] maps metric names to [`Metric`]s behind one mutex; the
//! map is a `BTreeMap` so snapshots enumerate metrics in a deterministic
//! (sorted) order — important for diffable snapshot files. A process-wide
//! instance is available through [`global`]; libraries record cheap
//! telemetry there (a few updates per batch or trace, never per sample)
//! and applications export it with the functions in [`crate::export`].

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::hist::Histogram;

/// One registered metric.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// A monotonically increasing count.
    Counter(u64),
    /// A point-in-time value.
    Gauge(f64),
    /// A value distribution.
    Histogram(Histogram),
}

/// A point-in-time copy of a registry: sorted `(name, metric)` pairs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Metrics in ascending name order.
    pub metrics: Vec<(String, Metric)>,
}

impl Snapshot {
    /// Looks up a metric by name.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.metrics.iter().find(|(n, _)| n == name).map(|(_, m)| m)
    }

    /// Counter value by name, if present and a counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name) {
            Some(Metric::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// Gauge value by name, if present and a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.get(name) {
            Some(Metric::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// Histogram by name, if present and a histogram.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        match self.get(name) {
            Some(Metric::Histogram(h)) => Some(h),
            _ => None,
        }
    }
}

/// A thread-safe registry of named metrics.
///
/// Updates that hit an existing metric of a *different* kind replace it
/// with the requested kind — last writer wins, so a typo'd name cannot
/// poison the whole registry.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// Creates an empty registry.
    pub const fn new() -> Self {
        Registry {
            inner: Mutex::new(BTreeMap::new()),
        }
    }

    /// Adds `delta` to the counter `name`, creating it at zero first.
    pub fn counter_add(&self, name: &str, delta: u64) {
        let mut map = self.inner.lock().expect("registry poisoned");
        match map.get_mut(name) {
            Some(Metric::Counter(v)) => *v = v.saturating_add(delta),
            Some(other) => *other = Metric::Counter(delta),
            None => {
                map.insert(name.to_string(), Metric::Counter(delta));
            }
        }
    }

    /// Sets the gauge `name` to `value`.
    pub fn gauge_set(&self, name: &str, value: f64) {
        let mut map = self.inner.lock().expect("registry poisoned");
        map.insert(name.to_string(), Metric::Gauge(value));
    }

    /// Records `value` into the histogram `name`, creating it if needed.
    pub fn histogram_record(&self, name: &str, value: u64) {
        let mut map = self.inner.lock().expect("registry poisoned");
        match map.get_mut(name) {
            Some(Metric::Histogram(h)) => h.record(value),
            other => {
                let mut h = Histogram::new();
                h.record(value);
                match other {
                    Some(slot) => *slot = Metric::Histogram(h),
                    None => {
                        map.insert(name.to_string(), Metric::Histogram(h));
                    }
                }
            }
        }
    }

    /// Records `value` into the histogram `name` with a trace-id
    /// exemplar attached (see [`Histogram::record_with_exemplar`]), so
    /// alerting on the histogram can link back to the span tree that
    /// produced its slowest values.
    pub fn histogram_record_with_exemplar(&self, name: &str, value: u64, trace_id: u64) {
        let mut map = self.inner.lock().expect("registry poisoned");
        match map.get_mut(name) {
            Some(Metric::Histogram(h)) => h.record_with_exemplar(value, trace_id),
            other => {
                let mut h = Histogram::new();
                h.record_with_exemplar(value, trace_id);
                match other {
                    Some(slot) => *slot = Metric::Histogram(h),
                    None => {
                        map.insert(name.to_string(), Metric::Histogram(h));
                    }
                }
            }
        }
    }

    /// Merges a whole histogram into the histogram `name`.
    pub fn histogram_merge(&self, name: &str, hist: &Histogram) {
        let mut map = self.inner.lock().expect("registry poisoned");
        match map.get_mut(name) {
            Some(Metric::Histogram(h)) => h.merge(hist),
            Some(other) => *other = Metric::Histogram(hist.clone()),
            None => {
                map.insert(name.to_string(), Metric::Histogram(hist.clone()));
            }
        }
    }

    /// Copies the current state, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let map = self.inner.lock().expect("registry poisoned");
        Snapshot {
            metrics: map.iter().map(|(n, m)| (n.clone(), m.clone())).collect(),
        }
    }

    /// Removes every metric.
    pub fn clear(&self) {
        self.inner.lock().expect("registry poisoned").clear();
    }
}

/// The process-wide registry.
pub fn global() -> &'static Registry {
    static GLOBAL: Registry = Registry::new();
    &GLOBAL
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_saturate() {
        let r = Registry::new();
        r.counter_add("a", 2);
        r.counter_add("a", 3);
        r.counter_add("a", u64::MAX);
        assert_eq!(r.snapshot().counter("a"), Some(u64::MAX));
    }

    #[test]
    fn gauges_overwrite() {
        let r = Registry::new();
        r.gauge_set("g", 1.5);
        r.gauge_set("g", 2.5);
        assert_eq!(r.snapshot().gauge("g"), Some(2.5));
    }

    #[test]
    fn histograms_record_and_merge() {
        let r = Registry::new();
        r.histogram_record("h", 100);
        r.histogram_record("h", 200);
        let mut extra = Histogram::new();
        extra.record(300);
        r.histogram_merge("h", &extra);
        let snap = r.snapshot();
        let h = snap.histogram("h").expect("histogram");
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), 300);
    }

    #[test]
    fn exemplar_recording_tags_the_histogram() {
        let r = Registry::new();
        r.histogram_record_with_exemplar("h", 5_000, 77);
        r.histogram_record("h", 10);
        let snap = r.snapshot();
        let h = snap.histogram("h").expect("histogram");
        assert_eq!(h.count(), 2);
        assert_eq!(h.exemplars().len(), 1);
        assert_eq!(h.exemplars()[0].trace_id, 77);
    }

    #[test]
    fn kind_conflicts_resolve_to_last_writer() {
        let r = Registry::new();
        r.gauge_set("x", 1.0);
        r.counter_add("x", 5);
        assert_eq!(r.snapshot().counter("x"), Some(5));
        r.histogram_record("x", 9);
        assert_eq!(r.snapshot().histogram("x").map(Histogram::count), Some(1));
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        let r = Registry::new();
        r.counter_add("zebra", 1);
        r.counter_add("alpha", 1);
        r.counter_add("mid", 1);
        let names: Vec<_> = r
            .snapshot()
            .metrics
            .iter()
            .map(|(n, _)| n.clone())
            .collect();
        assert_eq!(names, vec!["alpha", "mid", "zebra"]);
    }
}
