//! Always-on flight recorder: a bounded in-memory tail of recent spans
//! and events, dumped when something fails.
//!
//! Post-mortem debugging of a live pipeline needs the records from *just
//! before* the failure — exactly the ones a sampling profiler or a
//! latency histogram has already thrown away. The [`FlightRecorder`]
//! keeps them: every span close and event is appended to a bounded
//! per-thread ring, old records are evicted (and counted) as new ones
//! arrive, and [`FlightRecorder::drain`] merges the rings into one
//! globally ordered tail.
//!
//! Design constraints, in order:
//!
//! - **Steady-state writes never contend.** Each thread appends only to
//!   its own ring, found through a thread-local cache, so the per-ring
//!   mutex is uncontended on the hot path (one lock/unlock on a cache
//!   hit, no allocation once the ring is full). Cross-thread contention
//!   exists only while a drain walks the rings.
//! - **Drops are deterministic, not best-effort.** A full ring always
//!   evicts its oldest record and increments that ring's drop counter;
//!   for a fixed workload on fixed threads the counter is reproducible.
//! - **Merge is exact.** Every record carries `(at_ns, lane, seq)`:
//!   close/emission time on the shared trace epoch, the writing thread's
//!   lane, and a per-ring sequence number. Sorting by that triple gives
//!   one canonical interleaving — ties in `at_ns` cannot reorder records
//!   from the same thread, and the order is stable across drains.
//!
//! [`note_failure`] is the error hook: `lion::Error` construction calls
//! it, and the recorder files a [`FailureDump`] — the failing thread's
//! ambient [`TraceContext`] plus a full snapshot of the tail — so every
//! surfaced error carries the trace that led to it.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock, Weak};

use crate::subscriber::{Event, Level, SpanClose, Value};
use crate::trace::{self, TraceContext};

/// An owned copy of a dispatched event as retained by the recorder,
/// stamped with its position in the causal trace.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordedEvent {
    /// Module path of the emitting code.
    pub target: &'static str,
    /// Event name.
    pub name: &'static str,
    /// Severity.
    pub level: Level,
    /// Field key/value pairs.
    pub fields: Vec<(&'static str, Value)>,
    /// Trace the event belongs to (`0` when emitted outside any trace).
    pub trace_id: u64,
    /// Id of the span the event was emitted under (`0` = none).
    pub parent: u64,
    /// Emission time, nanoseconds since the process trace epoch.
    pub at_ns: u64,
    /// Lane (thread) id the event was emitted on.
    pub thread: u64,
}

/// One retained record: a closed span or an event.
#[derive(Debug, Clone, PartialEq)]
pub enum FlightRecord {
    /// A span that closed.
    Span(SpanClose),
    /// An instantaneous event.
    Event(RecordedEvent),
}

impl FlightRecord {
    /// The record's timeline position: span close time or event time.
    pub fn at_ns(&self) -> u64 {
        match self {
            FlightRecord::Span(s) => s.end_ns,
            FlightRecord::Event(e) => e.at_ns,
        }
    }

    /// Lane (thread) id the record was written from.
    pub fn thread(&self) -> u64 {
        match self {
            FlightRecord::Span(s) => s.thread,
            FlightRecord::Event(e) => e.thread,
        }
    }

    /// Trace id, or `0` when the record is outside any trace.
    pub fn trace_id(&self) -> u64 {
        match self {
            FlightRecord::Span(s) => s.trace_id,
            FlightRecord::Event(e) => e.trace_id,
        }
    }
}

struct RingState {
    records: VecDeque<(u64, FlightRecord)>,
    dropped: u64,
    seq: u64,
}

/// One thread's ring. Only its owning thread pushes; drains walk all
/// rings under the recorder's ring-list lock.
struct ThreadRing {
    lane: u64,
    state: Mutex<RingState>,
}

impl ThreadRing {
    fn push(&self, capacity: usize, record: FlightRecord) {
        let mut state = self.state.lock().expect("flight ring poisoned");
        if state.records.len() >= capacity {
            state.records.pop_front();
            state.dropped += 1;
        }
        let seq = state.seq;
        state.seq += 1;
        state.records.push_back((seq, record));
    }
}

/// The merged, ordered tail taken from a recorder: records sorted by
/// `(at_ns, lane, seq)` plus per-lane drop counters.
#[derive(Debug, Clone, Default)]
pub struct FlightSnapshot {
    records: Vec<FlightRecord>,
    dropped: Vec<(u64, u64)>,
}

impl FlightSnapshot {
    /// All retained records in canonical merge order.
    pub fn records(&self) -> &[FlightRecord] {
        &self.records
    }

    /// The retained span closes, in merge order.
    pub fn spans(&self) -> impl Iterator<Item = &SpanClose> {
        self.records.iter().filter_map(|r| match r {
            FlightRecord::Span(s) => Some(s),
            FlightRecord::Event(_) => None,
        })
    }

    /// Looks up a retained span by id.
    pub fn span(&self, id: u64) -> Option<&SpanClose> {
        self.spans().find(|s| s.id == id)
    }

    /// The ancestry of span `id` among retained records: the span
    /// itself, then its parent, up to the first ancestor whose parent is
    /// `0` (a trace root) or is no longer retained.
    pub fn ancestry(&self, id: u64) -> Vec<&SpanClose> {
        let mut chain = Vec::new();
        let mut cursor = id;
        while let Some(span) = self.span(cursor) {
            chain.push(span);
            if span.parent == 0 {
                break;
            }
            cursor = span.parent;
        }
        chain
    }

    /// Per-lane `(lane, dropped)` eviction counts, sorted by lane.
    pub fn dropped(&self) -> &[(u64, u64)] {
        &self.dropped
    }

    /// Total records evicted across all lanes.
    pub fn total_dropped(&self) -> u64 {
        self.dropped.iter().map(|&(_, n)| n).sum()
    }

    /// Whether nothing was retained or dropped.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty() && self.dropped.is_empty()
    }
}

/// A failure dump filed by [`note_failure`]: what failed, where in the
/// trace, and the recorder tail at that instant.
#[derive(Debug, Clone)]
pub struct FailureDump {
    /// Failing domain (e.g. `"core"`, `"sim"`).
    pub domain: String,
    /// Error kind within the domain.
    pub kind: String,
    /// The failing thread's ambient trace position, if any.
    pub trace: Option<TraceContext>,
    /// When the failure was noted, ns since the process trace epoch.
    pub at_ns: u64,
    /// The recorder tail at the time of the failure.
    pub snapshot: FlightSnapshot,
}

/// How many failure dumps a recorder retains (oldest evicted first).
const FAILURE_CAPACITY: usize = 8;

/// Bounded ring-buffer recorder of recent spans and events. Install with
/// [`install_flight_recorder`]; see the module docs for semantics.
pub struct FlightRecorder {
    id: u64,
    capacity: usize,
    rings: Mutex<Vec<Arc<ThreadRing>>>,
    failures: Mutex<VecDeque<FailureDump>>,
}

impl FlightRecorder {
    /// Creates a recorder retaining up to `capacity` records per thread
    /// (clamped to at least 1). Not yet receiving — install it.
    pub fn new(capacity: usize) -> Arc<FlightRecorder> {
        Arc::new(FlightRecorder {
            id: trace::next_id(),
            capacity: capacity.max(1),
            rings: Mutex::new(Vec::new()),
            failures: Mutex::new(VecDeque::new()),
        })
    }

    /// Per-thread ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn record(self: &Arc<Self>, record: FlightRecord) {
        self.ring_for_current_thread().push(self.capacity, record);
    }

    /// This thread's ring, through the thread-local cache (keyed by
    /// recorder id so a stale cache entry from a replaced recorder can
    /// never alias into the new one).
    fn ring_for_current_thread(self: &Arc<Self>) -> Arc<ThreadRing> {
        RING_CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some((_, weak)) = cache.iter().find(|(id, _)| *id == self.id) {
                if let Some(ring) = weak.upgrade() {
                    return ring;
                }
            }
            let ring = Arc::new(ThreadRing {
                lane: trace::lane(),
                state: Mutex::new(RingState {
                    records: VecDeque::with_capacity(self.capacity),
                    dropped: 0,
                    seq: 0,
                }),
            });
            self.rings
                .lock()
                .expect("flight ring list poisoned")
                .push(ring.clone());
            cache.retain(|(_, weak)| weak.strong_count() > 0);
            cache.push((self.id, Arc::downgrade(&ring)));
            ring
        })
    }

    fn collect(&self, reset: bool) -> FlightSnapshot {
        let rings = self.rings.lock().expect("flight ring list poisoned");
        let mut merged: Vec<(u64, u64, u64, FlightRecord)> = Vec::new();
        let mut dropped: Vec<(u64, u64)> = Vec::new();
        for ring in rings.iter() {
            let mut state = ring.state.lock().expect("flight ring poisoned");
            let records: Vec<(u64, FlightRecord)> = if reset {
                state.records.drain(..).collect()
            } else {
                state.records.iter().cloned().collect()
            };
            for (seq, record) in records {
                merged.push((record.at_ns(), ring.lane, seq, record));
            }
            if state.dropped > 0 {
                dropped.push((ring.lane, state.dropped));
            }
            if reset {
                state.dropped = 0;
            }
        }
        drop(rings);
        merged.sort_by_key(|&(at_ns, lane, seq, _)| (at_ns, lane, seq));
        dropped.sort_by_key(|&(lane, _)| lane);
        FlightSnapshot {
            records: merged.into_iter().map(|(_, _, _, r)| r).collect(),
            dropped,
        }
    }

    /// Copies out the current tail without disturbing the rings.
    pub fn snapshot(&self) -> FlightSnapshot {
        self.collect(false)
    }

    /// Takes the current tail, emptying every ring and resetting drop
    /// counters (sequence numbers keep running, so merge order stays
    /// exact across drains).
    pub fn drain(&self) -> FlightSnapshot {
        self.collect(true)
    }

    /// Files a failure dump (keeps the most recent
    /// [`FAILURE_CAPACITY`]).
    fn file_failure(&self, dump: FailureDump) {
        let mut failures = self.failures.lock().expect("failure list poisoned");
        if failures.len() >= FAILURE_CAPACITY {
            failures.pop_front();
        }
        failures.push_back(dump);
    }

    /// Copies out the failure dumps filed so far, oldest first.
    pub fn failures(&self) -> Vec<FailureDump> {
        self.failures
            .lock()
            .expect("failure list poisoned")
            .iter()
            .cloned()
            .collect()
    }
}

thread_local! {
    /// `(recorder_id, ring)` pairs for recorders this thread has written
    /// to. Weak so dropping a recorder frees its rings.
    static RING_CACHE: RefCell<Vec<(u64, Weak<ThreadRing>)>> = const { RefCell::new(Vec::new()) };
}

/// Fast-path gate: `true` only while a recorder is installed. Relaxed
/// load on every dispatch; avoids the `RwLock` when recording is off.
static RECORDER_ACTIVE: AtomicBool = AtomicBool::new(false);

static GLOBAL_RECORDER: RwLock<Option<Arc<FlightRecorder>>> = RwLock::new(None);

/// Builds a [`FlightRecorder`] with `capacity` records per thread and
/// installs it process-wide. Recording starts immediately — the
/// recorder counts as an installed sink, so [`crate::enabled`] turns on
/// even with no [`crate::Subscriber`]. Returns the recorder for later
/// [`FlightRecorder::drain`]/[`FlightRecorder::failures`] calls.
///
/// Replaces any previously installed recorder.
pub fn install_flight_recorder(capacity: usize) -> Arc<FlightRecorder> {
    let recorder = FlightRecorder::new(capacity);
    let mut slot = GLOBAL_RECORDER.write().expect("recorder lock poisoned");
    if slot.is_none() {
        crate::subscriber::instrumentation_on();
    }
    *slot = Some(recorder.clone());
    RECORDER_ACTIVE.store(true, Ordering::Relaxed);
    recorder
}

/// Uninstalls the process-wide recorder, returning it (so a final drain
/// is still possible) if one was installed.
pub fn uninstall_flight_recorder() -> Option<Arc<FlightRecorder>> {
    let mut slot = GLOBAL_RECORDER.write().expect("recorder lock poisoned");
    let taken = slot.take();
    if taken.is_some() {
        crate::subscriber::instrumentation_off();
    }
    RECORDER_ACTIVE.store(false, Ordering::Relaxed);
    taken
}

/// The installed recorder, if any.
pub fn flight_recorder() -> Option<Arc<FlightRecorder>> {
    if !RECORDER_ACTIVE.load(Ordering::Relaxed) {
        return None;
    }
    GLOBAL_RECORDER
        .read()
        .expect("recorder lock poisoned")
        .clone()
}

/// Feeds a closed span to the installed recorder (no-op when none).
pub(crate) fn record_span_close(span: &SpanClose) {
    if let Some(recorder) = flight_recorder() {
        recorder.record(FlightRecord::Span(span.clone()));
    }
}

/// Feeds an event to the installed recorder (no-op when none). The
/// event is stamped with the thread's ambient trace position.
pub(crate) fn record_event(event: &Event<'_>) {
    if let Some(recorder) = flight_recorder() {
        let ctx = TraceContext::current();
        recorder.record(FlightRecord::Event(RecordedEvent {
            target: event.target,
            name: event.name,
            level: event.level,
            fields: event.fields.to_vec(),
            trace_id: ctx.map(|c| c.trace_id).unwrap_or(0),
            parent: ctx.map(|c| c.parent).unwrap_or(0),
            at_ns: trace::now_ns(),
            thread: trace::lane(),
        }));
    }
}

/// The error-construction hook: files a [`FailureDump`] (failing
/// domain/kind, the calling thread's ambient [`TraceContext`], and a
/// snapshot of the recorder tail) with the installed recorder. No-op —
/// and near-free — when no recorder is installed, so `lion::Error` can
/// call it unconditionally.
pub fn note_failure(domain: &str, kind: &str) {
    if let Some(recorder) = flight_recorder() {
        let dump = FailureDump {
            domain: domain.to_string(),
            kind: kind.to_string(),
            trace: TraceContext::current(),
            at_ns: trace::now_ns(),
            snapshot: recorder.snapshot(),
        };
        recorder.file_failure(dump);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Recorder tests share the global recorder slot; serialize them.
    fn recorder_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn records_spans_and_events_in_order() {
        let _serial = recorder_lock();
        let recorder = install_flight_recorder(64);
        {
            let _outer = crate::span!("rec.outer");
            crate::event!(Level::Info, "rec.mark", "k" => 1u64);
            let _inner = crate::span!("rec.inner");
        }
        let snap = recorder.drain();
        uninstall_flight_recorder();
        // Event first (emitted before either span closed), then inner,
        // then outer — ordered by at_ns.
        let names: Vec<&str> = snap
            .records()
            .iter()
            .map(|r| match r {
                FlightRecord::Span(s) => s.name,
                FlightRecord::Event(e) => e.name,
            })
            .collect();
        assert_eq!(names, ["rec.mark", "rec.inner", "rec.outer"]);
        // The event parented to the outer span; the spans form a chain.
        let outer = snap.spans().find(|s| s.name == "rec.outer").unwrap();
        let inner = snap.spans().find(|s| s.name == "rec.inner").unwrap();
        assert_eq!(inner.parent, outer.id);
        assert_eq!(inner.trace_id, outer.trace_id);
        match &snap.records()[0] {
            FlightRecord::Event(e) => {
                assert_eq!(e.parent, outer.id);
                assert_eq!(e.trace_id, outer.trace_id);
            }
            other => panic!("expected event, got {other:?}"),
        }
        assert_eq!(snap.total_dropped(), 0);
    }

    #[test]
    fn full_ring_evicts_oldest_and_counts_drops() {
        let _serial = recorder_lock();
        let recorder = install_flight_recorder(4);
        for _ in 0..10 {
            let _span = crate::span!("rec.churn");
        }
        let snap = recorder.drain();
        uninstall_flight_recorder();
        assert_eq!(snap.spans().count(), 4);
        assert_eq!(snap.total_dropped(), 6);
        // Drain reset the counters: an immediate second drain is empty.
        assert!(recorder.drain().is_empty());
    }

    #[test]
    fn ancestry_walks_to_the_root() {
        let _serial = recorder_lock();
        let recorder = install_flight_recorder(16);
        let leaf_id;
        {
            let _a = crate::span!("rec.a");
            let _b = crate::span!("rec.b");
            let c = crate::span!("rec.c");
            leaf_id = c.id().unwrap();
        }
        let snap = recorder.drain();
        uninstall_flight_recorder();
        let chain: Vec<&str> = snap.ancestry(leaf_id).iter().map(|s| s.name).collect();
        assert_eq!(chain, ["rec.c", "rec.b", "rec.a"]);
    }

    #[test]
    fn note_failure_files_a_dump_with_context() {
        let _serial = recorder_lock();
        let recorder = install_flight_recorder(16);
        let ctx = {
            let span = crate::span!("rec.failing");
            let id = span.id().unwrap();
            note_failure("core", "DegenerateWindow");
            TraceContext {
                trace_id: id, // root span's trace id equals its own id
                parent: id,
            }
        };
        let failures = recorder.failures();
        uninstall_flight_recorder();
        assert_eq!(failures.len(), 1);
        let dump = &failures[0];
        assert_eq!(dump.domain, "core");
        assert_eq!(dump.kind, "DegenerateWindow");
        assert_eq!(dump.trace, Some(ctx));
    }

    #[test]
    fn note_failure_without_recorder_is_a_noop() {
        let _serial = recorder_lock();
        uninstall_flight_recorder();
        note_failure("core", "whatever");
    }

    #[test]
    fn merge_is_exact_across_threads() {
        let _serial = recorder_lock();
        let recorder = install_flight_recorder(64);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..8 {
                        let _span = crate::span!("rec.worker");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = recorder.drain();
        uninstall_flight_recorder();
        assert_eq!(snap.spans().count(), 32);
        // Canonical order: (at_ns, lane, seq) non-decreasing.
        let keys: Vec<(u64, u64)> = snap
            .records()
            .iter()
            .map(|r| (r.at_ns(), r.thread()))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }
}
