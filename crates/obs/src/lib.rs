//! # lion-obs
//!
//! Zero-dependency, air-gap-friendly observability for the LION
//! workspace: structured tracing, latency histograms, and exportable
//! telemetry.
//!
//! Four pieces, each usable alone:
//!
//! - **Spans and events** ([`span!`], [`event!`], [`Subscriber`]) — a
//!   thread-local/global subscriber model in the spirit of `tracing`.
//!   With no subscriber installed the macros cost a single relaxed atomic
//!   load ([`enabled`]), so the solver hot paths stay instrumented
//!   unconditionally.
//! - **Histograms** ([`Histogram`]) — fixed-bucket log-linear (HDR-style)
//!   `u64` distributions with ≤ 6.25% relative quantization error,
//!   exactly mergeable, reporting p50/p90/p99/max. These replace bare
//!   nanosecond sums wherever a distribution matters.
//! - **Registry** ([`Registry`], [`global`]) — named counters, gauges,
//!   and histograms with deterministic (sorted) snapshots.
//! - **Exporters** ([`export`]) — JSON-lines snapshot files (with a full
//!   round-trip parser, since the vendored `serde` is a no-op stub) and
//!   Prometheus text exposition.
//!
//! On top of those, the **live telemetry plane**: [`fleet`] rolls
//! per-stream [`doctor`] health reports into a fleet-wide report with
//! SLO budgets behind a process-global [`TelemetryHub`], [`profile`]
//! turns flight-recorder span rings into exclusive-time collapsed-stack
//! flamegraphs, and [`http`] serves everything over a zero-dependency
//! HTTP scrape endpoint ([`TelemetryServer`]) while the pipeline runs.
//! The **history plane** extends the hub with an embedded time-series
//! store ([`tsdb`]: raw/10s/1m tiers under a hard memory cap, sampled on
//! an injectable clock) and a deterministic alerting engine ([`alert`]:
//! recording rules, threshold + `for`-duration + hysteresis alerts with
//! trace-exemplar annotations) behind `GET /query` and `GET /alerts`.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use lion_obs::{CollectingSubscriber, Level};
//!
//! let collector = Arc::new(CollectingSubscriber::new());
//! let guard = lion_obs::set_thread_subscriber(collector.clone());
//! {
//!     let _span = lion_obs::span!("solve");
//!     lion_obs::event!(Level::Info, "solve.start", "equations" => 128u64);
//! }
//! drop(guard);
//! assert_eq!(collector.events().len(), 1);
//! assert_eq!(collector.span_histogram("solve").unwrap().count(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alert;
pub mod doctor;
pub mod export;
pub mod fleet;
mod hist;
pub mod http;
pub mod json;
pub mod profile;
pub mod recorder;
mod registry;
mod subscriber;
mod timer;
pub mod trace;
pub mod tsdb;

pub use alert::{
    AlertEngine, AlertExpr, AlertRule, AlertState, AlertTransition, Cmp, RecordingRule,
    ResolvedAlert,
};
pub use doctor::{Doctor, DoctorConfig, HealthReport, RuleReport, RuleStatus, SolveObservation};
pub use fleet::{
    install_telemetry_hub, telemetry_hub, uninstall_telemetry_hub, BackgroundSampler, FleetDoctor,
    FleetReport, HistoryConfig, SloConfig, SloReport, SloTracker, TelemetryHub,
};
pub use hist::{Exemplar, Histogram, MAX_EXEMPLARS, SUB_BUCKETS};
pub use http::TelemetryServer;
pub use recorder::{
    flight_recorder, install_flight_recorder, note_failure, uninstall_flight_recorder, FailureDump,
    FlightRecord, FlightRecorder, FlightSnapshot, RecordedEvent,
};
pub use registry::{global, Metric, Registry, Snapshot};
pub use subscriber::{
    clear_global_subscriber, dispatch_event, dispatch_span_close, enabled, set_global_subscriber,
    set_thread_subscriber, CollectingSubscriber, Event, Level, OwnedEvent, Span, SpanClose,
    Subscriber, ThreadSubscriberGuard, Value,
};
pub use timer::{saturating_ns_between, HistogramTimer};
pub use trace::{attach, TraceContext, TraceGuard};
pub use tsdb::{
    CounterPoint, GaugePoint, HistPoint, ManualClock, SampleClock, Sampler, SeriesInfo,
    SeriesPoints, Tier, Tsdb, TsdbConfig, TsdbStats, WallClock,
};
