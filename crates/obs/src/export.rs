//! Snapshot exporters: JSON-lines files and Prometheus text exposition.
//!
//! Two formats cover the two consumption patterns:
//!
//! - **JSON lines** ([`to_json_line`], [`append_json_line`]): one
//!   self-contained JSON object per snapshot, appended to a file —
//!   a trajectory of the system over time, in the style of the
//!   `BENCH_*.json` artifacts. Histograms serialize with full bucket
//!   fidelity so they can be parsed back ([`parse_json_line`]) and merged.
//! - **Prometheus text exposition** ([`to_prometheus`],
//!   [`write_prometheus`]): the standard `# TYPE` + sample-line format,
//!   rendered to a string for a scrape endpoint, a file, or stdout.
//!   Histograms emit cumulative `_bucket{le="…"}` samples plus `_sum` and
//!   `_count`.

use std::fs;
use std::io::{self, Write};
use std::path::Path;

use crate::hist::Histogram;
use crate::json::{self, Json};
use crate::registry::{Metric, Snapshot};

/// Renders a snapshot as one JSON object (no trailing newline).
///
/// Shape: `{"label":…,"counters":{…},"gauges":{…},"histograms":{…}}` with
/// each histogram in [`Histogram::to_json`] form.
pub fn to_json_line(label: &str, snapshot: &Snapshot) -> String {
    let mut counters = Vec::new();
    let mut gauges = Vec::new();
    let mut histograms = Vec::new();
    for (name, metric) in &snapshot.metrics {
        let key = json::escape(name);
        match metric {
            Metric::Counter(v) => counters.push(format!("\"{key}\":{v}")),
            Metric::Gauge(v) => {
                if v.is_finite() {
                    gauges.push(format!("\"{key}\":{v}"));
                } else {
                    gauges.push(format!("\"{key}\":null"));
                }
            }
            Metric::Histogram(h) => histograms.push(format!("\"{key}\":{}", h.to_json())),
        }
    }
    format!(
        "{{\"label\":\"{}\",\"counters\":{{{}}},\"gauges\":{{{}}},\"histograms\":{{{}}}}}",
        json::escape(label),
        counters.join(","),
        gauges.join(","),
        histograms.join(","),
    )
}

/// Parses one line produced by [`to_json_line`] back into a label and
/// snapshot (gauges serialized as `null` come back as NaN).
///
/// # Errors
///
/// Returns a description of the first structural problem.
pub fn parse_json_line(line: &str) -> Result<(String, Snapshot), String> {
    let doc = json::parse(line).map_err(|e| e.to_string())?;
    let label = doc
        .get("label")
        .and_then(Json::as_str)
        .ok_or("snapshot: missing label")?
        .to_string();
    let mut metrics = Vec::new();
    if let Some(fields) = doc.get("counters").and_then(Json::as_object) {
        for (name, value) in fields {
            let v = value.as_u64().ok_or("snapshot: non-integer counter")?;
            metrics.push((name.clone(), Metric::Counter(v)));
        }
    }
    if let Some(fields) = doc.get("gauges").and_then(Json::as_object) {
        for (name, value) in fields {
            let v = value.as_f64().unwrap_or(f64::NAN);
            metrics.push((name.clone(), Metric::Gauge(v)));
        }
    }
    if let Some(fields) = doc.get("histograms").and_then(Json::as_object) {
        for (name, value) in fields {
            let h = Histogram::from_json(value)?;
            metrics.push((name.clone(), Metric::Histogram(h)));
        }
    }
    metrics.sort_by(|(a, _), (b, _)| a.cmp(b));
    Ok((label, Snapshot { metrics }))
}

/// Appends a snapshot to `path` as one JSON line, creating the file and
/// any missing parent directories.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn append_json_line(path: &Path, label: &str, snapshot: &Snapshot) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let mut file = fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    file.write_all(to_json_line(label, snapshot).as_bytes())?;
    file.write_all(b"\n")
}

/// Sanitizes a metric name for Prometheus: `[a-zA-Z0-9_:]` pass through,
/// everything else becomes `_`, and a leading digit gets a `_` prefix.
fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok || c.is_ascii_digit() { c } else { '_' });
    }
    out
}

/// Renders a snapshot in the Prometheus text exposition format.
pub fn to_prometheus(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for (name, metric) in &snapshot.metrics {
        let name = prometheus_name(name);
        match metric {
            Metric::Counter(v) => {
                out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
            }
            Metric::Gauge(v) => {
                out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
            }
            Metric::Histogram(h) => {
                out.push_str(&format!("# TYPE {name} histogram\n"));
                let mut cumulative = 0u64;
                for (upper, count) in h.nonzero_buckets() {
                    cumulative = cumulative.saturating_add(count);
                    out.push_str(&format!("{name}_bucket{{le=\"{upper}\"}} {cumulative}\n"));
                }
                out.push_str(&format!(
                    "{name}_bucket{{le=\"+Inf\"}} {}\n{name}_sum {}\n{name}_count {}\n",
                    h.count(),
                    h.sum(),
                    h.count()
                ));
            }
        }
    }
    out
}

/// Writes the Prometheus rendering of a snapshot to `path`, creating
/// missing parent directories.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_prometheus(path: &Path, snapshot: &Snapshot) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, to_prometheus(snapshot))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample_snapshot() -> Snapshot {
        let r = Registry::new();
        r.counter_add("engine.jobs", 96);
        r.counter_add("engine.failures.no_pairs", 2);
        r.gauge_set("sim.reader.read_rate", 0.875);
        r.histogram_record("engine.solve_ns", 1_000);
        r.histogram_record("engine.solve_ns", 2_000);
        r.snapshot()
    }

    #[test]
    fn json_line_round_trips() {
        let snapshot = sample_snapshot();
        let line = to_json_line("test-run", &snapshot);
        assert!(!line.contains('\n'));
        let (label, back) = parse_json_line(&line).expect("parses");
        assert_eq!(label, "test-run");
        assert_eq!(back, snapshot);
    }

    #[test]
    fn jsonl_file_accumulates_lines() {
        let dir = std::env::temp_dir().join("lion_obs_export_test");
        let path = dir.join("snap.jsonl");
        let _ = fs::remove_file(&path);
        let snapshot = sample_snapshot();
        append_json_line(&path, "first", &snapshot).expect("write");
        append_json_line(&path, "second", &snapshot).expect("write");
        let text = fs::read_to_string(&path).expect("read");
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(parse_json_line(lines[1]).expect("parses").0, "second");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn prometheus_rendering_has_types_and_cumulative_buckets() {
        let text = to_prometheus(&sample_snapshot());
        assert!(text.contains("# TYPE engine_jobs counter"));
        assert!(text.contains("engine_jobs 96"));
        assert!(text.contains("# TYPE sim_reader_read_rate gauge"));
        assert!(text.contains("sim_reader_read_rate 0.875"));
        assert!(text.contains("# TYPE engine_solve_ns histogram"));
        assert!(text.contains("engine_solve_ns_count 2"));
        assert!(text.contains("engine_solve_ns_sum 3000"));
        assert!(text.contains("_bucket{le=\"+Inf\"} 2"));
        // Bucket counts are cumulative: the +Inf bucket equals the count
        // and every listed bucket count is ≤ it.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket{le=\"")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "non-cumulative bucket line: {line}");
            last = v;
        }
    }

    #[test]
    fn prometheus_names_are_sanitized() {
        assert_eq!(prometheus_name("engine.jobs-v2"), "engine_jobs_v2");
        assert_eq!(prometheus_name("9lives"), "_9lives");
        assert_eq!(prometheus_name("ok_name:sub"), "ok_name:sub");
    }
}
