//! Snapshot and trace exporters: JSON lines, Prometheus text, and Chrome
//! trace events.
//!
//! Three formats cover the three consumption patterns:
//!
//! - **JSON lines** ([`to_json_line`], [`append_json_line`]): one
//!   self-contained JSON object per snapshot, appended to a file —
//!   a trajectory of the system over time, in the style of the
//!   `BENCH_*.json` artifacts. Histograms serialize with full bucket
//!   fidelity so they can be parsed back ([`parse_json_line`]) and merged.
//! - **Prometheus text exposition** ([`to_prometheus`],
//!   [`write_prometheus`]): the standard `# TYPE` + sample-line format,
//!   rendered to a string for a scrape endpoint, a file, or stdout.
//!   Histograms emit cumulative `_bucket{le="…"}` samples plus `_sum` and
//!   `_count`. [`to_prometheus_with_labels`] attaches a constant label
//!   set to every sample, with values escaped per the exposition format.
//! - **Chrome trace events** ([`to_chrome_trace`], [`write_chrome_trace`]):
//!   the flight recorder's tail as a Trace Event Format JSON document
//!   that loads directly in Perfetto (<https://ui.perfetto.dev>) or
//!   `chrome://tracing`, with one lane per worker thread and spans
//!   nested by their recorded intervals.

use std::fs;
use std::io::{self, Write};
use std::path::Path;

use crate::hist::Histogram;
use crate::json::{self, Json};
use crate::recorder::FlightRecord;
use crate::registry::{Metric, Snapshot};
use crate::subscriber::Value;

/// Renders a snapshot as one JSON object (no trailing newline).
///
/// Shape: `{"label":…,"counters":{…},"gauges":{…},"histograms":{…}}` with
/// each histogram in [`Histogram::to_json`] form.
pub fn to_json_line(label: &str, snapshot: &Snapshot) -> String {
    let mut counters = Vec::new();
    let mut gauges = Vec::new();
    let mut histograms = Vec::new();
    for (name, metric) in &snapshot.metrics {
        let key = json::escape(name);
        match metric {
            Metric::Counter(v) => counters.push(format!("\"{key}\":{v}")),
            Metric::Gauge(v) => {
                if v.is_finite() {
                    gauges.push(format!("\"{key}\":{v}"));
                } else {
                    gauges.push(format!("\"{key}\":null"));
                }
            }
            Metric::Histogram(h) => histograms.push(format!("\"{key}\":{}", h.to_json())),
        }
    }
    format!(
        "{{\"label\":\"{}\",\"counters\":{{{}}},\"gauges\":{{{}}},\"histograms\":{{{}}}}}",
        json::escape(label),
        counters.join(","),
        gauges.join(","),
        histograms.join(","),
    )
}

/// Parses one line produced by [`to_json_line`] back into a label and
/// snapshot (gauges serialized as `null` come back as NaN).
///
/// # Errors
///
/// Returns a description of the first structural problem.
pub fn parse_json_line(line: &str) -> Result<(String, Snapshot), String> {
    let doc = json::parse(line).map_err(|e| e.to_string())?;
    let label = doc
        .get("label")
        .and_then(Json::as_str)
        .ok_or("snapshot: missing label")?
        .to_string();
    let mut metrics = Vec::new();
    if let Some(fields) = doc.get("counters").and_then(Json::as_object) {
        for (name, value) in fields {
            let v = value.as_u64().ok_or("snapshot: non-integer counter")?;
            metrics.push((name.clone(), Metric::Counter(v)));
        }
    }
    if let Some(fields) = doc.get("gauges").and_then(Json::as_object) {
        for (name, value) in fields {
            let v = value.as_f64().unwrap_or(f64::NAN);
            metrics.push((name.clone(), Metric::Gauge(v)));
        }
    }
    if let Some(fields) = doc.get("histograms").and_then(Json::as_object) {
        for (name, value) in fields {
            let h = Histogram::from_json(value)?;
            metrics.push((name.clone(), Metric::Histogram(h)));
        }
    }
    metrics.sort_by(|(a, _), (b, _)| a.cmp(b));
    Ok((label, Snapshot { metrics }))
}

/// Appends a snapshot to `path` as one JSON line, creating the file and
/// any missing parent directories.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn append_json_line(path: &Path, label: &str, snapshot: &Snapshot) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let mut file = fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    file.write_all(to_json_line(label, snapshot).as_bytes())?;
    file.write_all(b"\n")
}

/// Sanitizes a metric name for Prometheus: `[a-zA-Z0-9_:]` pass through,
/// everything else becomes `_`, and a leading digit gets a `_` prefix.
fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok || c.is_ascii_digit() { c } else { '_' });
    }
    out
}

/// Escapes a `# HELP` text per the exposition format: `\` → `\\`,
/// newline → `\n` (quotes are *not* escaped in help text).
fn escape_help(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// The exposition-format type keyword for a metric.
fn metric_kind(metric: &Metric) -> &'static str {
    match metric {
        Metric::Counter(_) => "counter",
        Metric::Gauge(_) => "gauge",
        Metric::Histogram(_) => "histogram",
    }
}

/// Appends one metric's sample lines (no `# HELP`/`# TYPE` header) for
/// the label set rendered as `block`/`bucket_prefix` (see
/// [`label_block`]).
fn push_samples(out: &mut String, name: &str, metric: &Metric, block: &str, bucket_prefix: &str) {
    match metric {
        Metric::Counter(v) => out.push_str(&format!("{name}{block} {v}\n")),
        Metric::Gauge(v) => out.push_str(&format!("{name}{block} {v}\n")),
        Metric::Histogram(h) => {
            let mut cumulative = 0u64;
            for (upper, count) in h.nonzero_buckets() {
                cumulative = cumulative.saturating_add(count);
                out.push_str(&format!(
                    "{name}_bucket{{{bucket_prefix}le=\"{upper}\"}} {cumulative}\n"
                ));
            }
            out.push_str(&format!(
                "{name}_bucket{{{bucket_prefix}le=\"+Inf\"}} {}\n{name}_sum{block} {}\n{name}_count{block} {}\n",
                h.count(),
                h.sum(),
                h.count()
            ));
        }
    }
}

/// Renders several labeled snapshots as one conformant exposition
/// document: metric families are merged across the groups, and every
/// family gets its `# HELP` and `# TYPE` lines **exactly once**, before
/// all of its samples — even when the same metric appears under several
/// label sets (the rule the Prometheus text parser enforces).
///
/// Families are emitted in ascending (sanitized) name order; within a
/// family, samples follow the group order given. The `# HELP` text is
/// the metric's original (pre-sanitization) registry name. If two groups
/// disagree on a family's kind, the first group's kind wins and the
/// conflicting samples are dropped — a scrape document with one family
/// under two types would be rejected whole.
///
/// Counter families follow the Prometheus naming convention: the family
/// name gets a `_total` suffix unless the registry name already carries
/// one, so `engine.jobs` exports as `engine_jobs_total`.
pub fn to_prometheus_grouped(groups: &[(&[(&str, &str)], &Snapshot)]) -> String {
    use std::collections::BTreeMap;
    // family → (kind, help, accumulated sample lines)
    let mut families: BTreeMap<String, (&'static str, String, String)> = BTreeMap::new();
    for (labels, snapshot) in groups {
        let block = label_block(labels);
        let bucket_prefix = if labels.is_empty() {
            String::new()
        } else {
            // Inside a merged `{…,le="…"}` block: constant labels first.
            let inner = block.trim_start_matches('{').trim_end_matches('}');
            format!("{inner},")
        };
        for (name, metric) in &snapshot.metrics {
            let kind = metric_kind(metric);
            let mut family = prometheus_name(name);
            if kind == "counter" && !family.ends_with("_total") {
                family.push_str("_total");
            }
            let entry = families
                .entry(family.clone())
                .or_insert_with(|| (kind, escape_help(name), String::new()));
            if entry.0 != kind {
                continue;
            }
            push_samples(&mut entry.2, &family, metric, &block, &bucket_prefix);
        }
    }
    let mut out = String::new();
    for (family, (kind, help, samples)) in &families {
        out.push_str(&format!("# HELP {family} {help}\n# TYPE {family} {kind}\n"));
        out.push_str(samples);
    }
    out
}

/// Renders a snapshot in the Prometheus text exposition format.
pub fn to_prometheus(snapshot: &Snapshot) -> String {
    to_prometheus_grouped(&[(&[], snapshot)])
}

/// Writes the Prometheus rendering of a snapshot to `path`, creating
/// missing parent directories.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_prometheus(path: &Path, snapshot: &Snapshot) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, to_prometheus(snapshot))
}

/// Escapes a Prometheus label *value* per the text exposition format:
/// `\` → `\\`, `"` → `\"`, newline → `\n`.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders one `{name="value",…}` label block (empty string for no
/// labels), with values escaped by [`escape_label_value`] and label
/// names sanitized like metric names.
fn label_block(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let rendered: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", prometheus_name(k), escape_label_value(v)))
        .collect();
    format!("{{{}}}", rendered.join(","))
}

/// Like [`to_prometheus`], but attaches `labels` to every sample.
/// Histogram `_bucket` samples merge the constant labels with their `le`
/// label. Label values are escaped per the exposition format, so values
/// containing `"`, `\`, or newlines stay parseable. To export the same
/// metrics under several label sets in one document, use
/// [`to_prometheus_grouped`] — concatenating two renderings would repeat
/// the `# HELP`/`# TYPE` headers, which the exposition format forbids.
pub fn to_prometheus_with_labels(snapshot: &Snapshot, labels: &[(&str, &str)]) -> String {
    to_prometheus_grouped(&[(labels, snapshot)])
}

/// Formats nanoseconds-since-epoch as Trace Event microseconds with
/// exact sub-µs decimals. The conversion is monotone and exact, so
/// recorded interval containment (child within parent) survives export.
fn chrome_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// One event `args` value as JSON (strings escaped, non-finite floats as
/// `null` so the document stays parseable).
fn chrome_value(value: &Value) -> String {
    match value {
        Value::U64(v) => format!("{v}"),
        Value::F64(v) if v.is_finite() => format!("{v}"),
        Value::F64(_) => "null".to_string(),
        Value::Bool(v) => format!("{v}"),
        Value::Str(s) => format!("\"{}\"", json::escape(s)),
        Value::Owned(s) => format!("\"{}\"", json::escape(s)),
    }
}

/// Renders flight-recorder records as a Chrome Trace Event Format JSON
/// document (the object form, `{"traceEvents":[…]}`), loadable in
/// Perfetto or `chrome://tracing`.
///
/// Mapping: every span close becomes a complete (`"ph":"X"`) event on
/// `pid` 1 with `tid` = its lane, `ts`/`dur` in microseconds from the
/// process trace epoch, and `args` carrying the span/parent/trace ids;
/// every recorded event becomes a thread-scoped instant (`"ph":"i"`)
/// with its fields in `args`. A `thread_name` metadata record names each
/// lane so workers appear as separate tracks.
pub fn to_chrome_trace(records: &[FlightRecord]) -> String {
    let mut lanes: Vec<u64> = records.iter().map(FlightRecord::thread).collect();
    lanes.sort_unstable();
    lanes.dedup();
    let mut events: Vec<String> = lanes
        .iter()
        .map(|lane| {
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{lane},\"args\":{{\"name\":\"lane {lane}\"}}}}"
            )
        })
        .collect();
    for record in records {
        match record {
            FlightRecord::Span(s) => {
                events.push(format!(
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{\"id\":{},\"parent\":{},\"trace\":{}}}}}",
                    json::escape(s.name),
                    json::escape(s.target),
                    s.thread,
                    chrome_us(s.start_ns),
                    chrome_us(s.elapsed_ns),
                    s.id,
                    s.parent,
                    s.trace_id,
                ));
            }
            FlightRecord::Event(e) => {
                let mut args: Vec<String> = vec![
                    format!("\"parent\":{}", e.parent),
                    format!("\"trace\":{}", e.trace_id),
                ];
                args.extend(
                    e.fields
                        .iter()
                        .map(|(k, v)| format!("\"{}\":{}", json::escape(k), chrome_value(v))),
                );
                events.push(format!(
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{},\"ts\":{},\"args\":{{{}}}}}",
                    json::escape(e.name),
                    json::escape(e.target),
                    e.thread,
                    chrome_us(e.at_ns),
                    args.join(","),
                ));
            }
        }
    }
    format!(
        "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{}]}}",
        events.join(",")
    )
}

/// Writes [`to_chrome_trace`] to `path`, creating missing parent
/// directories.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_chrome_trace(path: &Path, records: &[FlightRecord]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, to_chrome_trace(records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample_snapshot() -> Snapshot {
        let r = Registry::new();
        r.counter_add("engine.jobs", 96);
        r.counter_add("engine.failures.no_pairs", 2);
        r.gauge_set("sim.reader.read_rate", 0.875);
        r.histogram_record("engine.solve_ns", 1_000);
        r.histogram_record("engine.solve_ns", 2_000);
        r.snapshot()
    }

    #[test]
    fn json_line_round_trips() {
        let snapshot = sample_snapshot();
        let line = to_json_line("test-run", &snapshot);
        assert!(!line.contains('\n'));
        let (label, back) = parse_json_line(&line).expect("parses");
        assert_eq!(label, "test-run");
        assert_eq!(back, snapshot);
    }

    #[test]
    fn jsonl_file_accumulates_lines() {
        let dir = std::env::temp_dir().join("lion_obs_export_test");
        let path = dir.join("snap.jsonl");
        let _ = fs::remove_file(&path);
        let snapshot = sample_snapshot();
        append_json_line(&path, "first", &snapshot).expect("write");
        append_json_line(&path, "second", &snapshot).expect("write");
        let text = fs::read_to_string(&path).expect("read");
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(parse_json_line(lines[1]).expect("parses").0, "second");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn prometheus_rendering_has_types_and_cumulative_buckets() {
        let text = to_prometheus(&sample_snapshot());
        assert!(text.contains("# TYPE engine_jobs_total counter"));
        assert!(text.contains("engine_jobs_total 96"));
        assert!(text.contains("# TYPE sim_reader_read_rate gauge"));
        assert!(text.contains("sim_reader_read_rate 0.875"));
        assert!(text.contains("# TYPE engine_solve_ns histogram"));
        assert!(text.contains("engine_solve_ns_count 2"));
        assert!(text.contains("engine_solve_ns_sum 3000"));
        assert!(text.contains("_bucket{le=\"+Inf\"} 2"));
        // Bucket counts are cumulative: the +Inf bucket equals the count
        // and every listed bucket count is ≤ it.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket{le=\"")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "non-cumulative bucket line: {line}");
            last = v;
        }
    }

    #[test]
    fn prometheus_names_are_sanitized() {
        assert_eq!(prometheus_name("engine.jobs-v2"), "engine_jobs_v2");
        assert_eq!(prometheus_name("9lives"), "_9lives");
        assert_eq!(prometheus_name("ok_name:sub"), "ok_name:sub");
    }

    #[test]
    fn label_values_are_escaped_per_exposition_format() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd",);
        let r = Registry::new();
        r.counter_add("jobs", 1);
        r.histogram_record("lat_ns", 500);
        let text = to_prometheus_with_labels(&r.snapshot(), &[("run", "line1\nline\"2\\end")]);
        assert!(text.contains("jobs_total{run=\"line1\\nline\\\"2\\\\end\"} 1"));
        // Histogram buckets merge the constant labels with `le`.
        assert!(text.contains("lat_ns_bucket{run=\"line1\\nline\\\"2\\\\end\",le=\"+Inf\"} 1"));
        assert!(text.contains("lat_ns_count{run=\"line1\\nline\\\"2\\\\end\"} 1"));
        // No raw (unescaped) newline may survive inside a sample line.
        for line in text.lines() {
            assert!(!line.contains("line1\nline"));
        }
    }

    #[test]
    fn help_and_type_appear_exactly_once_per_family_across_label_sets() {
        // The same registry exported under two label sets — the fleet
        // per-stream case. Headers must not repeat per label set.
        let r = Registry::new();
        r.counter_add("engine.jobs", 7);
        r.histogram_record("solve_ns", 1_000);
        let snap = r.snapshot();
        let text =
            to_prometheus_grouped(&[(&[("stream", "a")], &snap), (&[("stream", "b")], &snap)]);
        for family in ["engine_jobs_total", "solve_ns"] {
            let help = text.matches(&format!("# HELP {family} ")).count();
            let typ = text.matches(&format!("# TYPE {family} ")).count();
            assert_eq!(help, 1, "HELP for {family} repeated:\n{text}");
            assert_eq!(typ, 1, "TYPE for {family} repeated:\n{text}");
        }
        // Both label sets' samples survive, under the single header.
        assert!(text.contains("engine_jobs_total{stream=\"a\"} 7"));
        assert!(text.contains("engine_jobs_total{stream=\"b\"} 7"));
        assert!(text.contains("solve_ns_count{stream=\"a\"} 1"));
        assert!(text.contains("solve_ns_count{stream=\"b\"} 1"));
        // Headers precede every sample of their family.
        let type_pos = text.find("# TYPE engine_jobs_total ").unwrap();
        let first_sample = text.find("engine_jobs_total{").unwrap();
        assert!(type_pos < first_sample);
        // HELP text carries the original (unsanitized) name.
        assert!(text.contains("# HELP engine_jobs_total engine.jobs\n"));
    }

    #[test]
    fn kind_conflicts_keep_the_first_family_type() {
        // A counter named `*_total` keeps its name, so it can collide
        // with a gauge of the same registry name.
        let a = Registry::new();
        a.counter_add("x_total", 1);
        let b = Registry::new();
        b.gauge_set("x_total", 2.0);
        let text = to_prometheus_grouped(&[
            (&[("s", "a")], &a.snapshot()),
            (&[("s", "b")], &b.snapshot()),
        ]);
        assert_eq!(text.matches("# TYPE x_total ").count(), 1);
        assert!(text.contains("# TYPE x_total counter"));
        assert!(text.contains("x_total{s=\"a\"} 1"));
        // The conflicting gauge sample is dropped, not emitted untyped.
        assert!(!text.contains("x_total{s=\"b\"}"));
    }

    #[test]
    fn counter_families_always_carry_the_total_suffix() {
        // Naming-convention conformance: every `# TYPE … counter` family
        // in a rendered document ends in `_total`, whether or not the
        // registry name carried the suffix.
        let r = Registry::new();
        r.counter_add("engine.jobs", 2);
        r.counter_add("reads_total", 5);
        r.counter_add("plane.requests", 1);
        r.gauge_set("fleet.streams", 3.0);
        r.histogram_record("solve_ns", 800);
        let text = to_prometheus(&r.snapshot());
        let mut counters = 0;
        for line in text.lines() {
            let Some(rest) = line.strip_prefix("# TYPE ") else {
                continue;
            };
            let (family, kind) = rest.split_once(' ').expect("TYPE line shape");
            if kind == "counter" {
                counters += 1;
                assert!(family.ends_with("_total"), "bad counter family: {family}");
            }
        }
        assert_eq!(counters, 3);
        // Pre-suffixed names are not doubled.
        assert!(text.contains("reads_total 5"));
        assert!(!text.contains("reads_total_total"));
    }

    #[test]
    fn label_escaping_round_trips_through_with_labels() {
        // Regression: `\n` and `"` in a label value must come back out
        // of the rendered document escaped — and unescaping the rendered
        // value must reproduce the original exactly.
        let original = "line1\nline\"2\\end";
        let r = Registry::new();
        r.counter_add("jobs", 3);
        let text = to_prometheus_with_labels(&r.snapshot(), &[("run", original)]);
        let line = text
            .lines()
            .find(|l| l.starts_with("jobs_total{"))
            .expect("sample line");
        let value = line
            .split("run=\"")
            .nth(1)
            .and_then(|rest| rest.split("\"}").next())
            .expect("label value");
        assert_eq!(value, "line1\\nline\\\"2\\\\end");
        // Unescape per the exposition format and compare to the input.
        let mut unescaped = String::new();
        let mut chars = value.chars();
        while let Some(c) = chars.next() {
            if c == '\\' {
                match chars.next() {
                    Some('n') => unescaped.push('\n'),
                    Some('"') => unescaped.push('"'),
                    Some('\\') => unescaped.push('\\'),
                    other => panic!("unknown escape \\{other:?}"),
                }
            } else {
                unescaped.push(c);
            }
        }
        assert_eq!(unescaped, original);
    }

    #[test]
    fn with_empty_labels_matches_plain_rendering() {
        let snapshot = sample_snapshot();
        assert_eq!(
            to_prometheus_with_labels(&snapshot, &[]),
            to_prometheus(&snapshot)
        );
    }

    #[test]
    fn chrome_trace_round_trips_and_nests() {
        use crate::recorder::{FlightRecord, RecordedEvent};
        use crate::{Level, SpanClose};
        let span = |name: &'static str, id: u64, parent: u64, start: u64, end: u64| {
            FlightRecord::Span(SpanClose {
                target: "test",
                name,
                id,
                parent,
                trace_id: 10,
                thread: 3,
                start_ns: start,
                end_ns: end,
                elapsed_ns: end - start,
            })
        };
        let records = vec![
            span("job", 11, 0, 1_000, 9_000),
            span("stage", 12, 11, 2_000, 8_500),
            span("sub", 13, 12, 2_250, 4_750),
            FlightRecord::Event(RecordedEvent {
                target: "test",
                name: "mark",
                level: Level::Info,
                fields: vec![("k", Value::U64(7)), ("s", Value::Str("x\"y"))],
                trace_id: 10,
                parent: 12,
                at_ns: 3_000,
                thread: 3,
            }),
        ];
        let text = to_chrome_trace(&records);
        let doc = json::parse(&text).expect("chrome trace parses with the in-repo parser");
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents array");
        // 1 metadata + 3 spans + 1 instant.
        assert_eq!(events.len(), 5);
        let by_name = |name: &str| {
            events
                .iter()
                .find(|e| e.get("name").and_then(Json::as_str) == Some(name))
                .unwrap()
        };
        let interval = |name: &str| {
            let e = by_name(name);
            let ts = e.get("ts").and_then(Json::as_f64).unwrap();
            let dur = e.get("dur").and_then(Json::as_f64).unwrap();
            (ts, ts + dur)
        };
        let (job_s, job_e) = interval("job");
        let (stage_s, stage_e) = interval("stage");
        let (sub_s, sub_e) = interval("sub");
        assert!(job_s <= stage_s && stage_e <= job_e);
        assert!(stage_s <= sub_s && sub_e <= stage_e);
        assert_eq!((job_s, job_e), (1.0, 9.0));
        // Sub-µs precision survives: 2_250 ns → 2.25 µs.
        assert_eq!(sub_s, 2.25);
        // Args carry the causal ids; the instant carries its fields.
        let stage = by_name("stage");
        assert_eq!(
            stage
                .get("args")
                .and_then(|a| a.get("parent"))
                .and_then(Json::as_u64),
            Some(11)
        );
        let mark = by_name("mark");
        assert_eq!(mark.get("ph").and_then(Json::as_str), Some("i"));
        assert_eq!(
            mark.get("args")
                .and_then(|a| a.get("s"))
                .and_then(Json::as_str),
            Some("x\"y")
        );
        // The lane got a metadata track name.
        let meta = by_name("thread_name");
        assert_eq!(meta.get("tid").and_then(Json::as_u64), Some(3));
    }
}
