//! Scoped histogram timers.
//!
//! A [`HistogramTimer`] measures the wall-clock lifetime of a scope and
//! records it (in nanoseconds) into a named [`Registry`] histogram on
//! drop — the ergonomic way to feed latency distributions like the
//! streaming pipeline's `lion.stream.stream_lag_ns` without sprinkling
//! `Instant::now()` pairs through the call sites.

use std::time::Instant;

use crate::registry::Registry;

/// Records elapsed nanoseconds into a registry histogram when dropped.
///
/// # Example
///
/// ```
/// use lion_obs::{HistogramTimer, Registry};
///
/// let registry = Registry::new();
/// {
///     let _t = HistogramTimer::start(&registry, "work_ns");
///     // ... timed work ...
/// }
/// let snap = registry.snapshot();
/// assert_eq!(snap.histogram("work_ns").unwrap().count(), 1);
/// ```
#[derive(Debug)]
pub struct HistogramTimer<'a> {
    registry: &'a Registry,
    name: &'a str,
    started: Instant,
    stopped: bool,
}

impl<'a> HistogramTimer<'a> {
    /// Starts timing; the elapsed time lands in `registry`'s histogram
    /// `name` when the timer drops (or [`HistogramTimer::stop`] is
    /// called).
    pub fn start(registry: &'a Registry, name: &'a str) -> Self {
        HistogramTimer {
            registry,
            name,
            started: Instant::now(),
            stopped: false,
        }
    }

    /// Records now instead of at drop, returning the elapsed nanoseconds.
    pub fn stop(mut self) -> u64 {
        let elapsed = self.record();
        self.stopped = true;
        elapsed
    }

    /// Nanoseconds since the timer started, saturating at `u64::MAX`.
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn record(&self) -> u64 {
        let elapsed = self.elapsed_ns();
        self.registry.histogram_record(self.name, elapsed);
        elapsed
    }
}

impl Drop for HistogramTimer<'_> {
    fn drop(&mut self) {
        if !self.stopped {
            self.record();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_on_drop() {
        let registry = Registry::new();
        {
            let _t = HistogramTimer::start(&registry, "t_ns");
        }
        {
            let _t = HistogramTimer::start(&registry, "t_ns");
        }
        let snap = registry.snapshot();
        assert_eq!(snap.histogram("t_ns").unwrap().count(), 2);
    }

    #[test]
    fn stop_records_once() {
        let registry = Registry::new();
        let t = HistogramTimer::start(&registry, "t_ns");
        let _elapsed = t.stop();
        let snap = registry.snapshot();
        assert_eq!(snap.histogram("t_ns").unwrap().count(), 1);
    }
}
