//! Scoped histogram timers.
//!
//! A [`HistogramTimer`] measures the wall-clock lifetime of a scope and
//! records it (in nanoseconds) into a named [`Registry`] histogram on
//! drop — the ergonomic way to feed latency distributions like the
//! streaming pipeline's `lion.stream.stream_lag_ns` without sprinkling
//! `Instant::now()` pairs through the call sites.

use std::time::Instant;

use crate::registry::Registry;

/// Records elapsed nanoseconds into a registry histogram when dropped.
///
/// # Example
///
/// ```
/// use lion_obs::{HistogramTimer, Registry};
///
/// let registry = Registry::new();
/// {
///     let _t = HistogramTimer::start(&registry, "work_ns");
///     // ... timed work ...
/// }
/// let snap = registry.snapshot();
/// assert_eq!(snap.histogram("work_ns").unwrap().count(), 1);
/// ```
#[derive(Debug)]
pub struct HistogramTimer<'a> {
    registry: &'a Registry,
    name: &'a str,
    started: Instant,
    stopped: bool,
}

impl<'a> HistogramTimer<'a> {
    /// Starts timing; the elapsed time lands in `registry`'s histogram
    /// `name` when the timer drops (or [`HistogramTimer::stop`] is
    /// called).
    pub fn start(registry: &'a Registry, name: &'a str) -> Self {
        HistogramTimer {
            registry,
            name,
            started: Instant::now(),
            stopped: false,
        }
    }

    /// Records now instead of at drop, returning the elapsed nanoseconds.
    pub fn stop(mut self) -> u64 {
        let elapsed = self.record();
        self.stopped = true;
        elapsed
    }

    /// Like [`HistogramTimer::stop`], but when an ambient trace context
    /// exists (a span is open or a [`crate::TraceContext`] is attached)
    /// the elapsed value lands with that trace id as a histogram
    /// exemplar, so a latency alert on the histogram links back to the
    /// span tree of its slowest observation. Without tracing this is
    /// exactly `stop()`.
    pub fn stop_traced(mut self) -> u64 {
        let elapsed = self.elapsed_ns();
        match crate::trace::TraceContext::current() {
            Some(ctx) => {
                self.registry
                    .histogram_record_with_exemplar(self.name, elapsed, ctx.trace_id);
            }
            None => {
                self.registry.histogram_record(self.name, elapsed);
            }
        }
        self.stopped = true;
        elapsed
    }

    /// Nanoseconds since the timer started, saturating at `u64::MAX`
    /// (and at `0` against clock anomalies — see
    /// [`saturating_ns_between`]).
    pub fn elapsed_ns(&self) -> u64 {
        saturating_ns_between(self.started, Instant::now())
    }

    fn record(&self) -> u64 {
        let elapsed = self.elapsed_ns();
        self.registry.histogram_record(self.name, elapsed);
        elapsed
    }
}

impl Drop for HistogramTimer<'_> {
    fn drop(&mut self) {
        if !self.stopped {
            self.record();
        }
    }
}

/// The interval from `earlier` to `later` in nanoseconds, saturating in
/// both directions: `0` when `later` precedes `earlier` (a backwards or
/// frozen clock must record a zero-length interval, never wrap or
/// panic — the repo builds with `overflow-checks` on), `u64::MAX` when
/// the interval overflows `u64`.
pub fn saturating_ns_between(earlier: Instant, later: Instant) -> u64 {
    match later.checked_duration_since(earlier) {
        Some(d) => u64::try_from(d.as_nanos()).unwrap_or(u64::MAX),
        None => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_on_drop() {
        let registry = Registry::new();
        {
            let _t = HistogramTimer::start(&registry, "t_ns");
        }
        {
            let _t = HistogramTimer::start(&registry, "t_ns");
        }
        let snap = registry.snapshot();
        assert_eq!(snap.histogram("t_ns").unwrap().count(), 2);
    }

    #[test]
    fn stop_records_once() {
        let registry = Registry::new();
        let t = HistogramTimer::start(&registry, "t_ns");
        let _elapsed = t.stop();
        let snap = registry.snapshot();
        assert_eq!(snap.histogram("t_ns").unwrap().count(), 1);
    }

    #[test]
    fn clock_anomalies_saturate_instead_of_wrapping() {
        let earlier = Instant::now();
        let later = Instant::now();
        // A zero-length interval is 0, not a panic.
        assert_eq!(saturating_ns_between(earlier, earlier), 0);
        // A forced *backwards* interval (later observed before earlier)
        // saturates to 0 — with overflow-checks on, a naive subtraction
        // here would abort the process.
        assert_eq!(saturating_ns_between(later, earlier), 0);
        // The forward direction still measures.
        assert!(saturating_ns_between(earlier, Instant::now()) < u64::MAX);
    }
}
