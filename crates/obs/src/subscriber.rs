//! Structured events and timed spans, modeled on `tracing`.
//!
//! A [`Subscriber`] receives [`Event`]s and closed [`SpanClose`]s. One can
//! be installed process-wide ([`set_global_subscriber`]) or per thread
//! ([`set_thread_subscriber`], which overrides the global one on that
//! thread and restores the previous subscriber when its guard drops).
//!
//! Instrumented code pays almost nothing when no subscriber is installed:
//! the [`span!`](crate::span) and [`event!`](crate::event) macros check a
//! single relaxed atomic ([`enabled`]) and skip field construction, clock
//! reads, and dispatch entirely on the disabled path. This is what lets
//! the hot solver loops stay instrumented unconditionally.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use crate::hist::Histogram;
use crate::recorder;
use crate::trace;

/// Severity of an [`Event`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Fine-grained tracing.
    Trace,
    /// Debugging detail.
    Debug,
    /// Normal operational signal.
    Info,
    /// Something degraded.
    Warn,
    /// Something failed.
    Error,
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Level::Trace => "TRACE",
            Level::Debug => "DEBUG",
            Level::Info => "INFO",
            Level::Warn => "WARN",
            Level::Error => "ERROR",
        })
    }
}

/// A typed field value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Static string.
    Str(&'static str),
    /// Owned string.
    Owned(String),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::U64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(v) => f.write_str(v),
            Value::Owned(v) => f.write_str(v),
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&'static str> for Value {
    fn from(v: &'static str) -> Self {
        Value::Str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Owned(v)
    }
}

/// A structured event: target module, name, level, and typed fields.
#[derive(Debug)]
pub struct Event<'a> {
    /// Module path of the emitting code.
    pub target: &'static str,
    /// Event name.
    pub name: &'static str,
    /// Severity.
    pub level: Level,
    /// Field key/value pairs.
    pub fields: &'a [(&'static str, Value)],
}

/// A closed (completed) span: name, measured wall time, and its position
/// in the causal trace (see [`crate::trace`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanClose {
    /// Module path of the emitting code.
    pub target: &'static str,
    /// Span name.
    pub name: &'static str,
    /// Process-unique span id.
    pub id: u64,
    /// Id of the enclosing span, or `0` for a trace root.
    pub parent: u64,
    /// Trace this span belongs to (shared by the whole tree).
    pub trace_id: u64,
    /// Lane (thread) id the span ran on.
    pub thread: u64,
    /// Open time, nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Close time, nanoseconds since the process trace epoch.
    pub end_ns: u64,
    /// Wall-clock duration between open and close, in nanoseconds.
    /// Always `end_ns.saturating_sub(start_ns)` — a clock anomaly yields
    /// `0`, never a wrap or panic.
    pub elapsed_ns: u64,
}

/// Receives dispatched events and closed spans.
pub trait Subscriber: Send + Sync {
    /// Called for each [`event!`](crate::event).
    fn on_event(&self, event: &Event<'_>);
    /// Called when a [`Span`] guard drops.
    fn on_span_close(&self, span: &SpanClose);
}

/// Count of installed sinks (global slot + thread-local slots + the
/// flight recorder). Non-zero means instrumentation must dispatch.
static INSTALLED: AtomicUsize = AtomicUsize::new(0);

/// Registers one more reason for instrumentation to run (used by the
/// flight recorder, which is a sink but not a [`Subscriber`]).
pub(crate) fn instrumentation_on() {
    INSTALLED.fetch_add(1, Ordering::Relaxed);
}

/// Releases a slot taken by [`instrumentation_on`].
pub(crate) fn instrumentation_off() {
    INSTALLED.fetch_sub(1, Ordering::Relaxed);
}

static GLOBAL: RwLock<Option<Arc<dyn Subscriber>>> = RwLock::new(None);

thread_local! {
    static LOCAL: RefCell<Option<Arc<dyn Subscriber>>> = const { RefCell::new(None) };
}

/// Whether any subscriber is installed — the macros' fast-path check.
/// A single relaxed atomic load; when `false`, instrumentation skips all
/// other work.
#[inline(always)]
pub fn enabled() -> bool {
    INSTALLED.load(Ordering::Relaxed) != 0
}

/// Installs (or replaces) the process-wide subscriber. Worker threads
/// without a thread-local subscriber dispatch here.
pub fn set_global_subscriber(subscriber: Arc<dyn Subscriber>) {
    let mut slot = GLOBAL.write().expect("subscriber lock poisoned");
    if slot.is_none() {
        INSTALLED.fetch_add(1, Ordering::Relaxed);
    }
    *slot = Some(subscriber);
}

/// Removes the process-wide subscriber, restoring the no-op fast path
/// (unless thread-local subscribers remain).
pub fn clear_global_subscriber() {
    let mut slot = GLOBAL.write().expect("subscriber lock poisoned");
    if slot.take().is_some() {
        INSTALLED.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Restores the previous thread-local subscriber when dropped.
#[must_use = "dropping the guard immediately uninstalls the subscriber"]
pub struct ThreadSubscriberGuard {
    previous: Option<Arc<dyn Subscriber>>,
}

/// Installs `subscriber` for the current thread only, overriding the
/// global subscriber there. The returned guard restores the previous
/// state on drop.
pub fn set_thread_subscriber(subscriber: Arc<dyn Subscriber>) -> ThreadSubscriberGuard {
    let previous = LOCAL.with(|slot| slot.borrow_mut().replace(subscriber));
    if previous.is_none() {
        INSTALLED.fetch_add(1, Ordering::Relaxed);
    }
    ThreadSubscriberGuard { previous }
}

impl Drop for ThreadSubscriberGuard {
    fn drop(&mut self) {
        let restored = self.previous.take();
        LOCAL.with(|slot| {
            let mut slot = slot.borrow_mut();
            if restored.is_none() && slot.is_some() {
                INSTALLED.fetch_sub(1, Ordering::Relaxed);
            }
            *slot = restored;
        });
    }
}

/// Sends an event to the flight recorder (if installed) and to the
/// thread-local subscriber if present, else the global one. Called by
/// the [`event!`](crate::event) macro after its [`enabled`] check;
/// harmless (just slower) to call directly.
pub fn dispatch_event(event: &Event<'_>) {
    recorder::record_event(event);
    let handled = LOCAL.with(|slot| {
        if let Some(sub) = slot.borrow().as_ref() {
            sub.on_event(event);
            true
        } else {
            false
        }
    });
    if !handled {
        if let Some(sub) = GLOBAL.read().expect("subscriber lock poisoned").as_ref() {
            sub.on_event(event);
        }
    }
}

/// Sends a closed span to the flight recorder (if installed) and to the
/// thread-local subscriber if present, else the global one.
pub fn dispatch_span_close(span: &SpanClose) {
    recorder::record_span_close(span);
    let handled = LOCAL.with(|slot| {
        if let Some(sub) = slot.borrow().as_ref() {
            sub.on_span_close(span);
            true
        } else {
            false
        }
    });
    if !handled {
        if let Some(sub) = GLOBAL.read().expect("subscriber lock poisoned").as_ref() {
            sub.on_span_close(span);
        }
    }
}

/// The live half of a recording span: identity resolved at open time.
#[derive(Debug, Clone, Copy)]
struct Recording {
    id: u64,
    parent: u64,
    trace_id: u64,
    start_ns: u64,
}

/// An RAII timed span: measures wall time from construction to drop and
/// dispatches a [`SpanClose`]. When no sink is installed at construction
/// the span is inert — no clock read, no id allocation, no dispatch.
///
/// A recording span also joins the causal trace: it is pushed onto the
/// thread's span stack (see [`crate::trace`]) so spans opened inside its
/// scope become its children, and its close record carries `id`,
/// `parent`, and `trace_id` for tree reconstruction.
///
/// Created by the [`span!`](crate::span) macro.
#[derive(Debug)]
#[must_use = "a span measures the scope it is bound to; bind it to a variable"]
pub struct Span {
    target: &'static str,
    name: &'static str,
    recording: Option<Recording>,
}

impl Span {
    /// Opens a span if instrumentation is enabled, else returns an inert
    /// span.
    #[inline]
    pub fn enter(target: &'static str, name: &'static str) -> Span {
        let recording = if enabled() {
            let (id, parent, trace_id) = trace::enter_span();
            Some(Recording {
                id,
                parent,
                trace_id,
                start_ns: trace::now_ns(),
            })
        } else {
            None
        };
        Span {
            target,
            name,
            recording,
        }
    }

    /// Whether this span is actually recording.
    pub fn is_recording(&self) -> bool {
        self.recording.is_some()
    }

    /// The span's process-unique id, if recording.
    pub fn id(&self) -> Option<u64> {
        self.recording.map(|r| r.id)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(rec) = self.recording {
            let end_ns = trace::now_ns();
            trace::exit_span(rec.id);
            dispatch_span_close(&SpanClose {
                target: self.target,
                name: self.name,
                id: rec.id,
                parent: rec.parent,
                trace_id: rec.trace_id,
                thread: trace::lane(),
                start_ns: rec.start_ns,
                end_ns,
                elapsed_ns: end_ns.saturating_sub(rec.start_ns),
            });
        }
    }
}

/// Opens a timed [`Span`] named `$name`; bind it to a local so it closes
/// at scope end. Costs one relaxed atomic load when disabled.
///
/// ```
/// let _span = lion_obs::span!("solve");
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::Span::enter(module_path!(), $name)
    };
}

/// Emits a structured [`Event`] with optional `"key" => value` fields.
/// Fields are only constructed when a subscriber is installed.
///
/// ```
/// use lion_obs::Level;
/// lion_obs::event!(Level::Info, "batch.done", "jobs" => 96u64, "failed" => 0u64);
/// ```
#[macro_export]
macro_rules! event {
    ($level:expr, $name:expr $(, $key:expr => $value:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::dispatch_event(&$crate::Event {
                target: module_path!(),
                name: $name,
                level: $level,
                fields: &[$(($key, $crate::Value::from($value))),*],
            });
        }
    };
}

/// An owned copy of a dispatched event, as stored by
/// [`CollectingSubscriber`].
#[derive(Debug, Clone, PartialEq)]
pub struct OwnedEvent {
    /// Module path of the emitting code.
    pub target: &'static str,
    /// Event name.
    pub name: &'static str,
    /// Severity.
    pub level: Level,
    /// Field key/value pairs.
    pub fields: Vec<(&'static str, Value)>,
}

#[derive(Default)]
struct Collected {
    events: Vec<OwnedEvent>,
    spans: BTreeMap<&'static str, Histogram>,
}

/// A subscriber that stores every event and aggregates span durations
/// into one [`Histogram`] per span name. Useful in tests and as the
/// backing store for the telemetry exporters.
#[derive(Default)]
pub struct CollectingSubscriber {
    inner: Mutex<Collected>,
}

impl CollectingSubscriber {
    /// Creates an empty collector.
    pub fn new() -> Self {
        CollectingSubscriber::default()
    }

    /// Copies out the events collected so far.
    pub fn events(&self) -> Vec<OwnedEvent> {
        self.inner
            .lock()
            .expect("collector poisoned")
            .events
            .clone()
    }

    /// The duration histogram for one span name, if any closed.
    pub fn span_histogram(&self, name: &str) -> Option<Histogram> {
        self.inner
            .lock()
            .expect("collector poisoned")
            .spans
            .get(name)
            .cloned()
    }

    /// All span names seen, with their duration histograms.
    pub fn span_histograms(&self) -> Vec<(&'static str, Histogram)> {
        self.inner
            .lock()
            .expect("collector poisoned")
            .spans
            .iter()
            .map(|(n, h)| (*n, h.clone()))
            .collect()
    }

    /// Discards everything collected so far.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("collector poisoned");
        inner.events.clear();
        inner.spans.clear();
    }
}

impl Subscriber for CollectingSubscriber {
    fn on_event(&self, event: &Event<'_>) {
        self.inner
            .lock()
            .expect("collector poisoned")
            .events
            .push(OwnedEvent {
                target: event.target,
                name: event.name,
                level: event.level,
                fields: event.fields.to_vec(),
            });
    }

    fn on_span_close(&self, span: &SpanClose) {
        self.inner
            .lock()
            .expect("collector poisoned")
            .spans
            .entry(span.name)
            .or_default()
            .record(span.elapsed_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_span_is_inert() {
        // No subscriber installed on this thread and no global installed
        // by this test: the span must not record. (Another test may have
        // a global installed concurrently, so assert only on the
        // thread-local path.)
        let collector = Arc::new(CollectingSubscriber::new());
        {
            let _guard = set_thread_subscriber(collector.clone());
            let span = span!("active");
            assert!(span.is_recording());
        }
        assert!(collector.span_histogram("active").is_some());
    }

    #[test]
    fn thread_subscriber_collects_events_and_spans() {
        let collector = Arc::new(CollectingSubscriber::new());
        let guard = set_thread_subscriber(collector.clone());
        event!(Level::Info, "test.event", "k" => 3u64, "s" => "v");
        {
            let _span = span!("test.span");
        }
        drop(guard);
        let events = collector.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "test.event");
        assert_eq!(events[0].fields[0], ("k", Value::U64(3)));
        let hist = collector.span_histogram("test.span").expect("span closed");
        assert_eq!(hist.count(), 1);
        // After the guard dropped, events no longer reach the collector.
        event!(Level::Info, "test.after");
        assert_eq!(collector.events().len(), 1);
    }

    #[test]
    fn nested_guards_restore_previous_subscriber() {
        let outer = Arc::new(CollectingSubscriber::new());
        let inner = Arc::new(CollectingSubscriber::new());
        let _outer_guard = set_thread_subscriber(outer.clone());
        {
            let _inner_guard = set_thread_subscriber(inner.clone());
            event!(Level::Debug, "inner.only");
        }
        event!(Level::Debug, "outer.only");
        assert_eq!(inner.events().len(), 1);
        assert_eq!(inner.events()[0].name, "inner.only");
        let outer_events = outer.events();
        assert_eq!(outer_events.len(), 1);
        assert_eq!(outer_events[0].name, "outer.only");
    }

    #[test]
    fn values_format_and_convert() {
        assert_eq!(Value::from(3usize), Value::U64(3));
        assert_eq!(Value::from(2.5f64).to_string(), "2.5");
        assert_eq!(Value::from(true).to_string(), "true");
        assert_eq!(Value::from("s").to_string(), "s");
        assert_eq!(Value::from("owned".to_string()).to_string(), "owned");
        assert_eq!(Level::Warn.to_string(), "WARN");
        assert!(Level::Error > Level::Info);
    }
}
