//! Fleet-wide health rollups and SLO budgets.
//!
//! The [`crate::Doctor`] judges **one** stream. A deployment runs
//! thousands (RF-CHORD-style logistics portals: many antennas, sustained
//! read traffic), and an operator cannot read a thousand
//! [`HealthReport`]s — they need the rollup: how many streams are
//! healthy, which rules are firing where, who the worst offenders are,
//! and whether the fleet is still inside its latency/error objectives.
//!
//! Two pieces:
//!
//! - [`FleetDoctor`] — consumes per-stream [`HealthReport`]s
//!   ([`FleetDoctor::ingest`]) and per-solve latency/failure samples
//!   ([`FleetDoctor::observe_solve`], [`FleetDoctor::observe_failure`]),
//!   and produces a deterministic [`FleetReport`]: per-rule firing
//!   counts with worst-offender stream ids, healthy/degraded/critical
//!   stream totals, and p50/p99 rollups of per-stream residual-drift
//!   ratio and solve-latency p99 built on the exact-merge
//!   [`Histogram`].
//! - [`SloTracker`] — a rolling window of solve outcomes scored against
//!   a latency objective and an error budget: the fraction of solves
//!   within the objective, the failure rate broken down by error kind
//!   (the `failures_by_kind` taxonomy), and the **burn rate** — failure
//!   rate divided by budget, so `> 1` means the budget is being spent
//!   faster than it accrues.
//!
//! A process-wide [`TelemetryHub`] carries one `FleetDoctor` for the
//! scrape server ([`crate::http`]) and the engine to share. Like the
//! flight recorder, the hub sits behind a relaxed-atomic gate:
//! [`telemetry_hub`] costs one atomic load when nothing is installed,
//! so the streaming hot path stays instrumented unconditionally.
//!
//! Rollups are order-insensitive by construction — counts are sums,
//! distributions are exact histogram merges, and worst-offender ties
//! break on the smaller stream id — so a fleet ingested in any stream
//! order yields the same report.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use crate::alert::{AlertEngine, AlertExpr, AlertRule, RecordingRule};
use crate::doctor::{HealthReport, RuleStatus};
use crate::hist::Histogram;
use crate::registry::Registry;
use crate::tsdb::{SampleClock, Sampler, Tsdb, TsdbConfig, WallClock};

/// Scale for recording the dimensionless residual-drift ratio into a
/// `u64` histogram: 1.0 → 1000.
const RATIO_SCALE: f64 = 1e3;

/// Rolling-window service-level objective for the fleet's solves.
#[derive(Debug, Clone, PartialEq)]
pub struct SloConfig {
    /// Solves per rolling window (≥ 1; default 1024).
    pub window: usize,
    /// A solve slower than this misses the latency objective (default
    /// 1 ms — generous against BENCH_5's ~38 µs streaming re-solve).
    pub latency_objective_ns: u64,
    /// Fraction of solves allowed to fail or miss the objective before
    /// the budget is exhausted (default 0.01, i.e. 99% objective).
    pub error_budget: f64,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            window: 1024,
            latency_objective_ns: 1_000_000,
            error_budget: 0.01,
        }
    }
}

/// One solve outcome as the SLO window retains it.
#[derive(Debug, Clone, PartialEq, Eq)]
enum SloSample {
    /// A solve that completed in the given wall time.
    Ok { latency_ns: u64 },
    /// A solve that failed, tagged with its `failures_by_kind` key.
    Failed { kind: String },
}

/// Rolling-window latency objective and error-budget burn rate.
///
/// Feed one [`SloTracker::observe_solve`] per completed solve and one
/// [`SloTracker::observe_failure`] per failed solve; read the verdict
/// with [`SloTracker::report`].
#[derive(Debug, Clone)]
pub struct SloTracker {
    config: SloConfig,
    recent: VecDeque<SloSample>,
    total: u64,
}

/// A point-in-time SLO verdict over the rolling window.
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    /// Solves (ok + failed) currently in the window.
    pub window_len: u64,
    /// Solves ever observed.
    pub total: u64,
    /// The latency objective compared against, nanoseconds.
    pub latency_objective_ns: u64,
    /// Fraction of windowed solves that completed within the objective
    /// (failed solves count as misses). 1.0 on an empty window.
    pub attainment: f64,
    /// The configured error budget (allowed miss fraction).
    pub error_budget: f64,
    /// Budget consumption rate: miss fraction / budget. Above 1.0 the
    /// budget is being spent faster than it accrues.
    pub burn_rate: f64,
    /// Windowed failure counts by error kind, sorted by kind.
    pub failures_by_kind: Vec<(String, u64)>,
}

impl SloReport {
    /// Renders the report as one deterministic JSON object.
    pub fn to_json(&self) -> String {
        let failures: Vec<String> = self
            .failures_by_kind
            .iter()
            .map(|(kind, n)| format!("\"{}\":{n}", crate::json::escape(kind)))
            .collect();
        format!(
            "{{\"window_len\":{},\"total\":{},\"latency_objective_ns\":{},\
             \"attainment\":{},\"error_budget\":{},\"burn_rate\":{},\
             \"failures_by_kind\":{{{}}}}}",
            self.window_len,
            self.total,
            self.latency_objective_ns,
            fmt_f64(self.attainment),
            fmt_f64(self.error_budget),
            fmt_f64(self.burn_rate),
            failures.join(","),
        )
    }
}

impl SloTracker {
    /// Creates a tracker (window clamped to ≥ 1, budget to a positive
    /// minimum so the burn rate stays finite).
    pub fn new(mut config: SloConfig) -> SloTracker {
        config.window = config.window.max(1);
        config.error_budget = config.error_budget.max(1e-9);
        SloTracker {
            config,
            recent: VecDeque::new(),
            total: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &SloConfig {
        &self.config
    }

    fn push(&mut self, sample: SloSample) {
        self.total = self.total.saturating_add(1);
        self.recent.push_back(sample);
        if self.recent.len() > self.config.window {
            self.recent.pop_front();
        }
    }

    /// Records one completed solve.
    pub fn observe_solve(&mut self, latency_ns: u64) {
        self.push(SloSample::Ok { latency_ns });
    }

    /// Records one failed solve under its `failures_by_kind` key.
    pub fn observe_failure(&mut self, kind: &str) {
        self.push(SloSample::Failed {
            kind: kind.to_string(),
        });
    }

    /// The current windowed verdict.
    pub fn report(&self) -> SloReport {
        let window_len = self.recent.len() as u64;
        let mut within = 0u64;
        let mut failures: BTreeMap<&str, u64> = BTreeMap::new();
        for sample in &self.recent {
            match sample {
                SloSample::Ok { latency_ns } => {
                    if *latency_ns <= self.config.latency_objective_ns {
                        within += 1;
                    }
                }
                SloSample::Failed { kind } => *failures.entry(kind).or_insert(0) += 1,
            }
        }
        let attainment = if window_len == 0 {
            1.0
        } else {
            within as f64 / window_len as f64
        };
        SloReport {
            window_len,
            total: self.total,
            latency_objective_ns: self.config.latency_objective_ns,
            attainment,
            error_budget: self.config.error_budget,
            burn_rate: (1.0 - attainment) / self.config.error_budget,
            failures_by_kind: failures
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        }
    }
}

/// Rollup state for one watchdog rule across the fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleRollup {
    /// Rule name (the doctor's fixed set).
    pub rule: String,
    /// Streams whose latest ingested report had this rule firing.
    pub firing: u64,
    /// Streams whose latest report left this rule with insufficient
    /// data.
    pub insufficient: u64,
    /// Stream id with the largest rule value (ties break toward the
    /// smaller id), when any stream reported a judged value.
    pub worst_stream: Option<String>,
    /// That stream's rule value.
    pub worst_value: f64,
}

/// The fleet-wide health rollup: stream totals, per-rule aggregation,
/// latency/drift distributions, and the SLO verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Streams ingested.
    pub streams: u64,
    /// Streams with no rule firing.
    pub healthy: u64,
    /// Streams with exactly one rule firing.
    pub degraded: u64,
    /// Streams with two or more rules firing.
    pub critical: u64,
    /// Per-rule rollups in the doctor's fixed rule order.
    pub rules: Vec<RuleRollup>,
    /// p50/p99 of per-stream residual-drift ratios (×1000).
    pub residual_ratio_milli: (u64, u64),
    /// p50/p99 of per-stream windowed solve-latency p99s, nanoseconds.
    pub solve_p99_ns: (u64, u64),
    /// The SLO verdict at report time.
    pub slo: SloReport,
}

/// Formats an `f64` for the in-repo JSON parser: finite as-is,
/// non-finite as `null`.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

impl FleetReport {
    /// The rollup for one rule by name.
    pub fn rule(&self, name: &str) -> Option<&RuleRollup> {
        self.rules.iter().find(|r| r.rule == name)
    }

    /// Renders the report as one deterministic JSON object.
    pub fn to_json(&self) -> String {
        let rules: Vec<String> = self
            .rules
            .iter()
            .map(|r| {
                format!(
                    "{{\"rule\":\"{}\",\"firing\":{},\"insufficient\":{},\
                     \"worst_stream\":{},\"worst_value\":{}}}",
                    crate::json::escape(&r.rule),
                    r.firing,
                    r.insufficient,
                    match &r.worst_stream {
                        Some(id) => format!("\"{}\"", crate::json::escape(id)),
                        None => "null".to_string(),
                    },
                    fmt_f64(r.worst_value),
                )
            })
            .collect();
        format!(
            "{{\"streams\":{},\"healthy\":{},\"degraded\":{},\"critical\":{},\
             \"rules\":[{}],\
             \"residual_ratio_milli\":{{\"p50\":{},\"p99\":{}}},\
             \"solve_p99_ns\":{{\"p50\":{},\"p99\":{}}},\
             \"slo\":{}}}",
            self.streams,
            self.healthy,
            self.degraded,
            self.critical,
            rules.join(","),
            self.residual_ratio_milli.0,
            self.residual_ratio_milli.1,
            self.solve_p99_ns.0,
            self.solve_p99_ns.1,
            self.slo.to_json(),
        )
    }

    /// Publishes the rollup as registry gauges (`fleet.*`), so the
    /// Prometheus exposition carries the fleet verdict alongside the raw
    /// pipeline metrics.
    pub fn record_into(&self, registry: &Registry) {
        registry.gauge_set("fleet.streams", self.streams as f64);
        registry.gauge_set("fleet.healthy", self.healthy as f64);
        registry.gauge_set("fleet.degraded", self.degraded as f64);
        registry.gauge_set("fleet.critical", self.critical as f64);
        for rule in &self.rules {
            registry.gauge_set(
                &format!("fleet.rule.{}.firing", rule.rule),
                rule.firing as f64,
            );
        }
        registry.gauge_set(
            "fleet.residual_ratio_milli.p99",
            self.residual_ratio_milli.1 as f64,
        );
        registry.gauge_set("fleet.solve_p99_ns.p99", self.solve_p99_ns.1 as f64);
        registry.gauge_set("fleet.slo.attainment", self.slo.attainment);
        registry.gauge_set("fleet.slo.burn_rate", self.slo.burn_rate);
        registry.gauge_set("fleet.slo.window_len", self.slo.window_len as f64);
    }
}

impl fmt::Display for FleetReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fleet health: {} streams ({} healthy, {} degraded, {} critical)",
            self.streams, self.healthy, self.degraded, self.critical,
        )?;
        for r in &self.rules {
            write!(
                f,
                "  {:18} firing={:<4} insufficient={:<4}",
                r.rule, r.firing, r.insufficient,
            )?;
            match &r.worst_stream {
                Some(id) => writeln!(f, " worst={id} ({:.6})", r.worst_value)?,
                None => writeln!(f, " worst=-")?,
            }
        }
        writeln!(
            f,
            "  residual ratio p50/p99 = {}/{} milli, solve p99 p50/p99 = {}/{} ns",
            self.residual_ratio_milli.0,
            self.residual_ratio_milli.1,
            self.solve_p99_ns.0,
            self.solve_p99_ns.1,
        )?;
        writeln!(
            f,
            "  SLO: attainment {:.4} over {} solves, budget {:.4}, burn rate {:.2}",
            self.slo.attainment, self.slo.window_len, self.slo.error_budget, self.slo.burn_rate,
        )
    }
}

/// The doctor's fixed rule order, mirrored here so the rollup reports
/// every rule even before any stream mentioned it.
pub(crate) const RULE_ORDER: [&str; 6] = [
    "residual_drift",
    "convergence_stall",
    "ingress_shed",
    "solve_latency",
    "solver_disagreement",
    "resolve_fallback",
];

/// Running per-rule accumulator inside [`FleetDoctor`].
#[derive(Debug, Clone, Default)]
struct RuleAccum {
    firing: u64,
    insufficient: u64,
    /// Worst judged `(value, stream id)` so far.
    worst: Option<(f64, String)>,
}

/// Aggregates per-stream [`HealthReport`]s and per-solve SLO samples
/// into a fleet-wide [`FleetReport`]. See the module docs.
#[derive(Debug, Clone)]
pub struct FleetDoctor {
    streams: u64,
    healthy: u64,
    degraded: u64,
    critical: u64,
    rules: BTreeMap<String, RuleAccum>,
    residual_ratio: Histogram,
    solve_p99: Histogram,
    slo: SloTracker,
}

impl FleetDoctor {
    /// Creates an empty rollup with the given SLO objective.
    pub fn new(slo: SloConfig) -> FleetDoctor {
        FleetDoctor {
            streams: 0,
            healthy: 0,
            degraded: 0,
            critical: 0,
            rules: BTreeMap::new(),
            residual_ratio: Histogram::new(),
            solve_p99: Histogram::new(),
            slo: SloTracker::new(slo),
        }
    }

    /// Streams ingested so far.
    pub fn streams(&self) -> u64 {
        self.streams
    }

    /// Consumes one stream's final health report. `stream_id` names the
    /// stream in worst-offender listings; ingesting the same id twice
    /// counts as two streams (rollups are additive, not keyed).
    pub fn ingest(&mut self, stream_id: &str, health: &HealthReport) {
        self.streams = self.streams.saturating_add(1);
        let firing = health
            .rules
            .iter()
            .filter(|r| r.status == RuleStatus::Firing)
            .count();
        match firing {
            0 => self.healthy += 1,
            1 => self.degraded += 1,
            _ => self.critical += 1,
        }
        for rule in &health.rules {
            let entry = self.rules.entry(rule.rule.to_string()).or_default();
            match rule.status {
                RuleStatus::Firing => entry.firing += 1,
                RuleStatus::Insufficient => entry.insufficient += 1,
                RuleStatus::Healthy => {}
            }
            if rule.status != RuleStatus::Insufficient {
                let replace = match &entry.worst {
                    None => true,
                    // Ties break toward the smaller stream id so the
                    // rollup is independent of ingestion order.
                    Some((value, id)) => {
                        rule.value > *value || (rule.value == *value && stream_id < id.as_str())
                    }
                };
                if replace {
                    entry.worst = Some((rule.value, stream_id.to_string()));
                }
                match rule.rule {
                    "residual_drift" => {
                        let milli = (rule.value * RATIO_SCALE).clamp(0.0, u64::MAX as f64);
                        self.residual_ratio.record(milli as u64);
                    }
                    "solve_latency" => {
                        let ns = rule.value.clamp(0.0, u64::MAX as f64);
                        self.solve_p99.record(ns as u64);
                    }
                    _ => {}
                }
            }
        }
    }

    /// Records one completed solve into the SLO window.
    pub fn observe_solve(&mut self, latency_ns: u64) {
        self.slo.observe_solve(latency_ns);
    }

    /// Records one failed solve into the SLO window under its
    /// `failures_by_kind` key.
    pub fn observe_failure(&mut self, kind: &str) {
        self.slo.observe_failure(kind);
    }

    /// The current fleet-wide rollup.
    pub fn report(&self) -> FleetReport {
        let rules = RULE_ORDER
            .iter()
            .map(|name| {
                let accum = self.rules.get(*name).cloned().unwrap_or_default();
                let (worst_value, worst_stream) = match accum.worst {
                    Some((value, id)) => (value, Some(id)),
                    None => (0.0, None),
                };
                RuleRollup {
                    rule: (*name).to_string(),
                    firing: accum.firing,
                    insufficient: accum.insufficient,
                    worst_stream,
                    worst_value,
                }
            })
            .collect();
        FleetReport {
            streams: self.streams,
            healthy: self.healthy,
            degraded: self.degraded,
            critical: self.critical,
            rules,
            residual_ratio_milli: (self.residual_ratio.p50(), self.residual_ratio.p99()),
            solve_p99_ns: (self.solve_p99.p50(), self.solve_p99.p99()),
            slo: self.slo.report(),
        }
    }
}

/// Configuration for the hub's metrics-history plane: the store sizing,
/// the sampling cadence and clock, and the rule sets the alert engine
/// evaluates on every sample.
///
/// The default enables a [`WallClock`]-driven 1 s cadence with the
/// Doctor-mirroring alert rules ([`AlertRule::doctor_rules`]) and a
/// solve-error-rate recording rule; tests inject a
/// [`ManualClock`](crate::ManualClock) for deterministic timestamps.
#[derive(Debug)]
pub struct HistoryConfig {
    /// Time-series store sizing.
    pub tsdb: TsdbConfig,
    /// Sampling period in injected-clock nanoseconds.
    pub sample_period_ns: u64,
    /// The sampler's time source.
    pub clock: Arc<dyn SampleClock>,
    /// Recording rules materialized as `rule:<name>` gauge series.
    pub recording_rules: Vec<RecordingRule>,
    /// Alert rules evaluated on every sample.
    pub alert_rules: Vec<AlertRule>,
}

impl Default for HistoryConfig {
    fn default() -> Self {
        HistoryConfig {
            tsdb: TsdbConfig::default(),
            sample_period_ns: 1_000_000_000,
            clock: Arc::new(WallClock),
            recording_rules: vec![RecordingRule::new(
                "solve_error_rate",
                AlertExpr::CounterRatePerSec {
                    series: "lion.stream.solve_errors".to_string(),
                    window_ns: 60_000_000_000,
                },
            )],
            alert_rules: AlertRule::doctor_rules(),
        }
    }
}

/// The hub's optional history plane: store, sampler, and alert engine.
#[derive(Debug)]
struct HistoryPlane {
    tsdb: Arc<Tsdb>,
    sampler: Mutex<Sampler>,
    alerts: Mutex<AlertEngine>,
}

/// Shared live-telemetry state: one fleet rollup the engine writes and
/// the scrape server ([`crate::http::TelemetryServer`]) reads, plus an
/// optional history plane ([`TelemetryHub::enable_history`]) backing
/// `/query` and `/alerts`.
#[derive(Debug)]
pub struct TelemetryHub {
    fleet: Mutex<FleetDoctor>,
    history: RwLock<Option<HistoryPlane>>,
}

impl TelemetryHub {
    /// Creates a hub with an empty fleet rollup under `slo`.
    pub fn new(slo: SloConfig) -> Arc<TelemetryHub> {
        Arc::new(TelemetryHub {
            fleet: Mutex::new(FleetDoctor::new(slo)),
            history: RwLock::new(None),
        })
    }

    /// Runs `f` with the hub's fleet doctor locked.
    pub fn with_fleet<R>(&self, f: impl FnOnce(&mut FleetDoctor) -> R) -> R {
        f(&mut self.fleet.lock().expect("fleet doctor poisoned"))
    }

    /// The current fleet rollup.
    pub fn fleet_report(&self) -> FleetReport {
        self.with_fleet(|fleet| fleet.report())
    }

    /// Attaches a history plane (store + sampler + alert engine),
    /// replacing any previous one, and returns the store handle. Call
    /// [`TelemetryHub::sample_tick`] — or spawn a
    /// [`TelemetryHub::start_background_sampler`] — to feed it.
    pub fn enable_history(&self, config: HistoryConfig) -> Arc<Tsdb> {
        let tsdb = Arc::new(Tsdb::new(config.tsdb));
        let sampler = Sampler::new(tsdb.clone(), config.sample_period_ns, config.clock);
        let alerts = AlertEngine::new(config.recording_rules, config.alert_rules);
        let plane = HistoryPlane {
            tsdb: tsdb.clone(),
            sampler: Mutex::new(sampler),
            alerts: Mutex::new(alerts),
        };
        *self.history.write().expect("history lock poisoned") = Some(plane);
        tsdb
    }

    /// The history store, when a plane is enabled.
    pub fn tsdb(&self) -> Option<Arc<Tsdb>> {
        self.history
            .read()
            .expect("history lock poisoned")
            .as_ref()
            .map(|plane| plane.tsdb.clone())
    }

    /// Whether a history plane is enabled.
    pub fn history_enabled(&self) -> bool {
        self.history
            .read()
            .expect("history lock poisoned")
            .is_some()
    }

    /// One sampling step: refreshes the fleet gauges into the global
    /// registry, snapshots the registry into the store if the sampler's
    /// clock says a sample is due, and — on a sample — runs the alert
    /// rules at the sample timestamp. Returns the sample timestamp when
    /// a sample was taken; no-ops (cheaply) without a history plane.
    ///
    /// Deterministic by construction: the engine calls this at fixed
    /// lifecycle points and the timestamps come from the injected clock,
    /// so alert transitions are bit-identical across worker counts.
    pub fn sample_tick(&self) -> Option<u64> {
        let history = self.history.read().expect("history lock poisoned");
        let plane = history.as_ref()?;
        let report = self.fleet_report();
        report.record_into(crate::global());
        let t_ns = plane
            .sampler
            .lock()
            .expect("sampler poisoned")
            .tick(crate::global())?;
        plane
            .alerts
            .lock()
            .expect("alert engine poisoned")
            .evaluate(&plane.tsdb, t_ns, Some(&report));
        Some(t_ns)
    }

    /// Runs `f` against the alert engine, when a history plane is
    /// enabled.
    pub fn with_alerts<R>(&self, f: impl FnOnce(&AlertEngine) -> R) -> Option<R> {
        let history = self.history.read().expect("history lock poisoned");
        let plane = history.as_ref()?;
        let alerts = plane.alerts.lock().expect("alert engine poisoned");
        Some(f(&alerts))
    }

    /// The alert engine's `/alerts` JSON, when a history plane is
    /// enabled.
    pub fn alerts_json(&self) -> Option<String> {
        self.with_alerts(|alerts| alerts.to_json())
    }

    /// Spawns a thread that calls [`TelemetryHub::sample_tick`] every
    /// `poll` until the returned handle is stopped or dropped. The
    /// sampler's own clock still decides when samples are due; `poll`
    /// only bounds the check latency, so a quarter of the sample period
    /// is a good value.
    pub fn start_background_sampler(
        self: &Arc<Self>,
        poll: std::time::Duration,
    ) -> BackgroundSampler {
        let hub = self.clone();
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let handle = std::thread::Builder::new()
            .name("lion-sampler".to_string())
            .spawn(move || {
                while !stop_flag.load(Ordering::Relaxed) {
                    hub.sample_tick();
                    std::thread::sleep(poll);
                }
            })
            .expect("spawn sampler thread");
        BackgroundSampler {
            stop,
            handle: Some(handle),
        }
    }
}

/// Handle to the hub's background sampling thread; stops (and joins) it
/// on [`BackgroundSampler::stop`] or drop.
#[derive(Debug)]
pub struct BackgroundSampler {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl BackgroundSampler {
    /// Signals the thread and waits for it to exit.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for BackgroundSampler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Fast-path gate: `true` only while a hub is installed — one relaxed
/// load on the streaming path when telemetry is off.
static HUB_ACTIVE: AtomicBool = AtomicBool::new(false);

static GLOBAL_HUB: RwLock<Option<Arc<TelemetryHub>>> = RwLock::new(None);

/// Builds a [`TelemetryHub`] with `slo` and installs it process-wide,
/// replacing any previous hub. The engine starts feeding it immediately;
/// pair with a [`crate::http::TelemetryServer`] to expose it.
pub fn install_telemetry_hub(slo: SloConfig) -> Arc<TelemetryHub> {
    let hub = TelemetryHub::new(slo);
    let mut slot = GLOBAL_HUB.write().expect("hub lock poisoned");
    *slot = Some(hub.clone());
    HUB_ACTIVE.store(true, Ordering::Relaxed);
    hub
}

/// Uninstalls the process-wide hub, returning it (for a final report)
/// if one was installed.
pub fn uninstall_telemetry_hub() -> Option<Arc<TelemetryHub>> {
    let mut slot = GLOBAL_HUB.write().expect("hub lock poisoned");
    HUB_ACTIVE.store(false, Ordering::Relaxed);
    slot.take()
}

/// The installed hub, if any. One relaxed atomic load when none is —
/// the streaming layers call this unconditionally.
pub fn telemetry_hub() -> Option<Arc<TelemetryHub>> {
    if !HUB_ACTIVE.load(Ordering::Relaxed) {
        return None;
    }
    GLOBAL_HUB.read().expect("hub lock poisoned").clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doctor::{Doctor, DoctorConfig, SolveObservation};

    fn health(residual: f64, solve_ns: u64, shed: u64) -> HealthReport {
        let mut doctor = Doctor::new(DoctorConfig {
            window: 4,
            ..DoctorConfig::default()
        });
        for i in 0..8 {
            doctor.observe(SolveObservation {
                time: i as f64,
                // First window clean, second at `residual`: a drifted
                // stream fires residual_drift against its own baseline.
                mean_residual: if i < 4 { 1e-3 } else { residual },
                converged: true,
                solve_ns,
                reads_in: 25,
                shed,
                solver_disagreement_m: Some(1e-3),
                resolve_fallback: Some(false),
            });
        }
        doctor.report()
    }

    #[test]
    fn rollup_classifies_streams_and_finds_worst_offenders() {
        let mut fleet = FleetDoctor::new(SloConfig::default());
        fleet.ingest("stream-0", &health(1e-3, 1_000, 0)); // healthy
        fleet.ingest("stream-1", &health(5e-2, 1_000, 0)); // drift fires
        fleet.ingest("stream-2", &health(9e-2, 1_000, 20)); // drift + shed
        let report = fleet.report();
        assert_eq!(report.streams, 3);
        assert_eq!(
            (report.healthy, report.degraded, report.critical),
            (1, 1, 1)
        );
        let drift = report.rule("residual_drift").expect("rule present");
        assert_eq!(drift.firing, 2);
        assert_eq!(drift.worst_stream.as_deref(), Some("stream-2"));
        assert!(drift.worst_value > report.rule("ingress_shed").unwrap().worst_value);
        // Every doctor rule appears, in the doctor's order.
        let names: Vec<&str> = report.rules.iter().map(|r| r.rule.as_str()).collect();
        assert_eq!(names, RULE_ORDER);
    }

    #[test]
    fn rollup_is_independent_of_ingest_order() {
        let reports = [
            ("a", health(1e-3, 1_000, 0)),
            ("b", health(5e-2, 2_000, 5)),
            ("c", health(9e-2, 500, 0)),
        ];
        let mut forward = FleetDoctor::new(SloConfig::default());
        for (id, h) in &reports {
            forward.ingest(id, h);
        }
        let mut backward = FleetDoctor::new(SloConfig::default());
        for (id, h) in reports.iter().rev() {
            backward.ingest(id, h);
        }
        assert_eq!(forward.report(), backward.report());
        assert_eq!(forward.report().to_json(), backward.report().to_json());
    }

    #[test]
    fn worst_offender_ties_break_toward_smaller_id() {
        let h = health(5e-2, 1_000, 0);
        let mut a = FleetDoctor::new(SloConfig::default());
        a.ingest("z", &h);
        a.ingest("a", &h);
        let mut b = FleetDoctor::new(SloConfig::default());
        b.ingest("a", &h);
        b.ingest("z", &h);
        let worst = |f: &FleetDoctor| {
            f.report()
                .rule("residual_drift")
                .unwrap()
                .worst_stream
                .clone()
        };
        assert_eq!(worst(&a), Some("a".to_string()));
        assert_eq!(worst(&a), worst(&b));
    }

    #[test]
    fn slo_burn_rate_tracks_failures_and_slow_solves() {
        let mut slo = SloTracker::new(SloConfig {
            window: 100,
            latency_objective_ns: 10_000,
            error_budget: 0.05,
        });
        for _ in 0..90 {
            slo.observe_solve(5_000);
        }
        for _ in 0..5 {
            slo.observe_solve(50_000); // misses the objective
        }
        for _ in 0..5 {
            slo.observe_failure("degenerate_window");
        }
        let report = slo.report();
        assert_eq!(report.window_len, 100);
        assert!((report.attainment - 0.90).abs() < 1e-12);
        // 10% misses against a 5% budget: burning 2× too fast.
        assert!((report.burn_rate - 2.0).abs() < 1e-9);
        assert_eq!(
            report.failures_by_kind,
            vec![("degenerate_window".to_string(), 5)]
        );
        // And the window really rolls: flood with clean solves.
        for _ in 0..100 {
            slo.observe_solve(1_000);
        }
        let clean = slo.report();
        assert_eq!(clean.attainment, 1.0);
        assert_eq!(clean.burn_rate, 0.0);
        assert!(clean.failures_by_kind.is_empty());
    }

    #[test]
    fn fleet_report_json_parses_and_gauges_publish() {
        let mut fleet = FleetDoctor::new(SloConfig::default());
        fleet.ingest("s0", &health(1e-3, 1_000, 0));
        fleet.observe_solve(500);
        fleet.observe_failure("no_pairs");
        let report = fleet.report();
        let doc = crate::json::parse(&report.to_json()).expect("valid JSON");
        assert_eq!(doc.get("streams").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(
            doc.get("slo")
                .and_then(|s| s.get("failures_by_kind"))
                .and_then(|f| f.get("no_pairs"))
                .and_then(|v| v.as_u64()),
            Some(1)
        );
        let registry = Registry::new();
        report.record_into(&registry);
        let snap = registry.snapshot();
        assert_eq!(snap.gauge("fleet.streams"), Some(1.0));
        assert_eq!(snap.gauge("fleet.healthy"), Some(1.0));
        assert!(snap.gauge("fleet.slo.burn_rate").is_some());
        // Display renders without panicking and mentions the totals.
        assert!(report.to_string().contains("1 streams"));
    }

    #[test]
    fn hub_gate_is_off_by_default_and_replaceable() {
        // Serialize against other tests touching the global hub.
        let _hub = install_telemetry_hub(SloConfig::default());
        assert!(telemetry_hub().is_some());
        let taken = uninstall_telemetry_hub().expect("installed");
        taken.with_fleet(|fleet| assert_eq!(fleet.streams(), 0));
        assert!(telemetry_hub().is_none());
    }

    #[test]
    fn slo_window_wraps_at_exactly_the_configured_size() {
        let mut slo = SloTracker::new(SloConfig::default());
        // Fill the window to exactly 1024 with misses, then verify the
        // 1025th observation evicts exactly one (the oldest) sample.
        for _ in 0..1024 {
            slo.observe_failure("no_pairs");
        }
        let full = slo.report();
        assert_eq!(full.window_len, 1024);
        assert_eq!(full.total, 1024);
        assert_eq!(full.attainment, 0.0);
        slo.observe_solve(1);
        let wrapped = slo.report();
        assert_eq!(wrapped.window_len, 1024);
        assert_eq!(wrapped.total, 1025);
        // 1023 failures + 1 hit remain.
        assert!((wrapped.attainment - 1.0 / 1024.0).abs() < 1e-12);
        assert_eq!(
            wrapped.failures_by_kind,
            vec![("no_pairs".to_string(), 1023)]
        );
    }

    #[test]
    fn all_failure_window_pins_burn_rate_to_budget_inverse() {
        let mut slo = SloTracker::new(SloConfig {
            window: 16,
            latency_objective_ns: 1_000,
            error_budget: 0.01,
        });
        for i in 0..16 {
            if i % 2 == 0 {
                slo.observe_failure("degenerate_window");
            } else {
                // A completed solve that misses the objective is a miss too.
                slo.observe_solve(1_000_000);
            }
        }
        let report = slo.report();
        assert_eq!(report.attainment, 0.0);
        // 100% misses / 1% budget = 100× burn, exactly.
        assert!((report.burn_rate - 100.0).abs() < 1e-9);
    }

    #[test]
    fn burn_rate_decays_monotonically_as_misses_age_out() {
        let mut slo = SloTracker::new(SloConfig {
            window: 32,
            latency_objective_ns: 1_000,
            error_budget: 0.05,
        });
        for _ in 0..32 {
            slo.observe_failure("no_pairs");
        }
        let mut last = slo.report().burn_rate;
        assert!(last > 1.0);
        // Each clean solve displaces one miss: the burn rate must fall
        // (or stay equal) every step, reaching exactly zero at the end.
        for _ in 0..32 {
            slo.observe_solve(1);
            let burn = slo.report().burn_rate;
            assert!(
                burn <= last + 1e-12,
                "burn rate rose while misses aged out: {burn} > {last}"
            );
            last = burn;
        }
        assert_eq!(last, 0.0);
    }

    #[test]
    fn hub_history_plane_samples_and_alerts_deterministically() {
        use crate::tsdb::ManualClock;
        let hub = TelemetryHub::new(SloConfig::default());
        assert!(!hub.history_enabled());
        assert!(hub.sample_tick().is_none());

        let clock = ManualClock::new(0);
        let tsdb = hub.enable_history(HistoryConfig {
            sample_period_ns: 1_000_000_000,
            clock: clock.clone(),
            alert_rules: vec![AlertRule::above(
                "shed",
                AlertExpr::GaugeLast {
                    series: "fleet.rule.ingress_shed.firing".to_string(),
                },
                0.0,
            )
            .annotate("doctor_rule", "ingress_shed")],
            ..HistoryConfig::default()
        });
        assert!(hub.history_enabled());

        // First tick samples at t=0; the fleet gauges land in the store.
        assert_eq!(hub.sample_tick(), Some(0));
        assert_eq!(tsdb.gauge_last("fleet.rule.ingress_shed.firing"), Some(0.0));
        // Not due again until the clock advances a full period.
        assert_eq!(hub.sample_tick(), None);

        // A shedding stream flips the gauge; the alert fires on the
        // next due sample, at exactly the manual-clock timestamp.
        hub.with_fleet(|fleet| fleet.ingest("s9", &health(1e-3, 1_000, 20)));
        clock.set(1_000_000_000);
        assert_eq!(hub.sample_tick(), Some(1_000_000_000));
        let firing = hub.with_alerts(|a| a.firing().join(",")).unwrap();
        assert_eq!(firing, "shed");
        let json = hub.alerts_json().unwrap();
        assert!(json.contains("\"state\":\"firing\""), "{json}");
        assert!(json.contains("\"worst_stream\":\"s9\""), "{json}");
    }
}
