//! Deterministic alerting over stored samples.
//!
//! An [`AlertEngine`] evaluates two rule kinds against a [`Tsdb`] —
//! never against live metrics, so every verdict is reproducible from
//! stored history alone:
//!
//! - **recording rules** materialize derived values (counter rates,
//!   windowed quantiles rebuilt from histogram deltas) as new gauge
//!   series named `rule:<name>`, queryable like any stored series;
//! - **alert rules** compare an expression against a threshold with a
//!   `for`-duration and a hysteresis band, driving the classic
//!   inactive → pending → firing state machine. A firing alert resolves
//!   only once the value crosses the *clear* threshold, so values
//!   oscillating inside the band cannot flap the alert.
//!
//! Evaluation happens at sample timestamps supplied by the caller (the
//! hub's sampler), so under a [`ManualClock`](crate::ManualClock) the
//! full transition history is bit-identical run to run — the property
//! the worker-count parity gate asserts. When an alert fires, its
//! annotations are enriched from the current [`FleetReport`] (worst
//! stream per Doctor rule) and from histogram exemplars in the offending
//! window (trace ids linking to [`FlightRecorder`](crate::FlightRecorder)
//! span trees).

use std::collections::VecDeque;

use crate::fleet::FleetReport;
use crate::tsdb::Tsdb;

/// Resolved alerts retained for `/alerts`.
const RESOLVED_RETAINED: usize = 32;
/// Transition log entries retained (newest kept).
const TRANSITIONS_RETAINED: usize = 256;

/// A value derived from stored samples, evaluated at a point in time.
#[derive(Debug, Clone, PartialEq)]
pub enum AlertExpr {
    /// Exact per-second rate of a counter series over the trailing
    /// window: `(last − first) / span` of the cumulative values.
    CounterRatePerSec {
        /// Counter series name.
        series: String,
        /// Trailing window width.
        window_ns: u64,
    },
    /// The `q`-quantile of a histogram series over the trailing window,
    /// rebuilt from stored bucket deltas.
    WindowQuantile {
        /// Histogram series name.
        series: String,
        /// Quantile in `[0, 1]`.
        q: f64,
        /// Trailing window width.
        window_ns: u64,
    },
    /// The most recent stored value of a gauge series.
    GaugeLast {
        /// Gauge series name.
        series: String,
    },
    /// Mean of a gauge series over the trailing window.
    GaugeAvg {
        /// Gauge series name.
        series: String,
        /// Trailing window width.
        window_ns: u64,
    },
}

impl AlertExpr {
    /// Evaluates against stored samples at `now_ns`. `None` means "no
    /// data" (missing series or empty window), which deliberately never
    /// changes alert state.
    pub fn evaluate(&self, tsdb: &Tsdb, now_ns: u64) -> Option<f64> {
        match self {
            AlertExpr::CounterRatePerSec { series, window_ns } => {
                tsdb.rate_per_sec(series, *window_ns, now_ns)
            }
            AlertExpr::WindowQuantile {
                series,
                q,
                window_ns,
            } => tsdb.window_quantile(series, *q, *window_ns, now_ns),
            AlertExpr::GaugeLast { series } => tsdb.gauge_last(series),
            AlertExpr::GaugeAvg { series, window_ns } => tsdb.gauge_avg(series, *window_ns, now_ns),
        }
    }

    /// The histogram series this expression windows over, if any —
    /// the source for exemplar annotations.
    fn histogram_series(&self) -> Option<(&str, u64)> {
        match self {
            AlertExpr::WindowQuantile {
                series, window_ns, ..
            } => Some((series, *window_ns)),
            _ => None,
        }
    }

    /// A compact human-readable form for JSON and summaries.
    pub fn describe(&self) -> String {
        match self {
            AlertExpr::CounterRatePerSec { series, window_ns } => {
                format!("rate({series}[{}s])", window_ns / 1_000_000_000)
            }
            AlertExpr::WindowQuantile {
                series,
                q,
                window_ns,
            } => format!("quantile({q}, {series}[{}s])", window_ns / 1_000_000_000),
            AlertExpr::GaugeLast { series } => format!("last({series})"),
            AlertExpr::GaugeAvg { series, window_ns } => {
                format!("avg({series}[{}s])", window_ns / 1_000_000_000)
            }
        }
    }
}

/// Materializes an [`AlertExpr`] as the gauge series `rule:<name>` on
/// every evaluation where the expression yields a value.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordingRule {
    /// Output series suffix: values land in `rule:<name>`.
    pub name: String,
    /// The derived value.
    pub expr: AlertExpr,
}

impl RecordingRule {
    /// Creates a recording rule.
    pub fn new(name: impl Into<String>, expr: AlertExpr) -> RecordingRule {
        RecordingRule {
            name: name.into(),
            expr,
        }
    }

    /// The output series name.
    pub fn output_series(&self) -> String {
        format!("rule:{}", self.name)
    }
}

/// Which side of the threshold counts as breaching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// Breach when `value > threshold`; clear when
    /// `value <= clear_threshold`.
    Above,
    /// Breach when `value < threshold`; clear when
    /// `value >= clear_threshold`.
    Below,
}

/// A threshold alert with `for`-duration and hysteresis.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertRule {
    /// Alert name (unique within an engine).
    pub name: String,
    /// The evaluated expression.
    pub expr: AlertExpr,
    /// Breach direction.
    pub cmp: Cmp,
    /// Breach threshold.
    pub threshold: f64,
    /// Hysteresis: a firing alert resolves only once the value crosses
    /// this (for [`Cmp::Above`], `value <= clear_threshold`).
    pub clear_threshold: f64,
    /// The breach must persist this long before the alert fires.
    pub for_ns: u64,
    /// Static annotations; enriched with dynamic context at fire time.
    pub annotations: Vec<(String, String)>,
}

impl AlertRule {
    /// An alert that fires when `expr > threshold`.
    pub fn above(name: impl Into<String>, expr: AlertExpr, threshold: f64) -> AlertRule {
        AlertRule {
            name: name.into(),
            expr,
            cmp: Cmp::Above,
            threshold,
            clear_threshold: threshold,
            for_ns: 0,
            annotations: Vec::new(),
        }
    }

    /// An alert that fires when `expr < threshold`.
    pub fn below(name: impl Into<String>, expr: AlertExpr, threshold: f64) -> AlertRule {
        AlertRule {
            name: name.into(),
            expr,
            cmp: Cmp::Below,
            threshold,
            clear_threshold: threshold,
            for_ns: 0,
            annotations: Vec::new(),
        }
    }

    /// Sets the hysteresis clear threshold.
    pub fn clear_at(mut self, clear_threshold: f64) -> AlertRule {
        self.clear_threshold = clear_threshold;
        self
    }

    /// Requires the breach to persist `for_ns` before firing.
    pub fn for_duration(mut self, for_ns: u64) -> AlertRule {
        self.for_ns = for_ns;
        self
    }

    /// Adds a static annotation.
    pub fn annotate(mut self, key: impl Into<String>, value: impl Into<String>) -> AlertRule {
        self.annotations.push((key.into(), value.into()));
        self
    }

    fn breached(&self, value: f64) -> bool {
        match self.cmp {
            Cmp::Above => value > self.threshold,
            Cmp::Below => value < self.threshold,
        }
    }

    fn cleared(&self, value: f64) -> bool {
        match self.cmp {
            Cmp::Above => value <= self.clear_threshold,
            Cmp::Below => value >= self.clear_threshold,
        }
    }

    /// The default rule set mirroring the calibration Doctor: one alert
    /// per Doctor watchdog over the `fleet.rule.<name>.firing` gauges
    /// the hub refreshes before each sample, plus an SLO burn-rate
    /// alert and a windowed p99 solve-latency alert rebuilt from the
    /// `lion.stream.solve_ns` histogram deltas (the one carrying trace
    /// exemplars). The README's "Metrics history & alerting" table
    /// documents each pairing.
    pub fn doctor_rules() -> Vec<AlertRule> {
        let mut rules: Vec<AlertRule> = crate::fleet::RULE_ORDER
            .iter()
            .map(|rule| {
                AlertRule::above(
                    format!("doctor_{rule}"),
                    AlertExpr::GaugeLast {
                        series: format!("fleet.rule.{rule}.firing"),
                    },
                    0.0,
                )
                .annotate("doctor_rule", *rule)
            })
            .collect();
        rules.push(
            AlertRule::above(
                "slo_burn_rate",
                AlertExpr::GaugeLast {
                    series: "fleet.slo.burn_rate".to_string(),
                },
                1.0,
            )
            .clear_at(0.5)
            .annotate("doctor_rule", "solve_latency"),
        );
        rules.push(
            AlertRule::above(
                "solve_latency_p99",
                AlertExpr::WindowQuantile {
                    series: "lion.stream.solve_ns".to_string(),
                    q: 0.99,
                    window_ns: 60_000_000_000,
                },
                1_000_000.0,
            )
            .clear_at(750_000.0)
            .annotate("doctor_rule", "solve_latency"),
        );
        rules
    }
}

/// Alert lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertState {
    /// Not breaching.
    Inactive,
    /// Breaching, but not yet for the rule's `for` duration.
    Pending,
    /// Breaching past the `for` duration.
    Firing,
}

impl AlertState {
    /// Wire label: `inactive`, `pending`, or `firing`.
    pub fn label(self) -> &'static str {
        match self {
            AlertState::Inactive => "inactive",
            AlertState::Pending => "pending",
            AlertState::Firing => "firing",
        }
    }
}

/// One state-machine edge, in evaluation order. The full log (bounded,
/// newest retained) is the parity gate's comparison artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertTransition {
    /// Rule name.
    pub rule: String,
    /// State before.
    pub from: AlertState,
    /// State after.
    pub to: AlertState,
    /// Evaluation timestamp.
    pub at_ns: u64,
    /// The expression value that drove the edge.
    pub value: f64,
}

/// A resolved firing, retained for `/alerts`.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedAlert {
    /// Rule name.
    pub rule: String,
    /// When the alert entered `Firing`.
    pub fired_at_ns: u64,
    /// When it resolved.
    pub resolved_at_ns: u64,
    /// The worst value observed while pending/firing.
    pub peak_value: f64,
}

/// Per-rule runtime state.
#[derive(Debug, Clone)]
struct RuleRuntime {
    state: AlertState,
    /// When the current pending/firing episode began breaching.
    breach_since_ns: u64,
    /// When the alert entered `Firing` (valid while firing).
    fired_at_ns: u64,
    last_value: Option<f64>,
    peak_value: f64,
    /// Dynamic annotations captured at fire time.
    fire_annotations: Vec<(String, String)>,
}

impl RuleRuntime {
    fn new() -> RuleRuntime {
        RuleRuntime {
            state: AlertState::Inactive,
            breach_since_ns: 0,
            fired_at_ns: 0,
            last_value: None,
            peak_value: 0.0,
            fire_annotations: Vec::new(),
        }
    }
}

/// Evaluates recording and alert rules against a [`Tsdb`] at sample
/// timestamps, maintaining deterministic alert state.
#[derive(Debug)]
pub struct AlertEngine {
    recording: Vec<RecordingRule>,
    rules: Vec<AlertRule>,
    runtime: Vec<RuleRuntime>,
    resolved: VecDeque<ResolvedAlert>,
    transitions: VecDeque<AlertTransition>,
    evaluations: u64,
    last_eval_ns: u64,
}

impl AlertEngine {
    /// Creates an engine over the given rule sets.
    pub fn new(recording: Vec<RecordingRule>, rules: Vec<AlertRule>) -> AlertEngine {
        let runtime = rules.iter().map(|_| RuleRuntime::new()).collect();
        AlertEngine {
            recording,
            rules,
            runtime,
            resolved: VecDeque::new(),
            transitions: VecDeque::new(),
            evaluations: 0,
            last_eval_ns: 0,
        }
    }

    /// Runs one evaluation pass at `now_ns`: recording rules first (so
    /// alert rules may reference `rule:<name>` series from the same
    /// pass), then every alert rule in declaration order. Returns the
    /// transitions this pass produced. `fleet` enriches fire-time
    /// annotations with the worst stream per Doctor rule.
    pub fn evaluate(
        &mut self,
        tsdb: &Tsdb,
        now_ns: u64,
        fleet: Option<&FleetReport>,
    ) -> Vec<AlertTransition> {
        self.evaluations += 1;
        self.last_eval_ns = now_ns;
        for rule in &self.recording {
            if let Some(v) = rule.expr.evaluate(tsdb, now_ns) {
                tsdb.push_gauge(&rule.output_series(), now_ns, v);
            }
        }
        let mut edges = Vec::new();
        for (rule, rt) in self.rules.iter().zip(self.runtime.iter_mut()) {
            // No data → hold state. A dead sampler must not resolve a
            // firing alert or age a pending one into firing.
            let Some(value) = rule.expr.evaluate(tsdb, now_ns) else {
                rt.last_value = None;
                continue;
            };
            rt.last_value = Some(value);
            let from = rt.state;
            match rt.state {
                AlertState::Inactive => {
                    if rule.breached(value) {
                        rt.breach_since_ns = now_ns;
                        rt.peak_value = value;
                        if rule.for_ns == 0 {
                            rt.state = AlertState::Firing;
                            rt.fired_at_ns = now_ns;
                            rt.fire_annotations =
                                fire_annotations(rule, value, tsdb, now_ns, fleet);
                        } else {
                            rt.state = AlertState::Pending;
                        }
                    }
                }
                AlertState::Pending => {
                    if rule.breached(value) {
                        rt.peak_value = peak(rule.cmp, rt.peak_value, value);
                        if now_ns.saturating_sub(rt.breach_since_ns) >= rule.for_ns {
                            rt.state = AlertState::Firing;
                            rt.fired_at_ns = now_ns;
                            rt.fire_annotations =
                                fire_annotations(rule, value, tsdb, now_ns, fleet);
                        }
                    } else {
                        rt.state = AlertState::Inactive;
                    }
                }
                AlertState::Firing => {
                    if rule.cleared(value) {
                        rt.state = AlertState::Inactive;
                        self.resolved.push_back(ResolvedAlert {
                            rule: rule.name.clone(),
                            fired_at_ns: rt.fired_at_ns,
                            resolved_at_ns: now_ns,
                            peak_value: rt.peak_value,
                        });
                        if self.resolved.len() > RESOLVED_RETAINED {
                            self.resolved.pop_front();
                        }
                        rt.fire_annotations.clear();
                    } else {
                        rt.peak_value = peak(rule.cmp, rt.peak_value, value);
                    }
                }
            }
            if rt.state != from {
                edges.push(AlertTransition {
                    rule: rule.name.clone(),
                    from,
                    to: rt.state,
                    at_ns: now_ns,
                    value,
                });
            }
        }
        for edge in &edges {
            self.transitions.push_back(edge.clone());
            if self.transitions.len() > TRANSITIONS_RETAINED {
                self.transitions.pop_front();
            }
        }
        edges
    }

    /// Rules currently firing, in declaration order.
    pub fn firing(&self) -> Vec<&str> {
        self.rules
            .iter()
            .zip(&self.runtime)
            .filter(|(_, rt)| rt.state == AlertState::Firing)
            .map(|(r, _)| r.name.as_str())
            .collect()
    }

    /// Rules currently pending.
    pub fn pending(&self) -> Vec<&str> {
        self.rules
            .iter()
            .zip(&self.runtime)
            .filter(|(_, rt)| rt.state == AlertState::Pending)
            .map(|(r, _)| r.name.as_str())
            .collect()
    }

    /// Recently-resolved firings, oldest first.
    pub fn resolved(&self) -> impl Iterator<Item = &ResolvedAlert> {
        self.resolved.iter()
    }

    /// The bounded transition log, oldest first.
    pub fn transitions(&self) -> impl Iterator<Item = &AlertTransition> {
        self.transitions.iter()
    }

    /// Evaluation passes run.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// One-line status for demo output.
    pub fn summary(&self) -> String {
        let firing = self.firing();
        let firing_list = if firing.is_empty() {
            String::new()
        } else {
            format!(" [{}]", firing.join(", "))
        };
        format!(
            "alerts: {} firing{}, {} pending, {} resolved retained ({} evaluations)",
            firing.len(),
            firing_list,
            self.pending().len(),
            self.resolved.len(),
            self.evaluations
        )
    }

    /// Deterministic JSON for `/alerts`: every rule with its state and
    /// last value, plus the recently-resolved ring.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"evaluations\":{},\"last_eval_ns\":{},\"rules\":[",
            self.evaluations, self.last_eval_ns
        );
        for (i, (rule, rt)) in self.rules.iter().zip(&self.runtime).enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":{},\"expr\":{},\"state\":\"{}\",\"threshold\":{},\"clear_threshold\":{},\"for_ns\":{}",
                json_string(&rule.name),
                json_string(&rule.expr.describe()),
                rt.state.label(),
                fmt_f64(rule.threshold),
                fmt_f64(rule.clear_threshold),
                rule.for_ns
            ));
            match rt.last_value {
                Some(v) => out.push_str(&format!(",\"value\":{}", fmt_f64(v))),
                None => out.push_str(",\"value\":null"),
            }
            if rt.state == AlertState::Firing {
                out.push_str(&format!(
                    ",\"fired_at_ns\":{},\"peak_value\":{}",
                    rt.fired_at_ns,
                    fmt_f64(rt.peak_value)
                ));
            }
            if rt.state == AlertState::Pending {
                out.push_str(&format!(",\"pending_since_ns\":{}", rt.breach_since_ns));
            }
            let annotations: Vec<&(String, String)> = rule
                .annotations
                .iter()
                .chain(rt.fire_annotations.iter())
                .collect();
            if !annotations.is_empty() {
                out.push_str(",\"annotations\":{");
                for (j, (k, v)) in annotations.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("{}:{}", json_string(k), json_string(v)));
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("],\"resolved\":[");
        for (i, r) in self.resolved.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":{},\"fired_at_ns\":{},\"resolved_at_ns\":{},\"peak_value\":{}}}",
                json_string(&r.rule),
                r.fired_at_ns,
                r.resolved_at_ns,
                fmt_f64(r.peak_value)
            ));
        }
        out.push_str("]}");
        out
    }
}

/// The "worse" of two values relative to the breach direction.
fn peak(cmp: Cmp, a: f64, b: f64) -> f64 {
    match cmp {
        Cmp::Above => a.max(b),
        Cmp::Below => a.min(b),
    }
}

/// Dynamic annotations captured the moment a rule fires: the driving
/// value, the worst stream for the rule's Doctor counterpart (from the
/// fleet rollup), and trace-id exemplars from the offending histogram
/// window.
fn fire_annotations(
    rule: &AlertRule,
    value: f64,
    tsdb: &Tsdb,
    now_ns: u64,
    fleet: Option<&FleetReport>,
) -> Vec<(String, String)> {
    let mut out = vec![("fired_value".to_string(), format!("{value}"))];
    let doctor_rule = rule
        .annotations
        .iter()
        .find(|(k, _)| k == "doctor_rule")
        .map(|(_, v)| v.as_str());
    if let (Some(doctor_rule), Some(fleet)) = (doctor_rule, fleet) {
        if let Some(rollup) = fleet.rule(doctor_rule) {
            if let Some(worst) = &rollup.worst_stream {
                out.push(("worst_stream".to_string(), worst.clone()));
                out.push(("worst_value".to_string(), format!("{}", rollup.worst_value)));
            }
        }
    }
    if let Some((series, window_ns)) = rule.expr.histogram_series() {
        let exemplars = tsdb.window_exemplars(series, window_ns, now_ns);
        if !exemplars.is_empty() {
            let ids: Vec<String> = exemplars
                .iter()
                .rev() // largest values first
                .map(|e| format!("{:#x}", e.trace_id))
                .collect();
            out.push(("exemplar_trace_ids".to_string(), ids.join(",")));
        }
    }
    out
}

/// Formats an `f64` as JSON (non-finite → `null`).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tsdb::TsdbConfig;

    fn gauge_rule(for_ns: u64) -> AlertRule {
        AlertRule::above(
            "g_high",
            AlertExpr::GaugeLast {
                series: "g".to_string(),
            },
            10.0,
        )
        .clear_at(5.0)
        .for_duration(for_ns)
    }

    #[test]
    fn pending_for_duration_then_firing_then_hysteresis_resolve() {
        let db = Tsdb::new(TsdbConfig::default());
        let mut engine = AlertEngine::new(vec![], vec![gauge_rule(2_000_000_000)]);
        let sec = 1_000_000_000u64;

        db.push_gauge("g", 0, 1.0);
        assert!(engine.evaluate(&db, 0, None).is_empty());

        // Breach → pending.
        db.push_gauge("g", sec, 20.0);
        let edges = engine.evaluate(&db, sec, None);
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].to, AlertState::Pending);

        // Still breaching but under the for-duration.
        db.push_gauge("g", 2 * sec, 25.0);
        assert!(engine.evaluate(&db, 2 * sec, None).is_empty());

        // Past the for-duration → firing.
        db.push_gauge("g", 3 * sec, 22.0);
        let edges = engine.evaluate(&db, 3 * sec, None);
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].to, AlertState::Firing);

        // Inside the hysteresis band (5 < 7 <= 10): still firing.
        db.push_gauge("g", 4 * sec, 7.0);
        assert!(engine.evaluate(&db, 4 * sec, None).is_empty());
        assert_eq!(engine.firing(), vec!["g_high"]);

        // Below the clear threshold → resolved.
        db.push_gauge("g", 5 * sec, 4.0);
        let edges = engine.evaluate(&db, 5 * sec, None);
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].to, AlertState::Inactive);
        let resolved: Vec<_> = engine.resolved().collect();
        assert_eq!(resolved.len(), 1);
        assert_eq!(resolved[0].fired_at_ns, 3 * sec);
        assert_eq!(resolved[0].resolved_at_ns, 5 * sec);
        assert_eq!(resolved[0].peak_value, 25.0);
    }

    #[test]
    fn pending_resets_when_breach_stops_early() {
        let db = Tsdb::new(TsdbConfig::default());
        let mut engine = AlertEngine::new(vec![], vec![gauge_rule(10_000_000_000)]);
        db.push_gauge("g", 0, 20.0);
        engine.evaluate(&db, 0, None);
        assert_eq!(engine.pending(), vec!["g_high"]);
        db.push_gauge("g", 1, 1.0);
        engine.evaluate(&db, 1, None);
        assert!(engine.pending().is_empty());
        assert!(engine.firing().is_empty());
        // The aborted pending episode never fired, so nothing resolved.
        assert_eq!(engine.resolved().count(), 0);
    }

    #[test]
    fn no_data_holds_state() {
        let db = Tsdb::new(TsdbConfig::default());
        let mut engine = AlertEngine::new(vec![], vec![gauge_rule(0)]);
        db.push_gauge("g", 0, 20.0);
        engine.evaluate(&db, 0, None);
        assert_eq!(engine.firing(), vec!["g_high"]);
        // Evaluate against a different (empty) store: no data, still firing.
        let empty = Tsdb::new(TsdbConfig::default());
        let edges = engine.evaluate(&empty, 1_000_000_000, None);
        assert!(edges.is_empty());
        assert_eq!(engine.firing(), vec!["g_high"]);
        let json = engine.to_json();
        assert!(json.contains("\"value\":null"), "{json}");
    }

    #[test]
    fn recording_rules_materialize_gauge_series() {
        let db = Tsdb::new(TsdbConfig::default());
        db.push_counter("c", 0, 0);
        db.push_counter("c", 2_000_000_000, 100);
        let recording = vec![RecordingRule::new(
            "c_rate",
            AlertExpr::CounterRatePerSec {
                series: "c".to_string(),
                window_ns: 10_000_000_000,
            },
        )];
        // An alert over the recorded series sees the same-pass value.
        let alert = AlertRule::above(
            "rate_high",
            AlertExpr::GaugeLast {
                series: "rule:c_rate".to_string(),
            },
            10.0,
        );
        let mut engine = AlertEngine::new(recording, vec![alert]);
        let edges = engine.evaluate(&db, 2_000_000_000, None);
        assert_eq!(db.gauge_last("rule:c_rate"), Some(50.0));
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].to, AlertState::Firing);
    }

    #[test]
    fn below_rules_invert_breach_and_clear() {
        let db = Tsdb::new(TsdbConfig::default());
        let rule = AlertRule::below(
            "g_low",
            AlertExpr::GaugeLast {
                series: "g".to_string(),
            },
            1.0,
        )
        .clear_at(2.0);
        let mut engine = AlertEngine::new(vec![], vec![rule]);
        db.push_gauge("g", 0, 0.5);
        engine.evaluate(&db, 0, None);
        assert_eq!(engine.firing(), vec!["g_low"]);
        // 1.5 is above the breach threshold but below clear: still firing.
        db.push_gauge("g", 1, 1.5);
        engine.evaluate(&db, 1, None);
        assert_eq!(engine.firing(), vec!["g_low"]);
        db.push_gauge("g", 2, 3.0);
        engine.evaluate(&db, 2, None);
        assert!(engine.firing().is_empty());
    }

    #[test]
    fn fire_annotations_capture_exemplars() {
        use crate::hist::Exemplar;
        let db = Tsdb::new(TsdbConfig::default());
        // One slow observation carrying a trace id, in bucket space.
        let mut h = crate::hist::Histogram::new();
        h.record_with_exemplar(2_000_000, 0xabc);
        let (buckets, c, s) = h.sparse_delta(None);
        db.push_histogram_delta(
            "lat",
            0,
            c,
            s,
            buckets,
            vec![Exemplar {
                value: 2_000_000,
                trace_id: 0xabc,
            }],
        );
        let rule = AlertRule::above(
            "lat_p99",
            AlertExpr::WindowQuantile {
                series: "lat".to_string(),
                q: 0.99,
                window_ns: 60_000_000_000,
            },
            1_000_000.0,
        );
        let mut engine = AlertEngine::new(vec![], vec![rule]);
        engine.evaluate(&db, 0, None);
        let json = engine.to_json();
        assert!(json.contains("\"exemplar_trace_ids\":\"0xabc\""), "{json}");
        assert!(json.contains("\"state\":\"firing\""), "{json}");
    }

    #[test]
    fn doctor_rules_cover_every_watchdog() {
        let rules = AlertRule::doctor_rules();
        for watchdog in crate::fleet::RULE_ORDER {
            assert!(
                rules.iter().any(|r| r
                    .annotations
                    .iter()
                    .any(|(k, v)| k == "doctor_rule" && v == watchdog)),
                "no alert rule annotated for doctor rule {watchdog}"
            );
        }
        // Names are unique.
        let mut names: Vec<&str> = rules.iter().map(|r| r.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), rules.len());
    }
}
