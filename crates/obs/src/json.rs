//! A minimal JSON codec for telemetry snapshots.
//!
//! The build environment is air-gapped — the vendored `serde` is a no-op
//! stub (see `vendor/README.md`) — so the exporters render JSON by hand
//! and this module supplies the inverse: a small recursive-descent parser
//! sufficient for the snapshot files `lion-obs` itself writes. Integers
//! that fit `u64` are kept exact (not routed through `f64`), which is what
//! lets nanosecond counters and `u64::MAX` sentinels round-trip.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer that fits `u64`, kept exact.
    UInt(u64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64` (exact integers only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            Json::Num(f) if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// The value as `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(v) => Some(*v as f64),
            Json::Num(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object fields in source order.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

/// A parse failure: byte offset plus description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

/// Escapes a string for embedding in a JSON document (adds no quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parses one JSON document (trailing whitespace allowed).
///
/// # Errors
///
/// Returns [`JsonError`] with the byte offset of the first problem.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(JsonError {
            offset: pos,
            message: "trailing characters",
        });
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8, message: &'static str) -> Result<(), JsonError> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(JsonError {
            offset: *pos,
            message,
        })
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(JsonError {
            offset: *pos,
            message: "unexpected end of input",
        }),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, b"true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, b"false", Json::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, b"null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &'static [u8],
    value: Json,
) -> Result<Json, JsonError> {
    if bytes.len() - *pos >= word.len() && &bytes[*pos..*pos + word.len()] == word {
        *pos += word.len();
        Ok(value)
    } else {
        Err(JsonError {
            offset: *pos,
            message: "invalid keyword",
        })
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'{', "expected '{'")?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':', "expected ':'")?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => {
                return Err(JsonError {
                    offset: *pos,
                    message: "expected ',' or '}'",
                })
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'[', "expected '['")?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => {
                return Err(JsonError {
                    offset: *pos,
                    message: "expected ',' or ']'",
                })
            }
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"', "expected '\"'")?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => {
                return Err(JsonError {
                    offset: *pos,
                    message: "unterminated string",
                })
            }
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes.get(*pos + 1..*pos + 5).ok_or(JsonError {
                            offset: *pos,
                            message: "truncated \\u escape",
                        })?;
                        let hex = std::str::from_utf8(hex).map_err(|_| JsonError {
                            offset: *pos,
                            message: "invalid \\u escape",
                        })?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| JsonError {
                            offset: *pos,
                            message: "invalid \\u escape",
                        })?;
                        // Surrogate pairs are not needed for our own files.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => {
                        return Err(JsonError {
                            offset: *pos,
                            message: "invalid escape",
                        })
                    }
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (snapshot files are valid UTF-8
                // because they come from Rust strings).
                let rest = &bytes[*pos..];
                let s = std::str::from_utf8(rest).map_err(|_| JsonError {
                    offset: *pos,
                    message: "invalid UTF-8",
                })?;
                let c = s.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| JsonError {
        offset: start,
        message: "invalid number",
    })?;
    if !text.contains(['.', 'e', 'E', '-']) {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Json::UInt(v));
        }
    }
    text.parse::<f64>().map(Json::Num).map_err(|_| JsonError {
        offset: start,
        message: "invalid number",
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("42").unwrap(), Json::UInt(42));
        assert_eq!(parse("-1.5").unwrap(), Json::Num(-1.5));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".to_string()));
    }

    #[test]
    fn u64_max_is_exact() {
        let v = parse("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = r#"{"a":[1,2,{"b":"x"}],"c":{"d":3.25},"e":null}"#;
        let v = parse(doc).unwrap();
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2]
                .get("b")
                .unwrap()
                .as_str(),
            Some("x")
        );
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_f64(), Some(3.25));
        assert_eq!(v.get("e"), Some(&Json::Null));
    }

    #[test]
    fn escape_round_trips() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let doc = format!("\"{}\"", escape(nasty));
        assert_eq!(parse(&doc).unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn errors_carry_offsets() {
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,2").is_err());
        assert!(parse("12 34").is_err());
        let err = parse("").unwrap_err();
        assert!(!err.to_string().is_empty());
    }
}
