//! Calibration-health watchdogs: windowed rules over solve telemetry.
//!
//! Latency histograms say how *fast* the pipeline is; nothing in PR 2/3
//! says whether the calibration is still *good*. Residual statistics
//! drift long before estimates visibly break (multipath growing as a
//! site changes, an antenna knocked out of alignment), convergence that
//! keeps un-latching signals an unstable geometry, and a shedding
//! ingress silently biases the window toward bursts. The [`Doctor`]
//! watches all of these from the stream of per-solve observations the
//! engine already produces.
//!
//! Operation: feed one [`SolveObservation`] per cadence solve via
//! [`Doctor::observe`], then ask for a [`HealthReport`]. Every rule is
//! evaluated over a rolling window of the last `window` observations,
//! so a fault is flagged within one window of its onset:
//!
//! - **`residual_drift`** — mean |weighted residual| over the recent
//!   window vs. a baseline frozen from the *first* full window (floored
//!   by `residual_floor` so a near-zero clean baseline can't make noise
//!   look like drift). Fires when the ratio exceeds
//!   `residual_drift_ratio`.
//! - **`convergence_stall`** — converged→unconverged regressions
//!   (hysteresis un-latching, see `ConvergenceTracker`) within the
//!   window reaching `stall_regressions`.
//! - **`ingress_shed`** — fraction of offered reads shed by the bounded
//!   ingress over the window exceeding `max_shed_rate`.
//! - **`solve_latency`** — p99 of per-solve wall time over the window
//!   exceeding `max_solve_p99_ns`.
//! - **`solver_disagreement`** — maximum distance between the primary
//!   solver's estimate and an independent cross-check backend's estimate
//!   (e.g. linear least squares vs. the likelihood grid) over the
//!   window exceeding `max_solver_disagreement_m`. Two estimators that
//!   agree on clean data and diverge under drift turn systematic phase
//!   corruption into a detectable signal; with no cross-check wired the
//!   rule reports insufficient data.
//! - **`resolve_fallback`** — fraction of incremental-mode solves that
//!   fell back to the full replay path over the window exceeding
//!   `max_resolve_fallback_rate`. A stream configured for O(delta)
//!   re-solves that keeps replaying (out-of-order arrivals splicing the
//!   window, degenerate geometry, pair-structure churn) has silently
//!   lost its latency budget; streams in plain replay mode produce no
//!   data for this rule and it reports insufficient data.
//!
//! Reports are deterministic: rules appear in the fixed order above,
//! and for identical observation sequences the JSON and `Display`
//! renderings are byte-identical.

use std::collections::VecDeque;
use std::fmt;

use crate::json;

/// Thresholds and window length for the watchdog rules. All rules share
/// one window so "within one watchdog window" means the same thing for
/// every failure mode.
#[derive(Debug, Clone, PartialEq)]
pub struct DoctorConfig {
    /// Observations per rolling window (≥ 2; default 8).
    pub window: usize,
    /// `residual_drift` fires when recent mean |residual| exceeds
    /// `ratio ×` the frozen baseline (default 3).
    pub residual_drift_ratio: f64,
    /// Baseline floor in residual units (meters); protects a near-zero
    /// clean baseline from flagging noise (default 0.5 mm).
    pub residual_floor: f64,
    /// `convergence_stall` fires at this many converged→unconverged
    /// regressions within the window (default 2).
    pub stall_regressions: u32,
    /// `ingress_shed` fires when shed/offered over the window exceeds
    /// this fraction (default 0.05).
    pub max_shed_rate: f64,
    /// `solve_latency` fires when windowed p99 solve time exceeds this
    /// (default 50 ms).
    pub max_solve_p99_ns: u64,
    /// `solver_disagreement` fires when the largest primary-vs-cross-check
    /// estimate distance in the window exceeds this radius, meters
    /// (default 5 cm).
    pub max_solver_disagreement_m: f64,
    /// `resolve_fallback` fires when the fraction of incremental-mode
    /// solves that fell back to full replay over the window exceeds this
    /// (default 0.5 — the periodic re-anchor alone stays well under it).
    pub max_resolve_fallback_rate: f64,
}

impl Default for DoctorConfig {
    fn default() -> Self {
        DoctorConfig {
            window: 8,
            residual_drift_ratio: 3.0,
            residual_floor: 5e-4,
            stall_regressions: 2,
            max_shed_rate: 0.05,
            max_solve_p99_ns: 50_000_000,
            max_solver_disagreement_m: 0.05,
            max_resolve_fallback_rate: 0.5,
        }
    }
}

/// What the doctor learns from one cadence solve. Counts are deltas
/// since the previous observation, not running totals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveObservation {
    /// Stream time of the solve (seconds).
    pub time: f64,
    /// The solve's mean weighted residual (meters; sign preserved).
    pub mean_residual: f64,
    /// Whether the convergence tracker held "converged" after the solve.
    pub converged: bool,
    /// Wall time of the solve, nanoseconds.
    pub solve_ns: u64,
    /// Reads accepted into the pipeline since the last observation.
    pub reads_in: u64,
    /// Reads shed by the bounded ingress since the last observation.
    pub shed: u64,
    /// Distance between the primary estimate and an independent
    /// cross-check backend's estimate for the same window, meters.
    /// `None` when no cross-check solve ran for this observation.
    pub solver_disagreement_m: Option<f64>,
    /// Whether this solve, running in incremental resolve mode, fell
    /// back to the full replay path. `None` for streams in plain replay
    /// mode (replaying is then by design, not a fallback).
    pub resolve_fallback: Option<bool>,
}

/// Whether a rule fired, and whether it had enough data to judge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleStatus {
    /// Enough data, within threshold.
    Healthy,
    /// Enough data, threshold exceeded.
    Firing,
    /// Not enough observations yet to evaluate.
    Insufficient,
}

impl fmt::Display for RuleStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RuleStatus::Healthy => "healthy",
            RuleStatus::Firing => "FIRING",
            RuleStatus::Insufficient => "insufficient-data",
        })
    }
}

/// One rule's verdict: measured value vs. its firing threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleReport {
    /// Rule name (fixed set, fixed order — see the module docs).
    pub rule: &'static str,
    /// Verdict.
    pub status: RuleStatus,
    /// The measured value the rule compared (units vary per rule).
    pub value: f64,
    /// The threshold it compared against.
    pub threshold: f64,
    /// How many observations currently inform this rule. Together with
    /// [`RuleReport::samples_needed`] this makes an
    /// [`RuleStatus::Insufficient`] verdict machine-readable: `seen = 0`
    /// with the doctor already past `samples_needed` total observations
    /// means the rule is *data-starved* (e.g. no cross-check wired, no
    /// reads offered), while a small `seen` early in the run is an
    /// ordinary cold start.
    pub samples_seen: u64,
    /// The minimum [`RuleReport::samples_seen`] at which the rule can
    /// leave [`RuleStatus::Insufficient`].
    pub samples_needed: u64,
    /// Human-oriented context (units, window, baseline).
    pub detail: String,
}

/// A deterministic health summary: every rule's verdict plus an overall
/// flag. Render with `Display` or [`HealthReport::to_json`].
#[derive(Debug, Clone, PartialEq)]
pub struct HealthReport {
    /// Observations consumed so far.
    pub observations: u64,
    /// Per-rule verdicts, in the fixed rule order.
    pub rules: Vec<RuleReport>,
    /// `false` iff any rule is [`RuleStatus::Firing`].
    pub healthy: bool,
}

impl HealthReport {
    /// The report for one rule by name.
    pub fn rule(&self, name: &str) -> Option<&RuleReport> {
        self.rules.iter().find(|r| r.rule == name)
    }

    /// Names of the rules currently firing, in rule order.
    pub fn firing(&self) -> Vec<&'static str> {
        self.rules
            .iter()
            .filter(|r| r.status == RuleStatus::Firing)
            .map(|r| r.rule)
            .collect()
    }

    /// Renders the report as one deterministic JSON object (field order
    /// fixed; floats via Rust's shortest round-trip formatting).
    pub fn to_json(&self) -> String {
        let rules: Vec<String> = self
            .rules
            .iter()
            .map(|r| {
                format!(
                    "{{\"rule\":\"{}\",\"status\":\"{}\",\"value\":{},\"threshold\":{},\
                     \"samples_seen\":{},\"samples_needed\":{},\"detail\":\"{}\"}}",
                    json::escape(r.rule),
                    r.status,
                    fmt_f64(r.value),
                    fmt_f64(r.threshold),
                    r.samples_seen,
                    r.samples_needed,
                    json::escape(&r.detail),
                )
            })
            .collect();
        format!(
            "{{\"observations\":{},\"healthy\":{},\"rules\":[{}]}}",
            self.observations,
            self.healthy,
            rules.join(","),
        )
    }
}

/// Formats an `f64` so the in-repo JSON parser reads it back: finite
/// values as-is, non-finite as `null`.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

impl fmt::Display for HealthReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "calibration health: {} ({} observations)",
            if self.healthy { "OK" } else { "DEGRADED" },
            self.observations,
        )?;
        for r in &self.rules {
            writeln!(
                f,
                "  {:18} {:17} value={:.6} threshold={:.6} samples={}/{}  {}",
                r.rule, r.status, r.value, r.threshold, r.samples_seen, r.samples_needed, r.detail,
            )?;
        }
        Ok(())
    }
}

/// The watchdog engine: feed observations, ask for reports. See the
/// module docs for the rule set.
#[derive(Debug, Clone)]
pub struct Doctor {
    config: DoctorConfig,
    recent: VecDeque<SolveObservation>,
    /// Mean |residual| of the first full window, frozen once available.
    baseline_residual: Option<f64>,
    observations: u64,
}

impl Doctor {
    /// Creates a doctor with `config` (window clamped to ≥ 2).
    pub fn new(mut config: DoctorConfig) -> Doctor {
        config.window = config.window.max(2);
        Doctor {
            config,
            recent: VecDeque::new(),
            baseline_residual: None,
            observations: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &DoctorConfig {
        &self.config
    }

    /// Consumes one per-solve observation.
    pub fn observe(&mut self, obs: SolveObservation) {
        self.observations += 1;
        self.recent.push_back(obs);
        if self.recent.len() > self.config.window {
            self.recent.pop_front();
        }
        // Freeze the residual baseline the first time a full window is
        // available: the earliest steady view of the clean system.
        if self.baseline_residual.is_none() && self.recent.len() == self.config.window {
            let mean = self
                .recent
                .iter()
                .map(|o| o.mean_residual.abs())
                .sum::<f64>()
                / self.recent.len() as f64;
            self.baseline_residual = Some(mean);
        }
    }

    /// Evaluates every rule over the current window.
    pub fn report(&self) -> HealthReport {
        let rules = vec![
            self.residual_drift(),
            self.convergence_stall(),
            self.ingress_shed(),
            self.solve_latency(),
            self.solver_disagreement(),
            self.resolve_fallback(),
        ];
        let healthy = rules.iter().all(|r| r.status != RuleStatus::Firing);
        HealthReport {
            observations: self.observations,
            rules,
            healthy,
        }
    }

    fn residual_drift(&self) -> RuleReport {
        let threshold = self.config.residual_drift_ratio;
        let samples_seen = self.recent.len() as u64;
        let samples_needed = self.config.window as u64;
        let Some(baseline) = self.baseline_residual else {
            return RuleReport {
                rule: "residual_drift",
                status: RuleStatus::Insufficient,
                value: 0.0,
                threshold,
                samples_seen,
                samples_needed,
                detail: format!(
                    "baseline not frozen yet ({}/{} observations)",
                    self.recent.len(),
                    self.config.window,
                ),
            };
        };
        let floor = self.config.residual_floor.max(f64::MIN_POSITIVE);
        let baseline = baseline.max(floor);
        let recent = self
            .recent
            .iter()
            .map(|o| o.mean_residual.abs())
            .sum::<f64>()
            / self.recent.len() as f64;
        let ratio = recent / baseline;
        RuleReport {
            rule: "residual_drift",
            status: if ratio > threshold {
                RuleStatus::Firing
            } else {
                RuleStatus::Healthy
            },
            value: ratio,
            threshold,
            samples_seen,
            samples_needed,
            detail: format!("recent mean |residual| {recent:.6} m vs baseline {baseline:.6} m"),
        }
    }

    fn convergence_stall(&self) -> RuleReport {
        let threshold = f64::from(self.config.stall_regressions);
        let samples_seen = self.recent.len() as u64;
        if self.recent.len() < 2 {
            return RuleReport {
                rule: "convergence_stall",
                status: RuleStatus::Insufficient,
                value: 0.0,
                threshold,
                samples_seen,
                samples_needed: 2,
                detail: "need at least 2 observations".to_string(),
            };
        }
        let regressions = self
            .recent
            .iter()
            .zip(self.recent.iter().skip(1))
            .filter(|(prev, next)| prev.converged && !next.converged)
            .count() as u32;
        RuleReport {
            rule: "convergence_stall",
            status: if regressions >= self.config.stall_regressions {
                RuleStatus::Firing
            } else {
                RuleStatus::Healthy
            },
            value: f64::from(regressions),
            threshold,
            samples_seen,
            samples_needed: 2,
            detail: format!(
                "converged\u{2192}unconverged regressions in the last {} solves",
                self.recent.len(),
            ),
        }
    }

    fn ingress_shed(&self) -> RuleReport {
        let threshold = self.config.max_shed_rate;
        let accepted: u64 = self.recent.iter().map(|o| o.reads_in).sum();
        let shed: u64 = self.recent.iter().map(|o| o.shed).sum();
        let offered = accepted + shed;
        // Observations that actually carried reads: an empty-window
        // verdict with non-empty `recent` is data starvation, not a
        // cold start.
        let samples_seen = self
            .recent
            .iter()
            .filter(|o| o.reads_in + o.shed > 0)
            .count() as u64;
        if offered == 0 {
            return RuleReport {
                rule: "ingress_shed",
                status: RuleStatus::Insufficient,
                value: 0.0,
                threshold,
                samples_seen,
                samples_needed: 1,
                detail: "no reads offered in the window".to_string(),
            };
        }
        let rate = shed as f64 / offered as f64;
        RuleReport {
            rule: "ingress_shed",
            status: if rate > threshold {
                RuleStatus::Firing
            } else {
                RuleStatus::Healthy
            },
            value: rate,
            threshold,
            samples_seen,
            samples_needed: 1,
            detail: format!("{shed} of {offered} offered reads shed in the window"),
        }
    }

    fn solve_latency(&self) -> RuleReport {
        let threshold = self.config.max_solve_p99_ns as f64;
        let samples_seen = self.recent.len() as u64;
        if self.recent.is_empty() {
            return RuleReport {
                rule: "solve_latency",
                status: RuleStatus::Insufficient,
                value: 0.0,
                threshold,
                samples_seen,
                samples_needed: 1,
                detail: "no solves observed".to_string(),
            };
        }
        let mut times: Vec<u64> = self.recent.iter().map(|o| o.solve_ns).collect();
        times.sort_unstable();
        // Nearest-rank p99 over the window.
        let rank = ((times.len() as f64 * 0.99).ceil() as usize).clamp(1, times.len());
        let p99 = times[rank - 1];
        RuleReport {
            rule: "solve_latency",
            status: if (p99 as f64) > threshold {
                RuleStatus::Firing
            } else {
                RuleStatus::Healthy
            },
            value: p99 as f64,
            threshold,
            samples_seen,
            samples_needed: 1,
            detail: format!("windowed p99 solve time over {} solves, ns", times.len()),
        }
    }

    fn solver_disagreement(&self) -> RuleReport {
        let threshold = self.config.max_solver_disagreement_m;
        let mut max: Option<f64> = None;
        let mut checked = 0usize;
        for o in &self.recent {
            if let Some(d) = o.solver_disagreement_m {
                checked += 1;
                max = Some(max.map_or(d, |m| m.max(d)));
            }
        }
        let Some(max) = max else {
            return RuleReport {
                rule: "solver_disagreement",
                status: RuleStatus::Insufficient,
                value: 0.0,
                threshold,
                samples_seen: checked as u64,
                samples_needed: 1,
                detail: "no cross-check solves in the window".to_string(),
            };
        };
        RuleReport {
            rule: "solver_disagreement",
            status: if max > threshold {
                RuleStatus::Firing
            } else {
                RuleStatus::Healthy
            },
            value: max,
            threshold,
            samples_seen: checked as u64,
            samples_needed: 1,
            detail: format!("max primary-vs-cross-check distance over {checked} checked solves, m"),
        }
    }

    fn resolve_fallback(&self) -> RuleReport {
        let threshold = self.config.max_resolve_fallback_rate;
        let mut fallbacks = 0u64;
        let mut checked = 0u64;
        for o in &self.recent {
            if let Some(fell_back) = o.resolve_fallback {
                checked += 1;
                fallbacks += u64::from(fell_back);
            }
        }
        if checked == 0 {
            return RuleReport {
                rule: "resolve_fallback",
                status: RuleStatus::Insufficient,
                value: 0.0,
                threshold,
                samples_seen: 0,
                samples_needed: 1,
                detail: "no incremental-mode solves in the window".to_string(),
            };
        }
        let rate = fallbacks as f64 / checked as f64;
        RuleReport {
            rule: "resolve_fallback",
            status: if rate > threshold {
                RuleStatus::Firing
            } else {
                RuleStatus::Healthy
            },
            value: rate,
            threshold,
            samples_seen: checked,
            samples_needed: 1,
            detail: format!("{fallbacks} of {checked} incremental-mode solves replayed"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(residual: f64, converged: bool) -> SolveObservation {
        SolveObservation {
            time: 0.0,
            mean_residual: residual,
            converged,
            solve_ns: 1_000,
            reads_in: 25,
            shed: 0,
            solver_disagreement_m: Some(1e-3),
            resolve_fallback: Some(false),
        }
    }

    fn doctor_with_window(window: usize) -> Doctor {
        Doctor::new(DoctorConfig {
            window,
            ..DoctorConfig::default()
        })
    }

    #[test]
    fn clean_run_reports_all_healthy() {
        let mut doc = doctor_with_window(4);
        for _ in 0..12 {
            doc.observe(obs(1e-3, true));
        }
        let report = doc.report();
        assert!(report.healthy);
        assert!(report.firing().is_empty());
        assert!(report.rules.iter().all(|r| r.status == RuleStatus::Healthy));
    }

    #[test]
    fn rules_report_insufficient_before_data() {
        let doc = doctor_with_window(4);
        let report = doc.report();
        assert!(report.healthy, "insufficient data is not a failure");
        assert!(report
            .rules
            .iter()
            .all(|r| r.status == RuleStatus::Insufficient));
    }

    #[test]
    fn residual_drift_fires_within_one_window() {
        let mut doc = doctor_with_window(4);
        for _ in 0..4 {
            doc.observe(obs(1e-3, true));
        }
        assert!(doc.report().healthy);
        // Residuals jump 10×: must fire within the next window.
        for _ in 0..4 {
            doc.observe(obs(1e-2, true));
        }
        let report = doc.report();
        assert_eq!(report.firing(), ["residual_drift"]);
        assert!(!report.healthy);
    }

    #[test]
    fn residual_floor_suppresses_noise_on_a_clean_baseline() {
        let mut doc = Doctor::new(DoctorConfig {
            window: 4,
            residual_floor: 5e-4,
            ..DoctorConfig::default()
        });
        // Near-zero baseline, then small noise below the floor-scaled
        // threshold: ratio uses the floor, not the tiny baseline.
        for _ in 0..4 {
            doc.observe(obs(1e-9, true));
        }
        for _ in 0..4 {
            doc.observe(obs(1e-4, true));
        }
        assert!(doc.report().healthy);
    }

    #[test]
    fn convergence_stall_counts_regressions() {
        let mut doc = doctor_with_window(8);
        for converged in [true, false, true, false, true, true, true, true] {
            doc.observe(obs(1e-3, converged));
        }
        let report = doc.report();
        assert_eq!(report.firing(), ["convergence_stall"]);
        assert_eq!(report.rule("convergence_stall").unwrap().value, 2.0);
    }

    #[test]
    fn shed_rate_fires_on_overflow() {
        let mut doc = doctor_with_window(4);
        for _ in 0..4 {
            doc.observe(SolveObservation {
                shed: 5,
                ..obs(1e-3, true)
            });
        }
        let report = doc.report();
        assert_eq!(report.firing(), ["ingress_shed"]);
        let rule = report.rule("ingress_shed").unwrap();
        assert!((rule.value - 20.0 / 120.0).abs() < 1e-12);
    }

    #[test]
    fn latency_p99_fires_on_slow_solves() {
        let mut doc = Doctor::new(DoctorConfig {
            window: 4,
            max_solve_p99_ns: 10_000,
            ..DoctorConfig::default()
        });
        for _ in 0..4 {
            doc.observe(SolveObservation {
                solve_ns: 20_000,
                ..obs(1e-3, true)
            });
        }
        assert_eq!(doc.report().firing(), ["solve_latency"]);
    }

    #[test]
    fn solver_disagreement_fires_on_divergence() {
        let mut doc = doctor_with_window(4);
        for _ in 0..4 {
            doc.observe(obs(1e-3, true));
        }
        assert!(doc.report().healthy);
        // The cross-check backend wanders 8 cm away: beyond the 5 cm
        // default radius, the rule must fire within one window.
        for _ in 0..4 {
            doc.observe(SolveObservation {
                solver_disagreement_m: Some(0.08),
                ..obs(1e-3, true)
            });
        }
        let report = doc.report();
        assert_eq!(report.firing(), ["solver_disagreement"]);
        let rule = report.rule("solver_disagreement").unwrap();
        assert_eq!(rule.value, 0.08);
    }

    #[test]
    fn solver_disagreement_without_cross_check_is_insufficient() {
        let mut doc = doctor_with_window(4);
        for _ in 0..6 {
            doc.observe(SolveObservation {
                solver_disagreement_m: None,
                ..obs(1e-3, true)
            });
        }
        let report = doc.report();
        assert!(report.healthy, "no cross-check data is not a failure");
        assert_eq!(
            report.rule("solver_disagreement").unwrap().status,
            RuleStatus::Insufficient
        );
    }

    #[test]
    fn resolve_fallback_fires_when_incremental_mode_keeps_replaying() {
        let mut doc = doctor_with_window(4);
        for _ in 0..4 {
            doc.observe(obs(1e-3, true));
        }
        assert!(doc.report().healthy);
        // 3 of 4 solves in the window fall back: above the 0.5 default.
        for fell_back in [true, true, true, false] {
            doc.observe(SolveObservation {
                resolve_fallback: Some(fell_back),
                ..obs(1e-3, true)
            });
        }
        let report = doc.report();
        assert_eq!(report.firing(), ["resolve_fallback"]);
        assert_eq!(report.rule("resolve_fallback").unwrap().value, 0.75);
    }

    #[test]
    fn resolve_fallback_without_incremental_mode_is_insufficient() {
        let mut doc = doctor_with_window(4);
        for _ in 0..6 {
            doc.observe(SolveObservation {
                resolve_fallback: None,
                ..obs(1e-3, true)
            });
        }
        let report = doc.report();
        assert!(report.healthy, "replay-mode streams produce no signal");
        let rule = report.rule("resolve_fallback").unwrap();
        assert_eq!(rule.status, RuleStatus::Insufficient);
        assert_eq!((rule.samples_seen, rule.samples_needed), (0, 1));
    }

    #[test]
    fn insufficient_rules_distinguish_cold_start_from_starvation() {
        // Cold start: no observations at all. Every rule reports
        // seen < needed with seen growing toward needed.
        let doc = doctor_with_window(4);
        let report = doc.report();
        for rule in &report.rules {
            assert_eq!(rule.status, RuleStatus::Insufficient);
            assert_eq!(rule.samples_seen, 0);
            assert!(rule.samples_needed >= 1);
        }

        // Starvation: plenty of observations, but none carrying reads or
        // cross-checks. The affected rules stay Insufficient with
        // seen = 0 while residual_drift has seen = needed.
        let mut doc = doctor_with_window(4);
        for _ in 0..6 {
            doc.observe(SolveObservation {
                reads_in: 0,
                shed: 0,
                solver_disagreement_m: None,
                ..obs(1e-3, true)
            });
        }
        let report = doc.report();
        let drift = report.rule("residual_drift").unwrap();
        assert_eq!(drift.status, RuleStatus::Healthy);
        assert_eq!((drift.samples_seen, drift.samples_needed), (4, 4));
        let shed = report.rule("ingress_shed").unwrap();
        assert_eq!(shed.status, RuleStatus::Insufficient);
        assert_eq!((shed.samples_seen, shed.samples_needed), (0, 1));
        let cross = report.rule("solver_disagreement").unwrap();
        assert_eq!(cross.status, RuleStatus::Insufficient);
        assert_eq!((cross.samples_seen, cross.samples_needed), (0, 1));

        // The pair is machine-readable from the JSON rendering.
        let json = report.to_json();
        let doc = crate::json::parse(&json).expect("valid JSON");
        let rules = doc.get("rules").and_then(|v| v.as_array()).unwrap();
        let shed_json = rules
            .iter()
            .find(|r| r.get("rule").and_then(|v| v.as_str()) == Some("ingress_shed"))
            .unwrap();
        assert_eq!(
            shed_json.get("samples_seen").and_then(|v| v.as_u64()),
            Some(0)
        );
        assert_eq!(
            shed_json.get("samples_needed").and_then(|v| v.as_u64()),
            Some(1)
        );
    }

    #[test]
    fn report_json_is_deterministic_and_parses() {
        let mut a = doctor_with_window(4);
        let mut b = doctor_with_window(4);
        for _ in 0..6 {
            a.observe(obs(1e-3, true));
            b.observe(obs(1e-3, true));
        }
        let ja = a.report().to_json();
        let jb = b.report().to_json();
        assert_eq!(ja, jb);
        let doc = crate::json::parse(&ja).expect("valid JSON");
        assert_eq!(doc.get("observations").and_then(|v| v.as_u64()), Some(6));
        assert_eq!(doc.get("healthy"), Some(&crate::json::Json::Bool(true)));
        assert_eq!(
            doc.get("rules").and_then(|v| v.as_array()).map(|a| a.len()),
            Some(6)
        );
        // Display is likewise stable.
        assert_eq!(a.report().to_string(), b.report().to_string());
    }
}
