//! Flamegraph export: exclusive-time attribution over flight-recorder
//! span rings, emitted as collapsed-stack text.
//!
//! The pipeline's stage accounting (`StageMetrics`) already keeps its
//! sums **disjoint**: `adaptive_exclusive_ns` is the sweep's inclusive
//! time minus the inner stages it drove, so totals never double-count a
//! nanosecond. This module applies the same discipline to arbitrary
//! span trees from the [`crate::recorder::FlightRecorder`]: each span's
//! **exclusive** time is its `elapsed_ns` minus the elapsed time of its
//! *direct* children (saturating at zero when rings evicted a parent's
//! tail), so summing every line of the output reproduces total traced
//! busy time exactly once.
//!
//! The export format is **collapsed stacks** — one line per unique
//! ancestry chain, `root;child;leaf <nanoseconds>` — the interchange
//! format consumed by inferno's `flamegraph.pl` lineage and by
//! [speedscope](https://www.speedscope.app) directly. Lines are sorted
//! and sibling spans with identical chains are pre-aggregated, so the
//! same snapshot always serializes byte-identically: scrape `/profile`
//! twice on a quiet system and diff cleanly.

use std::collections::BTreeMap;
use std::io::{self, Write as _};
use std::path::Path;

use crate::recorder::FlightSnapshot;
use crate::subscriber::SpanClose;

/// Exclusive-time totals per span *name*, sorted by name.
///
/// Each entry is `(name, exclusive_ns, count)`: the nanoseconds spent
/// in spans of that name but **not** in their children, and how many
/// spans contributed. The exclusive sums are disjoint — adding every
/// entry gives total traced busy time with no double counting.
pub fn exclusive_by_name(snapshot: &FlightSnapshot) -> Vec<(String, u64, u64)> {
    let mut totals: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
    for span in snapshot.spans() {
        let entry = totals.entry(span.name).or_insert((0, 0));
        entry.0 = entry.0.saturating_add(exclusive_ns(snapshot, span));
        entry.1 += 1;
    }
    totals
        .into_iter()
        .map(|(name, (ns, count))| (name.to_string(), ns, count))
        .collect()
}

/// One span's exclusive time: elapsed minus the elapsed of its direct
/// children, saturating at zero (ring eviction can retain a child whose
/// sibling — or part of the parent's own frame — is gone).
fn exclusive_ns(snapshot: &FlightSnapshot, span: &SpanClose) -> u64 {
    let children_ns: u64 = snapshot
        .spans()
        .filter(|s| s.parent == span.id && s.id != span.id)
        .map(|s| s.elapsed_ns)
        .fold(0u64, u64::saturating_add);
    span.elapsed_ns.saturating_sub(children_ns)
}

/// Renders a snapshot as collapsed-stack text.
///
/// One line per unique ancestry chain: frame names root-first joined by
/// `;`, a space, then the chain's **exclusive** nanoseconds. Chains are
/// sorted; spans whose parent was evicted from the ring start their own
/// chain at the deepest retained ancestor. Spans contributing zero
/// exclusive time are omitted (pure-wrapper frames still appear as
/// prefixes of their children's chains). Frame names have `;`, space,
/// and newline replaced by `_` to keep the format unambiguous.
pub fn to_collapsed_stacks(snapshot: &FlightSnapshot) -> String {
    let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
    for span in snapshot.spans() {
        let ns = exclusive_ns(snapshot, span);
        if ns == 0 {
            continue;
        }
        let mut chain = snapshot.ancestry(span.id);
        chain.reverse(); // root-first
        let stack: Vec<String> = chain.iter().map(|s| clean_frame(s.name)).collect();
        let slot = stacks.entry(stack.join(";")).or_insert(0);
        *slot = slot.saturating_add(ns);
    }
    let mut out = String::new();
    for (stack, ns) in &stacks {
        out.push_str(stack);
        out.push(' ');
        out.push_str(&ns.to_string());
        out.push('\n');
    }
    out
}

/// Sanitizes one frame name for collapsed-stack output.
fn clean_frame(name: &str) -> String {
    name.replace([';', ' ', '\n'], "_")
}

/// Writes [`to_collapsed_stacks`] output to `path`, for handing to
/// `inferno-flamegraph` or dropping into speedscope.
pub fn write_collapsed_stacks(path: &Path, snapshot: &FlightSnapshot) -> io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(to_collapsed_stacks(snapshot).as_bytes())?;
    file.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{install_flight_recorder, uninstall_flight_recorder};

    /// These tests share the global recorder slot; serialize them.
    fn recorder_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn total_elapsed(snapshot: &FlightSnapshot) -> u64 {
        // Roots only: children are contained in their parents.
        snapshot
            .spans()
            .filter(|s| snapshot.span(s.parent).is_none())
            .map(|s| s.elapsed_ns)
            .sum()
    }

    #[test]
    fn exclusive_sums_are_disjoint_and_collapse_deterministically() {
        let _guard = recorder_lock();
        let recorder = install_flight_recorder(256);
        {
            let _outer = crate::span!("pipeline");
            {
                let _inner = crate::span!("unwrap");
                std::hint::black_box(0u64);
            }
            {
                let _inner = crate::span!("solve");
                let _leaf = crate::span!("normal_eq");
                std::hint::black_box(0u64);
            }
        }
        uninstall_flight_recorder();
        let snapshot = recorder.snapshot();

        // Disjoint-sum invariant: exclusive totals add up to exactly the
        // root spans' inclusive time.
        let by_name = exclusive_by_name(&snapshot);
        let sum: u64 = by_name.iter().map(|(_, ns, _)| ns).sum();
        assert_eq!(sum, total_elapsed(&snapshot));
        let names: Vec<&str> = by_name.iter().map(|(n, _, _)| n.as_str()).collect();
        assert_eq!(names, ["normal_eq", "pipeline", "solve", "unwrap"]);

        // Collapsed stacks carry full ancestry chains and the same sum.
        let collapsed = to_collapsed_stacks(&snapshot);
        assert!(collapsed.contains("pipeline;solve;normal_eq "));
        assert_eq!(collapsed, to_collapsed_stacks(&snapshot));
        let mut parsed_sum = 0u64;
        for line in collapsed.lines() {
            let (stack, ns) = line.rsplit_once(' ').expect("stack SP value");
            assert!(!stack.is_empty());
            parsed_sum += ns.parse::<u64>().expect("numeric weight");
        }
        assert_eq!(parsed_sum, sum);
    }

    #[test]
    fn frame_names_are_sanitized_and_empty_snapshot_renders_empty() {
        assert_eq!(clean_frame("a b;c\nd"), "a_b_c_d");
        assert_eq!(to_collapsed_stacks(&FlightSnapshot::default()), "");
    }
}
