//! Zero-dependency HTTP/1.1 scrape server for live telemetry.
//!
//! Everything `lion-obs` produces — Prometheus text, fleet health JSON,
//! registry snapshots, Chrome traces, flamegraphs — was historically a
//! one-shot file export at process exit. [`TelemetryServer`] makes the
//! same artifacts scrapeable **while the pipeline runs**, on nothing but
//! `std::net`:
//!
//! | Route       | Body                                                | Content-Type |
//! |-------------|-----------------------------------------------------|--------------|
//! | `/metrics`  | Prometheus text of the global registry (plus fleet gauges when a hub is installed) | `text/plain; version=0.0.4; charset=utf-8` |
//! | `/health`   | [`crate::fleet::FleetReport`] JSON from the installed hub | `application/json` |
//! | `/snapshot` | Global registry as JSON-lines                       | `application/x-ndjson` |
//! | `/trace`    | Chrome-trace JSON of the flight recorder's rings    | `application/json` |
//! | `/profile`  | Collapsed-stack flamegraph of the same rings        | `text/plain; charset=utf-8` |
//!
//! The server owns one accept thread (`lion-telemetry`) and answers
//! requests on it sequentially — a scrape plane, not an app server: the
//! bounded single worker means a slow or malicious client can delay
//! other scrapes but can never exhaust process threads or memory
//! (request heads are capped, sockets carry read timeouts).
//!
//! Every body is rendered at request time from the live global sources
//! ([`crate::global`], [`crate::fleet::telemetry_hub`],
//! [`crate::flight_recorder`]) and is deterministic for a fixed state —
//! sorted registry snapshots, canonical ring merge order, sorted stacks
//! — so consecutive scrapes of a quiet system diff cleanly.
//!
//! Shutdown is graceful and idempotent: [`TelemetryServer::shutdown`]
//! (or drop) flips a flag, nudges the listener with a loopback connect
//! so `accept` wakes, and joins the thread — no request in flight is
//! truncated, no thread leaks.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::export;
use crate::fleet::telemetry_hub;
use crate::recorder::flight_recorder;

/// Per-socket read/write timeout: a stalled scraper cannot pin the
/// worker for longer than this.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(2);

/// Upper bound on the request head (request line + headers) we will
/// buffer before answering 400.
const MAX_HEAD_BYTES: usize = 8 * 1024;

/// The five routes, fixed order — also the `/` index listing.
const ROUTES: [&str; 5] = ["/metrics", "/health", "/snapshot", "/trace", "/profile"];

/// A running telemetry scrape server. See the module docs for routes.
///
/// ```no_run
/// let server = lion_obs::http::TelemetryServer::bind("127.0.0.1:0").unwrap();
/// println!("scrape http://{}/metrics", server.local_addr());
/// server.shutdown();
/// ```
#[derive(Debug)]
pub struct TelemetryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    worker: Option<JoinHandle<()>>,
}

impl TelemetryServer {
    /// Binds `addr` (use port `0` for an ephemeral port — the real one
    /// is in [`TelemetryServer::local_addr`]) and starts the accept
    /// thread.
    pub fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<TelemetryServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let flag = stop.clone();
        let worker = std::thread::Builder::new()
            .name("lion-telemetry".to_string())
            .spawn(move || accept_loop(listener, &flag))?;
        Ok(TelemetryServer {
            addr,
            stop,
            worker: Some(worker),
        })
    }

    /// The bound address (the real port even when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, wakes the worker, and joins it. Idempotent;
    /// also runs on drop.
    pub fn shutdown(mut self) {
        self.stop_worker();
    }

    fn stop_worker(&mut self) {
        let Some(worker) = self.worker.take() else {
            return;
        };
        self.stop.store(true, Ordering::SeqCst);
        // Self-connect so the blocking accept() observes the flag. The
        // connect may fail if the listener already died; join anyway.
        let _ = TcpStream::connect_timeout(&self.addr, SOCKET_TIMEOUT);
        let _ = worker.join();
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.stop_worker();
    }
}

fn accept_loop(listener: TcpListener, stop: &AtomicBool) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        // Per-connection errors (timeouts, resets, malformed heads that
        // also fail the 400 write) only affect that scraper.
        let _ = handle_connection(stream);
    }
}

fn handle_connection(mut stream: TcpStream) -> io::Result<()> {
    stream.set_read_timeout(Some(SOCKET_TIMEOUT))?;
    stream.set_write_timeout(Some(SOCKET_TIMEOUT))?;
    let head = match read_head(&mut stream) {
        Ok(head) => head,
        Err(_) => {
            return write_response(
                &mut stream,
                "400 Bad Request",
                "text/plain; charset=utf-8",
                b"malformed request head\n",
                &[],
            );
        }
    };
    let (method, path) = match parse_request_line(&head) {
        Some(parts) => parts,
        None => {
            return write_response(
                &mut stream,
                "400 Bad Request",
                "text/plain; charset=utf-8",
                b"malformed request line\n",
                &[],
            );
        }
    };
    let known = path == "/" || ROUTES.contains(&path.as_str());
    if method != "GET" {
        return if known {
            write_response(
                &mut stream,
                "405 Method Not Allowed",
                "text/plain; charset=utf-8",
                b"only GET is supported\n",
                &[("Allow", "GET")],
            )
        } else {
            not_found(&mut stream)
        };
    }
    match path.as_str() {
        "/" => {
            let mut body = String::from("lion telemetry\n");
            for route in ROUTES {
                body.push_str(route);
                body.push('\n');
            }
            write_response(
                &mut stream,
                "200 OK",
                "text/plain; charset=utf-8",
                body.as_bytes(),
                &[],
            )
        }
        "/metrics" => write_response(
            &mut stream,
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            render_metrics().as_bytes(),
            &[],
        ),
        "/health" => write_response(
            &mut stream,
            "200 OK",
            "application/json",
            render_health().as_bytes(),
            &[],
        ),
        "/snapshot" => write_response(
            &mut stream,
            "200 OK",
            "application/x-ndjson",
            render_snapshot().as_bytes(),
            &[],
        ),
        "/trace" => write_response(
            &mut stream,
            "200 OK",
            "application/json",
            render_trace().as_bytes(),
            &[],
        ),
        "/profile" => write_response(
            &mut stream,
            "200 OK",
            "text/plain; charset=utf-8",
            render_profile().as_bytes(),
            &[],
        ),
        _ => not_found(&mut stream),
    }
}

fn not_found(stream: &mut TcpStream) -> io::Result<()> {
    write_response(
        stream,
        "404 Not Found",
        "text/plain; charset=utf-8",
        b"no such route; try /metrics /health /snapshot /trace /profile\n",
        &[],
    )
}

/// Reads until the blank line ending the request head, bounded by
/// [`MAX_HEAD_BYTES`].
fn read_head(stream: &mut TcpStream) -> io::Result<String> {
    let mut head = Vec::new();
    let mut buf = [0u8; 512];
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&buf[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.windows(2).any(|w| w == b"\n\n") {
            break;
        }
        if head.len() > MAX_HEAD_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "request head too large",
            ));
        }
    }
    String::from_utf8(head).map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-utf8 head"))
}

/// Extracts `(method, path)` from the request line, dropping any query
/// string. Returns `None` when the line is not `METHOD SP TARGET [SP
/// VERSION]`.
fn parse_request_line(head: &str) -> Option<(String, String)> {
    let line = head.lines().next()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?.to_string();
    let target = parts.next()?;
    let path = target.split('?').next().unwrap_or(target).to_string();
    if !path.starts_with('/') {
        return None;
    }
    Some((method, path))
}

fn write_response(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &[u8],
    extra_headers: &[(&str, &str)],
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len(),
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// `/metrics`: the global registry as Prometheus text. When a telemetry
/// hub is installed its fleet rollup is refreshed into `fleet.*` gauges
/// first, so one scrape carries both raw pipeline metrics and the fleet
/// verdict.
fn render_metrics() -> String {
    if let Some(hub) = telemetry_hub() {
        hub.fleet_report().record_into(crate::global());
    }
    export::to_prometheus(&crate::global().snapshot())
}

/// `/health`: the hub's fleet rollup as JSON, or an explicit
/// `"hub_installed": false` envelope when telemetry is off.
fn render_health() -> String {
    match telemetry_hub() {
        Some(hub) => format!(
            "{{\"hub_installed\":true,\"fleet\":{}}}\n",
            hub.fleet_report().to_json()
        ),
        None => "{\"hub_installed\":false,\"fleet\":null}\n".to_string(),
    }
}

/// `/snapshot`: the global registry as one labelled JSON line.
fn render_snapshot() -> String {
    export::to_json_line("global", &crate::global().snapshot())
}

/// `/trace`: the flight recorder's retained rings as Chrome-trace JSON
/// (non-draining — scraping does not consume records). An empty trace
/// when no recorder is installed.
fn render_trace() -> String {
    let records = flight_recorder()
        .map(|recorder| recorder.snapshot().records().to_vec())
        .unwrap_or_default();
    export::to_chrome_trace(&records)
}

/// `/profile`: collapsed-stack flamegraph of the recorder's rings.
/// Empty body when no recorder is installed or nothing was traced.
fn render_profile() -> String {
    flight_recorder()
        .map(|recorder| crate::profile::to_collapsed_stacks(&recorder.snapshot()))
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_line_parses_and_rejects_garbage() {
        assert_eq!(
            parse_request_line("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n"),
            Some(("GET".to_string(), "/metrics".to_string()))
        );
        assert_eq!(
            parse_request_line("GET /health?verbose=1 HTTP/1.1\r\n"),
            Some(("GET".to_string(), "/health".to_string()))
        );
        assert_eq!(parse_request_line(""), None);
        assert_eq!(parse_request_line("GET"), None);
        assert_eq!(parse_request_line("GET http//nope HTTP/1.1"), None);
    }

    #[test]
    fn bind_reports_real_port_and_shuts_down_cleanly() {
        let server = TelemetryServer::bind("127.0.0.1:0").expect("bind ephemeral");
        assert_ne!(server.local_addr().port(), 0);
        server.shutdown();
    }
}
