//! Zero-dependency HTTP/1.1 scrape server for live telemetry.
//!
//! Everything `lion-obs` produces — Prometheus text, fleet health JSON,
//! registry snapshots, Chrome traces, flamegraphs — was historically a
//! one-shot file export at process exit. [`TelemetryServer`] makes the
//! same artifacts scrapeable **while the pipeline runs**, on nothing but
//! `std::net`:
//!
//! | Route       | Body                                                | Content-Type |
//! |-------------|-----------------------------------------------------|--------------|
//! | `/metrics`  | Prometheus text of the global registry (plus fleet gauges when a hub is installed) | `text/plain; version=0.0.4; charset=utf-8` |
//! | `/health`   | [`crate::fleet::FleetReport`] JSON from the installed hub | `application/json` |
//! | `/snapshot` | Global registry as JSON-lines                       | `application/x-ndjson` |
//! | `/trace`    | Chrome-trace JSON of the flight recorder's rings    | `application/json` |
//! | `/profile`  | Collapsed-stack flamegraph of the same rings        | `text/plain; charset=utf-8` |
//! | `/query`    | Range query over the hub's time-series store (ndjson; `?series=&tier=&from=&to=`, no `series` lists all series) | `application/x-ndjson` |
//! | `/alerts`   | Alert engine state: every rule + recently resolved  | `application/json` |
//!
//! `HEAD` is answered on every route with the same status, headers, and
//! `Content-Length` as the `GET`, minus the body. A request head larger
//! than the 8 KiB cap gets `414 URI Too Long`; other malformed heads
//! get `400`.
//!
//! The server owns one accept thread (`lion-telemetry`) and answers
//! requests on it sequentially — a scrape plane, not an app server: the
//! bounded single worker means a slow or malicious client can delay
//! other scrapes but can never exhaust process threads or memory
//! (request heads are capped, sockets carry read timeouts).
//!
//! Every body is rendered at request time from the live global sources
//! ([`crate::global`], [`crate::fleet::telemetry_hub`],
//! [`crate::flight_recorder`]) and is deterministic for a fixed state —
//! sorted registry snapshots, canonical ring merge order, sorted stacks
//! — so consecutive scrapes of a quiet system diff cleanly.
//!
//! Shutdown is graceful and idempotent: [`TelemetryServer::shutdown`]
//! (or drop) flips a flag, nudges the listener with a loopback connect
//! so `accept` wakes, and joins the thread — no request in flight is
//! truncated, no thread leaks.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::export;
use crate::fleet::telemetry_hub;
use crate::recorder::flight_recorder;
use crate::tsdb::Tier;

/// Per-socket read/write timeout: a stalled scraper cannot pin the
/// worker for longer than this.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(2);

/// Upper bound on the request head (request line + headers) we will
/// buffer before answering 414.
const MAX_HEAD_BYTES: usize = 8 * 1024;

/// The routes, fixed order — also the `/` index listing.
const ROUTES: [&str; 7] = [
    "/metrics",
    "/health",
    "/snapshot",
    "/trace",
    "/profile",
    "/query",
    "/alerts",
];

/// A running telemetry scrape server. See the module docs for routes.
///
/// ```no_run
/// let server = lion_obs::http::TelemetryServer::bind("127.0.0.1:0").unwrap();
/// println!("scrape http://{}/metrics", server.local_addr());
/// server.shutdown();
/// ```
#[derive(Debug)]
pub struct TelemetryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    worker: Option<JoinHandle<()>>,
}

impl TelemetryServer {
    /// Binds `addr` (use port `0` for an ephemeral port — the real one
    /// is in [`TelemetryServer::local_addr`]) and starts the accept
    /// thread.
    pub fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<TelemetryServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let flag = stop.clone();
        let worker = std::thread::Builder::new()
            .name("lion-telemetry".to_string())
            .spawn(move || accept_loop(listener, &flag))?;
        Ok(TelemetryServer {
            addr,
            stop,
            worker: Some(worker),
        })
    }

    /// The bound address (the real port even when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, wakes the worker, and joins it. Idempotent;
    /// also runs on drop.
    pub fn shutdown(mut self) {
        self.stop_worker();
    }

    fn stop_worker(&mut self) {
        let Some(worker) = self.worker.take() else {
            return;
        };
        self.stop.store(true, Ordering::SeqCst);
        // Self-connect so the blocking accept() observes the flag. The
        // connect may fail if the listener already died; join anyway.
        let _ = TcpStream::connect_timeout(&self.addr, SOCKET_TIMEOUT);
        let _ = worker.join();
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.stop_worker();
    }
}

fn accept_loop(listener: TcpListener, stop: &AtomicBool) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        // Per-connection errors (timeouts, resets, malformed heads that
        // also fail the 400 write) only affect that scraper.
        let _ = handle_connection(stream);
    }
}

fn handle_connection(mut stream: TcpStream) -> io::Result<()> {
    stream.set_read_timeout(Some(SOCKET_TIMEOUT))?;
    stream.set_write_timeout(Some(SOCKET_TIMEOUT))?;
    let head = match read_head(&mut stream) {
        Ok(head) => head,
        Err(HeadError::TooLarge) => {
            // Consume the rest of the oversized head (bounded) so closing
            // the socket after the response doesn't RST away unread bytes
            // — a reset can destroy the 414 before the client reads it.
            drain_head(&mut stream);
            return write_response(
                &mut stream,
                "414 URI Too Long",
                "text/plain; charset=utf-8",
                b"request head exceeds the 8 KiB cap\n",
                &[],
                false,
            );
        }
        Err(HeadError::Malformed) => {
            return write_response(
                &mut stream,
                "400 Bad Request",
                "text/plain; charset=utf-8",
                b"malformed request head\n",
                &[],
                false,
            );
        }
    };
    let (method, path, query) = match parse_request_line(&head) {
        Some(parts) => parts,
        None => {
            return write_response(
                &mut stream,
                "400 Bad Request",
                "text/plain; charset=utf-8",
                b"malformed request line\n",
                &[],
                false,
            );
        }
    };
    // HEAD renders the same response as GET and suppresses the body,
    // keeping the advertised Content-Length.
    let head_only = method == "HEAD";
    let known = path == "/" || ROUTES.contains(&path.as_str());
    if method != "GET" && !head_only {
        return if known {
            write_response(
                &mut stream,
                "405 Method Not Allowed",
                "text/plain; charset=utf-8",
                b"only GET and HEAD are supported\n",
                &[("Allow", "GET, HEAD")],
                false,
            )
        } else {
            not_found(&mut stream, head_only)
        };
    }
    let (status, content_type, body): (&str, &str, String) = match path.as_str() {
        "/" => {
            let mut body = String::from("lion telemetry\n");
            for route in ROUTES {
                body.push_str(route);
                body.push('\n');
            }
            ("200 OK", "text/plain; charset=utf-8", body)
        }
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            render_metrics(),
        ),
        "/health" => ("200 OK", "application/json", render_health()),
        "/snapshot" => ("200 OK", "application/x-ndjson", render_snapshot()),
        "/trace" => ("200 OK", "application/json", render_trace()),
        "/profile" => ("200 OK", "text/plain; charset=utf-8", render_profile()),
        "/query" => render_query(&query),
        "/alerts" => ("200 OK", "application/json", render_alerts()),
        _ => return not_found(&mut stream, head_only),
    };
    write_response(
        &mut stream,
        status,
        content_type,
        body.as_bytes(),
        &[],
        head_only,
    )
}

fn not_found(stream: &mut TcpStream, head_only: bool) -> io::Result<()> {
    write_response(
        stream,
        "404 Not Found",
        "text/plain; charset=utf-8",
        b"no such route; try /metrics /health /snapshot /trace /profile /query /alerts\n",
        &[],
        head_only,
    )
}

/// Why a request head could not be read.
enum HeadError {
    /// The head exceeded [`MAX_HEAD_BYTES`] → `414 URI Too Long`.
    TooLarge,
    /// Read error, truncated head, or non-UTF-8 bytes → `400`.
    Malformed,
}

/// Reads until the blank line ending the request head, bounded by
/// [`MAX_HEAD_BYTES`].
fn read_head(stream: &mut TcpStream) -> Result<String, HeadError> {
    let mut head = Vec::new();
    let mut buf = [0u8; 512];
    loop {
        let n = stream.read(&mut buf).map_err(|_| HeadError::Malformed)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&buf[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.windows(2).any(|w| w == b"\n\n") {
            break;
        }
        if head.len() > MAX_HEAD_BYTES {
            return Err(HeadError::TooLarge);
        }
    }
    String::from_utf8(head).map_err(|_| HeadError::Malformed)
}

/// Discards the remainder of an oversized request head, up to an outer
/// bound of 8× [`MAX_HEAD_BYTES`] — enough for any realistic overlong
/// URI without letting a hostile client stream forever.
fn drain_head(stream: &mut TcpStream) {
    let mut buf = [0u8; 512];
    let mut drained = 0usize;
    while drained < 8 * MAX_HEAD_BYTES {
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => return,
            Ok(n) => {
                drained += n;
                if buf[..n].windows(4).any(|w| w == b"\r\n\r\n")
                    || buf[..n].windows(2).any(|w| w == b"\n\n")
                {
                    return;
                }
            }
        }
    }
}

/// Extracts `(method, path, query)` from the request line (the query is
/// empty when the target has none). Returns `None` when the line is not
/// `METHOD SP TARGET [SP VERSION]`.
fn parse_request_line(head: &str) -> Option<(String, String, String)> {
    let line = head.lines().next()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?.to_string();
    let target = parts.next()?;
    let (path, query) = match target.split_once('?') {
        Some((path, query)) => (path, query),
        None => (target, ""),
    };
    if !path.starts_with('/') {
        return None;
    }
    Some((method, path.to_string(), query.to_string()))
}

/// Splits a query string into percent-decoded `(key, value)` pairs.
/// Series names carry `{`, `"`, and `=` in their label blocks, so
/// `/query` clients must be able to escape them.
fn parse_query_params(query: &str) -> Vec<(String, String)> {
    query
        .split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (percent_decode(k), percent_decode(v))
        })
        .collect()
}

/// Minimal percent-decoding: `%XX` byte escapes and `+` as space;
/// malformed escapes pass through literally.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' if i + 2 < bytes.len() => {
                let hex = |b: u8| (b as char).to_digit(16);
                match (hex(bytes[i + 1]), hex(bytes[i + 2])) {
                    (Some(hi), Some(lo)) => {
                        out.push((hi * 16 + lo) as u8);
                        i += 3;
                        continue;
                    }
                    _ => out.push(b'%'),
                }
            }
            b'+' => out.push(b' '),
            b => out.push(b),
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn write_response(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &[u8],
    extra_headers: &[(&str, &str)],
    head_only: bool,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len(),
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    if !head_only {
        stream.write_all(body)?;
    }
    stream.flush()
}

/// `/metrics`: the global registry as Prometheus text. When a telemetry
/// hub is installed its fleet rollup is refreshed into `fleet.*` gauges
/// first, so one scrape carries both raw pipeline metrics and the fleet
/// verdict.
fn render_metrics() -> String {
    if let Some(hub) = telemetry_hub() {
        hub.fleet_report().record_into(crate::global());
    }
    export::to_prometheus(&crate::global().snapshot())
}

/// `/health`: the hub's fleet rollup as JSON, or an explicit
/// `"hub_installed": false` envelope when telemetry is off.
fn render_health() -> String {
    match telemetry_hub() {
        Some(hub) => format!(
            "{{\"hub_installed\":true,\"fleet\":{}}}\n",
            hub.fleet_report().to_json()
        ),
        None => "{\"hub_installed\":false,\"fleet\":null}\n".to_string(),
    }
}

/// `/snapshot`: the global registry as one labelled JSON line.
fn render_snapshot() -> String {
    export::to_json_line("global", &crate::global().snapshot())
}

/// `/trace`: the flight recorder's retained rings as Chrome-trace JSON
/// (non-draining — scraping does not consume records). An empty trace
/// when no recorder is installed.
fn render_trace() -> String {
    let records = flight_recorder()
        .map(|recorder| recorder.snapshot().records().to_vec())
        .unwrap_or_default();
    export::to_chrome_trace(&records)
}

/// `/profile`: collapsed-stack flamegraph of the recorder's rings.
/// Empty body when no recorder is installed or nothing was traced.
fn render_profile() -> String {
    flight_recorder()
        .map(|recorder| crate::profile::to_collapsed_stacks(&recorder.snapshot()))
        .unwrap_or_default()
}

/// `/query`: range queries over the hub's time-series store.
///
/// - no `series` param → one ndjson line per stored series (name, kind,
///   per-tier point counts) plus a trailing store-stats line;
/// - `series=<name>` (+ optional `tier=raw|10s|1m`, `from=`/`to=`
///   nanosecond bounds) → a meta line, then one ndjson line per point.
///
/// Returns `(status, content_type, body)` so bad parameters can map to
/// 400/404 while the envelope cases stay 200.
fn render_query(query: &str) -> (&'static str, &'static str, String) {
    const NDJSON: &str = "application/x-ndjson";
    const TEXT: &str = "text/plain; charset=utf-8";
    let tsdb = match telemetry_hub().and_then(|hub| hub.tsdb()) {
        Some(tsdb) => tsdb,
        None => {
            return (
                "200 OK",
                NDJSON,
                "{\"history_installed\":false}\n".to_string(),
            );
        }
    };
    let params = parse_query_params(query);
    let param = |key: &str| {
        params
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    };
    let Some(series) = param("series") else {
        let stats = tsdb.stats();
        let mut body = String::new();
        for info in tsdb.series_list() {
            body.push_str(&format!(
                "{{\"series\":{},\"kind\":\"{}\",\"raw\":{},\"10s\":{},\"1m\":{}}}\n",
                crate::alert::json_string(&info.name),
                info.kind,
                info.raw_len,
                info.mid_len,
                info.coarse_len,
            ));
        }
        body.push_str(&format!(
            "{{\"stats\":{{\"series\":{},\"bytes\":{},\"memory_cap_bytes\":{},\"inserted_points\":{},\"evicted_points\":{}}}}}\n",
            stats.series,
            stats.bytes,
            stats.memory_cap_bytes,
            stats.inserted_points,
            stats.evicted_points,
        ));
        return ("200 OK", NDJSON, body);
    };
    let tier = match param("tier") {
        None => Tier::Raw,
        Some(label) => match Tier::parse(label) {
            Some(tier) => tier,
            None => {
                return (
                    "400 Bad Request",
                    TEXT,
                    "bad tier; expected raw, 10s, or 1m\n".to_string(),
                );
            }
        },
    };
    let mut bounds = [0u64, u64::MAX];
    for (i, key) in ["from", "to"].iter().enumerate() {
        if let Some(raw) = param(key) {
            match raw.parse::<u64>() {
                Ok(ns) => bounds[i] = ns,
                Err(_) => {
                    return (
                        "400 Bad Request",
                        TEXT,
                        format!("bad {key}; expected nanoseconds as u64\n"),
                    );
                }
            }
        }
    }
    let Some(points) = tsdb.query(series, tier, bounds[0], bounds[1]) else {
        return ("404 Not Found", TEXT, "no such series\n".to_string());
    };
    let lines: Vec<String> = match &points {
        crate::tsdb::SeriesPoints::Gauge(ps) => ps.iter().map(|p| p.to_json()).collect(),
        crate::tsdb::SeriesPoints::Counter(ps) => ps.iter().map(|p| p.to_json()).collect(),
        crate::tsdb::SeriesPoints::Histogram(ps) => ps.iter().map(|p| p.to_json()).collect(),
    };
    let mut body = format!(
        "{{\"series\":{},\"tier\":\"{}\",\"points\":{}}}\n",
        crate::alert::json_string(series),
        tier.label(),
        lines.len(),
    );
    for line in lines {
        body.push_str(&line);
        body.push('\n');
    }
    ("200 OK", NDJSON, body)
}

/// `/alerts`: the hub's alert engine state (rules, firing/pending
/// status, recently resolved) or an explicit not-installed envelope.
fn render_alerts() -> String {
    match telemetry_hub().and_then(|hub| hub.alerts_json()) {
        Some(json) => format!("{{\"alerts_installed\":true,\"alerts\":{json}}}\n"),
        None => "{\"alerts_installed\":false,\"alerts\":null}\n".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_line_parses_and_rejects_garbage() {
        assert_eq!(
            parse_request_line("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n"),
            Some(("GET".to_string(), "/metrics".to_string(), String::new()))
        );
        assert_eq!(
            parse_request_line("GET /health?verbose=1 HTTP/1.1\r\n"),
            Some((
                "GET".to_string(),
                "/health".to_string(),
                "verbose=1".to_string()
            ))
        );
        assert_eq!(parse_request_line(""), None);
        assert_eq!(parse_request_line("GET"), None);
        assert_eq!(parse_request_line("GET http//nope HTTP/1.1"), None);
    }

    #[test]
    fn query_params_percent_decode() {
        let params = parse_query_params("series=lion.stream%7Bs%3D%22a+b%22%7D&tier=10s&");
        assert_eq!(
            params,
            vec![
                ("series".to_string(), "lion.stream{s=\"a b\"}".to_string()),
                ("tier".to_string(), "10s".to_string()),
            ]
        );
        assert_eq!(percent_decode("%zz"), "%zz");
        assert_eq!(percent_decode("100%"), "100%");
    }

    #[test]
    fn bind_reports_real_port_and_shuts_down_cleanly() {
        let server = TelemetryServer::bind("127.0.0.1:0").expect("bind ephemeral");
        assert_ne!(server.local_addr().port(), 0);
        server.shutdown();
    }
}
