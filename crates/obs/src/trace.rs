//! Causal trace propagation: span ids, ambient context, and lanes.
//!
//! PR 2's spans measured *durations*; this module gives them *structure*.
//! Every recording [`crate::Span`] now carries a process-unique id, the id
//! of the span that was open on the same thread when it was entered (its
//! parent), and a trace id shared by every span descended from the same
//! root — so a subscriber can reassemble the exact call tree of one solve
//! even when spans from many tags and workers interleave.
//!
//! Within a thread, parenting is automatic: spans nest lexically, and a
//! thread-local stack tracks the innermost open span. Across threads the
//! link must be explicit — a thread does not inherit another thread's
//! stack — which is what [`TraceContext`] is for:
//!
//! 1. the submitting side captures [`TraceContext::current`] (or mints a
//!    fresh root with [`TraceContext::root`]),
//! 2. the value is moved to the worker (it is `Copy + Send`),
//! 3. the worker installs it with [`attach`]; spans opened while the
//!    returned guard lives parent into the foreign trace.
//!
//! All timestamps are nanoseconds since a process-wide monotonic epoch
//! ([`now_ns`]), which is what lets span intervals from different threads
//! be merged into one timeline (the flight recorder's drain order and the
//! Chrome trace export's `ts` axis).

use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Process-wide id source for spans and traces. Ids are unique and
/// ascending in allocation order; they carry no other meaning.
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Allocates a fresh nonzero id (spans, traces, recorder instances).
pub fn next_id() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

/// The process trace epoch: fixed at first use, shared by every thread.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process trace epoch, saturating at `u64::MAX`.
/// Monotonic within the process; comparable across threads.
pub fn now_ns() -> u64 {
    u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX)
}

static NEXT_LANE: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// This thread's lane: a small process-unique id assigned on first
    /// use, stable for the thread's lifetime. Spans record it so trace
    /// viewers can lay workers out side by side.
    static LANE: u64 = NEXT_LANE.fetch_add(1, Ordering::Relaxed);
}

/// The calling thread's lane id (assigned on first use, then stable).
pub fn lane() -> u64 {
    LANE.with(|l| *l)
}

/// A position in a trace that new work should hang under: the trace id
/// plus the span to parent to (`0` = root of the trace).
///
/// `Copy + Send`, so it crosses thread boundaries by value — capture it
/// where the work is submitted, [`attach`] it where the work runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The trace every descendant span will carry.
    pub trace_id: u64,
    /// Span id new children parent to; `0` makes them trace roots.
    pub parent: u64,
}

impl TraceContext {
    /// Mints a brand-new trace: fresh trace id, children become roots.
    pub fn root() -> Self {
        TraceContext {
            trace_id: next_id(),
            parent: 0,
        }
    }

    /// The context a new child span would inherit on this thread right
    /// now: the innermost open span if any, else the innermost
    /// [`attach`]ed context, else `None` (no ambient trace).
    pub fn current() -> Option<TraceContext> {
        AMBIENT.with(|a| {
            let a = a.borrow();
            match a.spans.last() {
                Some(&(id, trace_id)) => Some(TraceContext {
                    trace_id,
                    parent: id,
                }),
                None => a.installed.last().copied(),
            }
        })
    }
}

struct Ambient {
    /// Contexts installed by [`attach`], innermost last.
    installed: Vec<TraceContext>,
    /// Open spans on this thread: `(span_id, trace_id)`, innermost last.
    spans: Vec<(u64, u64)>,
}

thread_local! {
    static AMBIENT: RefCell<Ambient> = const {
        RefCell::new(Ambient {
            installed: Vec::new(),
            spans: Vec::new(),
        })
    };
}

/// Restores the previous ambient context when dropped. `!Send`: the
/// guard must drop on the thread that attached.
#[must_use = "dropping the guard immediately detaches the context"]
pub struct TraceGuard {
    _not_send: PhantomData<*const ()>,
}

/// Installs `context` as this thread's ambient trace until the returned
/// guard drops. Spans opened while no span is open on this thread parent
/// to `context.parent` inside `context.trace_id` — the cross-thread half
/// of causal propagation (see the module docs for the hand-off pattern).
///
/// Attaches nest: the innermost attach wins, and dropping the guard
/// restores the previous one.
pub fn attach(context: TraceContext) -> TraceGuard {
    AMBIENT.with(|a| a.borrow_mut().installed.push(context));
    TraceGuard {
        _not_send: PhantomData,
    }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        AMBIENT.with(|a| {
            a.borrow_mut().installed.pop();
        });
    }
}

/// Opens a span on this thread's stack: allocates its id, resolves its
/// parent and trace from the ambient state, and pushes it. Returns
/// `(id, parent, trace_id)`. A span opened with no ambient trace becomes
/// the root of a fresh trace whose id equals its own span id.
pub(crate) fn enter_span() -> (u64, u64, u64) {
    let id = next_id();
    AMBIENT.with(|a| {
        let mut a = a.borrow_mut();
        let (parent, trace_id) = match a.spans.last() {
            Some(&(parent_id, trace_id)) => (parent_id, trace_id),
            None => match a.installed.last() {
                Some(ctx) => (ctx.parent, ctx.trace_id),
                None => (0, id),
            },
        };
        a.spans.push((id, trace_id));
        (id, parent, trace_id)
    })
}

/// Closes a span: removes it (and, defensively, anything opened above it
/// that failed to close in order) from this thread's stack.
pub(crate) fn exit_span(id: u64) {
    AMBIENT.with(|a| {
        let mut a = a.borrow_mut();
        if let Some(pos) = a.spans.iter().rposition(|&(span_id, _)| span_id == id) {
            a.spans.truncate(pos);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_ascending() {
        let a = next_id();
        let b = next_id();
        assert!(b > a);
    }

    #[test]
    fn now_ns_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[test]
    fn lanes_are_stable_per_thread_and_distinct_across_threads() {
        let here = lane();
        assert_eq!(lane(), here);
        let there = std::thread::spawn(lane).join().unwrap();
        assert_ne!(here, there);
    }

    #[test]
    fn span_stack_resolves_parents() {
        // No ambient: a span roots its own trace.
        let (id_a, parent_a, trace_a) = enter_span();
        assert_eq!(parent_a, 0);
        assert_eq!(trace_a, id_a);
        // Nested: child parents to the open span, same trace.
        let (id_b, parent_b, trace_b) = enter_span();
        assert_eq!(parent_b, id_a);
        assert_eq!(trace_b, trace_a);
        exit_span(id_b);
        exit_span(id_a);
        assert!(TraceContext::current().is_none());
    }

    #[test]
    fn attach_supplies_the_ambient_for_root_spans() {
        let ctx = TraceContext {
            trace_id: 777,
            parent: 42,
        };
        {
            let _guard = attach(ctx);
            assert_eq!(TraceContext::current(), Some(ctx));
            let (id, parent, trace_id) = enter_span();
            assert_eq!(parent, 42);
            assert_eq!(trace_id, 777);
            exit_span(id);
        }
        assert_eq!(TraceContext::current(), None);
    }

    #[test]
    fn attach_crosses_threads_by_value() {
        let ctx = TraceContext::root();
        let (parent, trace_id) = std::thread::spawn(move || {
            let _guard = attach(ctx);
            let (id, parent, trace_id) = enter_span();
            exit_span(id);
            (parent, trace_id)
        })
        .join()
        .unwrap();
        assert_eq!(parent, 0);
        assert_eq!(trace_id, ctx.trace_id);
    }

    #[test]
    fn out_of_order_close_truncates_descendants() {
        let (id_a, ..) = enter_span();
        let (_id_b, ..) = enter_span();
        // Closing the outer span first must not leave the inner entry
        // behind to corrupt later parenting.
        exit_span(id_a);
        let (id_c, parent_c, _) = enter_span();
        assert_eq!(parent_c, 0);
        exit_span(id_c);
    }
}
