//! An embedded, zero-dependency metrics time-series store.
//!
//! The [`Tsdb`] keeps bounded history for named series so trends —
//! phase-offset drift, residual growth, SLO burn — are answerable from
//! the process itself instead of requiring an external collector. Three
//! kinds of series are stored, matching the [`Registry`] metric kinds:
//!
//! - **gauges**: each raw point keeps `last/min/max/sum/count` so
//!   downsampled tiers preserve extremes and averages exactly;
//! - **counters**: each point stores the *cumulative* value, so a rate
//!   over any window is the exact `(last − first) / span` — no
//!   per-interval rounding;
//! - **histograms**: each point stores the sparse bucket *delta* against
//!   the sampler's previous snapshot ([`Histogram::sparse_delta`]), so a
//!   windowed quantile is reconstructed exactly (up to the histogram's
//!   own ≤ 6.25% bucket error) by summing the deltas in the window.
//!
//! # Tiers and downsampling
//!
//! Every series keeps three ring buffers: **raw** points as pushed, a
//! **10s** tier, and a **1m** tier. Downsampling is *fold-on-push*: each
//! incoming point is folded into the open 10s aggregation bucket
//! immediately, and a bucket is sealed into its ring when a point
//! arrives past the bucket boundary (sealed 10s buckets cascade into the
//! open 1m bucket the same way). Because folding happens before the raw
//! ring trims, raw-tier eviction can never lose data from the coarser
//! tiers.
//!
//! # Memory cap and eviction
//!
//! The store tracks an approximate byte count (point payloads plus a
//! fixed per-series overhead) and enforces [`TsdbConfig::memory_cap_bytes`]
//! after every insert by evicting the globally-oldest raw point
//! (smallest timestamp, ties broken by lexicographically smallest series
//! name), falling back to the 10s then 1m tiers once raw rings are
//! empty. Eviction is deterministic and counted —
//! [`TsdbStats::evicted_points`] / [`TsdbStats::inserted_points`] make
//! cap pressure observable.
//!
//! # Sampling
//!
//! A [`Sampler`] snapshots a [`Registry`] into the store on a cadence
//! driven by an injectable [`SampleClock`]. Production uses
//! [`WallClock`]; tests (and the worker-count parity gate) use
//! [`ManualClock`], which makes every sample timestamp — and therefore
//! every downstream alert transition — deterministic.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::hist::{merge_exemplars, Exemplar, Histogram};
use crate::registry::{Metric, Registry};

/// Width of the mid (10s) downsampling tier in nanoseconds.
pub const MID_BUCKET_NS: u64 = 10_000_000_000;
/// Width of the coarse (1m) downsampling tier in nanoseconds.
pub const COARSE_BUCKET_NS: u64 = 60_000_000_000;

/// Approximate fixed overhead charged per series (map entry, ring
/// buffers, open aggregation buckets) on top of the per-point payloads.
const SERIES_OVERHEAD_BYTES: usize = 160;

/// A storage/query resolution tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Points exactly as pushed.
    Raw,
    /// 10-second aggregation buckets.
    Mid,
    /// 1-minute aggregation buckets.
    Coarse,
}

impl Tier {
    /// The tier's wire label (`raw`, `10s`, `1m`) as used by `/query`.
    pub fn label(self) -> &'static str {
        match self {
            Tier::Raw => "raw",
            Tier::Mid => "10s",
            Tier::Coarse => "1m",
        }
    }

    /// Parses a wire label; the inverse of [`Tier::label`].
    pub fn parse(s: &str) -> Option<Tier> {
        match s {
            "raw" => Some(Tier::Raw),
            "10s" => Some(Tier::Mid),
            "1m" => Some(Tier::Coarse),
            _ => None,
        }
    }
}

/// Sizing knobs for a [`Tsdb`].
#[derive(Debug, Clone)]
pub struct TsdbConfig {
    /// Raw points retained per series.
    pub raw_capacity: usize,
    /// 10s aggregation buckets retained per series (360 ≙ 1 hour).
    pub mid_capacity: usize,
    /// 1m aggregation buckets retained per series (1440 ≙ 24 hours).
    pub coarse_capacity: usize,
    /// Hard cap on the store's (approximate) total bytes; enforced by
    /// deterministic oldest-first eviction after every insert.
    pub memory_cap_bytes: usize,
}

impl Default for TsdbConfig {
    fn default() -> Self {
        TsdbConfig {
            raw_capacity: 512,
            mid_capacity: 360,
            coarse_capacity: 1440,
            memory_cap_bytes: 4 << 20,
        }
    }
}

/// One stored gauge observation (or a fold of several, in the 10s/1m
/// tiers — `last` is the most recent value, `min`/`max`/`sum`/`count`
/// aggregate the folded points exactly).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaugePoint {
    /// Sample time (bucket start time in the downsampled tiers).
    pub t_ns: u64,
    /// Most recent value in the bucket.
    pub last: f64,
    /// Smallest value in the bucket.
    pub min: f64,
    /// Largest value in the bucket.
    pub max: f64,
    /// Sum of folded values (mean = `sum / count`).
    pub sum: f64,
    /// Number of folded values.
    pub count: u64,
}

/// One stored counter observation. The value is *cumulative* (the
/// counter's running total at `t_ns`); downsampled tiers keep the last
/// cumulative value per bucket, so rates over any pair of retained
/// points stay exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterPoint {
    /// Sample time (bucket start time in the downsampled tiers).
    pub t_ns: u64,
    /// Cumulative counter value at `t_ns`.
    pub value: u64,
}

/// One stored histogram increment: the sparse bucket delta between two
/// consecutive sampler snapshots. Summing the deltas over a window and
/// reconstructing with [`Histogram::from_sparse`] yields the window's
/// exact bucket counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistPoint {
    /// Sample time (bucket start time in the downsampled tiers).
    pub t_ns: u64,
    /// Observations added in the interval.
    pub count: u64,
    /// Sum added in the interval.
    pub sum: u64,
    /// Sparse `(bucket index, count delta)` pairs, ascending by index.
    pub buckets: Vec<(u32, u64)>,
    /// Exemplars carried by the source histogram at sample time.
    pub exemplars: Vec<Exemplar>,
}

/// Behaviour shared by the three point types so [`TieredSeries`] can
/// fold any of them into aggregation buckets.
trait TierPoint: Clone {
    fn t_ns(&self) -> u64;
    /// Rewrites the timestamp to the aggregation bucket's start time.
    fn align(&mut self, bucket_start_ns: u64);
    /// Folds a newer point into this aggregation bucket.
    fn fold(&mut self, incoming: &Self);
    /// Approximate heap + inline size of the point.
    fn bytes(&self) -> usize;
}

impl TierPoint for GaugePoint {
    fn t_ns(&self) -> u64 {
        self.t_ns
    }
    fn align(&mut self, bucket_start_ns: u64) {
        self.t_ns = bucket_start_ns;
    }
    fn fold(&mut self, incoming: &Self) {
        self.last = incoming.last;
        self.min = self.min.min(incoming.min);
        self.max = self.max.max(incoming.max);
        self.sum += incoming.sum;
        self.count = self.count.saturating_add(incoming.count);
    }
    fn bytes(&self) -> usize {
        std::mem::size_of::<GaugePoint>()
    }
}

impl TierPoint for CounterPoint {
    fn t_ns(&self) -> u64 {
        self.t_ns
    }
    fn align(&mut self, bucket_start_ns: u64) {
        self.t_ns = bucket_start_ns;
    }
    fn fold(&mut self, incoming: &Self) {
        // Cumulative value: the newest total represents the bucket.
        self.value = incoming.value;
    }
    fn bytes(&self) -> usize {
        std::mem::size_of::<CounterPoint>()
    }
}

impl TierPoint for HistPoint {
    fn t_ns(&self) -> u64 {
        self.t_ns
    }
    fn align(&mut self, bucket_start_ns: u64) {
        self.t_ns = bucket_start_ns;
    }
    fn fold(&mut self, incoming: &Self) {
        self.count = self.count.saturating_add(incoming.count);
        self.sum = self.sum.saturating_add(incoming.sum);
        merge_sparse(&mut self.buckets, &incoming.buckets);
        merge_exemplars(&mut self.exemplars, &incoming.exemplars);
    }
    fn bytes(&self) -> usize {
        std::mem::size_of::<HistPoint>()
            + self.buckets.len() * std::mem::size_of::<(u32, u64)>()
            + self.exemplars.len() * std::mem::size_of::<Exemplar>()
    }
}

/// Adds sparse `(index, count)` pairs into a sorted sparse vector.
fn merge_sparse(into: &mut Vec<(u32, u64)>, from: &[(u32, u64)]) {
    for &(idx, c) in from {
        match into.binary_search_by_key(&idx, |&(i, _)| i) {
            Ok(pos) => into[pos].1 = into[pos].1.saturating_add(c),
            Err(pos) => into.insert(pos, (idx, c)),
        }
    }
}

/// Three ring buffers plus the open (still-accumulating) 10s and 1m
/// aggregation buckets for one series.
#[derive(Debug)]
struct TieredSeries<P> {
    raw: VecDeque<P>,
    mid: VecDeque<P>,
    coarse: VecDeque<P>,
    open_mid: Option<P>,
    open_coarse: Option<P>,
}

impl<P: TierPoint> TieredSeries<P> {
    fn new() -> Self {
        TieredSeries {
            raw: VecDeque::new(),
            mid: VecDeque::new(),
            coarse: VecDeque::new(),
            open_mid: None,
            open_coarse: None,
        }
    }

    /// Pushes a point, folding it into the downsampling tiers first so
    /// raw-ring trimming can never lose mid/coarse data. Returns the
    /// signed byte delta of everything that changed.
    fn push(&mut self, p: P, cfg: &TsdbConfig) -> i64 {
        let mut delta = self.fold_mid(&p, cfg);
        delta += p.bytes() as i64;
        self.raw.push_back(p);
        if self.raw.len() > cfg.raw_capacity.max(1) {
            if let Some(old) = self.raw.pop_front() {
                delta -= old.bytes() as i64;
            }
        }
        delta
    }

    fn fold_mid(&mut self, p: &P, cfg: &TsdbConfig) -> i64 {
        let bucket = p.t_ns() / MID_BUCKET_NS;
        let mut delta = 0i64;
        let needs_seal = self
            .open_mid
            .as_ref()
            .is_some_and(|open| bucket > open.t_ns() / MID_BUCKET_NS);
        if needs_seal {
            delta += self.seal_mid(cfg);
        }
        match &mut self.open_mid {
            Some(open) => {
                let before = open.bytes() as i64;
                open.fold(p);
                delta += open.bytes() as i64 - before;
            }
            None => {
                let mut open = p.clone();
                open.align(bucket * MID_BUCKET_NS);
                delta += open.bytes() as i64;
                self.open_mid = Some(open);
            }
        }
        delta
    }

    fn seal_mid(&mut self, cfg: &TsdbConfig) -> i64 {
        let Some(sealed) = self.open_mid.take() else {
            return 0;
        };
        let mut delta = self.fold_coarse(&sealed, cfg);
        self.mid.push_back(sealed);
        if self.mid.len() > cfg.mid_capacity.max(1) {
            if let Some(old) = self.mid.pop_front() {
                delta -= old.bytes() as i64;
            }
        }
        delta
    }

    fn fold_coarse(&mut self, sealed: &P, cfg: &TsdbConfig) -> i64 {
        let bucket = sealed.t_ns() / COARSE_BUCKET_NS;
        let mut delta = 0i64;
        let needs_seal = self
            .open_coarse
            .as_ref()
            .is_some_and(|open| bucket > open.t_ns() / COARSE_BUCKET_NS);
        if needs_seal {
            delta += self.seal_coarse(cfg);
        }
        match &mut self.open_coarse {
            Some(open) => {
                let before = open.bytes() as i64;
                open.fold(sealed);
                delta += open.bytes() as i64 - before;
            }
            None => {
                let mut open = sealed.clone();
                open.align(bucket * COARSE_BUCKET_NS);
                delta += open.bytes() as i64;
                self.open_coarse = Some(open);
            }
        }
        delta
    }

    fn seal_coarse(&mut self, cfg: &TsdbConfig) -> i64 {
        let Some(sealed) = self.open_coarse.take() else {
            return 0;
        };
        let mut delta = 0i64;
        self.coarse.push_back(sealed);
        if self.coarse.len() > cfg.coarse_capacity.max(1) {
            if let Some(old) = self.coarse.pop_front() {
                delta -= old.bytes() as i64;
            }
        }
        delta
    }

    fn ring(&self, tier: Tier) -> &VecDeque<P> {
        match tier {
            Tier::Raw => &self.raw,
            Tier::Mid => &self.mid,
            Tier::Coarse => &self.coarse,
        }
    }

    fn front_t(&self, tier: Tier) -> Option<u64> {
        self.ring(tier).front().map(TierPoint::t_ns)
    }

    fn pop_front(&mut self, tier: Tier) -> i64 {
        let ring = match tier {
            Tier::Raw => &mut self.raw,
            Tier::Mid => &mut self.mid,
            Tier::Coarse => &mut self.coarse,
        };
        ring.pop_front().map_or(0, |p| p.bytes() as i64)
    }

    fn range(&self, tier: Tier, from_ns: u64, to_ns: u64) -> Vec<P> {
        self.ring(tier)
            .iter()
            .filter(|p| p.t_ns() >= from_ns && p.t_ns() <= to_ns)
            .cloned()
            .collect()
    }
}

/// One series' storage, dispatching on kind.
#[derive(Debug)]
enum SeriesData {
    Gauge(TieredSeries<GaugePoint>),
    Counter(TieredSeries<CounterPoint>),
    Histogram(TieredSeries<HistPoint>),
}

impl SeriesData {
    fn kind(&self) -> &'static str {
        match self {
            SeriesData::Gauge(_) => "gauge",
            SeriesData::Counter(_) => "counter",
            SeriesData::Histogram(_) => "histogram",
        }
    }

    fn len(&self, tier: Tier) -> usize {
        match self {
            SeriesData::Gauge(s) => s.ring(tier).len(),
            SeriesData::Counter(s) => s.ring(tier).len(),
            SeriesData::Histogram(s) => s.ring(tier).len(),
        }
    }

    fn front_t(&self, tier: Tier) -> Option<u64> {
        match self {
            SeriesData::Gauge(s) => s.front_t(tier),
            SeriesData::Counter(s) => s.front_t(tier),
            SeriesData::Histogram(s) => s.front_t(tier),
        }
    }

    fn pop_front(&mut self, tier: Tier) -> i64 {
        match self {
            SeriesData::Gauge(s) => s.pop_front(tier),
            SeriesData::Counter(s) => s.pop_front(tier),
            SeriesData::Histogram(s) => s.pop_front(tier),
        }
    }

    /// Approximate total bytes of every stored and open point.
    fn total_bytes(&self) -> i64 {
        fn sum<P: TierPoint>(s: &TieredSeries<P>) -> i64 {
            let stored: usize = s
                .raw
                .iter()
                .chain(s.mid.iter())
                .chain(s.coarse.iter())
                .map(TierPoint::bytes)
                .sum();
            let open = s.open_mid.as_ref().map_or(0, TierPoint::bytes)
                + s.open_coarse.as_ref().map_or(0, TierPoint::bytes);
            (stored + open) as i64
        }
        match self {
            SeriesData::Gauge(s) => sum(s),
            SeriesData::Counter(s) => sum(s),
            SeriesData::Histogram(s) => sum(s),
        }
    }
}

/// Points returned by [`Tsdb::query`], matching the series kind.
#[derive(Debug, Clone, PartialEq)]
pub enum SeriesPoints {
    /// Gauge observations.
    Gauge(Vec<GaugePoint>),
    /// Cumulative counter observations.
    Counter(Vec<CounterPoint>),
    /// Histogram increments.
    Histogram(Vec<HistPoint>),
}

impl SeriesPoints {
    /// Number of points in the result.
    pub fn len(&self) -> usize {
        match self {
            SeriesPoints::Gauge(v) => v.len(),
            SeriesPoints::Counter(v) => v.len(),
            SeriesPoints::Histogram(v) => v.len(),
        }
    }

    /// Whether the result holds no points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Per-series metadata from [`Tsdb::series_list`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeriesInfo {
    /// Series name.
    pub name: String,
    /// `gauge`, `counter`, or `histogram`.
    pub kind: &'static str,
    /// Raw points retained.
    pub raw_len: usize,
    /// 10s buckets retained.
    pub mid_len: usize,
    /// 1m buckets retained.
    pub coarse_len: usize,
}

/// Store-wide accounting from [`Tsdb::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TsdbStats {
    /// Number of series.
    pub series: usize,
    /// Approximate bytes currently held.
    pub bytes: u64,
    /// The configured cap.
    pub memory_cap_bytes: usize,
    /// Raw points accepted since creation.
    pub inserted_points: u64,
    /// Points dropped by cap eviction since creation.
    pub evicted_points: u64,
}

#[derive(Debug)]
struct TsdbInner {
    config: TsdbConfig,
    series: BTreeMap<String, SeriesData>,
    bytes: i64,
    inserted: u64,
    evicted: u64,
}

impl TsdbInner {
    fn evict_to_cap(&mut self) {
        while self.bytes > self.config.memory_cap_bytes as i64 {
            if !self.evict_one() {
                break;
            }
            self.evicted += 1;
        }
    }

    /// Drops the globally-oldest point: raw tier first, then 10s, then
    /// 1m; within a tier the smallest timestamp wins, ties broken by the
    /// lexicographically smallest series name. Returns false when no
    /// ring holds any point (open aggregation buckets are not evicted).
    fn evict_one(&mut self) -> bool {
        for tier in [Tier::Raw, Tier::Mid, Tier::Coarse] {
            let mut best: Option<(u64, &str)> = None;
            for (name, data) in &self.series {
                if let Some(t) = data.front_t(tier) {
                    if best.is_none_or(|(bt, _)| t < bt) {
                        best = Some((t, name));
                    }
                }
            }
            if let Some((_, name)) = best {
                let name = name.to_string();
                let freed = self
                    .series
                    .get_mut(&name)
                    .map_or(0, |data| data.pop_front(tier));
                self.bytes -= freed;
                return true;
            }
        }
        false
    }
}

/// The embedded time-series store. Thread-safe; shared as `Arc<Tsdb>`
/// between the sampler, the alert engine, and the HTTP plane.
#[derive(Debug)]
pub struct Tsdb {
    inner: Mutex<TsdbInner>,
}

impl Tsdb {
    /// Creates an empty store with the given sizing.
    pub fn new(config: TsdbConfig) -> Tsdb {
        Tsdb {
            inner: Mutex::new(TsdbInner {
                config,
                series: BTreeMap::new(),
                bytes: 0,
                inserted: 0,
                evicted: 0,
            }),
        }
    }

    fn with_series(
        &self,
        name: &str,
        make: impl FnOnce() -> SeriesData,
        same_kind: impl Fn(&SeriesData) -> bool,
        f: impl FnOnce(&mut SeriesData, &TsdbConfig) -> i64,
    ) {
        let mut inner = self.inner.lock().expect("tsdb poisoned");
        let exists_ok = inner.series.get(name).map(&same_kind);
        match exists_ok {
            Some(true) => {}
            Some(false) => {
                // Kind conflict: last writer wins, mirroring Registry.
                if let Some(old) = inner.series.remove(name) {
                    inner.bytes -= old.total_bytes() + (SERIES_OVERHEAD_BYTES + name.len()) as i64;
                }
                inner.series.insert(name.to_string(), make());
                inner.bytes += (SERIES_OVERHEAD_BYTES + name.len()) as i64;
            }
            None => {
                inner.series.insert(name.to_string(), make());
                inner.bytes += (SERIES_OVERHEAD_BYTES + name.len()) as i64;
            }
        }
        let config = inner.config.clone();
        let delta = inner
            .series
            .get_mut(name)
            .map_or(0, |data| f(data, &config));
        inner.bytes += delta;
        inner.inserted += 1;
        inner.evict_to_cap();
    }

    /// Appends a gauge observation.
    pub fn push_gauge(&self, name: &str, t_ns: u64, value: f64) {
        self.with_series(
            name,
            || SeriesData::Gauge(TieredSeries::new()),
            |d| matches!(d, SeriesData::Gauge(_)),
            |data, cfg| match data {
                SeriesData::Gauge(s) => s.push(
                    GaugePoint {
                        t_ns,
                        last: value,
                        min: value,
                        max: value,
                        sum: value,
                        count: 1,
                    },
                    cfg,
                ),
                _ => 0,
            },
        )
    }

    /// Appends a counter observation (`cumulative` is the running total).
    pub fn push_counter(&self, name: &str, t_ns: u64, cumulative: u64) {
        self.with_series(
            name,
            || SeriesData::Counter(TieredSeries::new()),
            |d| matches!(d, SeriesData::Counter(_)),
            |data, cfg| match data {
                SeriesData::Counter(s) => s.push(
                    CounterPoint {
                        t_ns,
                        value: cumulative,
                    },
                    cfg,
                ),
                _ => 0,
            },
        )
    }

    /// Appends a histogram increment (a sparse bucket delta between two
    /// sampler snapshots — see [`Histogram::sparse_delta`]).
    pub fn push_histogram_delta(
        &self,
        name: &str,
        t_ns: u64,
        count: u64,
        sum: u64,
        buckets: Vec<(u32, u64)>,
        exemplars: Vec<Exemplar>,
    ) {
        self.with_series(
            name,
            || SeriesData::Histogram(TieredSeries::new()),
            |d| matches!(d, SeriesData::Histogram(_)),
            |data, cfg| match data {
                SeriesData::Histogram(s) => s.push(
                    HistPoint {
                        t_ns,
                        count,
                        sum,
                        buckets,
                        exemplars,
                    },
                    cfg,
                ),
                _ => 0,
            },
        )
    }

    /// Every series with its kind and per-tier lengths, name-sorted.
    pub fn series_list(&self) -> Vec<SeriesInfo> {
        let inner = self.inner.lock().expect("tsdb poisoned");
        inner
            .series
            .iter()
            .map(|(name, data)| SeriesInfo {
                name: name.clone(),
                kind: data.kind(),
                raw_len: data.len(Tier::Raw),
                mid_len: data.len(Tier::Mid),
                coarse_len: data.len(Tier::Coarse),
            })
            .collect()
    }

    /// Points of `name` in `tier` with `from_ns <= t_ns <= to_ns`, or
    /// `None` when the series does not exist. The downsampled tiers
    /// return only *sealed* buckets, so they lag raw by up to one
    /// bucket width.
    pub fn query(&self, name: &str, tier: Tier, from_ns: u64, to_ns: u64) -> Option<SeriesPoints> {
        let inner = self.inner.lock().expect("tsdb poisoned");
        inner.series.get(name).map(|data| match data {
            SeriesData::Gauge(s) => SeriesPoints::Gauge(s.range(tier, from_ns, to_ns)),
            SeriesData::Counter(s) => SeriesPoints::Counter(s.range(tier, from_ns, to_ns)),
            SeriesData::Histogram(s) => SeriesPoints::Histogram(s.range(tier, from_ns, to_ns)),
        })
    }

    /// Exact per-second rate of the counter `name` over
    /// `[now - window, now]` from the raw tier: `(last − first) / span`.
    /// `None` without two points spanning a positive interval; a counter
    /// reset (last < first) clamps to 0.
    pub fn rate_per_sec(&self, name: &str, window_ns: u64, now_ns: u64) -> Option<f64> {
        let from = now_ns.saturating_sub(window_ns);
        let points = match self.query(name, Tier::Raw, from, now_ns)? {
            SeriesPoints::Counter(v) => v,
            _ => return None,
        };
        let (first, last) = (points.first()?, points.last()?);
        if last.t_ns <= first.t_ns {
            return None;
        }
        let delta = last.value.saturating_sub(first.value) as f64;
        Some(delta / ((last.t_ns - first.t_ns) as f64 / 1e9))
    }

    /// The window's histogram, rebuilt by summing the raw-tier bucket
    /// deltas in `[now - window, now]`. `None` when the series is
    /// missing or not a histogram; the result may be empty.
    pub fn window_histogram(&self, name: &str, window_ns: u64, now_ns: u64) -> Option<Histogram> {
        let from = now_ns.saturating_sub(window_ns);
        let points = match self.query(name, Tier::Raw, from, now_ns)? {
            SeriesPoints::Histogram(v) => v,
            _ => return None,
        };
        let mut total: Vec<(u32, u64)> = Vec::new();
        for p in &points {
            merge_sparse(&mut total, &p.buckets);
        }
        Some(Histogram::from_sparse(&total))
    }

    /// The `q`-quantile of the values recorded in `[now - window, now]`,
    /// reconstructed from stored histogram deltas. `None` when the
    /// window holds no observations.
    pub fn window_quantile(&self, name: &str, q: f64, window_ns: u64, now_ns: u64) -> Option<f64> {
        let h = self.window_histogram(name, window_ns, now_ns)?;
        if h.is_empty() {
            return None;
        }
        Some(h.quantile(q) as f64)
    }

    /// Exemplars carried by the histogram points in `[now - window,
    /// now]`, merged deterministically (largest values retained).
    pub fn window_exemplars(&self, name: &str, window_ns: u64, now_ns: u64) -> Vec<Exemplar> {
        let from = now_ns.saturating_sub(window_ns);
        let Some(SeriesPoints::Histogram(points)) = self.query(name, Tier::Raw, from, now_ns)
        else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for p in &points {
            merge_exemplars(&mut out, &p.exemplars);
        }
        out
    }

    /// The most recent raw gauge value of `name`.
    pub fn gauge_last(&self, name: &str) -> Option<f64> {
        match self.query(name, Tier::Raw, 0, u64::MAX)? {
            SeriesPoints::Gauge(v) => v.last().map(|p| p.last),
            _ => None,
        }
    }

    /// Mean of the raw gauge observations in `[now - window, now]`.
    pub fn gauge_avg(&self, name: &str, window_ns: u64, now_ns: u64) -> Option<f64> {
        let from = now_ns.saturating_sub(window_ns);
        let points = match self.query(name, Tier::Raw, from, now_ns)? {
            SeriesPoints::Gauge(v) => v,
            _ => return None,
        };
        let count: u64 = points.iter().map(|p| p.count).sum();
        if count == 0 {
            return None;
        }
        let sum: f64 = points.iter().map(|p| p.sum).sum();
        Some(sum / count as f64)
    }

    /// Current accounting: series/byte totals plus the deterministic
    /// insertion and eviction counters.
    pub fn stats(&self) -> TsdbStats {
        let inner = self.inner.lock().expect("tsdb poisoned");
        TsdbStats {
            series: inner.series.len(),
            bytes: inner.bytes.max(0) as u64,
            memory_cap_bytes: inner.config.memory_cap_bytes,
            inserted_points: inner.inserted,
            evicted_points: inner.evicted,
        }
    }
}

/// The sampler's time source. Injectable so tests (and the worker-count
/// parity gate) can drive sampling with a [`ManualClock`] and get
/// bit-identical timestamps, while production uses [`WallClock`].
pub trait SampleClock: Send + Sync + std::fmt::Debug {
    /// Nanoseconds since an arbitrary fixed epoch; must be monotone.
    fn now_ns(&self) -> u64;
}

/// Real time: monotonic nanoseconds since process start.
#[derive(Debug, Default)]
pub struct WallClock;

impl SampleClock for WallClock {
    fn now_ns(&self) -> u64 {
        crate::trace::now_ns()
    }
}

/// A hand-driven clock for deterministic sampling in tests.
#[derive(Debug, Default)]
pub struct ManualClock {
    now_ns: AtomicU64,
}

impl ManualClock {
    /// Creates a clock reading `start_ns`.
    pub fn new(start_ns: u64) -> Arc<ManualClock> {
        Arc::new(ManualClock {
            now_ns: AtomicU64::new(start_ns),
        })
    }

    /// Sets the clock to `t_ns`.
    pub fn set(&self, t_ns: u64) {
        self.now_ns.store(t_ns, Ordering::SeqCst);
    }

    /// Advances the clock by `delta_ns`.
    pub fn advance(&self, delta_ns: u64) {
        self.now_ns.fetch_add(delta_ns, Ordering::SeqCst);
    }
}

impl SampleClock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.now_ns.load(Ordering::SeqCst)
    }
}

/// Snapshots a [`Registry`] into a [`Tsdb`] on a clock-driven cadence.
///
/// Counters store their cumulative value, gauges their current value,
/// and histograms the sparse bucket delta against the sampler's previous
/// snapshot of the same histogram — the store's exact-increment
/// primitive. The first [`Sampler::tick`] samples immediately; later
/// ticks sample only once the injected clock passes the next due time.
#[derive(Debug)]
pub struct Sampler {
    tsdb: Arc<Tsdb>,
    period_ns: u64,
    clock: Arc<dyn SampleClock>,
    next_due_ns: Option<u64>,
    prev_hist: BTreeMap<String, Histogram>,
    ticks: u64,
}

impl Sampler {
    /// Creates a sampler writing into `tsdb` every `period_ns` of
    /// `clock` time.
    pub fn new(tsdb: Arc<Tsdb>, period_ns: u64, clock: Arc<dyn SampleClock>) -> Sampler {
        Sampler {
            tsdb,
            period_ns: period_ns.max(1),
            clock,
            next_due_ns: None,
            prev_hist: BTreeMap::new(),
            ticks: 0,
        }
    }

    /// Samples `registry` if the clock has reached the next due time
    /// (the first call is always due). Returns the sample timestamp when
    /// a sample was taken.
    pub fn tick(&mut self, registry: &Registry) -> Option<u64> {
        let now = self.clock.now_ns();
        if let Some(due) = self.next_due_ns {
            if now < due {
                return None;
            }
        }
        self.sample_at(registry, now);
        self.next_due_ns = Some(now + self.period_ns);
        Some(now)
    }

    /// Number of samples taken.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// The store this sampler writes into.
    pub fn tsdb(&self) -> &Arc<Tsdb> {
        &self.tsdb
    }

    fn sample_at(&mut self, registry: &Registry, t_ns: u64) {
        let snapshot = registry.snapshot();
        for (name, metric) in snapshot.metrics {
            match metric {
                Metric::Counter(v) => self.tsdb.push_counter(&name, t_ns, v),
                Metric::Gauge(v) => self.tsdb.push_gauge(&name, t_ns, v),
                Metric::Histogram(h) => {
                    let (buckets, dcount, dsum) = h.sparse_delta(self.prev_hist.get(&name));
                    self.tsdb.push_histogram_delta(
                        &name,
                        t_ns,
                        dcount,
                        dsum,
                        buckets,
                        h.exemplars().to_vec(),
                    );
                    self.prev_hist.insert(name, h);
                }
            }
        }
        self.ticks += 1;
    }
}

// ---------------------------------------------------------------------
// JSON rendering for /query (ndjson: one object per point).

/// Formats an `f64` as JSON (non-finite → `null`).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

impl GaugePoint {
    /// One ndjson line for `/query`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"t_ns\":{},\"last\":{},\"min\":{},\"max\":{},\"sum\":{},\"count\":{}}}",
            self.t_ns,
            fmt_f64(self.last),
            fmt_f64(self.min),
            fmt_f64(self.max),
            fmt_f64(self.sum),
            self.count
        )
    }
}

impl CounterPoint {
    /// One ndjson line for `/query`.
    pub fn to_json(&self) -> String {
        format!("{{\"t_ns\":{},\"value\":{}}}", self.t_ns, self.value)
    }
}

impl HistPoint {
    /// One ndjson line for `/query`: the increment's count/sum plus
    /// quantiles reconstructed from its sparse buckets, and any
    /// exemplars.
    pub fn to_json(&self) -> String {
        let h = Histogram::from_sparse(&self.buckets);
        let mut out = format!(
            "{{\"t_ns\":{},\"count\":{},\"sum\":{},\"p50\":{},\"p99\":{}",
            self.t_ns,
            self.count,
            self.sum,
            h.p50(),
            h.p99()
        );
        if !self.exemplars.is_empty() {
            out.push_str(",\"exemplars\":[");
            for (i, e) in self.exemplars.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"value\":{},\"trace_id\":{}}}",
                    e.value, e.trace_id
                ));
            }
            out.push(']');
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> TsdbConfig {
        TsdbConfig {
            raw_capacity: 8,
            mid_capacity: 4,
            coarse_capacity: 4,
            memory_cap_bytes: 1 << 20,
        }
    }

    #[test]
    fn gauge_downsampling_preserves_extremes_and_means() {
        let db = Tsdb::new(small_config());
        // Two 10s buckets: [1,5,3] then [10].
        db.push_gauge("g", 1_000_000_000, 1.0);
        db.push_gauge("g", 2_000_000_000, 5.0);
        db.push_gauge("g", 3_000_000_000, 3.0);
        db.push_gauge("g", 11_000_000_000, 10.0);
        // First bucket sealed into the 10s tier when the second opened.
        let SeriesPoints::Gauge(mid) = db.query("g", Tier::Mid, 0, u64::MAX).unwrap() else {
            panic!("gauge series");
        };
        assert_eq!(mid.len(), 1);
        let b = &mid[0];
        assert_eq!(b.t_ns, 0);
        assert_eq!(b.last, 3.0);
        assert_eq!(b.min, 1.0);
        assert_eq!(b.max, 5.0);
        assert_eq!(b.count, 3);
        assert_eq!(b.sum, 9.0);
        // Raw keeps everything (capacity 8).
        assert_eq!(db.query("g", Tier::Raw, 0, u64::MAX).unwrap().len(), 4);
    }

    #[test]
    fn counter_rate_is_exact_and_reset_safe() {
        let db = Tsdb::new(small_config());
        db.push_counter("c", 0, 100);
        db.push_counter("c", 2_000_000_000, 300);
        // (300 - 100) / 2s = 100/s, exactly.
        assert_eq!(
            db.rate_per_sec("c", 10_000_000_000, 2_000_000_000),
            Some(100.0)
        );
        // Counter reset: rate clamps to 0 instead of going negative.
        db.push_counter("c", 4_000_000_000, 10);
        assert_eq!(
            db.rate_per_sec("c", 3_000_000_000, 4_000_000_000),
            Some(0.0)
        );
    }

    #[test]
    fn histogram_deltas_rebuild_window_quantiles() {
        let db = Tsdb::new(small_config());
        let mut h = Histogram::new();
        h.record(1_000);
        let (b, c, s) = h.sparse_delta(None);
        db.push_histogram_delta("h", 1_000_000_000, c, s, b, vec![]);
        let prev = h.clone();
        h.record(50_000);
        h.record(60_000);
        let (b, c, s) = h.sparse_delta(Some(&prev));
        db.push_histogram_delta("h", 2_000_000_000, c, s, b, vec![]);
        // Whole window: all three values.
        let full = db.window_histogram("h", u64::MAX, 2_000_000_000).unwrap();
        assert_eq!(full.count(), 3);
        // Window covering only the second increment: two values, and the
        // p99 reflects them (within bucket error).
        let q = db
            .window_quantile("h", 0.99, 1_500_000_000, 2_000_000_000)
            .unwrap();
        assert!((60_000.0..=60_000.0 * 1.0625).contains(&q), "p99 {q}");
    }

    #[test]
    fn raw_eviction_cannot_lose_downsampled_history() {
        // Raw capacity 2: pushing a full 10s bucket's worth of points
        // trims raw, but the sealed 10s bucket still aggregates all of
        // them because folding happens before the trim.
        let mut cfg = small_config();
        cfg.raw_capacity = 2;
        let db = Tsdb::new(cfg);
        for i in 0..10u64 {
            db.push_gauge("g", i * 1_000_000_000, i as f64);
        }
        db.push_gauge("g", 11_000_000_000, 99.0); // seals bucket 0
        let SeriesPoints::Gauge(mid) = db.query("g", Tier::Mid, 0, u64::MAX).unwrap() else {
            panic!("gauge series");
        };
        assert_eq!(mid[0].count, 10);
        assert_eq!(mid[0].max, 9.0);
        assert_eq!(mid[0].min, 0.0);
        assert_eq!(db.query("g", Tier::Raw, 0, u64::MAX).unwrap().len(), 2);
    }

    #[test]
    fn eviction_is_oldest_first_and_counted() {
        let cfg = TsdbConfig {
            raw_capacity: 1024,
            mid_capacity: 16,
            coarse_capacity: 16,
            // Room for the two series' overhead plus only a few points.
            memory_cap_bytes: 2 * (SERIES_OVERHEAD_BYTES + 1)
                + 8 * std::mem::size_of::<GaugePoint>(),
        };
        let db = Tsdb::new(cfg);
        // Interleave two series; "a" gets the older timestamps.
        for i in 0..20u64 {
            db.push_gauge("a", i * 2_000_000, i as f64);
            db.push_gauge("b", i * 2_000_000 + 1_000_000, i as f64);
        }
        let stats = db.stats();
        assert!(stats.bytes <= stats.memory_cap_bytes as u64);
        assert!(stats.evicted_points > 0);
        assert_eq!(stats.inserted_points, 40);
        // Survivors are the newest points: the oldest remaining "a"
        // timestamp is newer than everything evicted.
        let SeriesPoints::Gauge(a) = db.query("a", Tier::Raw, 0, u64::MAX).unwrap() else {
            panic!("gauge series");
        };
        let SeriesPoints::Gauge(b) = db.query("b", Tier::Raw, 0, u64::MAX).unwrap() else {
            panic!("gauge series");
        };
        let oldest_kept = a
            .first()
            .map(|p| p.t_ns)
            .into_iter()
            .chain(b.first().map(|p| p.t_ns))
            .min()
            .unwrap();
        let total_kept = a.len() + b.len();
        assert_eq!(total_kept as u64 + stats.evicted_points, 40);
        // Every evicted point was older than every kept point.
        assert!(oldest_kept >= stats.evicted_points / 2 * 2_000_000);
    }

    #[test]
    fn soak_one_million_samples_stay_under_cap() {
        let cfg = TsdbConfig {
            raw_capacity: 512,
            mid_capacity: 360,
            coarse_capacity: 1440,
            memory_cap_bytes: 64 << 10,
        };
        let db = Tsdb::new(cfg);
        let names = ["soak.a", "soak.b", "soak.c", "soak.d"];
        for i in 0..250_000u64 {
            let t = i * 1_000_000; // 1ms cadence → crosses many buckets
            for (k, name) in names.iter().enumerate() {
                db.push_gauge(name, t, (i + k as u64) as f64);
            }
            if i % 50_000 == 0 {
                assert!(
                    db.stats().bytes <= db.stats().memory_cap_bytes as u64,
                    "over cap at i={i}: {:?}",
                    db.stats()
                );
            }
        }
        let stats = db.stats();
        assert_eq!(stats.inserted_points, 1_000_000);
        assert!(stats.bytes <= stats.memory_cap_bytes as u64, "{stats:?}");
        assert!(stats.evicted_points > 0);
        assert_eq!(stats.series, 4);
    }

    #[test]
    fn sampler_snapshots_all_metric_kinds_with_exact_deltas() {
        let registry = Registry::new();
        let clock = ManualClock::new(0);
        let db = Arc::new(Tsdb::new(TsdbConfig::default()));
        let mut sampler = Sampler::new(db.clone(), 1_000_000_000, clock.clone());

        registry.counter_add("c", 5);
        registry.gauge_set("g", 1.5);
        registry.histogram_record("h", 1_000);
        assert_eq!(sampler.tick(&registry), Some(0));
        // Not due yet.
        clock.set(500_000_000);
        assert_eq!(sampler.tick(&registry), None);

        registry.counter_add("c", 7);
        registry.histogram_record("h", 2_000);
        clock.set(1_000_000_000);
        assert_eq!(sampler.tick(&registry), Some(1_000_000_000));
        assert_eq!(sampler.ticks(), 2);

        // Counter points are cumulative.
        let SeriesPoints::Counter(c) = db.query("c", Tier::Raw, 0, u64::MAX).unwrap() else {
            panic!("counter series");
        };
        assert_eq!(
            c,
            vec![
                CounterPoint { t_ns: 0, value: 5 },
                CounterPoint {
                    t_ns: 1_000_000_000,
                    value: 12
                }
            ]
        );
        // Histogram points are per-interval deltas: 1 then 1 observation.
        let SeriesPoints::Histogram(h) = db.query("h", Tier::Raw, 0, u64::MAX).unwrap() else {
            panic!("histogram series");
        };
        assert_eq!(h.len(), 2);
        assert_eq!(h[0].count, 1);
        assert_eq!(h[0].sum, 1_000);
        assert_eq!(h[1].count, 1);
        assert_eq!(h[1].sum, 2_000);
        assert_eq!(db.gauge_last("g"), Some(1.5));
    }

    #[test]
    fn query_respects_tier_and_range_bounds() {
        let db = Tsdb::new(small_config());
        for i in 0..5u64 {
            db.push_counter("c", i * 1_000_000_000, i * 10);
        }
        let got = db
            .query("c", Tier::Raw, 1_000_000_000, 3_000_000_000)
            .unwrap();
        assert_eq!(got.len(), 3);
        assert!(db.query("missing", Tier::Raw, 0, u64::MAX).is_none());
        assert!(db.query("c", Tier::Coarse, 0, u64::MAX).unwrap().is_empty());
    }

    #[test]
    fn tier_labels_round_trip() {
        for tier in [Tier::Raw, Tier::Mid, Tier::Coarse] {
            assert_eq!(Tier::parse(tier.label()), Some(tier));
        }
        assert_eq!(Tier::parse("5s"), None);
    }

    #[test]
    fn window_exemplars_merge_across_points() {
        let db = Tsdb::new(small_config());
        db.push_histogram_delta(
            "h",
            1_000_000_000,
            1,
            100,
            vec![(10, 1)],
            vec![Exemplar {
                value: 100,
                trace_id: 1,
            }],
        );
        db.push_histogram_delta(
            "h",
            2_000_000_000,
            1,
            900,
            vec![(40, 1)],
            vec![Exemplar {
                value: 900,
                trace_id: 2,
            }],
        );
        let ex = db.window_exemplars("h", u64::MAX, 2_000_000_000);
        assert_eq!(ex.len(), 2);
        assert_eq!(ex.last().unwrap().trace_id, 2);
    }
}
