//! Plain-text (CSV) import/export of phase traces.
//!
//! Real deployments log LLRP reports to flat files; this module gives the
//! simulator the same interchange format so traces can be saved, diffed,
//! and replayed without pulling a serialization framework into the public
//! API. The format is a header line followed by one row per sample:
//!
//! ```text
//! time,x,y,z,phase,rssi_dbm,frequency_hz
//! 0.000000,-0.500000,0.000000,0.000000,2.094395,3.875061,920625000
//! ```

use std::io::{BufRead, Write};

use lion_geom::Point3;

use crate::scenario::{PhaseSample, PhaseTrace};
use crate::SimError;

/// The CSV header emitted and expected by this module.
pub const CSV_HEADER: &str = "time,x,y,z,phase,rssi_dbm,frequency_hz";

impl PhaseTrace {
    /// Serializes the trace to CSV (header + one row per sample).
    pub fn to_csv_string(&self) -> String {
        let mut out = String::with_capacity(32 + self.len() * 96);
        out.push_str(CSV_HEADER);
        out.push('\n');
        for s in self.samples() {
            out.push_str(&format!(
                "{:.6},{:.6},{:.6},{:.6},{:.9},{:.4},{:.0}\n",
                s.time,
                s.position.x,
                s.position.y,
                s.position.z,
                s.phase,
                s.rssi_dbm,
                s.frequency_hz,
            ));
        }
        out
    }

    /// Writes the trace as CSV to any writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_csv<W: Write>(&self, mut writer: W) -> std::io::Result<()> {
        writer.write_all(self.to_csv_string().as_bytes())
    }

    /// Parses a trace from CSV text previously produced by
    /// [`PhaseTrace::to_csv_string`]. The wavelength is reconstructed from
    /// the first sample's carrier frequency.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Parse`] on malformed rows and
    /// [`SimError::InvalidParameter`] on an empty trace.
    pub fn from_csv_str(text: &str) -> Result<PhaseTrace, SimError> {
        let mut samples = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            if lineno == 0 && trimmed == CSV_HEADER {
                continue;
            }
            let fields: Vec<&str> = trimmed.split(',').collect();
            if fields.len() != 7 {
                return Err(SimError::Parse {
                    line: lineno + 1,
                    detail: format!("expected 7 fields, found {}", fields.len()),
                });
            }
            let parse = |idx: usize| -> Result<f64, SimError> {
                fields[idx].trim().parse().map_err(|_| SimError::Parse {
                    line: lineno + 1,
                    detail: format!("field {} is not a number: {:?}", idx + 1, fields[idx]),
                })
            };
            let sample = PhaseSample {
                time: parse(0)?,
                position: Point3::new(parse(1)?, parse(2)?, parse(3)?),
                phase: parse(4)?,
                rssi_dbm: parse(5)?,
                frequency_hz: parse(6)?,
            };
            if !sample.position.is_finite() || !sample.time.is_finite() || !sample.phase.is_finite()
            {
                return Err(SimError::Parse {
                    line: lineno + 1,
                    detail: "non-finite value".to_string(),
                });
            }
            samples.push(sample);
        }
        let first_freq =
            samples
                .first()
                .map(|s| s.frequency_hz)
                .ok_or(SimError::InvalidParameter {
                    parameter: "csv trace",
                    found: "no samples".to_string(),
                })?;
        // NaN-safe: `>` is false for NaN, so NaN frequencies are rejected.
        let freq_ok = first_freq > 0.0;
        if !freq_ok {
            return Err(SimError::Parse {
                line: 2,
                detail: format!("non-positive carrier frequency {first_freq}"),
            });
        }
        Ok(PhaseTrace::new(samples, crate::SPEED_OF_LIGHT / first_freq))
    }

    /// Reads a trace from any buffered reader containing CSV text.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Parse`] wrapping I/O and format problems.
    pub fn read_csv<R: BufRead>(mut reader: R) -> Result<PhaseTrace, SimError> {
        let mut text = String::new();
        reader
            .read_to_string(&mut text)
            .map_err(|e| SimError::Parse {
                line: 0,
                detail: format!("io error: {e}"),
            })?;
        PhaseTrace::from_csv_str(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::antenna::Antenna;
    use crate::scenario::ScenarioBuilder;
    use crate::tag::Tag;
    use lion_geom::LineSegment;

    fn sample_trace() -> PhaseTrace {
        let mut sc = ScenarioBuilder::new()
            .antenna(Antenna::builder(Point3::new(0.0, 0.8, 0.0)).build())
            .tag(Tag::new("csv"))
            .seed(9)
            .build()
            .expect("components set");
        let track = LineSegment::along_x(-0.2, 0.2, 0.0, 0.0).expect("valid");
        sc.scan(&track, 0.1, 50.0).expect("valid scan")
    }

    #[test]
    fn roundtrip_preserves_samples() {
        let trace = sample_trace();
        let csv = trace.to_csv_string();
        assert!(csv.starts_with(CSV_HEADER));
        let back = PhaseTrace::from_csv_str(&csv).expect("parses");
        assert_eq!(back.len(), trace.len());
        assert!((back.wavelength() - trace.wavelength()).abs() < 1e-9);
        for (a, b) in trace.samples().iter().zip(back.samples()) {
            assert!((a.time - b.time).abs() < 1e-6);
            assert!(a.position.distance(b.position) < 1e-5);
            assert!((a.phase - b.phase).abs() < 1e-8);
            assert!((a.rssi_dbm - b.rssi_dbm).abs() < 1e-3);
            assert_eq!(a.frequency_hz.round(), b.frequency_hz.round());
        }
    }

    #[test]
    fn write_csv_matches_string() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        trace.write_csv(&mut buf).expect("writes");
        assert_eq!(String::from_utf8(buf).expect("utf8"), trace.to_csv_string());
    }

    #[test]
    fn read_csv_from_reader() {
        let trace = sample_trace();
        let csv = trace.to_csv_string();
        let back = PhaseTrace::read_csv(csv.as_bytes()).expect("parses");
        assert_eq!(back.len(), trace.len());
    }

    #[test]
    fn parse_errors_are_located() {
        let bad = "time,x,y,z,phase,rssi_dbm,frequency_hz\n1.0,2.0\n";
        match PhaseTrace::from_csv_str(bad) {
            Err(SimError::Parse { line: 2, detail }) => {
                assert!(detail.contains("7 fields"), "{detail}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
        let bad = "0.0,0.0,0.0,0.0,abc,0.0,920625000\n";
        assert!(matches!(
            PhaseTrace::from_csv_str(bad),
            Err(SimError::Parse { line: 1, .. })
        ));
        let nan = "0.0,NaN,0.0,0.0,1.0,0.0,920625000\n";
        assert!(matches!(
            PhaseTrace::from_csv_str(nan),
            Err(SimError::Parse { .. })
        ));
    }

    #[test]
    fn empty_trace_rejected() {
        assert!(matches!(
            PhaseTrace::from_csv_str("time,x,y,z,phase,rssi_dbm,frequency_hz\n"),
            Err(SimError::InvalidParameter { .. })
        ));
        assert!(PhaseTrace::from_csv_str("").is_err());
    }

    #[test]
    fn blank_lines_tolerated() {
        let trace = sample_trace();
        let csv = format!("{}\n\n", trace.to_csv_string());
        let back = PhaseTrace::from_csv_str(&csv).expect("parses");
        assert_eq!(back.len(), trace.len());
    }
}
