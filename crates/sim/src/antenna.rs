//! The antenna model: physical center, hidden phase center, directional
//! gain, and hardware phase offset.

use serde::{Deserialize, Serialize};

use lion_geom::{Point3, Vec3};

/// A directional RFID reader antenna (modeled after the Laird S9028PCL).
///
/// The paper's central observation (Sec. II-A) is that the point from which
/// the antenna actually transmits/receives — the **phase center** — is
/// displaced a few centimeters from the **physical center** that an
/// installer can measure with a ruler. The simulator keeps both: signal
/// propagation always uses [`Antenna::phase_center`], while localization
/// baselines that skip calibration are fed [`Antenna::physical_center`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Antenna {
    physical_center: Point3,
    displacement: Vec3,
    boresight: Vec3,
    phase_offset: f64,
    gain_exponent: f64,
    backlobe_gain: f64,
}

impl Antenna {
    /// Starts building an antenna whose physical center is at `position`.
    pub fn builder(position: Point3) -> AntennaBuilder {
        AntennaBuilder::new(position)
    }

    /// The manually measured mounting position.
    pub fn physical_center(&self) -> Point3 {
        self.physical_center
    }

    /// The true signal emission point: `physical_center + displacement`.
    ///
    /// This is the ground truth that LION's phase-center calibration must
    /// recover.
    pub fn phase_center(&self) -> Point3 {
        self.physical_center + self.displacement
    }

    /// The hidden displacement between phase and physical center.
    pub fn phase_center_displacement(&self) -> Vec3 {
        self.displacement
    }

    /// The hardware phase offset `θ_R` (radians) added to every
    /// measurement (paper Eq. 1).
    pub fn phase_offset(&self) -> f64 {
        self.phase_offset
    }

    /// Unit boresight direction (the way the antenna faces).
    pub fn boresight(&self) -> Vec3 {
        self.boresight
    }

    /// One-way field gain toward a point, normalized to 1 on boresight.
    ///
    /// Uses a `cos^n` pattern (`n =` `gain_exponent`) with a small constant
    /// backlobe so the tag remains readable — if weakly — outside the main
    /// beam. Power gain is the square of this field gain, so with the
    /// default `n = 2` the half-power beamwidth (`cos^(2n)(θ) = 0.5`) is
    /// ≈ 65°, matching the S9028PCL datasheet.
    pub fn gain_toward(&self, p: Point3) -> f64 {
        let dir = p - self.phase_center();
        let Some(unit) = dir.normalized() else {
            return 1.0; // co-located: treat as boresight
        };
        let cos = unit.dot(self.boresight);
        if cos <= 0.0 {
            return self.backlobe_gain;
        }
        (cos.powf(self.gain_exponent)).max(self.backlobe_gain)
    }
}

/// Builder for [`Antenna`] (see [`Antenna::builder`]).
///
/// # Example
///
/// ```
/// use lion_geom::{Point3, Vec3};
/// use lion_sim::Antenna;
///
/// let a = Antenna::builder(Point3::new(0.0, 1.0, 0.0))
///     .phase_center_displacement(0.02, -0.01, 0.015)
///     .phase_offset(3.98)
///     .boresight(Vec3::new(0.0, -1.0, 0.0))
///     .build();
/// assert_eq!(a.phase_center(), Point3::new(0.02, 0.99, 0.015));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AntennaBuilder {
    physical_center: Point3,
    displacement: Vec3,
    boresight: Vec3,
    phase_offset: f64,
    gain_exponent: f64,
    backlobe_gain: f64,
}

impl AntennaBuilder {
    fn new(position: Point3) -> Self {
        AntennaBuilder {
            physical_center: position,
            displacement: Vec3::new(0.0, 0.0, 0.0),
            // Antennas in the paper's rig face the track from positive y.
            boresight: Vec3::new(0.0, -1.0, 0.0),
            phase_offset: 0.0,
            gain_exponent: 2.0,
            backlobe_gain: 0.05,
        }
    }

    /// Sets the hidden phase-center displacement (meters). The paper
    /// measured 2–3 cm on real hardware (Sec. II-A).
    pub fn phase_center_displacement(mut self, dx: f64, dy: f64, dz: f64) -> Self {
        self.displacement = Vec3::new(dx, dy, dz);
        self
    }

    /// Sets the hardware phase offset `θ_R` in radians (wrapped into
    /// `[0, 2π)` lazily at measurement time).
    pub fn phase_offset(mut self, theta_r: f64) -> Self {
        self.phase_offset = theta_r;
        self
    }

    /// Sets the boresight direction (normalized internally; a zero vector
    /// falls back to `-y`).
    pub fn boresight(mut self, direction: Vec3) -> Self {
        self.boresight = direction.normalized().unwrap_or(Vec3::new(0.0, -1.0, 0.0));
        self
    }

    /// Sets the `cos^n` field-gain exponent (clamped to ≥ 0; default 2).
    pub fn gain_exponent(mut self, n: f64) -> Self {
        self.gain_exponent = n.max(0.0);
        self
    }

    /// Sets the backlobe field gain floor (clamped to `[0, 1]`; default
    /// 0.05).
    pub fn backlobe_gain(mut self, g: f64) -> Self {
        self.backlobe_gain = g.clamp(0.0, 1.0);
        self
    }

    /// Builds the antenna.
    pub fn build(self) -> Antenna {
        Antenna {
            physical_center: self.physical_center,
            displacement: self.displacement,
            boresight: self.boresight,
            phase_offset: self.phase_offset,
            gain_exponent: self.gain_exponent,
            backlobe_gain: self.backlobe_gain,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_center_is_displaced() {
        let a = Antenna::builder(Point3::new(0.0, 1.0, 0.0))
            .phase_center_displacement(0.02, 0.0, -0.03)
            .build();
        assert_eq!(a.physical_center(), Point3::new(0.0, 1.0, 0.0));
        assert_eq!(a.phase_center(), Point3::new(0.02, 1.0, -0.03));
        assert_eq!(a.phase_center_displacement(), Vec3::new(0.02, 0.0, -0.03));
    }

    #[test]
    fn default_antenna_has_no_displacement() {
        let a = Antenna::builder(Point3::ORIGIN).build();
        assert_eq!(a.phase_center(), a.physical_center());
        assert_eq!(a.phase_offset(), 0.0);
    }

    #[test]
    fn gain_pattern_shape() {
        let a = Antenna::builder(Point3::new(0.0, 1.0, 0.0)).build();
        // Straight down the boresight (toward the track at y=0).
        let on_axis = a.gain_toward(Point3::new(0.0, 0.0, 0.0));
        assert!((on_axis - 1.0).abs() < 1e-12);
        // 45° off axis is attenuated but positive.
        let off = a.gain_toward(Point3::new(1.0, 0.0, 0.0));
        assert!(off < on_axis && off > 0.0);
        // Behind the antenna: backlobe floor.
        let behind = a.gain_toward(Point3::new(0.0, 2.0, 0.0));
        assert_eq!(behind, 0.05);
        // Gain decreases monotonically off axis.
        let g30 = a.gain_toward(Point3::new(0.577, 0.0, 0.0));
        let g60 = a.gain_toward(Point3::new(1.732, 0.0, 0.0));
        assert!(on_axis > g30 && g30 > g60);
    }

    #[test]
    fn half_power_beamwidth_roughly_matches_datasheet() {
        // Power gain = field gain², so the half-power angle solves
        // cos(θ)^(2n) = 0.5; for n = 2 that is ≈ 32.8° → HPBW ≈ 65°.
        let a = Antenna::builder(Point3::ORIGIN).build();
        let theta = 32.76_f64.to_radians();
        let p = Point3::new(theta.sin(), -theta.cos(), 0.0);
        let power = a.gain_toward(p).powi(2);
        assert!((power - 0.5).abs() < 0.02, "power {power}");
    }

    #[test]
    fn boresight_normalized_and_fallback() {
        let a = Antenna::builder(Point3::ORIGIN)
            .boresight(Vec3::new(0.0, -3.0, 0.0))
            .build();
        assert!((a.boresight().norm() - 1.0).abs() < 1e-12);
        let b = Antenna::builder(Point3::ORIGIN)
            .boresight(Vec3::new(0.0, 0.0, 0.0))
            .build();
        assert_eq!(b.boresight(), Vec3::new(0.0, -1.0, 0.0));
    }

    #[test]
    fn gain_at_own_position_is_defined() {
        let a = Antenna::builder(Point3::ORIGIN).build();
        assert_eq!(a.gain_toward(Point3::ORIGIN), 1.0);
    }

    #[test]
    fn builder_clamps() {
        let a = Antenna::builder(Point3::ORIGIN)
            .gain_exponent(-2.0)
            .backlobe_gain(7.0)
            .build();
        // Exponent clamped to 0 → isotropic front hemisphere.
        assert_eq!(a.gain_toward(Point3::new(0.0, -1.0, 0.0)), 1.0);
        // Backlobe clamped to 1.
        assert_eq!(a.gain_toward(Point3::new(0.0, 1.0, 0.0)), 1.0);
    }
}
