//! The tag model: identity, reflection phase offset, backscatter gain.

use serde::{Deserialize, Serialize};

/// A passive UHF RFID tag (modeled after the ImpinJ E41-B / E51 used in the
/// paper).
///
/// Each tag contributes its own phase rotation `θ_T` to every measurement
/// (paper Eq. 1) — Fig. 3 of the paper shows four tags producing four
/// distinct offsets against the same antenna. LION's offset calibration
/// recovers the *combined* `θ_T + θ_R` per antenna–tag pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tag {
    id: String,
    phase_offset: f64,
    backscatter_gain: f64,
}

impl Tag {
    /// Creates a tag with zero phase offset and unit backscatter gain.
    pub fn new(id: impl Into<String>) -> Self {
        Tag {
            id: id.into(),
            phase_offset: 0.0,
            backscatter_gain: 1.0,
        }
    }

    /// Sets the reflection phase offset `θ_T` in radians.
    pub fn with_phase_offset(mut self, theta_t: f64) -> Self {
        self.phase_offset = theta_t;
        self
    }

    /// Sets the backscatter field gain (clamped to be positive).
    pub fn with_backscatter_gain(mut self, gain: f64) -> Self {
        self.backscatter_gain = gain.max(f64::MIN_POSITIVE);
        self
    }

    /// The tag identifier (EPC-like label).
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The reflection phase offset `θ_T` (radians, unwrapped).
    pub fn phase_offset(&self) -> f64 {
        self.phase_offset
    }

    /// The backscatter field gain.
    pub fn backscatter_gain(&self) -> f64 {
        self.backscatter_gain
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let t = Tag::new("E51-01");
        assert_eq!(t.id(), "E51-01");
        assert_eq!(t.phase_offset(), 0.0);
        assert_eq!(t.backscatter_gain(), 1.0);
    }

    #[test]
    fn with_offsets() {
        let t = Tag::new("x")
            .with_phase_offset(1.2)
            .with_backscatter_gain(0.8);
        assert_eq!(t.phase_offset(), 1.2);
        assert_eq!(t.backscatter_gain(), 0.8);
    }

    #[test]
    fn gain_clamped_positive() {
        let t = Tag::new("x").with_backscatter_gain(-1.0);
        assert!(t.backscatter_gain() > 0.0);
    }
}
