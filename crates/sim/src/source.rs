//! Pull-based sample sources: replay a trace (or a live inventory) as a
//! stream of one-at-a-time reads.
//!
//! Offline pipelines consume a whole [`PhaseTrace`]; a deployed reader
//! delivers reads one at a time, slightly out of order (LLRP report
//! batching), and with dropouts. [`SampleSource`] turns any trace into
//! exactly that kind of stream so the online pipeline (`lion-stream`) can
//! be exercised against realistic arrival patterns:
//!
//! - [`SampleSource::replay`] — in-order replay of a recorded trace,
//! - [`SampleSource::with_shuffle`] — bounded out-of-order delivery: each
//!   read may overtake at most `depth − 1` neighbours (a seeded
//!   reservoir shuffle, deterministic per seed),
//! - [`SampleSource::with_drop_probability`] — i.i.d. read loss on top of
//!   whatever the [`crate::Reader`] miss model already removed.
//!
//! The source is a plain [`Iterator`] over [`PhaseSample`]s, so it plugs
//! into `for` loops, adaptors, and channel feeds alike.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use lion_geom::Trajectory;

use crate::reader::Reader;
use crate::scenario::{PhaseSample, PhaseTrace, Scenario};
use crate::SimError;

/// A pull-based stream of reads replayed from a trace.
///
/// # Example
///
/// ```
/// use lion_geom::{LineSegment, Point3};
/// use lion_sim::{Antenna, SampleSource, ScenarioBuilder, Tag};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut scenario = ScenarioBuilder::new()
///     .antenna(Antenna::builder(Point3::new(0.0, 0.8, 0.0)).build())
///     .tag(Tag::new("stream"))
///     .seed(9)
///     .build()?;
/// let track = LineSegment::along_x(-0.3, 0.3, 0.0, 0.0)?;
/// let trace = scenario.scan(&track, 0.1, 50.0)?;
/// let n = trace.len();
/// // Out-of-order, lossy delivery of the same reads.
/// let reads: Vec<_> = SampleSource::replay(&trace)
///     .with_shuffle(8, 7)
///     .with_drop_probability(0.05, 11)
///     .collect();
/// assert!(reads.len() <= n);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SampleSource {
    /// Remaining samples, stored reversed so `next()` pops from the back.
    pending: Vec<PhaseSample>,
    /// Reorder reservoir (empty when delivery is in-order).
    reservoir: Vec<PhaseSample>,
    shuffle_depth: usize,
    drop_probability: f64,
    /// Phase-offset drift injection: ramp start time and rate (rad/s).
    ramp_start: f64,
    ramp_rate: f64,
    rng: StdRng,
    delivered: u64,
    dropped: u64,
}

impl SampleSource {
    /// An in-order, lossless replay of `trace`.
    pub fn replay(trace: &PhaseTrace) -> Self {
        let mut pending: Vec<PhaseSample> = trace.samples().to_vec();
        pending.reverse();
        SampleSource {
            pending,
            reservoir: Vec::new(),
            shuffle_depth: 1,
            drop_probability: 0.0,
            ramp_start: 0.0,
            ramp_rate: 0.0,
            rng: StdRng::seed_from_u64(0),
            delivered: 0,
            dropped: 0,
        }
    }

    /// Runs a full [`Reader::inventory`] pass and replays the resulting
    /// trace — "live" reads including the reader's own miss model and
    /// slot jitter.
    ///
    /// # Errors
    ///
    /// See [`Reader::inventory`].
    pub fn inventory<T: Trajectory + ?Sized>(
        reader: &Reader,
        scenario: &mut Scenario,
        trajectory: &T,
        speed: f64,
    ) -> Result<Self, SimError> {
        Ok(SampleSource::replay(
            &reader.inventory(scenario, trajectory, speed)?,
        ))
    }

    /// Enables bounded out-of-order delivery: reads are emitted from a
    /// `depth`-slot reservoir filled in arrival order and drained in a
    /// seeded random order, so a read can overtake at most `depth − 1`
    /// neighbours. `depth <= 1` keeps delivery in-order.
    pub fn with_shuffle(mut self, depth: usize, seed: u64) -> Self {
        self.shuffle_depth = depth.max(1);
        self.rng = StdRng::seed_from_u64(seed);
        self
    }

    /// Enables i.i.d. read loss at probability `p` (clamped to `[0, 1)`).
    /// Without shuffling the drop draws use their own stream seeded with
    /// `seed ^ 0x5eed`; with shuffling enabled both draws share the
    /// shuffle RNG (still deterministic per shuffle seed).
    pub fn with_drop_probability(mut self, p: f64, seed: u64) -> Self {
        self.drop_probability = if p.is_finite() {
            p.clamp(0.0, 0.999_999)
        } else {
            0.0
        };
        if self.shuffle_depth <= 1 {
            self.rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        }
        self
    }

    /// Injects a phase-offset *drift* starting mid-stream: every sample
    /// with `time >= start_time` gets an extra phase of
    /// `(time − start_time) × rate_rad_per_s`, wrapped to `[0, 2π)` —
    /// the signature of a diversity-phase offset walking away from its
    /// calibrated value (cable aging, a firmware hop-table change).
    ///
    /// The injection keys on the sample's *stream* timestamp, so it is
    /// independent of delivery order (shuffle/drop) and deterministic.
    /// A `rate_rad_per_s` of `0.0` disables the ramp.
    pub fn with_phase_ramp(mut self, start_time: f64, rate_rad_per_s: f64) -> Self {
        self.ramp_start = start_time;
        self.ramp_rate = if rate_rad_per_s.is_finite() {
            rate_rad_per_s
        } else {
            0.0
        };
        self
    }

    /// Reads delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Reads dropped by [`SampleSource::with_drop_probability`] so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Pulls the next read from the input, refilling the reservoir.
    fn pull(&mut self) -> Option<PhaseSample> {
        loop {
            let mut sample = self.pending.pop()?;
            if self.drop_probability > 0.0 && self.rng.gen::<f64>() < self.drop_probability {
                self.dropped += 1;
                continue;
            }
            if self.ramp_rate != 0.0 && sample.time >= self.ramp_start {
                let drift = (sample.time - self.ramp_start) * self.ramp_rate;
                sample.phase = (sample.phase + drift).rem_euclid(std::f64::consts::TAU);
            }
            return Some(sample);
        }
    }
}

impl Iterator for SampleSource {
    type Item = PhaseSample;

    fn next(&mut self) -> Option<PhaseSample> {
        if self.shuffle_depth <= 1 {
            let s = self.pull();
            if s.is_some() {
                self.delivered += 1;
            }
            return s;
        }
        // Reservoir shuffle: keep up to `depth` reads buffered, emit a
        // uniformly chosen one each step.
        while self.reservoir.len() < self.shuffle_depth {
            match self.pull() {
                Some(s) => self.reservoir.push(s),
                None => break,
            }
        }
        if self.reservoir.is_empty() {
            return None;
        }
        let idx = self.rng.gen_range(0..self.reservoir.len());
        self.delivered += 1;
        Some(self.reservoir.swap_remove(idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::antenna::Antenna;
    use crate::noise::NoiseModel;
    use crate::scenario::ScenarioBuilder;
    use crate::tag::Tag;
    use lion_geom::{LineSegment, Point3};

    fn trace(seed: u64) -> PhaseTrace {
        let mut sc = ScenarioBuilder::new()
            .antenna(Antenna::builder(Point3::new(0.0, 0.8, 0.0)).build())
            .tag(Tag::new("src"))
            .noise(NoiseModel::noiseless())
            .seed(seed)
            .build()
            .expect("components set");
        let track = LineSegment::along_x(-0.3, 0.3, 0.0, 0.0).expect("valid");
        sc.scan(&track, 0.1, 50.0).expect("valid scan")
    }

    #[test]
    fn replay_is_lossless_and_in_order() {
        let t = trace(1);
        let reads: Vec<PhaseSample> = SampleSource::replay(&t).collect();
        assert_eq!(reads.len(), t.len());
        assert_eq!(reads, t.samples().to_vec());
    }

    #[test]
    fn shuffle_is_a_permutation_with_bounded_displacement() {
        let t = trace(2);
        let depth = 6;
        let reads: Vec<PhaseSample> = SampleSource::replay(&t).with_shuffle(depth, 42).collect();
        assert_eq!(reads.len(), t.len());
        // Same multiset: re-sorting by time recovers the original trace.
        let mut sorted = reads.clone();
        sorted.sort_by(|a, b| a.time.partial_cmp(&b.time).expect("finite times"));
        assert_eq!(sorted, t.samples().to_vec());
        // Bounded displacement: read i can appear no earlier than
        // position i − (depth − 1).
        for (emit_pos, read) in reads.iter().enumerate() {
            let orig_pos = t
                .samples()
                .iter()
                .position(|s| s == read)
                .expect("read came from the trace");
            assert!(
                emit_pos + depth > orig_pos,
                "read {orig_pos} emitted too early at {emit_pos}"
            );
        }
    }

    #[test]
    fn shuffle_is_deterministic_per_seed() {
        let t = trace(3);
        let a: Vec<PhaseSample> = SampleSource::replay(&t).with_shuffle(8, 7).collect();
        let b: Vec<PhaseSample> = SampleSource::replay(&t).with_shuffle(8, 7).collect();
        let c: Vec<PhaseSample> = SampleSource::replay(&t).with_shuffle(8, 8).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn drops_remove_roughly_p_fraction() {
        let t = trace(4);
        let mut source = SampleSource::replay(&t).with_drop_probability(0.3, 5);
        let reads: Vec<PhaseSample> = source.by_ref().collect();
        let kept = reads.len() as f64 / t.len() as f64;
        assert!((0.55..0.85).contains(&kept), "kept fraction {kept}");
        assert_eq!(source.delivered() as usize, reads.len());
        assert_eq!(source.dropped() as usize, t.len() - reads.len());
    }

    #[test]
    fn phase_ramp_drifts_late_samples_only() {
        let t = trace(5);
        let start = 2.0;
        let rate = 0.5;
        let clean: Vec<PhaseSample> = SampleSource::replay(&t).collect();
        let ramped: Vec<PhaseSample> = SampleSource::replay(&t)
            .with_phase_ramp(start, rate)
            .collect();
        assert_eq!(clean.len(), ramped.len());
        let mut drifted = 0;
        for (c, r) in clean.iter().zip(&ramped) {
            assert_eq!(c.time, r.time);
            if c.time < start {
                assert_eq!(c.phase, r.phase, "pre-ramp sample altered at t={}", c.time);
            } else {
                let expected =
                    (c.phase + (c.time - start) * rate).rem_euclid(std::f64::consts::TAU);
                assert!((r.phase - expected).abs() < 1e-12);
                if r.phase != c.phase {
                    drifted += 1;
                }
            }
        }
        assert!(drifted > 0, "ramp must alter post-start samples");
        // Deterministic, and independent of delivery order: shuffled
        // delivery applies the identical per-sample drift.
        let again: Vec<PhaseSample> = SampleSource::replay(&t)
            .with_phase_ramp(start, rate)
            .collect();
        assert_eq!(ramped, again);
        let mut shuffled: Vec<PhaseSample> = SampleSource::replay(&t)
            .with_phase_ramp(start, rate)
            .with_shuffle(6, 9)
            .collect();
        shuffled.sort_by(|a, b| a.time.partial_cmp(&b.time).expect("finite times"));
        assert_eq!(shuffled, ramped);
    }

    #[test]
    fn inventory_source_streams_reader_output() {
        let mut sc = ScenarioBuilder::new()
            .antenna(Antenna::builder(Point3::new(0.0, 0.8, 0.0)).build())
            .tag(Tag::new("src"))
            .seed(6)
            .build()
            .expect("components set");
        let track = LineSegment::along_x(-0.2, 0.2, 0.0, 0.0).expect("valid");
        let reader = Reader::new(crate::reader::InventoryConfig::default());
        let reads: Vec<PhaseSample> = SampleSource::inventory(&reader, &mut sc, &track, 0.1)
            .expect("valid inventory")
            .collect();
        assert!(reads.len() > 100);
        for w in reads.windows(2) {
            assert!(w[1].time >= w[0].time);
        }
    }
}
