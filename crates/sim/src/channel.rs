//! The backscatter channel: complex superposition of the direct path and
//! reflector paths.

use lion_geom::Point3;

use crate::antenna::Antenna;
use crate::environment::Environment;
use crate::rf::round_trip_phase;
use crate::tag::Tag;

/// The coherent channel response for one interrogation: everything about
/// the measurement except hardware offsets and thermal noise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelResponse {
    /// Magnitude of the coherent sum of all propagation paths.
    pub amplitude: f64,
    /// Argument of the coherent sum (radians, unwrapped within one
    /// interrogation but reported in `(-π, π]`).
    pub phase: f64,
    /// Amplitude of the line-of-sight path alone (diagnostics: the ratio
    /// `amplitude_los / amplitude` reveals multipath severity).
    pub amplitude_los: f64,
}

/// Computes the coherent channel response between `antenna` and `tag` at
/// `tag_position` for carrier `wavelength`.
///
/// Paths modeled (field amplitudes, distances one-way):
///
/// 1. **direct** round trip `2d`: `a = (g·b)/d²` where `g` is the antenna
///    field gain toward the tag and `b` the tag backscatter gain,
/// 2. **mixed** (out direct, back via reflector and vice versa), round trip
///    `d + d₁ + d₂`: `a = 2·(g·b)·(g_r·Γ·b)/(d·d₁·d₂)` …
/// 3. **double-bounce** (both ways via the reflector), round trip
///    `2(d₁ + d₂)`: `a = (g_r·Γ·b)²/(d₁·d₂)²`,
///
/// where `d₁ = |antenna→reflector|`, `d₂ = |reflector→tag|`, `Γ` the
/// reflection coefficient and `g_r` the antenna gain toward the reflector.
/// Walls are handled with the image method: the one-way reflected leg has
/// length `d_w = |mirror(antenna) → tag|` and field amplitude
/// `Γ·g_m/d_w`, where `g_m` is the antenna gain toward the mirror-path
/// departure point.
/// All phases follow the paper's convention `θ_d = (2π/λ)·2d` generalized
/// to the round-trip length of each path.
///
/// Distances are measured from the antenna's **phase center** — this is
/// precisely the physical fact LION exploits.
pub fn compute_response(
    antenna: &Antenna,
    tag: &Tag,
    tag_position: Point3,
    environment: &Environment,
    wavelength: f64,
) -> ChannelResponse {
    let pc = antenna.phase_center();
    let d = pc.distance(tag_position).max(1e-6);
    let g = antenna.gain_toward(tag_position);
    let b = tag.backscatter_gain();

    // Direct path.
    let a_los = g * g * b / (d * d);
    let phi_los = round_trip_phase(d, wavelength);
    let mut re = a_los * phi_los.cos();
    let mut im = -a_los * phi_los.sin();

    for r in environment.reflectors() {
        if r.coefficient == 0.0 {
            continue;
        }
        let d1 = pc.distance(r.position).max(1e-6);
        let d2 = r.position.distance(tag_position).max(1e-6);
        let gr = antenna.gain_toward(r.position);
        // One-way "via reflector" effective amplitude.
        let a_ref_leg = gr * r.coefficient / (d1 * d2);
        let a_dir_leg = g / d;

        // Mixed paths (two of them, symmetric): out direct, back reflected.
        let a_mixed = 2.0 * a_dir_leg * a_ref_leg * b;
        let phi_mixed = round_trip_phase((d + d1 + d2) / 2.0, wavelength);
        re += a_mixed * phi_mixed.cos();
        im -= a_mixed * phi_mixed.sin();

        // Double bounce.
        let a_double = a_ref_leg * a_ref_leg * b;
        let phi_double = round_trip_phase(d1 + d2, wavelength);
        re += a_double * phi_double.cos();
        im -= a_double * phi_double.sin();
    }

    for w in environment.walls() {
        if w.coefficient == 0.0 {
            continue;
        }
        let image = w.mirror(pc);
        let dw = image.distance(tag_position).max(1e-6);
        // Departure direction of the wall path: toward the tag's mirror
        // image (equivalently, toward the bounce point).
        let gm = antenna.gain_toward(w.mirror(tag_position));
        let a_wall_leg = gm * w.coefficient / dw;
        let a_dir_leg = g / d;

        // Mixed paths (out direct, back via wall and vice versa).
        let a_mixed = 2.0 * a_dir_leg * a_wall_leg * b;
        let phi_mixed = round_trip_phase((d + dw) / 2.0, wavelength);
        re += a_mixed * phi_mixed.cos();
        im -= a_mixed * phi_mixed.sin();

        // Both ways via the wall.
        let a_double = a_wall_leg * a_wall_leg * b;
        let phi_double = round_trip_phase(dw, wavelength);
        re += a_double * phi_double.cos();
        im -= a_double * phi_double.sin();
    }

    let amplitude = (re * re + im * im).sqrt();
    // Sign convention: θ_d grows with distance, so report −arg(Σ a·e^{−jφ}).
    let phase = (-im).atan2(re);
    ChannelResponse {
        amplitude,
        phase,
        amplitude_los: a_los,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::environment::Reflector;
    use lion_geom::Vec3;
    use lion_linalg_shim::wrap_angle;

    /// Tiny local copy to avoid a dependency cycle in tests.
    mod lion_linalg_shim {
        pub fn wrap_angle(theta: f64) -> f64 {
            let tau = std::f64::consts::TAU;
            let r = theta.rem_euclid(tau);
            if r >= tau {
                r - tau
            } else {
                r
            }
        }
    }

    const LAMBDA: f64 = 0.3256;

    fn plain_antenna(pos: Point3) -> Antenna {
        Antenna::builder(pos).build()
    }

    #[test]
    fn free_space_phase_matches_analytic_formula() {
        let a = plain_antenna(Point3::new(0.0, 1.0, 0.0));
        let t = Tag::new("x");
        for d in [0.3, 0.65, 1.0, 1.7] {
            let pos = Point3::new(0.0, 1.0 - d, 0.0);
            let resp = compute_response(&a, &t, pos, &Environment::free_space(), LAMBDA);
            let expected = wrap_angle(round_trip_phase(d, LAMBDA));
            let got = wrap_angle(resp.phase);
            let diff = (got - expected).abs();
            let diff = diff.min(std::f64::consts::TAU - diff);
            assert!(diff < 1e-9, "d={d}: got {got}, want {expected}");
        }
    }

    #[test]
    fn phase_uses_phase_center_not_physical_center() {
        let displaced = Antenna::builder(Point3::new(0.0, 1.0, 0.0))
            .phase_center_displacement(0.05, 0.0, 0.0)
            .build();
        let reference = plain_antenna(Point3::new(0.05, 1.0, 0.0));
        let t = Tag::new("x");
        let pos = Point3::new(0.3, 0.0, 0.0);
        let r1 = compute_response(&displaced, &t, pos, &Environment::free_space(), LAMBDA);
        let r2 = compute_response(&reference, &t, pos, &Environment::free_space(), LAMBDA);
        assert!((r1.phase - r2.phase).abs() < 1e-12);
        assert!((r1.amplitude - r2.amplitude).abs() < 1e-12);
    }

    #[test]
    fn amplitude_decays_with_distance() {
        let a = plain_antenna(Point3::new(0.0, 2.0, 0.0));
        let t = Tag::new("x");
        let near = compute_response(
            &a,
            &t,
            Point3::new(0.0, 1.5, 0.0),
            &Environment::free_space(),
            LAMBDA,
        );
        let far = compute_response(
            &a,
            &t,
            Point3::new(0.0, 0.0, 0.0),
            &Environment::free_space(),
            LAMBDA,
        );
        assert!(near.amplitude > far.amplitude);
        // 1/d² law: d = 0.5 vs 2.0 → 16x.
        assert!((near.amplitude / far.amplitude - 16.0).abs() < 1e-9);
    }

    #[test]
    fn reflector_perturbs_phase() {
        let a = plain_antenna(Point3::new(0.0, 1.0, 0.0));
        let t = Tag::new("x");
        let pos = Point3::new(0.2, 0.0, 0.0);
        let clean = compute_response(&a, &t, pos, &Environment::free_space(), LAMBDA);
        let env =
            Environment::with_reflectors(vec![Reflector::new(Point3::new(0.8, 0.5, 0.0), 0.6)]);
        let dirty = compute_response(&a, &t, pos, &env, LAMBDA);
        assert!((clean.phase - dirty.phase).abs() > 1e-6);
        // LOS component is unchanged.
        assert!((clean.amplitude_los - dirty.amplitude_los).abs() < 1e-12);
        // Multipath changes total amplitude.
        assert!((clean.amplitude - dirty.amplitude).abs() > 1e-9);
    }

    #[test]
    fn zero_coefficient_reflector_is_noop() {
        let a = plain_antenna(Point3::new(0.0, 1.0, 0.0));
        let t = Tag::new("x");
        let pos = Point3::new(0.2, 0.0, 0.0);
        let clean = compute_response(&a, &t, pos, &Environment::free_space(), LAMBDA);
        let env =
            Environment::with_reflectors(vec![Reflector::new(Point3::new(0.8, 0.5, 0.0), 0.0)]);
        let same = compute_response(&a, &t, pos, &env, LAMBDA);
        assert_eq!(clean, same);
    }

    #[test]
    fn multipath_severity_grows_off_beam() {
        // Same reflector, but a tag far off boresight has weaker LOS and
        // relatively stronger multipath → larger phase distortion. This is
        // the mechanism behind the paper's Fig. 16/17 range effect.
        let a = Antenna::builder(Point3::new(0.0, 0.8, 0.0))
            .boresight(Vec3::new(0.0, -1.0, 0.0))
            .build();
        let t = Tag::new("x");
        let env =
            Environment::with_reflectors(vec![Reflector::new(Point3::new(1.5, 1.0, 0.0), 0.4)]);
        let distortion = |x: f64| {
            let pos = Point3::new(x, 0.0, 0.0);
            let clean = compute_response(&a, &t, pos, &Environment::free_space(), LAMBDA);
            let dirty = compute_response(&a, &t, pos, &env, LAMBDA);
            let d = (clean.phase - dirty.phase).abs();
            d.min(std::f64::consts::TAU - d)
        };
        // Average distortion over a small window (individual points can
        // be lucky due to phase alignment).
        let near: f64 = (0..8).map(|i| distortion(0.05 * i as f64)).sum::<f64>() / 8.0;
        let far: f64 = (0..8)
            .map(|i| distortion(1.1 + 0.05 * i as f64))
            .sum::<f64>()
            / 8.0;
        assert!(far > near, "far {far} should exceed near {near}");
    }

    #[test]
    fn tag_gain_scales_amplitude_linearly() {
        let a = plain_antenna(Point3::new(0.0, 1.0, 0.0));
        let pos = Point3::new(0.0, 0.0, 0.0);
        let strong = compute_response(&a, &Tag::new("s"), pos, &Environment::free_space(), LAMBDA);
        let weak = compute_response(
            &a,
            &Tag::new("w").with_backscatter_gain(0.5),
            pos,
            &Environment::free_space(),
            LAMBDA,
        );
        assert!((strong.amplitude / weak.amplitude - 2.0).abs() < 1e-12);
        // Phase is unaffected by the tag gain in free space.
        assert!((strong.phase - weak.phase).abs() < 1e-12);
    }

    #[test]
    fn wall_path_matches_image_distance() {
        use crate::environment::Wall;
        // Single dominant wall, direct path suppressed by a backlobe-less
        // antenna pointing away: the composite phase approaches the pure
        // image-path phase.
        let a = Antenna::builder(Point3::new(0.0, 1.0, 0.0))
            .backlobe_gain(0.0)
            .build();
        let t = Tag::new("x");
        let mut env = Environment::free_space();
        // Floor at z = −0.5.
        env.add_wall(Wall::new(
            Point3::new(0.0, 0.0, -0.5),
            lion_geom::Vec3::new(0.0, 0.0, 1.0),
            0.8,
        ));
        let tag_pos = Point3::new(0.0, 0.0, 0.0);
        let clean = compute_response(&a, &t, tag_pos, &Environment::free_space(), LAMBDA);
        let with_wall = compute_response(&a, &t, tag_pos, &env, LAMBDA);
        // The wall adds energy and changes the phase.
        assert!(with_wall.amplitude != clean.amplitude);
        let d = (with_wall.phase - clean.phase).abs();
        let d = d.min(std::f64::consts::TAU - d);
        assert!(d > 1e-6, "wall should perturb the phase");
        // LOS diagnostic unchanged.
        assert!((with_wall.amplitude_los - clean.amplitude_los).abs() < 1e-12);
    }

    #[test]
    fn zero_coefficient_wall_is_noop() {
        use crate::environment::Wall;
        let a = plain_antenna(Point3::new(0.0, 1.0, 0.0));
        let t = Tag::new("x");
        let mut env = Environment::free_space();
        env.add_wall(Wall::new(
            Point3::new(0.0, 0.0, -0.5),
            lion_geom::Vec3::new(0.0, 0.0, 1.0),
            0.0,
        ));
        let clean = compute_response(&a, &t, Point3::ORIGIN, &Environment::free_space(), LAMBDA);
        let same = compute_response(&a, &t, Point3::ORIGIN, &env, LAMBDA);
        assert_eq!(clean, same);
    }

    #[test]
    fn coincident_positions_do_not_blow_up() {
        let a = plain_antenna(Point3::ORIGIN);
        let t = Tag::new("x");
        let resp = compute_response(&a, &t, Point3::ORIGIN, &Environment::free_space(), LAMBDA);
        assert!(resp.amplitude.is_finite());
        assert!(resp.phase.is_finite());
    }
}
