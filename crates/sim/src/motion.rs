//! Trajectory-knowledge error: the gap between where the tag *is* and
//! where the control system *says* it is.
//!
//! The paper assumes the tag positions are known exactly ("a tag moving
//! along the known trajectory"). Real sliding tracks and conveyors have
//! encoder quantization, belt slip, and mounting offsets, so the positions
//! fed to the localizer differ from the positions that generated the
//! phases. This module perturbs the *reported* positions of a trace while
//! leaving the phases (generated from the true positions) untouched —
//! enabling sensitivity studies of LION to trajectory error.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use lion_geom::{Point3, Vec3};

use crate::noise::gaussian;
use crate::scenario::{PhaseSample, PhaseTrace};

/// Model of how reported tag positions deviate from true ones.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PositionErrorModel {
    /// Constant offset added to every reported position (mounting error,
    /// datum offset) — meters.
    pub bias: Vec3,
    /// Along-track scale factor error (belt slip / encoder calibration):
    /// reported displacement = true displacement × (1 + `scale_error`).
    /// Displacements are measured from the first sample.
    pub scale_error: f64,
    /// Standard deviation of independent per-sample position jitter
    /// (meters, isotropic).
    pub jitter_std: f64,
}

impl PositionErrorModel {
    /// No error at all (identity).
    pub fn exact() -> Self {
        PositionErrorModel {
            bias: Vec3::new(0.0, 0.0, 0.0),
            scale_error: 0.0,
            jitter_std: 0.0,
        }
    }

    /// A decent industrial encoder: 1 mm datum bias, 0.1% scale error,
    /// 0.5 mm jitter.
    pub fn industrial_encoder() -> Self {
        PositionErrorModel {
            bias: Vec3::new(0.001, 0.0, 0.0),
            scale_error: 0.001,
            jitter_std: 0.0005,
        }
    }

    /// Applies the model to a trace: phases stay untouched (they came from
    /// the true positions); reported positions are perturbed.
    ///
    /// Deterministic for a given `seed`.
    pub fn apply(&self, trace: &PhaseTrace, seed: u64) -> PhaseTrace {
        let mut rng = StdRng::seed_from_u64(seed);
        let origin = trace
            .samples()
            .first()
            .map(|s| s.position)
            .unwrap_or(Point3::ORIGIN);
        let samples: Vec<PhaseSample> = trace
            .samples()
            .iter()
            .map(|s| {
                let true_disp = s.position - origin;
                let scaled = origin + true_disp * (1.0 + self.scale_error);
                let jitter = if self.jitter_std > 0.0 {
                    Vec3::new(
                        gaussian(&mut rng) * self.jitter_std,
                        gaussian(&mut rng) * self.jitter_std,
                        gaussian(&mut rng) * self.jitter_std,
                    )
                } else {
                    Vec3::new(0.0, 0.0, 0.0)
                };
                PhaseSample {
                    position: scaled + self.bias + jitter,
                    ..*s
                }
            })
            .collect();
        PhaseTrace::new(samples, trace.wavelength())
    }
}

impl Default for PositionErrorModel {
    fn default() -> Self {
        PositionErrorModel::exact()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::antenna::Antenna;
    use crate::noise::NoiseModel;
    use crate::scenario::ScenarioBuilder;
    use crate::tag::Tag;
    use lion_geom::LineSegment;

    fn trace() -> PhaseTrace {
        let mut sc = ScenarioBuilder::new()
            .antenna(Antenna::builder(Point3::new(0.0, 0.8, 0.0)).build())
            .tag(Tag::new("enc"))
            .noise(NoiseModel::noiseless())
            .seed(4)
            .build()
            .expect("components set");
        let track = LineSegment::along_x(-0.3, 0.3, 0.0, 0.0).expect("valid");
        sc.scan(&track, 0.1, 50.0).expect("valid scan")
    }

    #[test]
    fn exact_model_is_identity() {
        let t = trace();
        let p = PositionErrorModel::exact().apply(&t, 1);
        assert_eq!(p, t);
    }

    #[test]
    fn bias_shifts_every_position() {
        let t = trace();
        let model = PositionErrorModel {
            bias: Vec3::new(0.01, -0.02, 0.0),
            ..PositionErrorModel::exact()
        };
        let p = model.apply(&t, 1);
        for (a, b) in t.samples().iter().zip(p.samples()) {
            let d = b.position - a.position;
            assert!((d.x - 0.01).abs() < 1e-12);
            assert!((d.y + 0.02).abs() < 1e-12);
            // Phase untouched.
            assert_eq!(a.phase, b.phase);
        }
    }

    #[test]
    fn scale_error_grows_with_displacement() {
        let t = trace();
        let model = PositionErrorModel {
            scale_error: 0.01, // 1%
            ..PositionErrorModel::exact()
        };
        let p = model.apply(&t, 1);
        let first_err = p.samples()[0].position.distance(t.samples()[0].position);
        let last_err = p
            .samples()
            .last()
            .unwrap()
            .position
            .distance(t.samples().last().unwrap().position);
        assert!(first_err < 1e-12, "origin sample is the datum");
        // 0.6 m of travel at 1% → 6 mm at the end.
        assert!((last_err - 0.006).abs() < 1e-9, "end error {last_err}");
    }

    #[test]
    fn jitter_is_zero_mean_and_seeded() {
        let t = trace();
        let model = PositionErrorModel {
            jitter_std: 0.002,
            ..PositionErrorModel::exact()
        };
        let p1 = model.apply(&t, 7);
        let p2 = model.apply(&t, 7);
        assert_eq!(p1, p2, "same seed replays");
        let p3 = model.apply(&t, 8);
        assert_ne!(p1, p3, "different seed differs");
        let mean_err: f64 = p1
            .samples()
            .iter()
            .zip(t.samples())
            .map(|(a, b)| a.position.distance(b.position))
            .sum::<f64>()
            / t.len() as f64;
        // Mean |error| of isotropic Gaussian jitter ≈ 1.6σ.
        assert!((mean_err - 0.0032).abs() < 0.001, "mean error {mean_err}");
    }

    #[test]
    fn industrial_encoder_is_mild() {
        let t = trace();
        let p = PositionErrorModel::industrial_encoder().apply(&t, 1);
        let max_err = p
            .samples()
            .iter()
            .zip(t.samples())
            .map(|(a, b)| a.position.distance(b.position))
            .fold(0.0_f64, f64::max);
        assert!(max_err < 0.006, "max error {max_err}");
    }
}
