//! # lion-sim
//!
//! RF simulation substrate for the LION reproduction (ICDCS 2022).
//!
//! The paper's testbed is an ImpinJ Speedway R420 reader, a Laird S9028PCL
//! directional antenna, and ImpinJ E41-B/E51 tags on a motorized slide. This
//! crate replaces that hardware with a physically faithful model of what the
//! reader reports — per paper Eq. (1):
//!
//! ```text
//! θ = (θ_d + θ_T + θ_R) mod 2π,   θ_d = (2π/λ)·2d
//! ```
//!
//! with every imperfection the paper calibrates away made explicit:
//!
//! - the [`Antenna`]'s **phase center** is displaced from its physical
//!   center (Sec. II-A measured 2–3 cm on real hardware) — signals really
//!   emanate from the hidden phase center,
//! - per-[`Antenna`] and per-[`Tag`] **phase offsets** `θ_R`, `θ_T`
//!   (Sec. II-B, Fig. 3),
//! - **multipath** from point reflectors, summed as complex amplitudes
//!   ([`Environment`]),
//! - **thermal phase noise**, optionally SNR-dependent so samples taken
//!   off-beam or at depth are noisier ([`NoiseModel`]) — this reproduces
//!   the range/depth effects of the paper's Figs. 14 and 16–18.
//!
//! A [`Scenario`] ties these together and produces [`PhaseTrace`]s by
//! scanning a tag along any [`lion_geom::Trajectory`].
//!
//! # Example
//!
//! ```
//! use lion_geom::{LineSegment, Point3};
//! use lion_sim::{Antenna, ScenarioBuilder, Tag};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let antenna = Antenna::builder(Point3::new(0.0, 0.8, 0.0))
//!     .phase_center_displacement(0.02, -0.01, 0.0)
//!     .phase_offset(2.7)
//!     .build();
//! let mut scenario = ScenarioBuilder::new()
//!     .antenna(antenna)
//!     .tag(Tag::new("E51"))
//!     .seed(42)
//!     .build()?;
//! let track = LineSegment::along_x(-0.5, 0.5, 0.0, 0.0)?;
//! let trace = scenario.scan(&track, 0.1, 100.0)?;
//! assert_eq!(trace.len(), 1001);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod antenna;
mod channel;
mod environment;
mod io;
mod motion;
mod noise;
mod reader;
mod rf;
mod scenario;
mod source;
mod tag;

pub use antenna::{Antenna, AntennaBuilder};
pub use channel::{compute_response, ChannelResponse};
pub use environment::{Environment, Reflector, Wall};
pub use io::CSV_HEADER;
pub use motion::PositionErrorModel;
pub use noise::NoiseModel;
pub use reader::{InventoryConfig, MissModel, Reader};
pub use rf::{FrequencyPlan, SPEED_OF_LIGHT, US_DEFAULT_FREQUENCY_HZ};
pub use scenario::{PhaseSample, PhaseTrace, Scenario, ScenarioBuilder};
pub use source::SampleSource;
pub use tag::Tag;

/// Errors produced by the simulation substrate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A scenario was built without a required component.
    MissingComponent {
        /// The missing component name.
        component: &'static str,
    },
    /// An invalid parameter was supplied.
    InvalidParameter {
        /// The parameter name.
        parameter: &'static str,
        /// Display of the offending value.
        found: String,
    },
    /// A geometry error bubbled up from trajectory handling.
    Geometry(lion_geom::GeomError),
    /// A trace file/stream failed to parse.
    Parse {
        /// 1-based line number (0 for stream-level failures).
        line: usize,
        /// Human-readable description.
        detail: String,
    },
}

impl SimError {
    /// A stable snake_case label for this error's variant, independent of
    /// the variant's payload — the same taxonomy contract as
    /// [`lion_core::CoreError::kind`] (used for failure counters and the
    /// workspace-wide `lion::Error::kind`).
    pub fn kind(&self) -> &'static str {
        match self {
            SimError::MissingComponent { .. } => "missing_component",
            SimError::InvalidParameter { .. } => "invalid_parameter",
            SimError::Geometry(_) => "geometry",
            SimError::Parse { .. } => "parse",
        }
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::MissingComponent { component } => {
                write!(f, "scenario is missing required component: {component}")
            }
            SimError::InvalidParameter { parameter, found } => {
                write!(f, "invalid parameter {parameter}: {found}")
            }
            SimError::Geometry(e) => write!(f, "geometry error: {e}"),
            SimError::Parse { line, detail } => {
                write!(f, "trace parse error at line {line}: {detail}")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Geometry(e) => Some(e),
            _ => None,
        }
    }
}

impl From<lion_geom::GeomError> for SimError {
    fn from(e: lion_geom::GeomError) -> Self {
        SimError::Geometry(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = SimError::MissingComponent {
            component: "antenna",
        };
        assert!(e.to_string().contains("antenna"));
        let e = SimError::InvalidParameter {
            parameter: "speed",
            found: "-1".into(),
        };
        assert!(e.to_string().contains("speed"));
        let e: SimError = lion_geom::GeomError::Degenerate { operation: "x" }.into();
        assert!(e.to_string().contains("geometry"));
        let e = SimError::Parse {
            line: 3,
            detail: "bad field".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }
}
