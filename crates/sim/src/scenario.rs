//! Scenario orchestration: a reader interrogating one tag against one
//! antenna, producing timestamped phase traces.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use lion_geom::{Point3, Trajectory};

use crate::antenna::Antenna;
use crate::channel::compute_response;
use crate::environment::Environment;
use crate::noise::NoiseModel;
use crate::rf::FrequencyPlan;
use crate::tag::Tag;
use crate::SimError;

/// One reader report: the tuple LION consumes is `(position, phase)`; the
/// rest (time, RSSI, channel) is the metadata a real LLRP reader attaches.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseSample {
    /// Seconds since the start of the scan.
    pub time: f64,
    /// Ground-truth tag position at the moment of the read.
    pub position: Point3,
    /// Reported phase in `[0, 2π)` radians (paper Eq. 1).
    pub phase: f64,
    /// Received signal strength indicator in dB (arbitrary reference).
    pub rssi_dbm: f64,
    /// Carrier frequency of this read (Hz).
    pub frequency_hz: f64,
}

/// A sequence of phase samples from one scan, plus the context needed to
/// interpret them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseTrace {
    samples: Vec<PhaseSample>,
    wavelength: f64,
}

impl PhaseTrace {
    /// Builds a trace from samples taken at a fixed `wavelength`.
    pub fn new(samples: Vec<PhaseSample>, wavelength: f64) -> Self {
        PhaseTrace {
            samples,
            wavelength,
        }
    }

    /// The samples in time order.
    pub fn samples(&self) -> &[PhaseSample] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` when the trace has no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Carrier wavelength the samples were taken at (meters).
    ///
    /// For hopping plans this is the wavelength of the *first* sample;
    /// per-sample frequencies are on each [`PhaseSample`].
    pub fn wavelength(&self) -> f64 {
        self.wavelength
    }

    /// The raw wrapped phases, in order.
    pub fn phases(&self) -> Vec<f64> {
        self.samples.iter().map(|s| s.phase).collect()
    }

    /// The ground-truth tag positions, in order.
    pub fn positions(&self) -> Vec<Point3> {
        self.samples.iter().map(|s| s.position).collect()
    }

    /// The `(position, wrapped phase)` pairs the localization pipelines
    /// consume.
    pub fn to_measurements(&self) -> Vec<(Point3, f64)> {
        self.samples.iter().map(|s| (s.position, s.phase)).collect()
    }

    /// Concatenates another trace after this one (for stitching separate
    /// scan lines).
    pub fn extend_from(&mut self, other: &PhaseTrace) {
        self.samples.extend_from_slice(&other.samples);
    }
}

/// A complete simulated test rig: antenna + tag + environment + noise +
/// frequency plan + seeded RNG.
///
/// Construct via [`ScenarioBuilder`]. Methods take `&mut self` because each
/// scan consumes randomness; two consecutive identical scans therefore see
/// different noise, exactly like repeated trials on the real rig, while two
/// scenarios built with the same seed replay identically.
#[derive(Debug, Clone)]
pub struct Scenario {
    antenna: Antenna,
    tag: Tag,
    environment: Environment,
    noise: NoiseModel,
    plan: FrequencyPlan,
    rng: StdRng,
}

impl Scenario {
    /// The antenna under test (with its ground-truth phase center).
    pub fn antenna(&self) -> &Antenna {
        &self.antenna
    }

    /// The tag on the trajectory.
    pub fn tag(&self) -> &Tag {
        &self.tag
    }

    /// The propagation environment.
    pub fn environment(&self) -> &Environment {
        &self.environment
    }

    /// The noise model.
    pub fn noise(&self) -> &NoiseModel {
        &self.noise
    }

    /// The frequency plan.
    pub fn frequency_plan(&self) -> &FrequencyPlan {
        &self.plan
    }

    /// Mutable access to the scenario RNG for protocol layers built on
    /// top (e.g. the inventory reader's slotting and miss draws).
    pub(crate) fn rng_mut(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Generates one phase measurement with the tag at `position` at scan
    /// time `time`.
    pub fn measure_at(&mut self, time: f64, position: Point3) -> PhaseSample {
        let lambda = self.plan.wavelength_at(time);
        let resp = compute_response(
            &self.antenna,
            &self.tag,
            position,
            &self.environment,
            lambda,
        );
        let noise = self.noise.sample(&mut self.rng, resp.amplitude);
        let raw = resp.phase + self.tag.phase_offset() + self.antenna.phase_offset() + noise;
        let phase = wrap(raw);
        PhaseSample {
            time,
            position,
            phase,
            rssi_dbm: 20.0 * resp.amplitude.max(1e-12).log10(),
            frequency_hz: self.plan.frequency_at(time),
        }
    }

    /// Scans the tag along `trajectory` at `speed` m/s, sampling at `rate`
    /// Hz (the paper's rig: 10 cm/s, >100 Hz).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for non-positive speed/rate.
    pub fn scan<T: Trajectory + ?Sized>(
        &mut self,
        trajectory: &T,
        speed: f64,
        rate: f64,
    ) -> Result<PhaseTrace, SimError> {
        if !(speed > 0.0 && speed.is_finite()) {
            return Err(SimError::InvalidParameter {
                parameter: "speed",
                found: format!("{speed}"),
            });
        }
        if !(rate > 0.0 && rate.is_finite()) {
            return Err(SimError::InvalidParameter {
                parameter: "rate",
                found: format!("{rate}"),
            });
        }
        let waypoints = trajectory.sample(speed, rate);
        let samples = waypoints
            .iter()
            .map(|w| self.measure_at(w.time, w.position))
            .collect();
        Ok(PhaseTrace::new(samples, self.plan.wavelength_at(0.0)))
    }

    /// Takes `count` reads with the tag static at `position`, `rate` Hz
    /// apart — the setup of the paper's Fig. 3 offset measurement.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for a non-positive rate or
    /// zero count.
    pub fn read_static(
        &mut self,
        position: Point3,
        count: usize,
        rate: f64,
    ) -> Result<PhaseTrace, SimError> {
        if count == 0 {
            return Err(SimError::InvalidParameter {
                parameter: "count",
                found: "0".to_string(),
            });
        }
        if !(rate > 0.0 && rate.is_finite()) {
            return Err(SimError::InvalidParameter {
                parameter: "rate",
                found: format!("{rate}"),
            });
        }
        let samples = (0..count)
            .map(|i| self.measure_at(i as f64 / rate, position))
            .collect();
        Ok(PhaseTrace::new(samples, self.plan.wavelength_at(0.0)))
    }
}

/// Builder for [`Scenario`].
#[derive(Debug, Clone, Default)]
pub struct ScenarioBuilder {
    antenna: Option<Antenna>,
    tag: Option<Tag>,
    environment: Environment,
    noise: NoiseModel,
    plan: FrequencyPlan,
    seed: u64,
}

impl ScenarioBuilder {
    /// Starts a builder with free space, the paper's `N(0, 0.1)` noise, the
    /// paper's fixed 920.625 MHz carrier, and seed 0.
    pub fn new() -> Self {
        ScenarioBuilder::default()
    }

    /// Sets the antenna under test (required).
    pub fn antenna(mut self, antenna: Antenna) -> Self {
        self.antenna = Some(antenna);
        self
    }

    /// Sets the tag (required).
    pub fn tag(mut self, tag: Tag) -> Self {
        self.tag = Some(tag);
        self
    }

    /// Sets the propagation environment (default: free space).
    pub fn environment(mut self, environment: Environment) -> Self {
        self.environment = environment;
        self
    }

    /// Sets the noise model (default: the paper's `N(0, 0.1)`).
    pub fn noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// Sets the frequency plan (default: fixed 920.625 MHz).
    pub fn frequency_plan(mut self, plan: FrequencyPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Sets the RNG seed (default 0): same seed → identical traces.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the scenario.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MissingComponent`] when the antenna or tag was
    /// not set.
    pub fn build(self) -> Result<Scenario, SimError> {
        let antenna = self.antenna.ok_or(SimError::MissingComponent {
            component: "antenna",
        })?;
        let tag = self
            .tag
            .ok_or(SimError::MissingComponent { component: "tag" })?;
        Ok(Scenario {
            antenna,
            tag,
            environment: self.environment,
            noise: self.noise,
            plan: self.plan,
            rng: StdRng::seed_from_u64(self.seed),
        })
    }
}

fn wrap(theta: f64) -> f64 {
    let tau = std::f64::consts::TAU;
    let r = theta.rem_euclid(tau);
    if r >= tau {
        r - tau
    } else {
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rf::{round_trip_phase, US_DEFAULT_FREQUENCY_HZ};
    use lion_geom::LineSegment;

    fn noiseless_scenario(seed: u64) -> Scenario {
        ScenarioBuilder::new()
            .antenna(Antenna::builder(Point3::new(0.0, 0.8, 0.0)).build())
            .tag(Tag::new("t"))
            .noise(NoiseModel::noiseless())
            .seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_requires_components() {
        assert!(matches!(
            ScenarioBuilder::new().build(),
            Err(SimError::MissingComponent {
                component: "antenna"
            })
        ));
        assert!(matches!(
            ScenarioBuilder::new()
                .antenna(Antenna::builder(Point3::ORIGIN).build())
                .build(),
            Err(SimError::MissingComponent { component: "tag" })
        ));
    }

    #[test]
    fn noiseless_phase_matches_eq1() {
        let mut s = ScenarioBuilder::new()
            .antenna(
                Antenna::builder(Point3::new(0.0, 0.8, 0.0))
                    .phase_offset(1.3)
                    .build(),
            )
            .tag(Tag::new("t").with_phase_offset(0.7))
            .noise(NoiseModel::noiseless())
            .build()
            .unwrap();
        let pos = Point3::new(0.2, 0.0, 0.0);
        let sample = s.measure_at(0.0, pos);
        let lambda = crate::SPEED_OF_LIGHT / US_DEFAULT_FREQUENCY_HZ;
        let d = Point3::new(0.0, 0.8, 0.0).distance(pos);
        let expected = wrap(round_trip_phase(d, lambda) + 1.3 + 0.7);
        let diff = (sample.phase - expected).abs();
        let diff = diff.min(std::f64::consts::TAU - diff);
        assert!(diff < 1e-9, "got {}, want {}", sample.phase, expected);
        assert!((0.0..std::f64::consts::TAU).contains(&sample.phase));
    }

    #[test]
    fn scan_produces_expected_sample_count() {
        let mut s = noiseless_scenario(0);
        let track = LineSegment::along_x(-0.5, 0.5, 0.0, 0.0).unwrap();
        let trace = s.scan(&track, 0.1, 100.0).unwrap();
        assert_eq!(trace.len(), 1001);
        assert!(!trace.is_empty());
        assert_eq!(trace.samples()[0].time, 0.0);
        assert_eq!(trace.positions().len(), 1001);
        assert_eq!(trace.phases().len(), 1001);
        assert_eq!(trace.to_measurements().len(), 1001);
        assert!((trace.wavelength() - 0.3256).abs() < 1e-3);
    }

    #[test]
    fn scan_validates_params() {
        let mut s = noiseless_scenario(0);
        let track = LineSegment::along_x(-0.5, 0.5, 0.0, 0.0).unwrap();
        assert!(s.scan(&track, 0.0, 100.0).is_err());
        assert!(s.scan(&track, 0.1, -1.0).is_err());
        assert!(s.scan(&track, f64::NAN, 100.0).is_err());
    }

    #[test]
    fn same_seed_replays_identically() {
        let track = LineSegment::along_x(-0.3, 0.3, 0.0, 0.0).unwrap();
        let t1 = ScenarioBuilder::new()
            .antenna(Antenna::builder(Point3::new(0.0, 0.8, 0.0)).build())
            .tag(Tag::new("t"))
            .seed(7)
            .build()
            .unwrap()
            .scan(&track, 0.1, 50.0)
            .unwrap();
        let t2 = ScenarioBuilder::new()
            .antenna(Antenna::builder(Point3::new(0.0, 0.8, 0.0)).build())
            .tag(Tag::new("t"))
            .seed(7)
            .build()
            .unwrap()
            .scan(&track, 0.1, 50.0)
            .unwrap();
        assert_eq!(t1, t2);
    }

    #[test]
    fn different_seeds_differ() {
        let track = LineSegment::along_x(-0.3, 0.3, 0.0, 0.0).unwrap();
        let make = |seed| {
            ScenarioBuilder::new()
                .antenna(Antenna::builder(Point3::new(0.0, 0.8, 0.0)).build())
                .tag(Tag::new("t"))
                .seed(seed)
                .build()
                .unwrap()
                .scan(&track, 0.1, 50.0)
                .unwrap()
        };
        assert_ne!(make(1), make(2));
    }

    #[test]
    fn consecutive_scans_draw_fresh_noise() {
        let mut s = ScenarioBuilder::new()
            .antenna(Antenna::builder(Point3::new(0.0, 0.8, 0.0)).build())
            .tag(Tag::new("t"))
            .seed(3)
            .build()
            .unwrap();
        let track = LineSegment::along_x(-0.3, 0.3, 0.0, 0.0).unwrap();
        let t1 = s.scan(&track, 0.1, 50.0).unwrap();
        let t2 = s.scan(&track, 0.1, 50.0).unwrap();
        assert_ne!(t1, t2);
    }

    #[test]
    fn static_reads_cluster_around_true_phase() {
        let mut s = ScenarioBuilder::new()
            .antenna(Antenna::builder(Point3::new(0.0, 1.0, 0.0)).build())
            .tag(Tag::new("t"))
            .seed(11)
            .build()
            .unwrap();
        let trace = s
            .read_static(Point3::new(0.0, 0.0, 0.0), 500, 100.0)
            .unwrap();
        assert_eq!(trace.len(), 500);
        // All phases within a few noise std of each other (mod 2π).
        let phases = trace.phases();
        let first = phases[0];
        for p in &phases {
            let d = (p - first).abs();
            let d = d.min(std::f64::consts::TAU - d);
            assert!(d < 0.6, "phase spread too wide: {d}");
        }
        assert!(s.read_static(Point3::ORIGIN, 0, 100.0).is_err());
        assert!(s.read_static(Point3::ORIGIN, 5, 0.0).is_err());
    }

    #[test]
    fn rssi_decreases_with_distance() {
        let mut s = noiseless_scenario(0);
        let near = s.measure_at(0.0, Point3::new(0.0, 0.4, 0.0));
        let far = s.measure_at(0.0, Point3::new(0.0, -0.8, 0.0));
        assert!(near.rssi_dbm > far.rssi_dbm);
    }

    #[test]
    fn trace_extend() {
        let mut s = noiseless_scenario(0);
        let track = LineSegment::along_x(-0.1, 0.1, 0.0, 0.0).unwrap();
        let mut t1 = s.scan(&track, 0.1, 10.0).unwrap();
        let n = t1.len();
        let t2 = s.scan(&track, 0.1, 10.0).unwrap();
        t1.extend_from(&t2);
        assert_eq!(t1.len(), n + t2.len());
    }

    #[test]
    fn hopping_plan_varies_frequency() {
        let mut s = ScenarioBuilder::new()
            .antenna(Antenna::builder(Point3::new(0.0, 0.8, 0.0)).build())
            .tag(Tag::new("t"))
            .frequency_plan(FrequencyPlan::fcc_hopping(0.2))
            .noise(NoiseModel::noiseless())
            .build()
            .unwrap();
        let track = LineSegment::along_x(-0.5, 0.5, 0.0, 0.0).unwrap();
        let trace = s.scan(&track, 0.1, 10.0).unwrap();
        let freqs: std::collections::BTreeSet<u64> = trace
            .samples()
            .iter()
            .map(|s| s.frequency_hz as u64)
            .collect();
        assert!(freqs.len() > 1, "hopping should produce multiple channels");
    }
}
