//! The RF environment: reflectors causing multi-path.

use serde::{Deserialize, Serialize};

use lion_geom::{Point3, Vec3};

/// A point scatterer: an idealized metallic object that re-radiates the
/// reader's signal.
///
/// Real multi-path comes from walls, shelves and machinery; a handful of
/// point scatterers with tuned coefficients reproduces the phenomena the
/// paper fights — phase distortion that grows when the line-of-sight power
/// drops (deep tags, Fig. 14b) or when the tag leaves the main beam
/// (wide scanning ranges, Fig. 16/17).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Reflector {
    /// Scatterer position.
    pub position: Point3,
    /// Field reflection coefficient in `[0, 1]`.
    pub coefficient: f64,
}

impl Reflector {
    /// Creates a reflector, clamping the coefficient to `[0, 1]`.
    pub fn new(position: Point3, coefficient: f64) -> Self {
        Reflector {
            position,
            coefficient: coefficient.clamp(0.0, 1.0),
        }
    }
}

/// A large flat reflector (floor, wall, metal shelf face), handled with
/// the image method: the reflected path behaves as if it came from the
/// antenna's mirror image across the plane.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Wall {
    /// Any point on the wall plane.
    pub point: Point3,
    /// Unit normal of the plane (normalized on construction).
    pub normal: Vec3,
    /// Field reflection coefficient in `[0, 1]`.
    pub coefficient: f64,
}

impl Wall {
    /// Creates a wall; the normal is normalized (a zero normal falls back
    /// to +z, i.e. a floor) and the coefficient clamped to `[0, 1]`.
    pub fn new(point: Point3, normal: Vec3, coefficient: f64) -> Self {
        Wall {
            point,
            normal: normal.normalized().unwrap_or(Vec3::new(0.0, 0.0, 1.0)),
            coefficient: coefficient.clamp(0.0, 1.0),
        }
    }

    /// Mirror image of `p` across the wall plane.
    pub fn mirror(&self, p: Point3) -> Point3 {
        let d = (p - self.point).dot(self.normal);
        p - self.normal * (2.0 * d)
    }
}

/// The propagation environment around the test rig.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Environment {
    reflectors: Vec<Reflector>,
    walls: Vec<Wall>,
}

impl Environment {
    /// Free space: no reflectors at all. This matches the paper's Sec. III
    /// simulations, where the only impairment is Gaussian phase noise.
    pub fn free_space() -> Self {
        Environment::default()
    }

    /// A typical indoor lab: a couple of moderate scatterers placed off to
    /// the sides of the rig, roughly emulating walls/furniture around the
    /// paper's 2.5 m track.
    pub fn indoor_lab() -> Self {
        Environment {
            reflectors: vec![
                Reflector::new(Point3::new(1.8, 0.4, 0.3), 0.12),
                Reflector::new(Point3::new(-1.6, 1.2, -0.2), 0.10),
                Reflector::new(Point3::new(0.5, 2.2, 0.8), 0.08),
            ],
            walls: Vec::new(),
        }
    }

    /// A warehouse-like environment: the lab scatterers plus a concrete
    /// floor 1 m below the rig and a back wall 3 m behind it.
    pub fn warehouse() -> Self {
        let mut env = Environment::indoor_lab();
        env.add_wall(Wall::new(
            Point3::new(0.0, 0.0, -1.0),
            Vec3::new(0.0, 0.0, 1.0),
            0.25,
        ));
        env.add_wall(Wall::new(
            Point3::new(0.0, 3.0, 0.0),
            Vec3::new(0.0, -1.0, 0.0),
            0.2,
        ));
        env
    }

    /// Creates an environment from explicit reflectors.
    pub fn with_reflectors(reflectors: Vec<Reflector>) -> Self {
        Environment {
            reflectors,
            walls: Vec::new(),
        }
    }

    /// Adds a wall.
    pub fn add_wall(&mut self, wall: Wall) -> &mut Self {
        self.walls.push(wall);
        self
    }

    /// The walls.
    pub fn walls(&self) -> &[Wall] {
        &self.walls
    }

    /// Adds a reflector.
    pub fn add_reflector(&mut self, r: Reflector) -> &mut Self {
        self.reflectors.push(r);
        self
    }

    /// The reflectors.
    pub fn reflectors(&self) -> &[Reflector] {
        &self.reflectors
    }

    /// Returns `true` when there is no multi-path.
    pub fn is_free_space(&self) -> bool {
        self.reflectors.is_empty() && self.walls.is_empty()
    }
}

impl FromIterator<Reflector> for Environment {
    fn from_iter<I: IntoIterator<Item = Reflector>>(iter: I) -> Self {
        Environment {
            reflectors: iter.into_iter().collect(),
            walls: Vec::new(),
        }
    }
}

impl Extend<Reflector> for Environment {
    fn extend<I: IntoIterator<Item = Reflector>>(&mut self, iter: I) {
        self.reflectors.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_space_is_empty() {
        assert!(Environment::free_space().is_free_space());
        assert!(Environment::default().reflectors().is_empty());
    }

    #[test]
    fn indoor_lab_has_reflectors() {
        let env = Environment::indoor_lab();
        assert!(!env.is_free_space());
        assert!(env
            .reflectors()
            .iter()
            .all(|r| (0.0..=1.0).contains(&r.coefficient)));
    }

    #[test]
    fn coefficient_clamped() {
        let r = Reflector::new(Point3::ORIGIN, 1.5);
        assert_eq!(r.coefficient, 1.0);
        let r = Reflector::new(Point3::ORIGIN, -0.5);
        assert_eq!(r.coefficient, 0.0);
    }

    #[test]
    fn wall_mirror_is_an_involution() {
        let w = Wall::new(Point3::new(0.0, 0.0, -1.0), Vec3::new(0.0, 0.0, 1.0), 0.3);
        let p = Point3::new(0.5, 0.8, 0.4);
        let m = w.mirror(p);
        // Mirrored across z = −1: z goes from 0.4 to −2.4.
        assert!((m.z + 2.4).abs() < 1e-12);
        assert_eq!(m.x, p.x);
        assert_eq!(m.y, p.y);
        // Mirroring twice returns the original point.
        assert!(w.mirror(m).distance(p) < 1e-12);
        // Points on the plane are fixed.
        let on = Point3::new(1.0, 2.0, -1.0);
        assert!(w.mirror(on).distance(on) < 1e-12);
    }

    #[test]
    fn wall_normal_normalized_and_fallback() {
        let w = Wall::new(Point3::ORIGIN, Vec3::new(0.0, 3.0, 0.0), 2.0);
        assert!((w.normal.norm() - 1.0).abs() < 1e-12);
        assert_eq!(w.coefficient, 1.0);
        let z = Wall::new(Point3::ORIGIN, Vec3::new(0.0, 0.0, 0.0), 0.5);
        assert_eq!(z.normal, Vec3::new(0.0, 0.0, 1.0));
    }

    #[test]
    fn warehouse_has_walls() {
        let env = Environment::warehouse();
        assert_eq!(env.walls().len(), 2);
        assert!(!env.is_free_space());
        let mut e = Environment::free_space();
        assert!(e.is_free_space());
        e.add_wall(Wall::new(Point3::ORIGIN, Vec3::new(0.0, 0.0, 1.0), 0.1));
        assert!(!e.is_free_space());
    }

    #[test]
    fn collect_and_extend() {
        let mut env: Environment = [Reflector::new(Point3::ORIGIN, 0.5)].into_iter().collect();
        assert_eq!(env.reflectors().len(), 1);
        env.extend([Reflector::new(Point3::new(1.0, 0.0, 0.0), 0.1)]);
        assert_eq!(env.reflectors().len(), 2);
        env.add_reflector(Reflector::new(Point3::new(0.0, 1.0, 0.0), 0.2));
        assert_eq!(env.reflectors().len(), 3);
    }
}
