//! Reader inventory layer: EPC Gen2-style interrogation with read misses.
//!
//! A real R420 does not deliver a perfectly regular sample stream: a tag
//! responds only when the forward link powers it up, so reads drop out as
//! the backscatter SNR falls (deep tags, off-beam tags, fades). This layer
//! wraps [`crate::Scenario`] with a probabilistic read-success model so
//! localization pipelines can be tested against realistic irregular
//! traces — LION is agnostic to sample spacing, and this layer proves it.

use rand::Rng;
use serde::{Deserialize, Serialize};

use lion_geom::Trajectory;

use crate::noise::gaussian;
use crate::scenario::{PhaseTrace, Scenario};
use crate::SimError;

/// Probability model for whether an interrogation round yields a read.
///
/// The success probability is a logistic function of the RSSI:
/// `p = 1 / (1 + exp(−(rssi − threshold)/width))`. The `floor`/`ceiling`
/// clamps are applied **after** the logistic is evaluated (they bound its
/// output, they do not reshape its slope), so `floor` puts a lower bound
/// on the probability at any RSSI — however weak — and `ceiling` caps it
/// at any RSSI — however strong. With `rssi_threshold_dbm` at
/// `f64::NEG_INFINITY` the logistic is bypassed entirely and the clamped
/// `ceiling` is returned directly, which is how [`MissModel::always_reads`]
/// (ceiling = 1) pins the probability to exactly 1.0 at every RSSI.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MissModel {
    /// RSSI (dB) at which the read probability is 50%.
    pub rssi_threshold_dbm: f64,
    /// Softness of the transition (dB per logistic unit).
    pub soft_width_db: f64,
    /// Lower clamp on the read probability (stray reads).
    pub floor: f64,
    /// Upper clamp on the read probability (protocol collisions cap it
    /// below 1 even at point-blank range).
    pub ceiling: f64,
}

impl MissModel {
    /// Never miss a read (for analytic tests).
    pub fn always_reads() -> Self {
        MissModel {
            rssi_threshold_dbm: f64::NEG_INFINITY,
            soft_width_db: 1.0,
            floor: 1.0,
            ceiling: 1.0,
        }
    }

    /// A realistic indoor profile: reliable within ~1 m on boresight,
    /// increasingly patchy off-beam and at depth.
    pub fn indoor_default() -> Self {
        MissModel {
            // RSSI here is 20·log10(amplitude); boresight at 0.8 m gives
            // amplitude ≈ 1.56 → ≈ +3.9 dB. Threshold well below that.
            rssi_threshold_dbm: -18.0,
            soft_width_db: 4.0,
            floor: 0.0,
            ceiling: 0.98,
        }
    }

    /// Read probability for a given RSSI.
    pub fn read_probability(&self, rssi_dbm: f64) -> f64 {
        if self.rssi_threshold_dbm == f64::NEG_INFINITY {
            return self.ceiling.clamp(0.0, 1.0);
        }
        let z = (rssi_dbm - self.rssi_threshold_dbm) / self.soft_width_db.max(1e-9);
        let p = 1.0 / (1.0 + (-z).exp());
        p.clamp(self.floor.clamp(0.0, 1.0), self.ceiling.clamp(0.0, 1.0))
    }
}

impl Default for MissModel {
    fn default() -> Self {
        MissModel::indoor_default()
    }
}

/// Inventory configuration: interrogation cadence and miss model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InventoryConfig {
    /// Interrogation attempts per second (the Gen2 query rate).
    pub attempt_rate: f64,
    /// Read-success model.
    pub miss_model: MissModel,
    /// Timing jitter of each attempt as a fraction of the attempt period
    /// (Gen2 slotting makes read timestamps irregular).
    pub timing_jitter: f64,
}

impl Default for InventoryConfig {
    fn default() -> Self {
        InventoryConfig {
            attempt_rate: 120.0,
            miss_model: MissModel::default(),
            timing_jitter: 0.2,
        }
    }
}

/// A reader session wrapping a scenario with the inventory protocol.
#[derive(Debug, Clone)]
pub struct Reader {
    config: InventoryConfig,
}

impl Reader {
    /// Creates a reader with the given inventory configuration.
    pub fn new(config: InventoryConfig) -> Self {
        Reader { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &InventoryConfig {
        &self.config
    }

    /// Inventories a tag moving along `trajectory` at `speed` m/s:
    /// attempts reads at the configured rate and keeps the successful
    /// ones. The returned trace is irregular in time and position.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for non-positive speed or
    /// attempt rate.
    pub fn inventory<T: Trajectory + ?Sized>(
        &self,
        scenario: &mut Scenario,
        trajectory: &T,
        speed: f64,
    ) -> Result<PhaseTrace, SimError> {
        if !(speed > 0.0 && speed.is_finite()) {
            return Err(SimError::InvalidParameter {
                parameter: "speed",
                found: format!("{speed}"),
            });
        }
        let rate = self.config.attempt_rate;
        if !(rate > 0.0 && rate.is_finite()) {
            return Err(SimError::InvalidParameter {
                parameter: "attempt_rate",
                found: format!("{rate}"),
            });
        }
        let length = trajectory.length();
        let total_time = length / speed;
        let attempts = (total_time * rate).floor() as u64 + 1;
        let jitter = self.config.timing_jitter.clamp(0.0, 0.49);
        let mut samples = Vec::new();
        let mut wavelength = None;
        for k in 0..attempts {
            let base_t = k as f64 / rate;
            // Slot jitter: Gaussian perturbation of the attempt time,
            // clamped so ordering is preserved.
            let jt = if jitter > 0.0 {
                (gaussian(scenario.rng_mut()) * jitter / rate).clamp(-0.49 / rate, 0.49 / rate)
            } else {
                0.0
            };
            let t = (base_t + jt).clamp(0.0, total_time);
            let position = trajectory.position(t * speed);
            let sample = scenario.measure_at(t, position);
            if wavelength.is_none() {
                wavelength = Some(scenario.frequency_plan().wavelength_at(t));
            }
            let p = self.config.miss_model.read_probability(sample.rssi_dbm);
            let draw: f64 = scenario.rng_mut().gen();
            if draw < p {
                samples.push(sample);
            }
        }
        let reads = samples.len() as u64;
        let dropped = attempts - reads;
        let read_rate = if attempts > 0 {
            reads as f64 / attempts as f64
        } else {
            0.0
        };
        let registry = lion_obs::global();
        registry.counter_add("sim.reader.attempts", attempts);
        registry.counter_add("sim.reader.reads", reads);
        registry.counter_add("sim.reader.dropped", dropped);
        registry.gauge_set("sim.reader.read_rate", read_rate);
        lion_obs::event!(
            lion_obs::Level::Debug,
            "sim.reader.inventory",
            "attempts" => attempts,
            "reads" => reads,
            "dropped" => dropped,
            "read_rate" => read_rate,
        );
        Ok(PhaseTrace::new(
            samples,
            wavelength.unwrap_or_else(|| scenario.frequency_plan().wavelength_at(0.0)),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::antenna::Antenna;
    use crate::noise::NoiseModel;
    use crate::scenario::ScenarioBuilder;
    use crate::tag::Tag;
    use lion_geom::{LineSegment, Point3};

    fn scenario(seed: u64) -> Scenario {
        ScenarioBuilder::new()
            .antenna(Antenna::builder(Point3::new(0.0, 0.8, 0.0)).build())
            .tag(Tag::new("inv"))
            .noise(NoiseModel::indoor_default())
            .seed(seed)
            .build()
            .expect("components set")
    }

    #[test]
    fn always_reads_keeps_every_attempt() {
        let mut sc = scenario(1);
        let track = LineSegment::along_x(-0.3, 0.3, 0.0, 0.0).expect("valid");
        let reader = Reader::new(InventoryConfig {
            attempt_rate: 100.0,
            miss_model: MissModel::always_reads(),
            timing_jitter: 0.0,
        });
        let trace = reader.inventory(&mut sc, &track, 0.1).expect("valid");
        // 6 s of track at 100 Hz → ~601 attempts (±1 from the floating
        // track length), all successful.
        assert!((600..=601).contains(&trace.len()), "{}", trace.len());
    }

    #[test]
    fn misses_increase_with_distance() {
        let track = LineSegment::along_x(-0.3, 0.3, 0.0, 0.0).expect("valid");
        let reader = Reader::new(InventoryConfig {
            attempt_rate: 100.0,
            miss_model: MissModel {
                rssi_threshold_dbm: -8.0,
                soft_width_db: 3.0,
                floor: 0.0,
                ceiling: 1.0,
            },
            timing_jitter: 0.0,
        });
        // Near antenna (0.8 m depth).
        let mut near_sc = scenario(2);
        let near = reader
            .inventory(&mut near_sc, &track, 0.1)
            .expect("valid")
            .len();
        // Far antenna (2.0 m depth): weaker RSSI, more misses.
        let mut far_sc = ScenarioBuilder::new()
            .antenna(Antenna::builder(Point3::new(0.0, 2.0, 0.0)).build())
            .tag(Tag::new("inv"))
            .seed(2)
            .build()
            .expect("components set");
        let far = reader
            .inventory(&mut far_sc, &track, 0.1)
            .expect("valid")
            .len();
        assert!(far < near, "far {far} should read less than near {near}");
        assert!(far > 0, "far tag should still read sometimes");
    }

    #[test]
    fn always_reads_is_exactly_one_across_the_full_rssi_range() {
        // Pins the documented contract: the clamps apply after the
        // logistic, and `always_reads` bypasses the logistic entirely, so
        // p is exactly 1.0 at ANY RSSI — weak, strong, or infinite.
        let m = MissModel::always_reads();
        let mut rssi = -200.0;
        while rssi <= 200.0 {
            assert_eq!(m.read_probability(rssi), 1.0, "rssi {rssi}");
            rssi += 0.5;
        }
        assert_eq!(m.read_probability(f64::NEG_INFINITY), 1.0);
        assert_eq!(m.read_probability(f64::INFINITY), 1.0);
    }

    #[test]
    fn clamps_apply_after_the_logistic() {
        // A floor ABOVE the logistic's value at weak RSSI must win, and a
        // ceiling BELOW its value at strong RSSI must win — i.e. the
        // clamp bounds the logistic's output rather than reshaping it.
        let m = MissModel {
            rssi_threshold_dbm: 0.0,
            soft_width_db: 1.0,
            floor: 0.2,
            ceiling: 0.8,
        };
        assert_eq!(m.read_probability(-50.0), 0.2);
        assert_eq!(m.read_probability(50.0), 0.8);
        // In between, the raw logistic value passes through untouched.
        assert!((m.read_probability(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn read_probability_shape() {
        let m = MissModel {
            rssi_threshold_dbm: -10.0,
            soft_width_db: 2.0,
            floor: 0.01,
            ceiling: 0.99,
        };
        assert!((m.read_probability(-10.0) - 0.5).abs() < 1e-9);
        assert!(m.read_probability(0.0) > 0.95);
        assert!(m.read_probability(-30.0) <= 0.011);
        // Clamps respected.
        assert!(m.read_probability(-100.0) >= 0.01);
        assert!(m.read_probability(100.0) <= 0.99);
        assert_eq!(MissModel::always_reads().read_probability(-200.0), 1.0);
    }

    #[test]
    fn timestamps_are_ordered_even_with_jitter() {
        let mut sc = scenario(3);
        let track = LineSegment::along_x(-0.5, 0.5, 0.0, 0.0).expect("valid");
        let reader = Reader::new(InventoryConfig {
            attempt_rate: 150.0,
            miss_model: MissModel::indoor_default(),
            timing_jitter: 0.3,
        });
        let trace = reader.inventory(&mut sc, &track, 0.1).expect("valid");
        assert!(trace.len() > 100);
        for w in trace.samples().windows(2) {
            assert!(w[1].time >= w[0].time, "{} then {}", w[0].time, w[1].time);
        }
    }

    #[test]
    fn invalid_params_rejected() {
        let mut sc = scenario(4);
        let track = LineSegment::along_x(-0.1, 0.1, 0.0, 0.0).expect("valid");
        let reader = Reader::new(InventoryConfig::default());
        assert!(reader.inventory(&mut sc, &track, 0.0).is_err());
        let bad = Reader::new(InventoryConfig {
            attempt_rate: 0.0,
            ..InventoryConfig::default()
        });
        assert!(bad.inventory(&mut sc, &track, 0.1).is_err());
    }

    #[test]
    fn inventory_updates_global_telemetry() {
        let mut sc = scenario(6);
        let track = LineSegment::along_x(-0.2, 0.2, 0.0, 0.0).expect("valid");
        let reader = Reader::new(InventoryConfig::default());
        let before = lion_obs::global().snapshot();
        let trace = reader.inventory(&mut sc, &track, 0.1).expect("valid");
        let after = lion_obs::global().snapshot();
        // Counters are process-global and only ever grow, so the deltas
        // are valid even with other tests running in parallel.
        let delta =
            |name: &str| after.counter(name).unwrap_or(0) - before.counter(name).unwrap_or(0);
        assert!(delta("sim.reader.attempts") >= trace.len() as u64);
        assert!(delta("sim.reader.reads") >= trace.len() as u64);
        let rate = after.gauge("sim.reader.read_rate").expect("gauge set");
        assert!((0.0..=1.0).contains(&rate), "{rate}");
    }

    #[test]
    fn irregular_trace_still_localizes() {
        // The positions attached to surviving reads are exact, so LION's
        // pipeline is unaffected by dropouts — this is the point of the
        // layer. (Localization itself is tested in the integration suite;
        // here we just confirm trace integrity.)
        let mut sc = scenario(5);
        let track = LineSegment::along_x(-0.5, 0.5, 0.0, 0.0).expect("valid");
        let reader = Reader::new(InventoryConfig::default());
        let trace = reader.inventory(&mut sc, &track, 0.1).expect("valid");
        let m = trace.to_measurements();
        assert_eq!(m.len(), trace.len());
        assert!(m.iter().all(|(p, t)| p.is_finite() && t.is_finite()));
    }
}
