//! Phase-noise model.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Additive Gaussian phase noise, optionally scaled by the received signal
/// strength.
///
/// The paper's own simulations (Sec. III-A) add `N(0, 0.1)` radians to every
/// generated phase; [`NoiseModel::paper_default`] reproduces that. In the
/// physical model, phase noise from thermal noise scales as `1/√SNR`, so
/// with [`NoiseModel::snr_dependent`] enabled the standard deviation grows
/// as the received amplitude drops below `reference_amplitude` — tags deep
/// in the field or outside the main beam get noisier, which is what drives
/// the depth/range effects in the paper's Figs. 14 and 16–18.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    /// Baseline phase-noise standard deviation (radians).
    pub phase_noise_std: f64,
    /// Scale noise by `reference_amplitude / amplitude` when `true`.
    pub snr_dependent: bool,
    /// Amplitude at which `phase_noise_std` applies exactly.
    pub reference_amplitude: f64,
    /// Upper clamp on the effective standard deviation (radians).
    pub max_phase_noise_std: f64,
}

impl NoiseModel {
    /// The paper's simulation noise: `N(0, 0.1)` radians, SNR-independent.
    pub fn paper_default() -> Self {
        NoiseModel {
            phase_noise_std: 0.1,
            snr_dependent: false,
            reference_amplitude: 1.0,
            max_phase_noise_std: 1.5,
        }
    }

    /// Noise-free measurements (for analytic tests).
    pub fn noiseless() -> Self {
        NoiseModel {
            phase_noise_std: 0.0,
            snr_dependent: false,
            reference_amplitude: 1.0,
            max_phase_noise_std: 0.0,
        }
    }

    /// A realistic indoor model: 0.05 rad at the reference amplitude,
    /// growing as `1/amplitude` for weaker returns.
    ///
    /// The reference amplitude corresponds to a boresight tag at 0.8 m
    /// (the paper's default depth): `gain²/d² = 1/0.64`.
    pub fn indoor_default() -> Self {
        NoiseModel {
            phase_noise_std: 0.05,
            snr_dependent: true,
            reference_amplitude: 1.0 / 0.64,
            max_phase_noise_std: 1.2,
        }
    }

    /// Effective standard deviation for a measurement received with
    /// `amplitude`.
    pub fn effective_std(&self, amplitude: f64) -> f64 {
        if !self.snr_dependent {
            return self.phase_noise_std;
        }
        if amplitude <= 0.0 {
            return self.max_phase_noise_std;
        }
        (self.phase_noise_std * self.reference_amplitude / amplitude).min(self.max_phase_noise_std)
    }

    /// Draws one noise sample (radians) for a measurement with the given
    /// received amplitude.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, amplitude: f64) -> f64 {
        let std = self.effective_std(amplitude);
        if std == 0.0 {
            return 0.0;
        }
        gaussian(rng) * std
    }
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel::paper_default()
    }
}

/// Standard normal sample via the Box–Muller transform (keeps the
/// dependency set to plain `rand`, avoiding `rand_distr`).
pub(crate) fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] so the log is finite.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_default_matches_text() {
        let n = NoiseModel::paper_default();
        assert_eq!(n.phase_noise_std, 0.1);
        assert!(!n.snr_dependent);
        assert_eq!(n.effective_std(0.001), 0.1);
    }

    #[test]
    fn noiseless_is_exactly_zero() {
        let n = NoiseModel::noiseless();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(n.sample(&mut rng, 0.5), 0.0);
        }
    }

    #[test]
    fn snr_scaling() {
        let n = NoiseModel::indoor_default();
        let at_ref = n.effective_std(n.reference_amplitude);
        assert!((at_ref - 0.05).abs() < 1e-12);
        // Half the amplitude → double the noise.
        let weaker = n.effective_std(n.reference_amplitude / 2.0);
        assert!((weaker - 0.1).abs() < 1e-12);
        // Stronger signal → less noise.
        assert!(n.effective_std(n.reference_amplitude * 4.0) < at_ref);
        // Clamped at the maximum.
        assert_eq!(n.effective_std(1e-9), n.max_phase_noise_std);
        assert_eq!(n.effective_std(0.0), n.max_phase_noise_std);
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(1234);
        let samples: Vec<f64> = (0..20_000).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
        assert!(samples.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn sample_scales_with_std() {
        let n = NoiseModel {
            phase_noise_std: 0.2,
            snr_dependent: false,
            reference_amplitude: 1.0,
            max_phase_noise_std: 1.0,
        };
        let mut rng = StdRng::seed_from_u64(99);
        let samples: Vec<f64> = (0..20_000).map(|_| n.sample(&mut rng, 1.0)).collect();
        let var = samples.iter().map(|v| v * v).sum::<f64>() / samples.len() as f64;
        assert!((var.sqrt() - 0.2).abs() < 0.01);
    }
}
