//! RF constants and frequency planning.

use serde::{Deserialize, Serialize};

/// Speed of light in vacuum (m/s).
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;

/// The paper's operating frequency: 920.625 MHz (Sec. V-A).
///
/// The corresponding wavelength is ≈ 32.57 cm, so the half-wavelength
/// ambiguity distance is ≈ 16.3 cm — the "about 16 cm" of Sec. IV-A1.
pub const US_DEFAULT_FREQUENCY_HZ: f64 = 920.625e6;

/// How the reader chooses its carrier frequency over time.
///
/// The paper fixes the reader at 920.625 MHz; FCC-regulated deployments hop
/// across 50 channels in the 902–928 MHz band. Channel hopping breaks the
/// constant-wavelength assumption of naive unwrapping, so LION-style
/// pipelines either fix the channel (as the paper does) or compensate per
/// channel — the hopping variant exists here to test that failure mode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum FrequencyPlan {
    /// A single fixed carrier (Hz).
    Fixed {
        /// Carrier frequency in Hz.
        frequency_hz: f64,
    },
    /// FCC-style hopping: cycle through `channels` (Hz), switching every
    /// `dwell_seconds`.
    Hopping {
        /// Channel center frequencies in Hz.
        channels: Vec<f64>,
        /// Dwell time per channel in seconds.
        dwell_seconds: f64,
    },
}

impl Default for FrequencyPlan {
    fn default() -> Self {
        FrequencyPlan::Fixed {
            frequency_hz: US_DEFAULT_FREQUENCY_HZ,
        }
    }
}

impl FrequencyPlan {
    /// A fixed carrier at the paper's 920.625 MHz.
    pub fn paper_default() -> Self {
        FrequencyPlan::default()
    }

    /// The 50-channel FCC plan (902.75–927.25 MHz, 500 kHz spacing) with a
    /// 0.2 s dwell, in ascending order rather than the pseudo-random FCC
    /// sequence (the sequence does not matter for simulation purposes).
    pub fn fcc_hopping(dwell_seconds: f64) -> Self {
        let channels = (0..50).map(|i| 902.75e6 + i as f64 * 0.5e6).collect();
        FrequencyPlan::Hopping {
            channels,
            dwell_seconds,
        }
    }

    /// Carrier frequency in Hz at time `t` seconds.
    ///
    /// For an empty hopping plan this falls back to the paper default.
    pub fn frequency_at(&self, t: f64) -> f64 {
        match self {
            FrequencyPlan::Fixed { frequency_hz } => *frequency_hz,
            FrequencyPlan::Hopping {
                channels,
                dwell_seconds,
            } => {
                if channels.is_empty() || *dwell_seconds <= 0.0 {
                    return US_DEFAULT_FREQUENCY_HZ;
                }
                let slot = (t / dwell_seconds).floor().max(0.0) as usize;
                channels[slot % channels.len()]
            }
        }
    }

    /// Wavelength in meters at time `t`.
    pub fn wavelength_at(&self, t: f64) -> f64 {
        SPEED_OF_LIGHT / self.frequency_at(t)
    }

    /// Returns the fixed wavelength, or `None` for hopping plans.
    pub fn fixed_wavelength(&self) -> Option<f64> {
        match self {
            FrequencyPlan::Fixed { frequency_hz } => Some(SPEED_OF_LIGHT / frequency_hz),
            FrequencyPlan::Hopping { .. } => None,
        }
    }
}

/// Round-trip phase accumulated over a one-way distance `d` at wavelength
/// `lambda`: `(2π/λ)·2d`, not wrapped.
pub fn round_trip_phase(distance: f64, wavelength: f64) -> f64 {
    4.0 * std::f64::consts::PI * distance / wavelength
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_wavelength_matches_text() {
        let lambda = SPEED_OF_LIGHT / US_DEFAULT_FREQUENCY_HZ;
        assert!((lambda - 0.3256).abs() < 1e-3, "λ = {lambda}");
        // Half wavelength "about 16 cm" (Sec. IV-A1).
        assert!((lambda / 2.0 - 0.163).abs() < 2e-3);
    }

    #[test]
    fn fixed_plan_is_time_invariant() {
        let plan = FrequencyPlan::paper_default();
        assert_eq!(plan.frequency_at(0.0), US_DEFAULT_FREQUENCY_HZ);
        assert_eq!(plan.frequency_at(1e6), US_DEFAULT_FREQUENCY_HZ);
        assert!(plan.fixed_wavelength().is_some());
    }

    #[test]
    fn hopping_cycles_channels() {
        let plan = FrequencyPlan::fcc_hopping(0.2);
        assert_eq!(plan.frequency_at(0.0), 902.75e6);
        assert_eq!(plan.frequency_at(0.25), 903.25e6);
        // Wraps after 50 channels × 0.2 s = 10 s.
        assert_eq!(plan.frequency_at(10.05), 902.75e6);
        assert_eq!(plan.fixed_wavelength(), None);
    }

    #[test]
    fn hopping_degenerate_falls_back() {
        let plan = FrequencyPlan::Hopping {
            channels: vec![],
            dwell_seconds: 0.2,
        };
        assert_eq!(plan.frequency_at(1.0), US_DEFAULT_FREQUENCY_HZ);
        let plan = FrequencyPlan::Hopping {
            channels: vec![915e6],
            dwell_seconds: 0.0,
        };
        assert_eq!(plan.frequency_at(1.0), US_DEFAULT_FREQUENCY_HZ);
    }

    #[test]
    fn round_trip_phase_scales_linearly() {
        let lambda = 0.3256;
        let p1 = round_trip_phase(1.0, lambda);
        let p2 = round_trip_phase(2.0, lambda);
        assert!((p2 - 2.0 * p1).abs() < 1e-12);
        // One half-wavelength of motion is a full 2π of round-trip phase.
        let dp = round_trip_phase(lambda / 2.0, lambda);
        assert!((dp - std::f64::consts::TAU).abs() < 1e-12);
    }
}
