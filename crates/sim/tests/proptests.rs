//! Property-based tests of the RF substrate's physical invariants.

use proptest::prelude::*;
use std::f64::consts::TAU;

use lion_geom::{LineSegment, Point3, Vec3};
use lion_sim::{
    compute_response, Antenna, Environment, NoiseModel, PositionErrorModel, ScenarioBuilder, Tag,
};

const LAMBDA: f64 = 299_792_458.0 / 920.625e6;

fn antenna_at(p: Point3) -> Antenna {
    Antenna::builder(p).build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn free_space_phase_tracks_distance(
        ax in -1.0_f64..1.0,
        ay in 0.5_f64..2.0,
        tx in -1.0_f64..1.0,
    ) {
        // Noise-free free-space phase equals (4π/λ)d mod 2π.
        let a = antenna_at(Point3::new(ax, ay, 0.0));
        let tag_pos = Point3::new(tx, 0.0, 0.0);
        let resp = compute_response(
            &a,
            &Tag::new("p"),
            tag_pos,
            &Environment::free_space(),
            LAMBDA,
        );
        let d = Point3::new(ax, ay, 0.0).distance(tag_pos);
        let expected = (4.0 * std::f64::consts::PI * d / LAMBDA).rem_euclid(TAU);
        let got = resp.phase.rem_euclid(TAU);
        let diff = (got - expected).abs();
        let diff = diff.min(TAU - diff);
        prop_assert!(diff < 1e-9, "phase {got} vs {expected}");
    }

    #[test]
    fn amplitude_monotone_in_distance_on_boresight(
        d1 in 0.2_f64..1.0,
        extra in 0.05_f64..1.0,
    ) {
        let a = antenna_at(Point3::new(0.0, 2.0, 0.0));
        let t = Tag::new("p");
        let near = compute_response(&a, &t, Point3::new(0.0, 2.0 - d1, 0.0), &Environment::free_space(), LAMBDA);
        let far = compute_response(&a, &t, Point3::new(0.0, 2.0 - d1 - extra, 0.0), &Environment::free_space(), LAMBDA);
        prop_assert!(near.amplitude > far.amplitude);
        // Exact 1/d² on boresight.
        let ratio = near.amplitude / far.amplitude;
        let expect = ((d1 + extra) / d1).powi(2);
        prop_assert!((ratio - expect).abs() < 1e-9 * expect);
    }

    #[test]
    fn phase_center_displacement_is_a_pure_translation(
        dx in -0.05_f64..0.05,
        dy in -0.05_f64..0.05,
        tx in -0.5_f64..0.5,
    ) {
        // An antenna with displacement at P behaves exactly like an ideal
        // antenna mounted at P + displacement.
        let displaced = Antenna::builder(Point3::new(0.0, 1.0, 0.0))
            .phase_center_displacement(dx, dy, 0.0)
            .build();
        let reference = antenna_at(Point3::new(dx, 1.0 + dy, 0.0));
        let t = Tag::new("p");
        let pos = Point3::new(tx, 0.0, 0.0);
        let r1 = compute_response(&displaced, &t, pos, &Environment::free_space(), LAMBDA);
        let r2 = compute_response(&reference, &t, pos, &Environment::free_space(), LAMBDA);
        prop_assert!((r1.phase - r2.phase).abs() < 1e-12);
        prop_assert!((r1.amplitude - r2.amplitude).abs() < 1e-12);
    }

    #[test]
    fn hardware_offsets_shift_phase_by_constant(
        theta_r in 0.0_f64..TAU,
        theta_t in 0.0_f64..TAU,
        tx in -0.5_f64..0.5,
    ) {
        let base = ScenarioBuilder::new()
            .antenna(antenna_at(Point3::new(0.0, 0.8, 0.0)))
            .tag(Tag::new("p"))
            .noise(NoiseModel::noiseless())
            .build()
            .expect("components");
        let offset = ScenarioBuilder::new()
            .antenna(
                Antenna::builder(Point3::new(0.0, 0.8, 0.0))
                    .phase_offset(theta_r)
                    .build(),
            )
            .tag(Tag::new("p").with_phase_offset(theta_t))
            .noise(NoiseModel::noiseless())
            .build()
            .expect("components");
        let pos = Point3::new(tx, 0.0, 0.0);
        let p0 = base.clone().measure_at(0.0, pos).phase;
        let p1 = offset.clone().measure_at(0.0, pos).phase;
        let d = (p1 - p0 - theta_r - theta_t).rem_euclid(TAU);
        prop_assert!(d < 1e-9 || (TAU - d) < 1e-9, "shift {d}");
    }

    #[test]
    fn seeded_scans_are_reproducible(
        seed in 0u64..1000,
        depth in 0.4_f64..1.5,
    ) {
        let make = || {
            ScenarioBuilder::new()
                .antenna(antenna_at(Point3::new(0.0, depth, 0.0)))
                .tag(Tag::new("p"))
                .seed(seed)
                .build()
                .expect("components")
                .scan(
                    &LineSegment::along_x(-0.2, 0.2, 0.0, 0.0).expect("valid"),
                    0.1,
                    25.0,
                )
                .expect("valid scan")
        };
        prop_assert_eq!(make(), make());
    }

    #[test]
    fn gain_never_exceeds_boresight(
        px in -2.0_f64..2.0,
        py in -2.0_f64..2.0,
        pz in -2.0_f64..2.0,
        n in 0.5_f64..8.0,
    ) {
        let a = Antenna::builder(Point3::ORIGIN)
            .gain_exponent(n)
            .boresight(Vec3::new(0.0, -1.0, 0.0))
            .build();
        let g = a.gain_toward(Point3::new(px, py, pz));
        prop_assert!((0.0..=1.0).contains(&g), "gain {g}");
    }

    #[test]
    fn position_error_model_preserves_phases(
        bias in -0.02_f64..0.02,
        jitter in 0.0_f64..0.005,
        seed in 0u64..100,
    ) {
        let mut sc = ScenarioBuilder::new()
            .antenna(antenna_at(Point3::new(0.0, 0.8, 0.0)))
            .tag(Tag::new("p"))
            .seed(seed)
            .build()
            .expect("components");
        let trace = sc
            .scan(&LineSegment::along_x(-0.2, 0.2, 0.0, 0.0).expect("valid"), 0.1, 25.0)
            .expect("valid scan");
        let model = PositionErrorModel {
            bias: Vec3::new(bias, 0.0, 0.0),
            scale_error: 0.0,
            jitter_std: jitter,
        };
        let perturbed = model.apply(&trace, seed);
        prop_assert_eq!(perturbed.len(), trace.len());
        for (a, b) in trace.samples().iter().zip(perturbed.samples()) {
            prop_assert_eq!(a.phase, b.phase);
            prop_assert_eq!(a.time, b.time);
        }
    }

    #[test]
    fn csv_roundtrip_is_lossless_enough(
        seed in 0u64..50,
    ) {
        use lion_sim::PhaseTrace;
        let mut sc = ScenarioBuilder::new()
            .antenna(antenna_at(Point3::new(0.0, 0.8, 0.0)))
            .tag(Tag::new("p"))
            .seed(seed)
            .build()
            .expect("components");
        let trace = sc
            .scan(&LineSegment::along_x(-0.1, 0.1, 0.0, 0.0).expect("valid"), 0.1, 20.0)
            .expect("valid scan");
        let back = PhaseTrace::from_csv_str(&trace.to_csv_string()).expect("parses");
        prop_assert_eq!(back.len(), trace.len());
        for (a, b) in trace.samples().iter().zip(back.samples()) {
            prop_assert!(a.position.distance(b.position) < 1e-5);
            prop_assert!((a.phase - b.phase).abs() < 1e-8);
        }
    }
}
