//! Signal preprocessing (paper Sec. IV-A): phase unwrapping and smoothing.
//!
//! A reader reports phases modulo 2π. Because the tag moves much less than
//! half a wavelength between consecutive reads (10 cm/s at >100 Hz ≪
//! 16 cm), consecutive-sample jumps of ≥ π radians must be wrap artifacts
//! and can be removed by adding/subtracting multiples of 2π — after which
//! the profile tracks the true distance variation continuously.

use lion_geom::Point3;
use lion_linalg::stats;

use crate::error::CoreError;

/// Unwraps a wrapped phase sequence (paper Sec. IV-A1).
///
/// Whenever the jump between consecutive values is ≥ π radians, multiples
/// of 2π are added or subtracted until it is below π. The first value is
/// kept as-is.
///
/// # Example
///
/// ```
/// use std::f64::consts::PI;
/// // A true phase decreasing through zero is reported wrapped near 2π.
/// let wrapped = [0.3, 0.1, 2.0 * PI - 0.1, 2.0 * PI - 0.3];
/// let un = lion_core::preprocess::unwrap_phases(&wrapped);
/// let expected = [0.3, 0.1, -0.1, -0.3];
/// for (u, e) in un.iter().zip(expected) {
///     assert!((u - e).abs() < 1e-12);
/// }
/// ```
pub fn unwrap_phases(wrapped: &[f64]) -> Vec<f64> {
    let mut out = wrapped.to_vec();
    let mut revs = Vec::with_capacity(wrapped.len());
    lion_linalg::simd::phase_unwrap_in_place(&mut out, &mut revs);
    out
}

/// Re-wraps an angle into `[0, 2π)` — the inverse direction of
/// [`unwrap_phases`] for a single value.
pub fn wrap_phase(theta: f64) -> f64 {
    stats::wrap_angle(theta)
}

/// One step of the unwrap chain: the unwrapped value for `wrapped` given
/// the previous sample's wrapped and unwrapped values.
///
/// This is how [`crate::IncrementalState`] extends an existing chain when
/// the window slides, instead of re-running [`unwrap_phases`] from the
/// front. The jump normalization is the same while-loop arithmetic, so the
/// recovered integer number of wraps is identical; the *accumulation*
/// differs (`prev_unwrapped + jump` here vs the batch path's running
/// `theta + offset`), which makes the continued chain equal to the batch
/// chain only up to floating-point association — one source of the
/// documented 1e-6 incremental-vs-replay tolerance (DESIGN.md §14).
pub fn unwrap_step(prev_wrapped: f64, prev_unwrapped: f64, wrapped: f64) -> f64 {
    let tau = std::f64::consts::TAU;
    let mut jump = wrapped - prev_wrapped;
    while jump >= std::f64::consts::PI {
        jump -= tau;
    }
    while jump < -std::f64::consts::PI {
        jump += tau;
    }
    prev_unwrapped + jump
}

/// The centered moving-average value at one index, by direct summation
/// over the same `[lo, hi)` span [`stats::moving_average_into`] uses.
///
/// Lets an incremental re-solver re-smooth only the indices whose
/// averaging span changed when the window slid. Direct summation and the
/// batch path's prefix-sum difference agree only up to floating-point
/// association — the other source of the documented 1e-6 tolerance
/// (DESIGN.md §14).
///
/// # Panics
///
/// Panics when `i` is out of bounds.
pub fn smoothed_at(values: &[f64], window: usize, i: usize) -> f64 {
    if window <= 1 || values.len() <= 1 {
        return values[i];
    }
    assert!(i < values.len(), "smoothing index out of bounds");
    let half = window / 2;
    let lo = i.saturating_sub(half);
    let hi = (i + half + (window % 2)).min(values.len()).max(lo + 1);
    let sum: f64 = values[lo..hi].iter().sum();
    sum / (hi - lo) as f64
}

/// A preprocessed phase profile: tag positions with **unwrapped** (and
/// optionally smoothed) phases, ready for the linear model.
///
/// Construct with [`PhaseProfile::from_wrapped`], then optionally
/// [`PhaseProfile::smooth`]. Subsets for the adaptive parameter sweep are
/// taken *after* unwrapping via [`PhaseProfile::restrict_x`] /
/// [`PhaseProfile::decimate`], so wrapping continuity is never broken by
/// filtering.
#[derive(Debug, Clone)]
pub struct PhaseProfile {
    positions: Vec<Point3>,
    /// Structure-of-arrays mirrors of `positions`: one contiguous lane
    /// per axis, kept in sync by every constructor so the solve pipeline
    /// can stream coordinates through the `lion_linalg::simd` kernels
    /// without gathering from the `Point3` array-of-structs view.
    xs: Vec<f64>,
    ys: Vec<f64>,
    zs: Vec<f64>,
    phases: Vec<f64>,
    wavelength: f64,
    /// Revolution-count scratch for the vectorized unwrap; capacity is
    /// retained across rebuilds.
    unwrap_scratch: Vec<f64>,
}

/// The SoA axis lanes and unwrap scratch are derived state — two
/// profiles are equal when their samples and wavelength are.
impl PartialEq for PhaseProfile {
    fn eq(&self, other: &Self) -> bool {
        self.positions == other.positions
            && self.phases == other.phases
            && self.wavelength == other.wavelength
    }
}

impl Default for PhaseProfile {
    /// An empty placeholder profile (no samples, wavelength 1). Exists so
    /// a [`crate::Workspace`] can own a reusable profile and the locate
    /// paths can `mem::take` it without allocating; every use refills it
    /// through [`PhaseProfile::rebuild_from_wrapped`] before solving.
    fn default() -> Self {
        PhaseProfile {
            positions: Vec::new(),
            xs: Vec::new(),
            ys: Vec::new(),
            zs: Vec::new(),
            phases: Vec::new(),
            wavelength: 1.0,
            unwrap_scratch: Vec::new(),
        }
    }
}

impl PhaseProfile {
    /// Builds a profile from `(position, wrapped phase)` measurements taken
    /// at carrier wavelength `wavelength` (meters).
    ///
    /// # Errors
    ///
    /// - [`CoreError::TooFewMeasurements`] for fewer than 2 samples,
    /// - [`CoreError::NonFiniteMeasurement`] for NaN/inf input,
    /// - [`CoreError::InvalidConfig`] for a non-positive wavelength.
    pub fn from_wrapped(
        measurements: &[(Point3, f64)],
        wavelength: f64,
    ) -> Result<Self, CoreError> {
        let mut profile = PhaseProfile::default();
        profile.rebuild_from_wrapped(measurements, wavelength)?;
        Ok(profile)
    }

    /// Refills this profile from wrapped measurements, reusing its
    /// buffers — the allocation-free counterpart of
    /// [`PhaseProfile::from_wrapped`], used by the workspace-staged
    /// locate paths. Validation and unwrap arithmetic are identical
    /// (same operations in the same order), so the resulting phases are
    /// bit-identical to a fresh `from_wrapped` build.
    ///
    /// On error the profile is left empty.
    ///
    /// # Errors
    ///
    /// Same as [`PhaseProfile::from_wrapped`].
    pub fn rebuild_from_wrapped(
        &mut self,
        measurements: &[(Point3, f64)],
        wavelength: f64,
    ) -> Result<(), CoreError> {
        self.clear_samples();
        if measurements.len() < 2 {
            return Err(CoreError::TooFewMeasurements {
                got: measurements.len(),
                needed: 2,
            });
        }
        if !(wavelength > 0.0 && wavelength.is_finite()) {
            return Err(CoreError::InvalidConfig {
                parameter: "wavelength",
                found: format!("{wavelength}"),
            });
        }
        for (i, (p, theta)) in measurements.iter().enumerate() {
            if !p.is_finite() || !theta.is_finite() {
                return Err(CoreError::NonFiniteMeasurement { index: i });
            }
        }
        self.wavelength = wavelength;
        for &(p, theta) in measurements {
            self.push_sample(p, theta);
        }
        lion_linalg::simd::phase_unwrap_in_place(&mut self.phases, &mut self.unwrap_scratch);
        Ok(())
    }

    /// Rebuilds this profile from SoA staging lanes (`xs`/`ys`/`zs` plus
    /// wrapped phases) — the [`crate::SlidingWindow`] streaming path,
    /// which stages its reads column-wise so no `(Point3, f64)` tuple
    /// array is materialized. Validation order and unwrap arithmetic
    /// match [`PhaseProfile::rebuild_from_wrapped`] exactly, so the two
    /// staging routes produce bit-identical profiles.
    ///
    /// On error the profile is left empty.
    ///
    /// # Errors
    ///
    /// Same as [`PhaseProfile::from_wrapped`].
    pub(crate) fn rebuild_from_lanes(
        &mut self,
        xs: &[f64],
        ys: &[f64],
        zs: &[f64],
        wrapped: &[f64],
        wavelength: f64,
    ) -> Result<(), CoreError> {
        debug_assert!(xs.len() == wrapped.len() && ys.len() == wrapped.len());
        debug_assert!(zs.len() == wrapped.len());
        self.clear_samples();
        if wrapped.len() < 2 {
            return Err(CoreError::TooFewMeasurements {
                got: wrapped.len(),
                needed: 2,
            });
        }
        if !(wavelength > 0.0 && wavelength.is_finite()) {
            return Err(CoreError::InvalidConfig {
                parameter: "wavelength",
                found: format!("{wavelength}"),
            });
        }
        for i in 0..wrapped.len() {
            let finite_pos = xs[i].is_finite() && ys[i].is_finite() && zs[i].is_finite();
            if !finite_pos || !wrapped[i].is_finite() {
                return Err(CoreError::NonFiniteMeasurement { index: i });
            }
        }
        self.wavelength = wavelength;
        for i in 0..wrapped.len() {
            self.push_sample(Point3::new(xs[i], ys[i], zs[i]), wrapped[i]);
        }
        lion_linalg::simd::phase_unwrap_in_place(&mut self.phases, &mut self.unwrap_scratch);
        Ok(())
    }

    /// Empties the sample buffers while keeping their capacity.
    fn clear_samples(&mut self) {
        self.positions.clear();
        self.xs.clear();
        self.ys.clear();
        self.zs.clear();
        self.phases.clear();
    }

    /// Appends one sample to both the AoS and SoA views.
    fn push_sample(&mut self, p: Point3, phase: f64) {
        self.positions.push(p);
        self.xs.push(p.x);
        self.ys.push(p.y);
        self.zs.push(p.z);
        self.phases.push(phase);
    }

    /// Builds a profile whose SoA lanes are derived from already-owned
    /// positions/phases — the internal constructor behind
    /// [`PhaseProfile::from_unwrapped`] and the filtering subset makers.
    fn from_parts(positions: Vec<Point3>, phases: Vec<f64>, wavelength: f64) -> PhaseProfile {
        let mut profile = PhaseProfile {
            positions,
            xs: Vec::new(),
            ys: Vec::new(),
            zs: Vec::new(),
            phases,
            wavelength,
            unwrap_scratch: Vec::new(),
        };
        profile.xs.extend(profile.positions.iter().map(|p| p.x));
        profile.ys.extend(profile.positions.iter().map(|p| p.y));
        profile.zs.extend(profile.positions.iter().map(|p| p.z));
        profile
    }

    /// Builds a profile from positions and **already unwrapped** phases.
    ///
    /// # Errors
    ///
    /// Same validations as [`PhaseProfile::from_wrapped`], plus a
    /// [`CoreError::InvalidConfig`] when lengths differ.
    pub fn from_unwrapped(
        positions: Vec<Point3>,
        phases: Vec<f64>,
        wavelength: f64,
    ) -> Result<Self, CoreError> {
        if positions.len() != phases.len() {
            return Err(CoreError::InvalidConfig {
                parameter: "positions/phases",
                found: format!("{} vs {}", positions.len(), phases.len()),
            });
        }
        if positions.len() < 2 {
            return Err(CoreError::TooFewMeasurements {
                got: positions.len(),
                needed: 2,
            });
        }
        if !(wavelength > 0.0 && wavelength.is_finite()) {
            return Err(CoreError::InvalidConfig {
                parameter: "wavelength",
                found: format!("{wavelength}"),
            });
        }
        for (i, p) in positions.iter().enumerate() {
            if !p.is_finite() || !phases[i].is_finite() {
                return Err(CoreError::NonFiniteMeasurement { index: i });
            }
        }
        Ok(PhaseProfile::from_parts(positions, phases, wavelength))
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Returns `true` when the profile has no samples (unreachable through
    /// the validating constructors, but kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The tag positions.
    pub fn positions(&self) -> &[Point3] {
        &self.positions
    }

    /// SoA view of the position x-coordinates.
    pub(crate) fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// SoA view of the position y-coordinates.
    pub(crate) fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// SoA view of the position z-coordinates.
    pub(crate) fn zs(&self) -> &[f64] {
        &self.zs
    }

    /// The unwrapped (and possibly smoothed) phases.
    pub fn phases(&self) -> &[f64] {
        &self.phases
    }

    /// Carrier wavelength (meters).
    pub fn wavelength(&self) -> f64 {
        self.wavelength
    }

    /// Applies a centered moving-average filter to the phases (paper
    /// Sec. IV-A2). A window of 0 or 1 is a no-op.
    pub fn smooth(&mut self, window: usize) {
        self.phases = stats::moving_average(&self.phases, window);
    }

    /// Applies the moving-average filter through caller-provided scratch
    /// buffers — the allocation-free counterpart of
    /// [`PhaseProfile::smooth`], bit-identical by construction (both run
    /// [`stats::moving_average`]'s arithmetic). `prefix` holds the
    /// prefix sums, `tmp` the filtered output before it is swapped in.
    pub fn smooth_with_scratch(
        &mut self,
        window: usize,
        prefix: &mut Vec<f64>,
        tmp: &mut Vec<f64>,
    ) {
        stats::moving_average_into(&self.phases, window, prefix, tmp);
        std::mem::swap(&mut self.phases, tmp);
    }

    /// Distance differences `Δd_t = (λ/4π)·(θ_t − θ_ref)` relative to the
    /// sample at `reference` (paper Eq. 6).
    ///
    /// # Panics
    ///
    /// Panics when `reference` is out of bounds.
    pub fn delta_distances(&self, reference: usize) -> Vec<f64> {
        let mut out = Vec::new();
        self.delta_distances_into(reference, &mut out);
        out
    }

    /// [`PhaseProfile::delta_distances`] into a caller-provided buffer,
    /// reusing its allocation.
    ///
    /// # Panics
    ///
    /// Panics when `reference` is out of bounds.
    pub fn delta_distances_into(&self, reference: usize, out: &mut Vec<f64>) {
        assert!(reference < self.len(), "reference index out of bounds");
        let scale = self.wavelength / (4.0 * std::f64::consts::PI);
        let theta_r = self.phases[reference];
        out.clear();
        out.extend(self.phases.iter().map(|t| scale * (t - theta_r)));
    }

    /// Keeps samples whose x-coordinate lies in `[min_x, max_x]` — the
    /// paper's "scanning range" restriction, applied after unwrapping.
    pub fn restrict_x(&self, min_x: f64, max_x: f64) -> PhaseProfile {
        let keep: Vec<usize> = (0..self.len())
            .filter(|&i| self.positions[i].x >= min_x && self.positions[i].x <= max_x)
            .collect();
        PhaseProfile::from_parts(
            keep.iter().map(|&i| self.positions[i]).collect(),
            keep.iter().map(|&i| self.phases[i]).collect(),
            self.wavelength,
        )
    }

    /// Keeps every `step`-th sample (step 0 behaves like 1).
    pub fn decimate(&self, step: usize) -> PhaseProfile {
        let step = step.max(1);
        PhaseProfile::from_parts(
            self.positions.iter().copied().step_by(step).collect(),
            self.phases.iter().copied().step_by(step).collect(),
            self.wavelength,
        )
    }

    /// Keeps samples satisfying a position predicate.
    pub fn filter_positions(&self, mut keep: impl FnMut(Point3) -> bool) -> PhaseProfile {
        let idx: Vec<usize> = (0..self.len())
            .filter(|&i| keep(self.positions[i]))
            .collect();
        PhaseProfile::from_parts(
            idx.iter().map(|&i| self.positions[i]).collect(),
            idx.iter().map(|&i| self.phases[i]).collect(),
            self.wavelength,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{PI, TAU};

    fn wrap(t: f64) -> f64 {
        stats::wrap_angle(t)
    }

    #[test]
    fn unwrap_recovers_linear_ramp() {
        // A steadily increasing true phase, reported wrapped.
        let truth: Vec<f64> = (0..200).map(|i| 0.05 * i as f64).collect();
        let wrapped: Vec<f64> = truth.iter().map(|&t| wrap(t)).collect();
        let un = unwrap_phases(&wrapped);
        for (u, t) in un.iter().zip(&truth) {
            assert!((u - t).abs() < 1e-9, "{u} vs {t}");
        }
    }

    #[test]
    fn unwrap_recovers_descending_ramp() {
        let truth: Vec<f64> = (0..200).map(|i| 5.0 - 0.07 * i as f64).collect();
        let wrapped: Vec<f64> = truth.iter().map(|&t| wrap(t)).collect();
        let un = unwrap_phases(&wrapped);
        for (u, t) in un.iter().zip(&truth) {
            assert!((u - t).abs() < 1e-9);
        }
    }

    #[test]
    fn unwrap_recovers_v_shape() {
        // Distance to an antenna above the track: phase falls then rises.
        let truth: Vec<f64> = (-100..100)
            .map(|i| {
                let x = i as f64 * 0.002;
                let d = (x * x + 0.64_f64).sqrt();
                4.0 * PI * d / 0.3256
            })
            .collect();
        let wrapped: Vec<f64> = truth.iter().map(|&t| wrap(t)).collect();
        let un = unwrap_phases(&wrapped);
        // Unwrapped differs from truth only by a constant multiple of 2π.
        let k = (un[0] - truth[0]) / TAU;
        assert!((k - k.round()).abs() < 1e-9);
        for (u, t) in un.iter().zip(&truth) {
            assert!((u - t - k.round() * TAU).abs() < 1e-9);
        }
    }

    #[test]
    fn unwrap_handles_empty_and_single() {
        assert!(unwrap_phases(&[]).is_empty());
        assert_eq!(unwrap_phases(&[1.0]), vec![1.0]);
    }

    #[test]
    fn unwrap_is_identity_when_continuous() {
        let phases = [1.0, 1.2, 1.4, 1.1, 0.8];
        assert_eq!(unwrap_phases(&phases), phases.to_vec());
    }

    #[test]
    fn profile_construction_validates() {
        let m = vec![(Point3::ORIGIN, 0.1)];
        assert!(matches!(
            PhaseProfile::from_wrapped(&m, 0.3256),
            Err(CoreError::TooFewMeasurements { .. })
        ));
        let m = vec![
            (Point3::ORIGIN, 0.1),
            (Point3::new(0.1, 0.0, 0.0), f64::NAN),
        ];
        assert!(matches!(
            PhaseProfile::from_wrapped(&m, 0.3256),
            Err(CoreError::NonFiniteMeasurement { index: 1 })
        ));
        let m = vec![(Point3::ORIGIN, 0.1), (Point3::new(0.1, 0.0, 0.0), 0.2)];
        assert!(PhaseProfile::from_wrapped(&m, -1.0).is_err());
        assert!(PhaseProfile::from_wrapped(&m, 0.3256).is_ok());
    }

    #[test]
    fn from_unwrapped_validates_lengths() {
        assert!(PhaseProfile::from_unwrapped(vec![Point3::ORIGIN], vec![0.1, 0.2], 0.3,).is_err());
        let p = PhaseProfile::from_unwrapped(
            vec![Point3::ORIGIN, Point3::new(1.0, 0.0, 0.0)],
            vec![0.1, 7.0],
            0.3,
        )
        .unwrap();
        assert_eq!(p.phases(), &[0.1, 7.0]); // no unwrapping applied
    }

    #[test]
    fn delta_distances_match_formula() {
        let lambda = 0.3256;
        let positions = vec![
            Point3::ORIGIN,
            Point3::new(0.1, 0.0, 0.0),
            Point3::new(0.2, 0.0, 0.0),
        ];
        let phases = vec![0.0, TAU, 2.0 * TAU];
        let p = PhaseProfile::from_unwrapped(positions, phases, lambda).unwrap();
        let dd = p.delta_distances(0);
        assert!((dd[0]).abs() < 1e-12);
        // 2π of round-trip phase is λ/2 of distance.
        assert!((dd[1] - lambda / 2.0).abs() < 1e-12);
        assert!((dd[2] - lambda).abs() < 1e-12);
        // Different reference shifts all values.
        let dd1 = p.delta_distances(1);
        assert!((dd1[0] + lambda / 2.0).abs() < 1e-12);
        assert!((dd1[1]).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "reference index")]
    fn delta_distances_checks_reference() {
        let p = PhaseProfile::from_unwrapped(
            vec![Point3::ORIGIN, Point3::new(1.0, 0.0, 0.0)],
            vec![0.0, 1.0],
            0.3,
        )
        .unwrap();
        let _ = p.delta_distances(5);
    }

    #[test]
    fn smoothing_reduces_wiggle() {
        let positions: Vec<Point3> = (0..100)
            .map(|i| Point3::new(i as f64 * 0.01, 0.0, 0.0))
            .collect();
        let phases: Vec<f64> = (0..100)
            .map(|i| i as f64 * 0.05 + if i % 2 == 0 { 0.05 } else { -0.05 })
            .collect();
        let mut p = PhaseProfile::from_unwrapped(positions, phases, 0.3256).unwrap();
        let rough: f64 = p.phases().windows(2).map(|w| (w[1] - w[0]).abs()).sum();
        p.smooth(5);
        let smooth: f64 = p.phases().windows(2).map(|w| (w[1] - w[0]).abs()).sum();
        assert!(smooth < rough);
        assert_eq!(p.len(), 100);
    }

    #[test]
    fn restrict_and_decimate() {
        let positions: Vec<Point3> = (0..11)
            .map(|i| Point3::new((i as f64 - 5.0) / 10.0, 0.0, 0.0))
            .collect();
        let phases: Vec<f64> = (0..11).map(|i| i as f64 * 0.1).collect();
        let p = PhaseProfile::from_unwrapped(positions, phases, 0.3256).unwrap();
        let r = p.restrict_x(-0.2, 0.2);
        assert_eq!(r.len(), 5);
        assert!(r.positions().iter().all(|q| q.x.abs() <= 0.2 + 1e-12));
        let d = p.decimate(2);
        assert_eq!(d.len(), 6);
        assert_eq!(d.positions()[1].x, p.positions()[2].x);
        assert_eq!(p.decimate(0).len(), p.len());
        let f = p.filter_positions(|q| q.x > 0.0);
        assert_eq!(f.len(), 5);
    }

    #[test]
    fn rebuild_matches_from_wrapped_bitwise() {
        let m: Vec<(Point3, f64)> = (0..50)
            .map(|i| {
                let x = i as f64 * 0.01;
                (Point3::new(x, 0.0, 0.0), wrap(0.3 * i as f64))
            })
            .collect();
        let mut fresh = PhaseProfile::from_wrapped(&m, 0.3256).unwrap();
        let mut staged = PhaseProfile::default();
        staged.rebuild_from_wrapped(&m, 0.3256).unwrap();
        assert_eq!(staged, fresh);
        // Scratch-based smoothing stays bit-identical to `smooth`.
        fresh.smooth(9);
        let (mut prefix, mut tmp) = (Vec::new(), Vec::new());
        staged.smooth_with_scratch(9, &mut prefix, &mut tmp);
        assert_eq!(staged, fresh);
        // Buffered delta distances match the allocating path exactly.
        let mut deltas = Vec::new();
        staged.delta_distances_into(3, &mut deltas);
        assert_eq!(deltas, fresh.delta_distances(3));
        // A failed rebuild leaves the profile empty.
        assert!(staged.rebuild_from_wrapped(&m[..1], 0.3256).is_err());
        assert!(staged.is_empty());
    }

    #[test]
    fn unwrap_step_continues_a_chain() {
        let truth: Vec<f64> = (0..120).map(|i| 0.4 * i as f64).collect();
        let wrapped: Vec<f64> = truth.iter().map(|&t| wrap(t)).collect();
        let batch = unwrap_phases(&wrapped);
        // Continue step-by-step from the first sample only.
        let mut chain = vec![batch[0]];
        for i in 1..wrapped.len() {
            let next = unwrap_step(wrapped[i - 1], chain[i - 1], wrapped[i]);
            chain.push(next);
        }
        for (c, b) in chain.iter().zip(&batch) {
            assert!((c - b).abs() < 1e-9, "{c} vs {b}");
        }
    }

    #[test]
    fn smoothed_at_matches_moving_average() {
        let values: Vec<f64> = (0..37).map(|i| (i as f64 * 0.7).sin() + i as f64).collect();
        for window in [0usize, 1, 2, 3, 5, 8, 37, 100] {
            let batch = stats::moving_average(&values, window);
            for (i, b) in batch.iter().enumerate() {
                let direct = smoothed_at(&values, window, i);
                assert!(
                    (direct - b).abs() < 1e-12,
                    "window {window} index {i}: {direct} vs {b}"
                );
            }
        }
    }

    #[test]
    fn wrap_phase_range() {
        assert!((wrap_phase(-0.1) - (TAU - 0.1)).abs() < 1e-12);
        assert!((wrap_phase(TAU + 0.1) - 0.1).abs() < 1e-12);
    }
}
