//! Profile quality diagnostics: catching unwrap slips and implausible
//! phase jumps before they poison the linear system.
//!
//! Physics provides a hard invariant the pipeline can check: by the
//! triangle inequality, the tag–antenna distance cannot change by more
//! than the tag's own displacement, so between consecutive samples
//!
//! ```text
//! |Δd| = (λ/4π)·|θᵢ₊₁ − θᵢ|  ≤  ‖pᵢ₊₁ − pᵢ‖
//! ```
//!
//! must hold (up to noise). A violation of ~λ/2 is the signature of an
//! **unwrap slip** — the failure mode of fast tags, sparse reads, or
//! channel hops that the paper's Sec. IV-A1 assumptions rule out on its
//! rig but which any deployment should monitor.

use serde::{Deserialize, Serialize};

use crate::preprocess::PhaseProfile;

/// One detected violation of the distance-change bound.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepViolation {
    /// Index of the first sample of the offending step.
    pub index: usize,
    /// Implied distance change `(λ/4π)·|Δθ|` (meters).
    pub implied: f64,
    /// Actual tag displacement `‖Δp‖` (meters).
    pub moved: f64,
}

impl StepViolation {
    /// How far the implied change exceeds the physical bound (meters).
    pub fn excess(&self) -> f64 {
        self.implied - self.moved
    }

    /// Whether the excess is consistent with a full 2π unwrap slip
    /// (≈ λ/2 of implied distance) rather than mere noise.
    pub fn looks_like_unwrap_slip(&self, wavelength: f64) -> bool {
        self.excess() > 0.35 * wavelength
    }
}

/// Summary of a profile's physical consistency.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileQuality {
    /// Steps whose implied distance change exceeds the tag displacement by
    /// more than the configured slack.
    pub violations: Vec<StepViolation>,
    /// Number of consecutive-sample steps checked.
    pub steps: usize,
    /// Largest excess over the bound (meters); 0 for a clean profile.
    pub max_excess: f64,
    /// Root-mean-square of the per-step excess over *all* steps (clean
    /// steps contribute 0) — a scalar noise/corruption score.
    pub rms_excess: f64,
}

impl ProfileQuality {
    /// Fraction of steps that satisfy the bound.
    pub fn fraction_ok(&self) -> f64 {
        if self.steps == 0 {
            return 1.0;
        }
        1.0 - self.violations.len() as f64 / self.steps as f64
    }

    /// Whether the profile looks safe to feed to the localizer: no step
    /// resembling an unwrap slip and at least 95% of steps within bound.
    pub fn is_trustworthy(&self, wavelength: f64) -> bool {
        self.fraction_ok() >= 0.95
            && !self
                .violations
                .iter()
                .any(|v| v.looks_like_unwrap_slip(wavelength))
    }
}

/// Checks every consecutive-sample step of `profile` against the triangle
/// inequality bound, with `slack` meters of tolerance for phase noise
/// (a good default is 3σ·λ/4π ≈ 8 mm for σ = 0.1 rad).
///
/// # Example
///
/// ```
/// use lion_core::preprocess::PhaseProfile;
/// use lion_core::quality::validate_profile;
/// use lion_geom::Point3;
///
/// # fn main() -> Result<(), lion_core::CoreError> {
/// let lambda = 0.3256;
/// // A tag moving 1 mm per sample cannot legally produce phase jumps
/// // implying 1 cm of distance change.
/// let positions: Vec<Point3> =
///     (0..50).map(|i| Point3::new(i as f64 * 0.001, 0.0, 0.0)).collect();
/// let mut phases: Vec<f64> = (0..50).map(|i| i as f64 * 0.03).collect();
/// phases[25] += 2.0 * std::f64::consts::PI; // planted unwrap slip
/// let profile = PhaseProfile::from_unwrapped(positions, phases, lambda)?;
/// let q = validate_profile(&profile, 0.003);
/// assert_eq!(q.violations.len(), 2); // the slip corrupts two steps
/// assert!(!q.is_trustworthy(lambda));
/// # Ok(())
/// # }
/// ```
pub fn validate_profile(profile: &PhaseProfile, slack: f64) -> ProfileQuality {
    let scale = profile.wavelength() / (4.0 * std::f64::consts::PI);
    let positions = profile.positions();
    let phases = profile.phases();
    let mut violations = Vec::new();
    let mut max_excess = 0.0_f64;
    let mut sq_sum = 0.0_f64;
    let steps = positions.len().saturating_sub(1);
    for i in 0..steps {
        let implied = scale * (phases[i + 1] - phases[i]).abs();
        let moved = positions[i].distance(positions[i + 1]);
        let excess = implied - moved;
        if excess > slack.max(0.0) {
            violations.push(StepViolation {
                index: i,
                implied,
                moved,
            });
            max_excess = max_excess.max(excess);
            sq_sum += excess * excess;
        }
    }
    ProfileQuality {
        violations,
        steps,
        max_excess,
        rms_excess: if steps > 0 {
            (sq_sum / steps as f64).sqrt()
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lion_geom::Point3;
    use std::f64::consts::PI;

    const LAMBDA: f64 = 299_792_458.0 / 920.625e6;

    fn clean_profile(n: usize) -> PhaseProfile {
        // A physically consistent profile: an antenna at (0, 0.8) and a
        // tag stepping 1 mm at a time.
        let antenna = Point3::new(0.0, 0.8, 0.0);
        let positions: Vec<Point3> = (0..n)
            .map(|i| Point3::new(-0.2 + i as f64 * 0.001, 0.0, 0.0))
            .collect();
        let phases: Vec<f64> = positions
            .iter()
            .map(|p| 4.0 * PI * antenna.distance(*p) / LAMBDA)
            .collect();
        PhaseProfile::from_unwrapped(positions, phases, LAMBDA).expect("valid")
    }

    #[test]
    fn clean_profile_passes() {
        let q = validate_profile(&clean_profile(200), 1e-4);
        assert!(q.violations.is_empty());
        assert_eq!(q.fraction_ok(), 1.0);
        assert_eq!(q.max_excess, 0.0);
        assert_eq!(q.rms_excess, 0.0);
        assert!(q.is_trustworthy(LAMBDA));
        assert_eq!(q.steps, 199);
    }

    #[test]
    fn planted_slip_is_flagged_and_classified() {
        let profile = clean_profile(200);
        let mut phases = profile.phases().to_vec();
        for p in phases.iter_mut().skip(100) {
            *p += 2.0 * PI; // everything after index 99 slipped by 2π
        }
        let slipped = PhaseProfile::from_unwrapped(profile.positions().to_vec(), phases, LAMBDA)
            .expect("valid");
        let q = validate_profile(&slipped, 1e-3);
        assert_eq!(q.violations.len(), 1);
        let v = q.violations[0];
        assert_eq!(v.index, 99);
        // A 2π jump implies λ/2 ≈ 16.3 cm of motion in one 1 mm step.
        assert!(
            (v.implied - LAMBDA / 2.0).abs() < 2e-3,
            "implied {}",
            v.implied
        );
        assert!(v.looks_like_unwrap_slip(LAMBDA));
        assert!(!q.is_trustworthy(LAMBDA));
        assert!(q.max_excess > 0.15);
    }

    #[test]
    fn noise_below_slack_is_tolerated() {
        let profile = clean_profile(100);
        let mut phases = profile.phases().to_vec();
        for (i, p) in phases.iter_mut().enumerate() {
            *p += if i % 2 == 0 { 0.05 } else { -0.05 }; // ±0.05 rad ripple
        }
        let noisy = PhaseProfile::from_unwrapped(profile.positions().to_vec(), phases, LAMBDA)
            .expect("valid");
        // 0.1 rad of jump ↔ 2.6 mm implied; slack of 5 mm absorbs it.
        let q = validate_profile(&noisy, 0.005);
        assert!(q.violations.is_empty(), "{:?}", q.violations.first());
        // But a tight slack flags the ripple.
        let strict = validate_profile(&noisy, 1e-4);
        assert!(!strict.violations.is_empty());
        // Ripple violations do not look like unwrap slips.
        assert!(strict
            .violations
            .iter()
            .all(|v| !v.looks_like_unwrap_slip(LAMBDA)));
    }

    #[test]
    fn static_tag_profile_all_jumps_are_violations() {
        // Tag never moves but phases drift: every step violates the bound.
        let positions = vec![Point3::new(0.0, 0.5, 0.0); 10];
        let phases: Vec<f64> = (0..10).map(|i| i as f64 * 0.5).collect();
        let p = PhaseProfile::from_unwrapped(positions, phases, LAMBDA).expect("valid");
        let q = validate_profile(&p, 1e-6);
        assert_eq!(q.violations.len(), 9);
        assert_eq!(q.fraction_ok(), 0.0);
    }

    #[test]
    fn quality_on_two_sample_profile() {
        let p = PhaseProfile::from_unwrapped(
            vec![Point3::ORIGIN, Point3::new(0.001, 0.0, 0.0)],
            vec![0.0, 0.01],
            LAMBDA,
        )
        .expect("valid");
        let q = validate_profile(&p, 0.001);
        assert_eq!(q.steps, 1);
        assert!(q.fraction_ok() >= 0.0);
    }
}
