//! The solver seam: a common trait over position-estimation backends.
//!
//! The paper's linear localization model is one estimator among several
//! for phase-based RFID positioning: the variant-ML line of work solves
//! the same problem with a likelihood grid, and deployments want an
//! accuracy-vs-latency dial per workload. This module extracts that seam:
//!
//! - [`Solver`] — the object-safe, workspace-aware backend contract. A
//!   backend turns a prepared [`PhaseProfile`] into an [`Estimate`] using
//!   the caller's [`Workspace`] for scratch space and stage metrics.
//! - [`LinearSolver`] — the paper's pipeline (radical-line system, QR /
//!   incremental-normal-equation IRLS) behind the trait.
//! - [`GridSolver`] — a coarse-to-fine likelihood-grid backend in the
//!   variant-ML style: score candidate antenna positions by how well
//!   they explain the measured distance deltas, then refine the grid
//!   around the best cell.
//! - [`SolverKind`] — the validated configuration knob on
//!   [`LocalizerConfig`] that selects the backend for every entry point
//!   (`locate*`, `locate_window_in`, the adaptive sweeps, the engine's
//!   batch jobs and the streaming cadence path).
//!
//! # Grid scoring
//!
//! A candidate antenna position `a` predicts the distance delta of
//! sample `i` against the reference sample `r` as `|a−pᵢ| − |a−p_r|`;
//! the measured delta `δᵢ` comes from the unwrapped phases. The score is
//! the mean squared delta residual — the unknown phase ambiguity cancels
//! in the difference, so no `d_r` column is needed. Refinement shrinks
//! the search extent by [`GridConfig::shrink`] per level, re-centering on
//! the best candidate found so far; the carried best is only replaced by
//! a strictly better score, so refinement can never rank below the
//! coarse pass.
//!
//! # Determinism
//!
//! The grid search is a pure function of its inputs: candidates are
//! visited in a fixed order (descending z, then y, then x), replacement
//! requires a strictly better score, and exact ties fall to the earlier
//! candidate — or, when [`LocalizerConfig::side_hint`] is set, to the
//! candidate nearer the hint. Descending visit order makes the hint-free
//! tie preference (+z, then +y, then +x) line up with the linear
//! backend's canonical mirror choice. Solving the same cell on any
//! worker therefore yields bit-identical results.

use std::time::Instant;

use lion_geom::{Point3, Vec3};
use lion_linalg::{LevenbergMarquardt, Vector};

use crate::error::CoreError;
use crate::localizer::{
    analyze_geometry_small, prepare_profile_in, run_with_min_in, Estimate, LocalizerConfig, Mode,
};
use crate::preprocess::PhaseProfile;
use crate::workspace::{elapsed_ns, Workspace};

/// Relative half-width of the score band treated as an exact tie by the
/// grid search (mirror-symmetric geometries produce bit-identical
/// scores; anything farther apart is a real ranking).
const GRID_TIE_EPS: f64 = 1e-12;

/// Radial-sweep schedule: each coarse beam candidate is rescanned at
/// `RADIAL_STEPS` range multipliers in `[RADIAL_MIN, RADIAL_MAX]` along
/// its ray from the scan centroid (see [`grid_search`]).
const RADIAL_STEPS: usize = 120;
const RADIAL_MIN: f64 = 0.05;
const RADIAL_MAX: f64 = 3.0;

/// Maximum bearing/range alternation passes per refinement level; each
/// pass travels at most one grid step along the range valley, so the cap
/// bounds work without cutting real descents short (they stop on the
/// first pass with no strict improvement).
const LEVEL_PASSES: usize = 8;

/// The target space a solve runs in — the public mirror of the internal
/// pipeline mode. 2D pins the estimate's `z` to the mean sample height;
/// 3D searches (or solves) all three coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveSpace {
    /// Horizontal-plane localization (the [`crate::Localizer2d`] space).
    TwoD,
    /// Full 3D localization (the [`crate::Localizer3d`] space).
    ThreeD,
}

impl SolveSpace {
    pub(crate) fn mode(self) -> Mode {
        match self {
            SolveSpace::TwoD => Mode::TwoD,
            SolveSpace::ThreeD => Mode::ThreeD,
        }
    }

    /// The minimum sample count either backend needs in this space.
    pub fn min_samples(self) -> usize {
        match self {
            SolveSpace::TwoD => 4,
            SolveSpace::ThreeD => 5,
        }
    }
}

/// A position-estimation backend: prepared phase profile in, estimate
/// out, with scratch buffers and stage metrics in the caller's
/// [`Workspace`].
///
/// The trait is object-safe — `&dyn Solver` works — and both shipped
/// backends are zero-sized or `Copy`, so dispatching statically via
/// [`SolverKind`] stays allocation-free.
///
/// Implementations read the *shared* estimation parameters from the
/// [`LocalizerConfig`] (`reference_index`, `side_hint`,
/// `rank_tolerance`); backend-specific knobs live on the backend itself
/// (e.g. [`GridConfig`]). The config's own [`LocalizerConfig::solver`]
/// field is ignored here — backend selection happens in the
/// `Localizer2d`/`Localizer3d` entry points, which is what keeps a
/// `LinearSolver` usable as a cross-check against a grid-configured
/// pipeline.
pub trait Solver {
    /// A short stable backend name (`"linear"`, `"grid"`), used in logs
    /// and benchmark schemas.
    fn name(&self) -> &'static str;

    /// Estimates from an already unwrapped and smoothed profile.
    ///
    /// # Errors
    ///
    /// See [`CoreError`]; backends share the measurement-count,
    /// reference-index, and trajectory-geometry validation of the linear
    /// pipeline, and may add their own failure modes
    /// ([`CoreError::GridExhausted`], [`CoreError::DegenerateLikelihood`]).
    fn solve_profile_in(
        &self,
        profile: &PhaseProfile,
        config: &LocalizerConfig,
        space: SolveSpace,
        ws: &mut Workspace,
    ) -> Result<Estimate, CoreError>;

    /// Estimates from raw `(position, wrapped phase)` measurements:
    /// unwraps and smooths into the workspace-owned profile, then calls
    /// [`Solver::solve_profile_in`].
    ///
    /// # Errors
    ///
    /// Preprocessing errors ([`CoreError::NonFiniteMeasurement`], ...)
    /// plus everything [`Solver::solve_profile_in`] returns.
    fn solve_in(
        &self,
        measurements: &[(Point3, f64)],
        config: &LocalizerConfig,
        space: SolveSpace,
        ws: &mut Workspace,
    ) -> Result<Estimate, CoreError> {
        let mut profile = std::mem::take(&mut ws.profile);
        let result = prepare_profile_in(measurements, config, &mut profile, ws)
            .and_then(|()| self.solve_profile_in(&profile, config, space, ws));
        ws.profile = profile;
        result
    }
}

/// Which backend a [`LocalizerConfig`] runs. Defaults to
/// [`SolverKind::Linear`], the paper's pipeline.
///
/// ```
/// use lion_core::{GridConfig, LocalizerConfig, SolverKind};
///
/// # fn main() -> Result<(), lion_core::CoreError> {
/// let cfg = LocalizerConfig::builder()
///     .solver(SolverKind::Grid(GridConfig::default()))
///     .build()?;
/// assert_eq!(cfg.solver.label(), "grid");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[non_exhaustive]
pub enum SolverKind {
    /// The paper's linear radical-line model ([`LinearSolver`]).
    #[default]
    Linear,
    /// The coarse-to-fine likelihood grid ([`GridSolver`]).
    Grid(GridConfig),
}

impl SolverKind {
    /// The stable backend name this kind selects.
    pub fn label(&self) -> &'static str {
        match self {
            SolverKind::Linear => "linear",
            SolverKind::Grid(_) => "grid",
        }
    }

    /// Checks the kind's standalone invariants.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] naming the offending grid
    /// parameter.
    pub fn validate(&self) -> Result<(), CoreError> {
        match self {
            SolverKind::Linear => Ok(()),
            SolverKind::Grid(grid) => grid.validate(),
        }
    }

    pub(crate) fn grid(&self) -> Option<&GridConfig> {
        match self {
            SolverKind::Grid(grid) => Some(grid),
            _ => None,
        }
    }
}

/// The refinement schedule of the likelihood grid.
///
/// Level `L` scans `cells` candidates per spanned axis across a half
/// extent of `half_extent · shrinkᴸ` meters, centered on the best
/// candidate so far (level 0 centers on the sample centroid). With the
/// defaults the final level resolves ≈ 5 mm over an initial ±3 m search
/// region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridConfig {
    /// Half-width of the coarse search region per axis, meters
    /// (default 3).
    pub half_extent: f64,
    /// Candidates per axis and level (default 11; odd keeps the grid
    /// symmetric around its center, which preserves exact mirror ties).
    pub cells: usize,
    /// Refinement levels including the coarse pass (default 8).
    pub levels: usize,
    /// Extent multiplier per level, in `(0, 1]` (default 0.5; must stay
    /// above `1 / (cells − 1)` for the next level to cover the current
    /// level's cell).
    pub shrink: f64,
    /// Coarse candidates carried into refinement (default 8). The delta
    /// likelihood surface has shallow far-field valleys alongside the
    /// true minimum; refining only the single best coarse cell can slide
    /// down the wrong one, so the top `beam` coarse cells each get the
    /// full refinement schedule and the best final score wins.
    pub beam: usize,
    /// Relative score contrast below which the coarse surface counts as
    /// degenerate ([`CoreError::DegenerateLikelihood`]); default 1e−12,
    /// which only an (essentially) flat surface can trip.
    pub min_contrast: f64,
}

impl Default for GridConfig {
    fn default() -> Self {
        GridConfig {
            half_extent: 3.0,
            cells: 11,
            levels: 8,
            shrink: 0.5,
            beam: 8,
            min_contrast: 1e-12,
        }
    }
}

impl GridConfig {
    /// Checks the schedule invariants: positive finite half extent, at
    /// least 3 cells per axis, at least 1 level, shrink in `(0, 1]`, and
    /// a finite non-negative contrast threshold.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] naming the offending
    /// parameter.
    pub fn validate(&self) -> Result<(), CoreError> {
        if !(self.half_extent > 0.0 && self.half_extent.is_finite()) {
            return Err(CoreError::InvalidConfig {
                parameter: "grid half_extent",
                found: format!("{}", self.half_extent),
            });
        }
        if self.cells < 3 {
            return Err(CoreError::InvalidConfig {
                parameter: "grid cells",
                found: format!("{}", self.cells),
            });
        }
        if self.levels == 0 {
            return Err(CoreError::InvalidConfig {
                parameter: "grid levels",
                found: "0".to_string(),
            });
        }
        if !(self.shrink > 0.0 && self.shrink <= 1.0) {
            return Err(CoreError::InvalidConfig {
                parameter: "grid shrink",
                found: format!("{}", self.shrink),
            });
        }
        if self.beam == 0 {
            return Err(CoreError::InvalidConfig {
                parameter: "grid beam",
                found: "0".to_string(),
            });
        }
        if !(self.min_contrast >= 0.0 && self.min_contrast.is_finite()) {
            return Err(CoreError::InvalidConfig {
                parameter: "grid min_contrast",
                found: format!("{}", self.min_contrast),
            });
        }
        Ok(())
    }

    /// The candidate spacing of the final refinement level, meters — the
    /// resolution floor of the search.
    pub fn final_step(&self) -> f64 {
        let extent = self.half_extent * self.shrink.powi(self.levels as i32 - 1);
        2.0 * extent / (self.cells - 1) as f64
    }
}

/// The paper's linear pipeline behind the [`Solver`] trait: radical-line
/// system, (iteratively reweighted) least squares, lower-dimension
/// `d_r` recovery. This is the exact code path `Localizer2d::locate` has
/// always run — the trait impl is a thin adapter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinearSolver;

impl LinearSolver {
    /// Solves a [`crate::SlidingWindow`] resuming from persistent
    /// incremental state: O(delta) when the slide since the last call is
    /// patchable, falling back to a bit-exact replay otherwise. This is
    /// the streaming counterpart of [`crate::locate_window_in`]; see
    /// [`crate::IncrementalState`] for the state machine and parity tiers.
    pub fn resume_window_in(
        &self,
        state: &mut crate::IncrementalState,
        window: &mut crate::SlidingWindow,
        config: &LocalizerConfig,
        space: SolveSpace,
        ws: &mut Workspace,
    ) -> Result<(Estimate, crate::ResolvePath), CoreError> {
        state.solve_window(window, config, space, ws)
    }
}

impl Solver for LinearSolver {
    fn name(&self) -> &'static str {
        "linear"
    }

    fn solve_profile_in(
        &self,
        profile: &PhaseProfile,
        config: &LocalizerConfig,
        space: SolveSpace,
        ws: &mut Workspace,
    ) -> Result<Estimate, CoreError> {
        run_with_min_in(profile, config, space.mode(), space.min_samples(), ws)
    }
}

/// The coarse-to-fine likelihood-grid backend (see the module docs for
/// the scoring model and determinism rules).
///
/// Differences from [`LinearSolver`] worth knowing:
///
/// - `pair_strategy` and `weighting` are ignored — the grid scores every
///   sample directly, no pairing step;
/// - mirror-symmetric geometries (a linear 2D track, a planar 3D scan)
///   are resolved by searching the full space: the two mirrors score as
///   exact ties and `side_hint` (or the `+z`/`+y`/`+x` default) picks;
/// - [`Estimate::lower_dimension`] is always `false` (no `d_r` recovery
///   path exists) and [`Estimate::position_std`] is zero (the grid
///   carries no covariance);
/// - [`Estimate::mean_residual`] is the signed mean per-sample delta
///   residual at the optimum and [`Estimate::weighted_rms`] its RMS, so
///   the adaptive sweep's `|mean residual|` ranking still applies.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GridSolver {
    config: GridConfig,
}

impl GridSolver {
    /// Creates a grid backend with the given refinement schedule.
    pub fn new(config: GridConfig) -> Self {
        GridSolver { config }
    }

    /// The refinement schedule in use.
    pub fn config(&self) -> &GridConfig {
        &self.config
    }

    /// [`Solver::solve_profile_in`] that additionally appends the carried
    /// best score after each refinement level to `level_scores` — the
    /// observable the refinement-monotonicity property tests check
    /// (scores never increase beyond tie tolerance level over level).
    ///
    /// # Errors
    ///
    /// See [`Solver::solve_profile_in`].
    pub fn solve_profile_traced(
        &self,
        profile: &PhaseProfile,
        config: &LocalizerConfig,
        space: SolveSpace,
        ws: &mut Workspace,
        level_scores: &mut Vec<f64>,
    ) -> Result<Estimate, CoreError> {
        solve_grid_profile(profile, config, space, &self.config, ws, Some(level_scores))
    }
}

impl Solver for GridSolver {
    fn name(&self) -> &'static str {
        "grid"
    }

    fn solve_profile_in(
        &self,
        profile: &PhaseProfile,
        config: &LocalizerConfig,
        space: SolveSpace,
        ws: &mut Workspace,
    ) -> Result<Estimate, CoreError> {
        solve_grid_profile(profile, config, space, &self.config, ws, None)
    }
}

/// Routes a prepared profile to the backend `config.solver` selects —
/// the single dispatch point behind `locate`, `locate_in`,
/// `locate_window_in`, and `locate_profile_in`.
pub(crate) fn dispatch_profile(
    profile: &PhaseProfile,
    config: &LocalizerConfig,
    space: SolveSpace,
    ws: &mut Workspace,
) -> Result<Estimate, CoreError> {
    match &config.solver {
        SolverKind::Linear => LinearSolver.solve_profile_in(profile, config, space, ws),
        SolverKind::Grid(grid) => {
            GridSolver::new(*grid).solve_profile_in(profile, config, space, ws)
        }
    }
}

/// The immutable inputs of one grid search. `subset` (when set) holds
/// the global sample indices in scope — the adaptive sweep passes its
/// range-sliced subset here, reusing the shared deltas and the pinned
/// reference exactly as the linear cells do.
pub(crate) struct GridProblem<'a> {
    pub(crate) positions: &'a [Point3],
    pub(crate) deltas: &'a [f64],
    pub(crate) subset: Option<&'a [usize]>,
    pub(crate) reference: usize,
    /// Search-region center; its `z` is the fixed plane height in 2D.
    pub(crate) anchor: Point3,
    /// 2D mode: candidates keep `z = anchor.z`.
    pub(crate) planar: bool,
    pub(crate) side_hint: Option<Point3>,
}

impl GridProblem<'_> {
    fn sample_count(&self) -> usize {
        self.subset.map_or(self.positions.len(), <[usize]>::len)
    }

    /// Mean squared delta residual of `cand` over the samples in scope.
    pub(crate) fn score(&self, cand: Point3) -> f64 {
        let d_ref = cand.distance(self.positions[self.reference]);
        let mut sum = 0.0;
        match self.subset {
            Some(subset) => {
                for &i in subset {
                    let r = self.deltas[i] - (cand.distance(self.positions[i]) - d_ref);
                    sum += r * r;
                }
            }
            None => {
                for (p, &delta) in self.positions.iter().zip(self.deltas) {
                    let r = delta - (cand.distance(*p) - d_ref);
                    sum += r * r;
                }
            }
        }
        sum / self.sample_count() as f64
    }

    /// Signed mean delta residual at `cand` (the [`Estimate::mean_residual`]
    /// analog).
    fn mean_residual(&self, cand: Point3) -> f64 {
        let d_ref = cand.distance(self.positions[self.reference]);
        let mut sum = 0.0;
        match self.subset {
            Some(subset) => {
                for &i in subset {
                    sum += self.deltas[i] - (cand.distance(self.positions[i]) - d_ref);
                }
            }
            None => {
                for (p, &delta) in self.positions.iter().zip(self.deltas) {
                    sum += delta - (cand.distance(*p) - d_ref);
                }
            }
        }
        sum / self.sample_count() as f64
    }
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct GridBest {
    pub(crate) position: Point3,
    pub(crate) score: f64,
}

/// Whether `cand` replaces `best` under the deterministic ordering:
/// strictly better score wins; within the tie band the side hint (when
/// set) prefers the nearer candidate; otherwise the incumbent stays.
fn replaces(cand: &GridBest, best: &GridBest, hint: Option<Point3>) -> bool {
    let tie = GRID_TIE_EPS * (1.0 + best.score.min(cand.score).abs());
    if cand.score < best.score - tie {
        return true;
    }
    if cand.score > best.score + tie {
        return false;
    }
    match hint {
        Some(h) => cand.position.distance(h) < best.position.distance(h),
        None => false,
    }
}

/// Scans one grid level around `center`, feeding every finite candidate
/// to `visit`. Candidates are visited in descending z, then y, then x, so
/// among exact ties the first (most positive) candidate wins downstream.
fn scan_level(
    problem: &GridProblem<'_>,
    cfg: &GridConfig,
    center: Point3,
    extent: f64,
    evaluated: &mut usize,
    mut visit: impl FnMut(GridBest),
) {
    let step = 2.0 * extent / (cfg.cells - 1) as f64;
    let offset = |i: usize| -extent + i as f64 * step;
    let z_cells = if problem.planar { 1 } else { cfg.cells };
    for iz in (0..z_cells).rev() {
        let cz = if problem.planar {
            problem.anchor.z
        } else {
            center.z + offset(iz)
        };
        for iy in (0..cfg.cells).rev() {
            let cy = center.y + offset(iy);
            for ix in (0..cfg.cells).rev() {
                let position = Point3::new(center.x + offset(ix), cy, cz);
                let score = problem.score(position);
                if score.is_finite() {
                    *evaluated += 1;
                    visit(GridBest { position, score });
                }
            }
        }
    }
}

/// Whether `p` lies inside the configured search box around the anchor.
/// On heavy multipath the likelihood's far-field range valley can score
/// below the true basin, so every stage — radial sweeps and the final
/// polish included — must confine candidates to the region the caller
/// asked to search.
fn in_search_box(problem: &GridProblem<'_>, half_extent: f64, p: Point3) -> bool {
    let limit = half_extent + 1e-9;
    (p.x - problem.anchor.x).abs() <= limit
        && (p.y - problem.anchor.y).abs() <= limit
        && (problem.planar || (p.z - problem.anchor.z).abs() <= limit)
}

/// Walks `beam` along its ray from the search anchor, keeping any
/// strictly better range — the 1-D dual of [`scan_level`] that handles
/// the delta surface's shallow range valley.
fn radial_sweep(
    problem: &GridProblem<'_>,
    half_extent: f64,
    beam: &mut GridBest,
    evaluated: &mut usize,
) {
    let dir = beam.position - problem.anchor;
    let mut carried = *beam;
    for j in 0..RADIAL_STEPS {
        let t = RADIAL_MIN + j as f64 * (RADIAL_MAX - RADIAL_MIN) / (RADIAL_STEPS - 1) as f64;
        let position = problem.anchor + dir * t;
        if !in_search_box(problem, half_extent, position) {
            continue;
        }
        let score = problem.score(position);
        if !score.is_finite() {
            continue;
        }
        *evaluated += 1;
        let cand = GridBest { position, score };
        if replaces(&cand, &carried, problem.side_hint) {
            carried = cand;
        }
    }
    *beam = carried;
}

/// The coarse-to-fine search. Pure: identical inputs give bit-identical
/// output on any thread. The coarse level keeps its [`GridConfig::beam`]
/// best cells; each runs the full refinement schedule independently
/// (re-centering on its own best per level) and the best final score
/// wins — the beam is what keeps a shallow far-field valley from
/// capturing the search when the true minimum sits in a narrower basin.
/// `level_scores` (when set) receives the carried global best score
/// after each level.
///
/// # Errors
///
/// [`CoreError::GridExhausted`] when no candidate scored finitely, and
/// [`CoreError::DegenerateLikelihood`] when the coarse level's score
/// contrast falls below [`GridConfig::min_contrast`].
pub(crate) fn grid_search(
    problem: &GridProblem<'_>,
    cfg: &GridConfig,
    mut level_scores: Option<&mut Vec<f64>>,
) -> Result<GridBest, CoreError> {
    let mut evaluated = 0usize;
    // Coarse pass: rank the top `beam` cells (ascending score; among
    // equal scores the earlier candidate ranks first).
    let mut beams: Vec<GridBest> = Vec::with_capacity(cfg.beam);
    let mut worst = f64::NEG_INFINITY;
    scan_level(
        problem,
        cfg,
        problem.anchor,
        cfg.half_extent,
        &mut evaluated,
        |cand| {
            if cand.score > worst {
                worst = cand.score;
            }
            if beams.len() == cfg.beam && cand.score >= beams[cfg.beam - 1].score {
                return;
            }
            let at = beams.partition_point(|b| b.score <= cand.score);
            beams.insert(at, cand);
            beams.truncate(cfg.beam);
        },
    );
    if beams.is_empty() {
        return Err(CoreError::GridExhausted { evaluated });
    }
    // Contrast check on the coarse surface: a flat likelihood cannot
    // localize no matter how far refinement descends.
    let contrast = worst - beams[0].score;
    if contrast <= cfg.min_contrast * worst.abs().max(f64::MIN_POSITIVE) {
        return Err(CoreError::DegenerateLikelihood { contrast });
    }
    // Radial sweep: the delta surface's dominant degeneracy is range —
    // bearing from the scan centroid is sharp, range is a shallow valley
    // along the ray through the candidate (a coarse cell 2× too far out
    // scores almost as well as the true position). Walk each beam along
    // its own ray and keep any strictly better range before local
    // refinement, which cannot travel along a narrow curved valley on
    // its own.
    for beam in beams.iter_mut() {
        radial_sweep(problem, cfg.half_extent, beam, &mut evaluated);
    }
    if let Some(scores) = level_scores.as_deref_mut() {
        let global = beams.iter().map(|b| b.score).fold(f64::INFINITY, f64::min);
        scores.push(global);
    }
    // Refine each beam independently, re-centering on its own carried
    // best; the per-beam best only moves on a strictly better score, so
    // no beam (and hence the global best) ever regresses.
    for level in 1..cfg.levels {
        let extent = cfg.half_extent * cfg.shrink.powi(level as i32);
        for beam in beams.iter_mut() {
            // Alternate local (bearing) and radial (range) passes at this
            // resolution until the score stops strictly improving: one
            // pass can only crawl one grid step along the range valley,
            // but repeated re-centering follows it as far as it goes.
            for _ in 0..LEVEL_PASSES {
                let before = beam.score;
                let mut carried = *beam;
                scan_level(
                    problem,
                    cfg,
                    beam.position,
                    extent,
                    &mut evaluated,
                    |cand| {
                        if replaces(&cand, &carried, problem.side_hint) {
                            carried = cand;
                        }
                    },
                );
                *beam = carried;
                radial_sweep(problem, cfg.half_extent, beam, &mut evaluated);
                if beam.score >= before - GRID_TIE_EPS * (1.0 + before.abs()) {
                    break;
                }
            }
        }
        if let Some(scores) = level_scores.as_deref_mut() {
            let global = beams.iter().map(|b| b.score).fold(f64::INFINITY, f64::min);
            scores.push(global);
        }
    }
    let mut best = beams[0];
    for cand in &beams[1..] {
        if replaces(cand, &best, problem.side_hint) {
            best = *cand;
        }
    }
    Ok(polish(problem, cfg.half_extent, best))
}

/// Deterministic Levenberg–Marquardt polish of the grid winner inside
/// its basin: the grid localizes the right basin, LM converges to its
/// floor (the range valley is too shallow for pure lattice descent to
/// finish in a bounded level schedule). The polished point is kept only
/// when it strictly improves the score, so polish can never regress the
/// search. In planar mode only `x`/`y` are free; `z` stays the plane
/// height.
fn polish(problem: &GridProblem<'_>, half_extent: f64, best: GridBest) -> GridBest {
    let dims = if problem.planar { 2 } else { 3 };
    let x0 = [best.position.x, best.position.y, best.position.z];
    let n = problem.sample_count();
    let lm = LevenbergMarquardt::new();
    let fill = |x: &Vector, out: &mut [f64]| {
        let cand = Point3::new(x[0], x[1], if dims == 2 { problem.anchor.z } else { x[2] });
        let d_ref = cand.distance(problem.positions[problem.reference]);
        match problem.subset {
            Some(subset) => {
                for (k, &i) in subset.iter().enumerate() {
                    out[k] = problem.deltas[i] - (cand.distance(problem.positions[i]) - d_ref);
                }
            }
            None => {
                for (k, (p, &delta)) in problem.positions.iter().zip(problem.deltas).enumerate() {
                    out[k] = delta - (cand.distance(*p) - d_ref);
                }
            }
        }
    };
    let Ok(report) = lm.minimize(&Vector::from_slice(&x0[..dims]), fill, n) else {
        return best;
    };
    let position = Point3::new(
        report.solution[0],
        report.solution[1],
        if dims == 2 {
            problem.anchor.z
        } else {
            report.solution[2]
        },
    );
    if !in_search_box(problem, half_extent, position) {
        return best;
    }
    let score = problem.score(position);
    if score.is_finite() && score < best.score {
        GridBest { position, score }
    } else {
        best
    }
}

/// Resolves the mirror ambiguity of a lower-dimension trajectory: a
/// sample subspace (line in 2D, plane in 3D) cannot distinguish a
/// position from its reflection across itself, and grid refinement
/// descends into whichever basin its lattice happens to land nearer.
/// Reflect the found optimum across the subspace and keep the side the
/// hint prefers — or, without a hint, the positive side of the
/// canonical normal, matching the linear backend's convention.
pub(crate) fn pick_mirror_side(
    position: Point3,
    centroid: Point3,
    normal: Vec3,
    side_hint: Option<Point3>,
) -> Point3 {
    let normal = crate::localizer::canonicalize(normal);
    let d = (position - centroid).dot(normal);
    let mirrored = position - normal * (2.0 * d);
    let keep_mirror = match side_hint {
        Some(h) => mirrored.distance(h) < position.distance(h),
        None => d < 0.0,
    };
    if keep_mirror {
        mirrored
    } else {
        position
    }
}

/// Builds the [`Estimate`] for a finished grid search.
pub(crate) fn grid_estimate(problem: &GridProblem<'_>, best: GridBest, levels: usize) -> Estimate {
    let reference_position = problem.positions[problem.reference];
    Estimate {
        position: best.position,
        reference_distance: best.position.distance(reference_position),
        reference_position,
        mean_residual: problem.mean_residual(best.position),
        weighted_rms: best.score.max(0.0).sqrt(),
        iterations: levels,
        equation_count: problem.sample_count(),
        lower_dimension: false,
        position_std: Vec3::new(0.0, 0.0, 0.0),
    }
}

/// The full-profile grid solve: validates like the linear path, anchors
/// the search on the sample centroid, and records solve metrics.
fn solve_grid_profile(
    profile: &PhaseProfile,
    config: &LocalizerConfig,
    space: SolveSpace,
    grid: &GridConfig,
    ws: &mut Workspace,
    level_scores: Option<&mut Vec<f64>>,
) -> Result<Estimate, CoreError> {
    grid.validate()?;
    let n = profile.len();
    let min_needed = space.min_samples();
    if n < min_needed {
        return Err(CoreError::TooFewMeasurements {
            got: n,
            needed: min_needed,
        });
    }
    let reference = match config.reference_index {
        Some(r) if r < n => r,
        Some(r) => {
            return Err(CoreError::InvalidConfig {
                parameter: "reference_index",
                found: format!("{r} for {n} samples"),
            })
        }
        None => n / 2,
    };
    if !(config.rank_tolerance > 0.0 && config.rank_tolerance < 1.0) {
        return Err(CoreError::InvalidConfig {
            parameter: "rank_tolerance",
            found: format!("{}", config.rank_tolerance),
        });
    }
    let positions = profile.positions();
    // Same whole-trajectory degeneracy screen as the linear path — a
    // single straight line still cannot fix a 3D position (the grid
    // would land on an arbitrary point of the ambiguity ring).
    let frame = analyze_geometry_small(positions, space.mode(), config.rank_tolerance)?;
    let _span = lion_obs::span!("lion.solve");
    let t = Instant::now();
    let mut deltas = std::mem::take(&mut ws.sweep.deltas);
    profile.delta_distances_into(reference, &mut deltas);
    let problem = GridProblem {
        positions,
        deltas: &deltas,
        subset: None,
        reference,
        anchor: frame.centroid,
        planar: space == SolveSpace::TwoD,
        side_hint: config.side_hint,
    };
    let result = grid_search(&problem, grid, level_scores).map(|mut best| {
        if frame.spanned < frame.dims {
            let resolved = pick_mirror_side(
                best.position,
                frame.centroid,
                frame.axes[frame.spanned],
                config.side_hint,
            );
            if resolved != best.position {
                best = GridBest {
                    position: resolved,
                    score: problem.score(resolved),
                };
            }
        }
        grid_estimate(&problem, best, grid.levels)
    });
    ws.sweep.deltas = deltas;
    ws.metrics.solve_ns += elapsed_ns(t);
    ws.metrics.solves += 1;
    ws.metrics.equations += n as u64;
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairs::PairStrategy;
    use std::f64::consts::{PI, TAU};

    const LAMBDA: f64 = 299_792_458.0 / 920.625e6;

    fn phase_of(target: Point3, p: Point3) -> f64 {
        (4.0 * PI * target.distance(p) / LAMBDA).rem_euclid(TAU)
    }

    fn circle_measurements(target: Point3, n: usize, radius: f64) -> Vec<(Point3, f64)> {
        (0..n)
            .map(|i| {
                let a = i as f64 * TAU / n as f64;
                let p = Point3::new(radius * a.cos(), radius * a.sin(), 0.0);
                (p, phase_of(target, p))
            })
            .collect()
    }

    fn clean_config() -> LocalizerConfig {
        LocalizerConfig {
            smoothing_window: 1,
            pair_strategy: PairStrategy::Interval { interval: 0.15 },
            ..LocalizerConfig::default()
        }
    }

    #[test]
    fn grid_matches_linear_on_circular_scan_2d() {
        let target = Point3::new(1.0, 0.4, 0.0);
        let m = circle_measurements(target, 240, 0.3);
        let cfg = clean_config();
        let mut ws = Workspace::new();
        let linear = LinearSolver
            .solve_in(&m, &cfg, SolveSpace::TwoD, &mut ws)
            .unwrap();
        let grid = GridSolver::default()
            .solve_in(&m, &cfg, SolveSpace::TwoD, &mut ws)
            .unwrap();
        let step = GridConfig::default().final_step();
        assert!(
            grid.position.distance(linear.position) < step,
            "grid {:?} vs linear {:?}",
            grid.position,
            linear.position
        );
        assert!(grid.distance_error(target) < step);
        assert_eq!(grid.iterations, GridConfig::default().levels);
        assert_eq!(grid.equation_count, 240);
        assert!(!grid.lower_dimension);
    }

    #[test]
    fn grid_resolves_planar_circle_3d_by_hint() {
        // The linear 3D path needs the d_r recovery for this geometry;
        // the grid searches z directly and the hint picks the mirror.
        let target = Point3::new(0.2, 0.3, 0.7);
        let m = circle_measurements(target, 240, 0.4);
        let mut cfg = clean_config();
        cfg.side_hint = Some(Point3::new(0.0, 0.0, 0.5));
        let mut ws = Workspace::new();
        let est = GridSolver::default()
            .solve_in(&m, &cfg, SolveSpace::ThreeD, &mut ws)
            .unwrap();
        assert!(
            est.distance_error(target) < GridConfig::default().final_step(),
            "error {}",
            est.distance_error(target)
        );
    }

    #[test]
    fn grid_without_hint_prefers_positive_mirror() {
        // Planar circle in z = 0, antenna above: +z and −z mirrors score
        // as exact ties; the hint-free default picks +z like the linear
        // backend's canonical normal.
        let target = Point3::new(0.2, 0.3, 0.7);
        let m = circle_measurements(target, 240, 0.4);
        let mut ws = Workspace::new();
        let est = GridSolver::default()
            .solve_in(&m, &clean_config(), SolveSpace::ThreeD, &mut ws)
            .unwrap();
        assert!(est.position.z > 0.0, "picked {:?}", est.position);
    }

    #[test]
    fn grid_is_deterministic_across_repeated_solves() {
        let target = Point3::new(0.8, 0.5, 0.0);
        let m = circle_measurements(target, 150, 0.3);
        let cfg = clean_config();
        let mut ws = Workspace::new();
        let a = GridSolver::default()
            .solve_in(&m, &cfg, SolveSpace::TwoD, &mut ws)
            .unwrap();
        let b = GridSolver::default()
            .solve_in(&m, &cfg, SolveSpace::TwoD, &mut Workspace::new())
            .unwrap();
        assert_eq!(a, b, "fresh vs reused workspace must be bit-identical");
    }

    #[test]
    fn traced_refinement_scores_never_increase() {
        let target = Point3::new(0.6, 0.9, 0.0);
        let m = circle_measurements(target, 120, 0.3);
        let cfg = clean_config();
        let mut ws = Workspace::new();
        let mut profile = PhaseProfile::from_wrapped(&m, cfg.wavelength).unwrap();
        profile.smooth(cfg.smoothing_window);
        let mut scores = Vec::new();
        GridSolver::default()
            .solve_profile_traced(&profile, &cfg, SolveSpace::TwoD, &mut ws, &mut scores)
            .unwrap();
        assert_eq!(scores.len(), GridConfig::default().levels);
        for w in scores.windows(2) {
            assert!(
                w[1] <= w[0] * (1.0 + 1e-9) + 1e-18,
                "refinement regressed: {scores:?}"
            );
        }
    }

    #[test]
    fn flat_surface_is_degenerate_likelihood() {
        // Force the contrast gate with an absurd threshold: any real
        // surface now counts as flat.
        let m = circle_measurements(Point3::new(1.0, 0.0, 0.0), 100, 0.3);
        let solver = GridSolver::new(GridConfig {
            min_contrast: 1e12,
            ..GridConfig::default()
        });
        let err = solver
            .solve_in(&m, &clean_config(), SolveSpace::TwoD, &mut Workspace::new())
            .unwrap_err();
        assert!(matches!(err, CoreError::DegenerateLikelihood { .. }));
        assert_eq!(err.kind(), "degenerate_likelihood");
    }

    #[test]
    fn invalid_grid_config_rejected() {
        for bad in [
            GridConfig {
                half_extent: 0.0,
                ..GridConfig::default()
            },
            GridConfig {
                cells: 2,
                ..GridConfig::default()
            },
            GridConfig {
                levels: 0,
                ..GridConfig::default()
            },
            GridConfig {
                shrink: 1.5,
                ..GridConfig::default()
            },
            GridConfig {
                beam: 0,
                ..GridConfig::default()
            },
            GridConfig {
                min_contrast: -1.0,
                ..GridConfig::default()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} must be rejected");
            assert!(SolverKind::Grid(bad).validate().is_err());
        }
        assert!(SolverKind::Linear.validate().is_ok());
        assert!(GridConfig::default().validate().is_ok());
    }

    #[test]
    fn solver_trait_is_object_safe() {
        let backends: [&dyn Solver; 2] = [&LinearSolver, &GridSolver::default()];
        let names: Vec<&str> = backends.iter().map(|s| s.name()).collect();
        assert_eq!(names, ["linear", "grid"]);
        let target = Point3::new(0.9, 0.3, 0.0);
        let m = circle_measurements(target, 150, 0.3);
        let mut ws = Workspace::new();
        for backend in backends {
            let est = backend
                .solve_in(&m, &clean_config(), SolveSpace::TwoD, &mut ws)
                .unwrap();
            assert!(est.distance_error(target) < 1e-2);
        }
    }

    #[test]
    fn grid_shares_linear_validation() {
        let cfg = clean_config();
        let solver = GridSolver::default();
        let too_few = circle_measurements(Point3::new(1.0, 0.0, 0.0), 3, 0.3);
        assert!(matches!(
            solver.solve_in(&too_few, &cfg, SolveSpace::TwoD, &mut Workspace::new()),
            Err(CoreError::TooFewMeasurements { .. })
        ));
        let coincident: Vec<(Point3, f64)> = (0..10).map(|_| (Point3::ORIGIN, 0.3)).collect();
        assert!(matches!(
            solver.solve_in(&coincident, &cfg, SolveSpace::TwoD, &mut Workspace::new()),
            Err(CoreError::DegenerateGeometry { .. })
        ));
        let mut bad_ref = cfg.clone();
        bad_ref.reference_index = Some(9_999);
        let m = circle_measurements(Point3::new(1.0, 0.0, 0.0), 100, 0.3);
        assert!(matches!(
            solver.solve_in(&m, &bad_ref, SolveSpace::TwoD, &mut Workspace::new()),
            Err(CoreError::InvalidConfig { .. })
        ));
        // Single straight line in 3D stays unsolvable through the grid.
        let line: Vec<(Point3, f64)> = (0..100)
            .map(|i| {
                let p = Point3::new(i as f64 * 0.01, 0.0, 0.0);
                (p, phase_of(Point3::new(0.0, 1.0, 0.2), p))
            })
            .collect();
        assert!(matches!(
            solver.solve_in(&line, &cfg, SolveSpace::ThreeD, &mut Workspace::new()),
            Err(CoreError::DegenerateGeometry { .. })
        ));
    }
}
