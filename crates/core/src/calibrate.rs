//! Phase calibration (paper Sec. IV-C): turning an antenna-position
//! estimate into a **center displacement** and a **phase offset**.
//!
//! - *Center calibration*: the difference between the estimated phase
//!   center and the manually measured physical center. Localization
//!   pipelines should use the estimated center from then on.
//! - *Offset calibration* (paper Eq. 17): with the center known, every
//!   sample's geometric phase `θ_d = (4π/λ)·d` is computable; the circular
//!   mean of `θ_measured − θ_d` is the combined hardware offset
//!   `θ_T + θ_R` of this antenna–tag pair. Differences of these offsets
//!   across antennas calibrate multi-antenna deployments.

use lion_geom::{Point3, Vec3};
use lion_linalg::stats;
use serde::{Deserialize, Serialize};

use crate::adaptive::AdaptiveConfig;
use crate::error::CoreError;
use crate::localizer::{Estimate, Localizer3d, LocalizerConfig};
use crate::preprocess::wrap_phase;
use crate::workspace::Workspace;

/// Result of a full phase calibration for one antenna–tag pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    /// The estimated phase center (world coordinates).
    pub phase_center: Point3,
    /// `phase_center − physical_center`: what the paper reports in
    /// Fig. 19(b).
    pub center_displacement: Vec3,
    /// The combined hardware phase offset `θ_T + θ_R` in `[0, 2π)`
    /// (paper Eq. 17). Only offset *differences* between pairs are
    /// physically meaningful.
    pub phase_offset: f64,
    /// Circular standard deviation of the per-sample offset estimates —
    /// a quality indicator (large spread ⇒ poor center estimate or heavy
    /// multipath).
    pub offset_spread: f64,
    /// The localization estimate behind the center (diagnostics).
    pub estimate: Estimate,
}

impl Calibration {
    /// Converts a measured phase into the purely geometric phase by
    /// removing the calibrated hardware offset (result in `[0, 2π)`).
    pub fn corrected_phase(&self, measured: f64) -> f64 {
        wrap_phase(measured - self.phase_offset)
    }

    /// Expected wrapped phase for a tag at `tag_position`, using the
    /// calibrated center and offset.
    pub fn expected_phase(&self, tag_position: Point3, wavelength: f64) -> f64 {
        let d = self.phase_center.distance(tag_position);
        wrap_phase(4.0 * std::f64::consts::PI * d / wavelength + self.phase_offset)
    }
}

/// Calibrates antennas from scan data: estimates the phase center via the
/// LION 3D localizer (with the adaptive parameter sweep) and then the
/// phase offset from the raw measurements.
#[derive(Debug, Clone, Default)]
pub struct Calibrator {
    localizer: LocalizerConfig,
    adaptive: Option<AdaptiveConfig>,
}

impl Calibrator {
    /// Creates a calibrator with the given localizer configuration and the
    /// default adaptive sweep.
    pub fn new(localizer: LocalizerConfig) -> Self {
        Calibrator {
            localizer,
            adaptive: Some(AdaptiveConfig::default()),
        }
    }

    /// Disables or replaces the adaptive parameter sweep (`None` locates
    /// once with the base configuration).
    pub fn with_adaptive(mut self, adaptive: Option<AdaptiveConfig>) -> Self {
        self.adaptive = adaptive;
        self
    }

    /// The localizer configuration.
    pub fn localizer_config(&self) -> &LocalizerConfig {
        &self.localizer
    }

    /// Calibrates one antenna from `(tag position, wrapped phase)`
    /// measurements taken on a trajectory spanning at least two dimensions
    /// (paper Fig. 11 recommends the three-line scan).
    ///
    /// `physical_center` is the manually measured antenna position; it is
    /// also used as the mirror-disambiguation hint unless the configuration
    /// already carries one.
    ///
    /// # Errors
    ///
    /// Propagates localization errors ([`CoreError`]).
    pub fn calibrate(
        &self,
        measurements: &[(Point3, f64)],
        physical_center: Point3,
    ) -> Result<Calibration, CoreError> {
        self.calibrate_in(measurements, physical_center, &mut Workspace::new())
    }

    /// [`Calibrator::calibrate`] with a reusable [`Workspace`]: solver
    /// buffers come from (and stage metrics are recorded into) `ws`.
    /// Bit-identical to `calibrate`.
    ///
    /// # Errors
    ///
    /// See [`Calibrator::calibrate`].
    pub fn calibrate_in(
        &self,
        measurements: &[(Point3, f64)],
        physical_center: Point3,
        ws: &mut Workspace,
    ) -> Result<Calibration, CoreError> {
        let mut cfg = self.localizer.clone();
        if cfg.side_hint.is_none() {
            cfg.side_hint = Some(physical_center);
        }
        let localizer = Localizer3d::new(cfg.clone());
        let estimate = match &self.adaptive {
            Some(a) => localizer.locate_adaptive_in(measurements, a, ws)?.estimate,
            None => localizer.locate_in(measurements, ws)?,
        };
        let (phase_offset, offset_spread) =
            estimate_offset(measurements, estimate.position, cfg.wavelength)?;
        Ok(Calibration {
            phase_center: estimate.position,
            center_displacement: estimate.position - physical_center,
            phase_offset,
            offset_spread,
            estimate,
        })
    }
}

/// Fuses repeated calibration runs of the *same* antenna into one result.
///
/// Production calibration repeats the scan several times and averages:
/// centers combine by arithmetic mean, offsets by circular mean. The
/// returned [`CalibrationSpread`] quantifies run-to-run repeatability —
/// the honest error bar a datasheet would quote.
///
/// # Errors
///
/// - [`CoreError::TooFewMeasurements`] for an empty slice,
/// - [`CoreError::DegenerateGeometry`] when the offsets are uniformly
///   spread (the runs disagree completely).
pub fn fuse_calibrations(
    runs: &[Calibration],
) -> Result<(Calibration, CalibrationSpread), CoreError> {
    if runs.is_empty() {
        return Err(CoreError::TooFewMeasurements { got: 0, needed: 1 });
    }
    let n = runs.len() as f64;
    let center = runs.iter().fold(Point3::ORIGIN, |acc, c| {
        Point3::new(
            acc.x + c.phase_center.x / n,
            acc.y + c.phase_center.y / n,
            acc.z + c.phase_center.z / n,
        )
    });
    let offsets: Vec<f64> = runs.iter().map(|c| c.phase_offset).collect();
    let offset = stats::circular_mean(&offsets).ok_or_else(|| CoreError::DegenerateGeometry {
        detail: "per-run phase offsets are uniformly spread; the runs disagree".to_string(),
    })?;
    let center_spread = runs
        .iter()
        .map(|c| c.phase_center.distance(center))
        .fold(0.0_f64, f64::max);
    let offset_spread = stats::circular_std_dev(&offsets).unwrap_or(f64::INFINITY);
    // Displacement is re-derived from the fused center; the physical
    // center is common to all runs by construction.
    let physical = runs[0].phase_center - runs[0].center_displacement;
    let fused = Calibration {
        phase_center: center,
        center_displacement: center - physical,
        phase_offset: offset,
        offset_spread,
        // Keep the best run's estimate for diagnostics.
        estimate: runs
            .iter()
            .min_by(|a, b| {
                a.estimate
                    .mean_residual
                    .abs()
                    .partial_cmp(&b.estimate.mean_residual.abs())
                    .expect("finite residuals")
            })
            .expect("non-empty")
            .estimate
            .clone(),
    };
    Ok((
        fused,
        CalibrationSpread {
            runs: runs.len(),
            max_center_deviation: center_spread,
            offset_circular_std: offset_spread,
        },
    ))
}

/// Run-to-run repeatability of a fused calibration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CalibrationSpread {
    /// Number of runs fused.
    pub runs: usize,
    /// Largest distance from any single-run center to the fused center
    /// (meters).
    pub max_center_deviation: f64,
    /// Circular standard deviation of the per-run offsets (radians).
    pub offset_circular_std: f64,
}

/// Estimates the combined hardware phase offset given a known phase
/// center (paper Eq. 17): the circular mean over samples of
/// `θ_measured − (4π/λ)·d`.
///
/// Returns `(offset in [0, 2π), circular standard deviation)`.
///
/// # Errors
///
/// - [`CoreError::TooFewMeasurements`] for empty input,
/// - [`CoreError::NonFiniteMeasurement`] for NaN/inf samples,
/// - [`CoreError::DegenerateGeometry`] when the offsets are uniformly
///   spread (no meaningful mean — the center estimate must be wrong).
pub fn estimate_offset(
    measurements: &[(Point3, f64)],
    phase_center: Point3,
    wavelength: f64,
) -> Result<(f64, f64), CoreError> {
    if measurements.is_empty() {
        return Err(CoreError::TooFewMeasurements { got: 0, needed: 1 });
    }
    let mut diffs = Vec::with_capacity(measurements.len());
    for (i, (p, theta)) in measurements.iter().enumerate() {
        if !p.is_finite() || !theta.is_finite() {
            return Err(CoreError::NonFiniteMeasurement { index: i });
        }
        let d = phase_center.distance(*p);
        let theta_d = 4.0 * std::f64::consts::PI * d / wavelength;
        diffs.push(theta - theta_d);
    }
    let mean = stats::circular_mean(&diffs).ok_or_else(|| CoreError::DegenerateGeometry {
        detail: "per-sample phase offsets are uniformly spread; the phase \
                 center estimate is likely wrong"
            .to_string(),
    })?;
    let spread = stats::circular_std_dev(&diffs).unwrap_or(f64::INFINITY);
    Ok((mean, spread))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairs::PairStrategy;
    use lion_geom::{ThreeLineScan, Trajectory};
    use std::f64::consts::{PI, TAU};

    const LAMBDA: f64 = 299_792_458.0 / 920.625e6;

    fn phase_of(center: Point3, p: Point3, offset: f64) -> f64 {
        (4.0 * PI * center.distance(p) / LAMBDA + offset).rem_euclid(TAU)
    }

    /// Noise-free three-line scan against an antenna with displacement and
    /// offset.
    fn scan_measurements(true_center: Point3, offset: f64) -> Vec<(Point3, f64)> {
        let scan = ThreeLineScan::new(-0.4, 0.4, 0.2, 0.2).unwrap();
        scan.to_path()
            .sample(0.1, 50.0)
            .into_iter()
            .map(|w| (w.position, phase_of(true_center, w.position, offset)))
            .collect()
    }

    fn calibrator() -> Calibrator {
        let cfg = LocalizerConfig {
            smoothing_window: 1,
            pair_strategy: PairStrategy::StructuredScan {
                scan: ThreeLineScan::new(-0.4, 0.4, 0.2, 0.2).unwrap(),
                x_interval: 0.2,
                tolerance: 0.003,
            },
            ..LocalizerConfig::default()
        };
        Calibrator::new(cfg).with_adaptive(None)
    }

    #[test]
    fn recovers_planted_center_and_offset() {
        // Physical center at (0, 0.8, 0); true phase center 2–3 cm off.
        let physical = Point3::new(0.0, 0.8, 0.0);
        let truth = Point3::new(0.025, 0.79, 0.02);
        let true_offset = 2.74;
        let m = scan_measurements(truth, true_offset);
        let cal = calibrator().calibrate(&m, physical).unwrap();
        assert!(
            cal.phase_center.distance(truth) < 1e-5,
            "center error {}",
            cal.phase_center.distance(truth)
        );
        let expected_disp = truth - physical;
        assert!((cal.center_displacement - expected_disp).norm() < 1e-5);
        let offset_err = stats::circular_diff(cal.phase_offset, true_offset).abs();
        assert!(offset_err < 1e-4, "offset error {offset_err}");
        assert!(cal.offset_spread < 1e-4);
    }

    #[test]
    fn corrected_and_expected_phase_roundtrip() {
        let truth = Point3::new(0.0, 0.8, 0.0);
        let m = scan_measurements(truth, 1.1);
        let cal = calibrator().calibrate(&m, truth).unwrap();
        let p = Point3::new(0.1, 0.0, 0.0);
        let measured = phase_of(truth, p, 1.1);
        let expected = cal.expected_phase(p, LAMBDA);
        let d = stats::circular_diff(measured, expected).abs();
        assert!(d < 1e-4, "diff {d}");
        // corrected_phase removes the offset.
        let geo = cal.corrected_phase(measured);
        let want = (4.0 * PI * truth.distance(p) / LAMBDA).rem_euclid(TAU);
        assert!(stats::circular_diff(geo, want).abs() < 1e-4);
    }

    #[test]
    fn offset_estimation_standalone() {
        let center = Point3::new(0.0, 1.0, 0.0);
        let m: Vec<(Point3, f64)> = (0..50)
            .map(|i| {
                let p = Point3::new(-0.25 + i as f64 * 0.01, 0.0, 0.0);
                (p, phase_of(center, p, 4.07))
            })
            .collect();
        let (offset, spread) = estimate_offset(&m, center, LAMBDA).unwrap();
        assert!(stats::circular_diff(offset, 4.07).abs() < 1e-9);
        // Numerically-identical diffs still leave ~1e-8 of circular spread.
        assert!(spread < 1e-6);
    }

    #[test]
    fn offset_estimation_wrap_boundary() {
        // An offset near 0 must not average to π when samples straddle 2π.
        let center = Point3::new(0.0, 1.0, 0.0);
        let m: Vec<(Point3, f64)> = (0..50)
            .map(|i| {
                let p = Point3::new(-0.25 + i as f64 * 0.01, 0.0, 0.0);
                (p, phase_of(center, p, 0.002))
            })
            .collect();
        let (offset, _) = estimate_offset(&m, center, LAMBDA).unwrap();
        assert!(stats::circular_diff(offset, 0.002).abs() < 1e-9);
    }

    #[test]
    fn offset_errors() {
        assert!(matches!(
            estimate_offset(&[], Point3::ORIGIN, LAMBDA),
            Err(CoreError::TooFewMeasurements { .. })
        ));
        let m = vec![(Point3::new(f64::NAN, 0.0, 0.0), 0.0)];
        assert!(matches!(
            estimate_offset(&m, Point3::ORIGIN, LAMBDA),
            Err(CoreError::NonFiniteMeasurement { .. })
        ));
        // Uniformly spread offsets → degenerate.
        let m = vec![
            (Point3::new(0.0, 1.0, 0.0), 0.0),
            (Point3::new(0.0, 1.0, 0.0), PI / 2.0),
            (Point3::new(0.0, 1.0, 0.0), PI),
            (Point3::new(0.0, 1.0, 0.0), 1.5 * PI),
        ];
        // All at the same position: θ_d identical, diffs uniformly spread.
        assert!(matches!(
            estimate_offset(&m, Point3::ORIGIN, LAMBDA),
            Err(CoreError::DegenerateGeometry { .. })
        ));
    }

    #[test]
    fn fusing_runs_tightens_the_estimate() {
        let physical = Point3::new(0.0, 0.8, 0.0);
        let truth = Point3::new(0.022, 0.79, 0.015);
        let true_offset = 2.0;
        // Three runs with slightly different (noise-free here, so
        // identical) data; perturb them artificially to emulate run-to-run
        // variation.
        let base = calibrator()
            .calibrate(&scan_measurements(truth, true_offset), physical)
            .unwrap();
        let mut runs = Vec::new();
        for (dx, doff) in [(0.001, 0.02), (-0.0012, -0.015), (0.0005, 0.005)] {
            let mut c = base.clone();
            c.phase_center = Point3::new(
                base.phase_center.x + dx,
                base.phase_center.y - dx,
                base.phase_center.z,
            );
            c.center_displacement = c.phase_center - physical;
            c.phase_offset = stats::wrap_angle(base.phase_offset + doff);
            runs.push(c);
        }
        let (fused, spread) = fuse_calibrations(&runs).unwrap();
        assert_eq!(spread.runs, 3);
        assert!(spread.max_center_deviation < 0.003);
        assert!(spread.offset_circular_std < 0.05);
        // The fused center is at least as close to truth as the worst run.
        let worst = runs
            .iter()
            .map(|c| c.phase_center.distance(truth))
            .fold(0.0_f64, f64::max);
        assert!(fused.phase_center.distance(truth) <= worst + 1e-12);
        // Displacement is consistent with the fused center.
        assert!((fused.center_displacement - (fused.phase_center - physical)).norm() < 1e-12);
    }

    #[test]
    fn fuse_rejects_empty_and_degenerate() {
        assert!(matches!(
            fuse_calibrations(&[]),
            Err(CoreError::TooFewMeasurements { .. })
        ));
    }

    #[test]
    fn physical_center_used_as_default_hint() {
        // Planar two-line scan (no z spread): the mirror ambiguity along z
        // is resolved toward the physical center.
        let physical = Point3::new(0.0, 0.8, 0.3);
        let truth = Point3::new(0.01, 0.81, 0.28);
        let scan = ThreeLineScan::new(-0.4, 0.4, 0.2, 0.2).unwrap();
        // Only lines L1 and L3 (both z = 0): z must come from recovery.
        let mut m = Vec::new();
        let path = {
            let mut p = lion_geom::Path::new();
            p.push_line(scan.line1());
            p.connect_to(scan.line3().start());
            p.push_line(scan.line3());
            p
        };
        for w in path.sample(0.1, 50.0) {
            m.push((w.position, phase_of(truth, w.position, 0.0)));
        }
        let cfg = LocalizerConfig {
            smoothing_window: 1,
            pair_strategy: PairStrategy::Interval { interval: 0.2 },
            ..LocalizerConfig::default()
        };
        let cal = Calibrator::new(cfg)
            .with_adaptive(None)
            .calibrate(&m, physical)
            .unwrap();
        assert!(cal.estimate.lower_dimension);
        assert!(
            cal.phase_center.distance(truth) < 1e-4,
            "center error {}",
            cal.phase_center.distance(truth)
        );
    }
}
