//! Adaptive parameter selection (paper Sec. IV-C1, evaluated in
//! Figs. 16–18).
//!
//! The scanning range and scanning interval materially change the estimate
//! quality: too small a range and the phase barely varies (plane-wave
//! regime); too large and off-beam samples poison the system; too small an
//! interval and noise dominates the pairwise phase difference. The paper's
//! key empirical finding is that the **mean weighted-least-squares
//! residual tracks the distance error**: the configuration whose mean
//! residual sits closest to zero is (nearly) the most accurate one. This
//! module sweeps the parameter grid, ranks trials by `|mean residual|`,
//! and averages the best few estimates.
//!
//! # The shared-prefix sweep
//!
//! The default sweep ([`Localizer2d::locate_adaptive`] and friends) no
//! longer re-runs the full pipeline per grid cell. It hoists everything
//! the cells share out of the loop — unwrapping, smoothing, the
//! principal-component frame, the frame coordinates and distance deltas
//! of every sample, and an x-sorted sample index — then solves each cell
//! on a binary-searched slice of that shared state through an
//! incrementally maintained normal-equation system
//! ([`lion_linalg::NormalEq`]). Ranges are visited in ascending order so
//! a wider range *extends* the narrower range's system in place instead
//! of rebuilding it. All buffers live in the [`Workspace`], so the
//! steady-state sweep performs **zero heap allocations**.
//!
//! Two deliberate semantic changes versus the naive per-cell pipeline
//! (which is preserved as [`Localizer2d::locate_adaptive_naive_in`] for
//! comparison and benchmarking):
//!
//! - every cell shares one **pinned reference sample** (the sample whose
//!   x is closest to the range center, so it lies inside every centered
//!   range) instead of each restricted sub-profile's middle sample, and
//! - every cell shares the **global principal-component frame** instead
//!   of a per-subset frame.
//!
//! Both transformations shift the linear system only within its column
//! space, so per-cell residuals — and therefore the `|mean residual|`
//! ranking — are unchanged in exact arithmetic; positions agree to
//! floating-point noise. Whole-trajectory geometry errors
//! ([`CoreError::DegenerateGeometry`], invalid `rank_tolerance`) are now
//! reported for the sweep as a whole instead of silently skipping every
//! cell. `config.reference_index` is ignored by both sweep variants.
//!
//! The sweep is also available as an owned [`SweepPlan`] whose cells can
//! be solved independently (and concurrently) with per-worker
//! workspaces; [`SweepPlan::finish`] reduces results in submission order
//! so the outcome is bit-identical for any worker count.
//!
//! When the base configuration selects [`crate::SolverKind::Grid`], each
//! cell runs the likelihood-grid backend on its range-sliced sample
//! subset instead of the normal-equation solve — reusing the same shared
//! deltas, pinned reference, and x-sorted slicing. Grid cells ignore the
//! scanning interval (the grid scores samples directly, no pairing), so
//! cells that share a range produce identical estimates and only the
//! range axis of the sweep differentiates trials.

use std::time::Instant;

use serde::{Deserialize, Serialize};

use lion_geom::{Point3, Vec3};
use lion_linalg::{solve_irls_normal, IrlsConfig, WeightFunction};

use crate::error::CoreError;
use crate::localizer::{
    analyze_geometry_small, assemble_position, prepare_profile_in, Estimate, Localizer2d,
    Localizer3d, LocalizerConfig, Mode, Weighting,
};
use crate::pairs::PairStrategy;
use crate::preprocess::PhaseProfile;
use crate::solver::{
    grid_estimate, grid_search, pick_mirror_side, GridBest, GridConfig, GridProblem,
};
use crate::workspace::{elapsed_ns, CellScratch, StageMetrics, SweepScratch, Workspace};

/// The parameter grid for the adaptive sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveConfig {
    /// Scanning ranges to try (full widths in meters, centered on the
    /// trajectory's x centroid). The paper sweeps 0.6–1.1 m.
    pub scanning_ranges: Vec<f64>,
    /// Scanning intervals to try (meters). The paper sweeps 0.10–0.35 m.
    pub intervals: Vec<f64>,
    /// How many of the best trials (smallest `|mean residual|`) to average
    /// into the final estimate.
    pub keep: usize,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            scanning_ranges: vec![0.6, 0.7, 0.8, 0.9, 1.0, 1.1],
            intervals: vec![0.10, 0.15, 0.20, 0.25, 0.30, 0.35],
            keep: 3,
        }
    }
}

impl AdaptiveConfig {
    /// Starts a validating builder seeded with the paper's sweep grid
    /// (ranges 0.6–1.1 m, intervals 0.10–0.35 m, keep 3).
    ///
    /// # Example
    ///
    /// ```
    /// use lion_core::AdaptiveConfig;
    ///
    /// # fn main() -> Result<(), lion_core::CoreError> {
    /// let grid = AdaptiveConfig::builder()
    ///     .scanning_ranges(vec![0.6, 0.8])
    ///     .intervals(vec![0.2])
    ///     .keep(1)
    ///     .build()?;
    /// assert_eq!(grid.scanning_ranges.len(), 2);
    /// assert!(AdaptiveConfig::builder().keep(0).build().is_err());
    /// # Ok(())
    /// # }
    /// ```
    pub fn builder() -> AdaptiveConfigBuilder {
        AdaptiveConfigBuilder {
            config: AdaptiveConfig::default(),
        }
    }

    /// Checks the grid invariants: non-empty ranges/intervals, every entry
    /// positive and finite, `keep ≥ 1`. The sweep runs this before
    /// touching the data.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] naming the offending
    /// parameter.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.scanning_ranges.is_empty() || self.intervals.is_empty() {
            return Err(CoreError::InvalidConfig {
                parameter: "adaptive grid",
                found: "empty ranges or intervals".to_string(),
            });
        }
        if self.keep == 0 {
            return Err(CoreError::InvalidConfig {
                parameter: "keep",
                found: "0".to_string(),
            });
        }
        for &r in &self.scanning_ranges {
            if !(r > 0.0 && r.is_finite()) {
                return Err(CoreError::InvalidConfig {
                    parameter: "scanning_ranges",
                    found: format!("{r}"),
                });
            }
        }
        for &i in &self.intervals {
            if !(i > 0.0 && i.is_finite()) {
                return Err(CoreError::InvalidConfig {
                    parameter: "intervals",
                    found: format!("{i}"),
                });
            }
        }
        Ok(())
    }
}

/// Validating builder for [`AdaptiveConfig`]. Created by
/// [`AdaptiveConfig::builder`]; struct-literal construction keeps
/// working.
#[derive(Debug, Clone)]
pub struct AdaptiveConfigBuilder {
    config: AdaptiveConfig,
}

impl AdaptiveConfigBuilder {
    /// Sets the scanning ranges to sweep (full widths, meters).
    pub fn scanning_ranges(mut self, ranges: Vec<f64>) -> Self {
        self.config.scanning_ranges = ranges;
        self
    }

    /// Sets the scanning intervals to sweep (meters).
    pub fn intervals(mut self, intervals: Vec<f64>) -> Self {
        self.config.intervals = intervals;
        self
    }

    /// Sets how many of the best trials to average.
    pub fn keep(mut self, keep: usize) -> Self {
        self.config.keep = keep;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// See [`AdaptiveConfig::validate`].
    pub fn build(self) -> Result<AdaptiveConfig, CoreError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// One trial of the sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveTrial {
    /// Scanning range used (meters).
    pub range: f64,
    /// Scanning interval used (meters).
    pub interval: f64,
    /// The estimate this configuration produced.
    pub estimate: Estimate,
}

/// The outcome of an adaptive sweep.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveOutcome {
    /// The selected estimate: the position is the average of the `keep`
    /// best trials; the remaining fields are copied from the single best
    /// trial.
    pub estimate: Estimate,
    /// All successful trials, ranked by `|mean residual|` ascending.
    pub trials: Vec<AdaptiveTrial>,
    /// Number of `(range, interval)` combinations that failed (too few
    /// pairs, rank problems, …) and were skipped.
    pub skipped: usize,
}

impl Localizer2d {
    /// Runs the adaptive parameter sweep for 2D localization via the
    /// shared-prefix engine (see the module docs).
    ///
    /// # Errors
    ///
    /// - configuration errors from [`AdaptiveConfig`] validation,
    /// - [`CoreError::NoPairs`] when every combination fails,
    /// - preprocessing errors from the underlying profile construction,
    /// - [`CoreError::DegenerateGeometry`] when the whole trajectory has
    ///   unusable geometry.
    pub fn locate_adaptive(
        &self,
        measurements: &[(Point3, f64)],
        adaptive: &AdaptiveConfig,
    ) -> Result<AdaptiveOutcome, CoreError> {
        self.locate_adaptive_in(measurements, adaptive, &mut Workspace::new())
    }

    /// [`Localizer2d::locate_adaptive`] with a reusable [`Workspace`].
    /// Bit-identical results; sweep timings and counters land in `ws`.
    ///
    /// # Errors
    ///
    /// See [`Localizer2d::locate_adaptive`].
    pub fn locate_adaptive_in(
        &self,
        measurements: &[(Point3, f64)],
        adaptive: &AdaptiveConfig,
        ws: &mut Workspace,
    ) -> Result<AdaptiveOutcome, CoreError> {
        let mut out = AdaptiveOutcome::default();
        self.locate_adaptive_into(measurements, adaptive, ws, &mut out)?;
        Ok(out)
    }

    /// [`Localizer2d::locate_adaptive_in`] into a caller-owned outcome:
    /// the trial list's capacity is reused across calls, making the
    /// steady-state sweep fully allocation-free.
    ///
    /// # Errors
    ///
    /// See [`Localizer2d::locate_adaptive`]. On error `out` holds no
    /// meaningful data.
    pub fn locate_adaptive_into(
        &self,
        measurements: &[(Point3, f64)],
        adaptive: &AdaptiveConfig,
        ws: &mut Workspace,
        out: &mut AdaptiveOutcome,
    ) -> Result<(), CoreError> {
        sweep_shared(
            measurements,
            self.config(),
            Mode::TwoD,
            4,
            adaptive,
            ws,
            out,
        )
    }

    /// The pre-shared-prefix sweep: restricts the profile and re-runs the
    /// full per-cell pipeline (own frame, own reference, QR-based IRLS)
    /// for every grid cell. Kept as the comparison baseline for the
    /// benchmark suite and the parity regression tests.
    ///
    /// # Errors
    ///
    /// See [`Localizer2d::locate_adaptive`].
    pub fn locate_adaptive_naive_in(
        &self,
        measurements: &[(Point3, f64)],
        adaptive: &AdaptiveConfig,
        ws: &mut Workspace,
    ) -> Result<AdaptiveOutcome, CoreError> {
        let profile = crate::localizer::prepare_in(measurements, self.config(), ws)?;
        sweep_naive(&profile, self.config(), adaptive, ws, |profile, cfg, ws| {
            Localizer2d::new(cfg.clone()).locate_profile_in(profile, ws)
        })
    }

    /// Builds an owned [`SweepPlan`] whose cells can be solved on any
    /// worker with any workspace — the engine's fan-out entry point.
    /// Preprocessing timings and the reads-dropped counter land in `ws`.
    ///
    /// # Errors
    ///
    /// See [`Localizer2d::locate_adaptive`].
    pub fn sweep_plan(
        &self,
        measurements: &[(Point3, f64)],
        adaptive: &AdaptiveConfig,
        ws: &mut Workspace,
    ) -> Result<SweepPlan, CoreError> {
        SweepPlan::build(measurements, self.config(), Mode::TwoD, 4, adaptive, ws)
    }
}

impl Localizer3d {
    /// Runs the adaptive parameter sweep for 3D localization via the
    /// shared-prefix engine (see the module docs).
    ///
    /// # Errors
    ///
    /// See [`Localizer2d::locate_adaptive`].
    pub fn locate_adaptive(
        &self,
        measurements: &[(Point3, f64)],
        adaptive: &AdaptiveConfig,
    ) -> Result<AdaptiveOutcome, CoreError> {
        self.locate_adaptive_in(measurements, adaptive, &mut Workspace::new())
    }

    /// [`Localizer3d::locate_adaptive`] with a reusable [`Workspace`].
    ///
    /// # Errors
    ///
    /// See [`Localizer2d::locate_adaptive`].
    pub fn locate_adaptive_in(
        &self,
        measurements: &[(Point3, f64)],
        adaptive: &AdaptiveConfig,
        ws: &mut Workspace,
    ) -> Result<AdaptiveOutcome, CoreError> {
        let mut out = AdaptiveOutcome::default();
        self.locate_adaptive_into(measurements, adaptive, ws, &mut out)?;
        Ok(out)
    }

    /// [`Localizer3d::locate_adaptive_in`] into a caller-owned outcome;
    /// see [`Localizer2d::locate_adaptive_into`].
    ///
    /// # Errors
    ///
    /// See [`Localizer2d::locate_adaptive`].
    pub fn locate_adaptive_into(
        &self,
        measurements: &[(Point3, f64)],
        adaptive: &AdaptiveConfig,
        ws: &mut Workspace,
        out: &mut AdaptiveOutcome,
    ) -> Result<(), CoreError> {
        sweep_shared(
            measurements,
            self.config(),
            Mode::ThreeD,
            5,
            adaptive,
            ws,
            out,
        )
    }

    /// The pre-shared-prefix sweep; see
    /// [`Localizer2d::locate_adaptive_naive_in`].
    ///
    /// # Errors
    ///
    /// See [`Localizer2d::locate_adaptive`].
    pub fn locate_adaptive_naive_in(
        &self,
        measurements: &[(Point3, f64)],
        adaptive: &AdaptiveConfig,
        ws: &mut Workspace,
    ) -> Result<AdaptiveOutcome, CoreError> {
        let profile = crate::localizer::prepare_in(measurements, self.config(), ws)?;
        sweep_naive(&profile, self.config(), adaptive, ws, |profile, cfg, ws| {
            Localizer3d::new(cfg.clone()).locate_profile_in(profile, ws)
        })
    }

    /// Builds an owned [`SweepPlan`]; see [`Localizer2d::sweep_plan`].
    ///
    /// # Errors
    ///
    /// See [`Localizer2d::locate_adaptive`].
    pub fn sweep_plan(
        &self,
        measurements: &[(Point3, f64)],
        adaptive: &AdaptiveConfig,
        ws: &mut Workspace,
    ) -> Result<SweepPlan, CoreError> {
        SweepPlan::build(measurements, self.config(), Mode::ThreeD, 5, adaptive, ws)
    }
}

fn sweep_naive(
    profile: &PhaseProfile,
    base: &LocalizerConfig,
    adaptive: &AdaptiveConfig,
    ws: &mut Workspace,
    mut locate: impl FnMut(
        &PhaseProfile,
        &LocalizerConfig,
        &mut Workspace,
    ) -> Result<Estimate, CoreError>,
) -> Result<AdaptiveOutcome, CoreError> {
    adaptive.validate()?;
    let _sweep_span = lion_obs::span!("lion.adaptive");
    let sweep_start = Instant::now();
    // Inner trials re-enter the pipeline stages below; snapshotting their
    // disjoint sum lets the sweep attribute its own orchestration overhead
    // (grid iteration, profile restriction, ranking) exactly.
    let inner_before = ws.metrics.pipeline_ns();
    // Center ranges on the x centroid of the trajectory (the paper centers
    // its scanning range at x = 0 with the antenna at the track middle).
    let cx = profile.positions().iter().map(|p| p.x).sum::<f64>() / profile.len() as f64;
    let mut trials = Vec::new();
    let mut skipped = 0;
    for &range in &adaptive.scanning_ranges {
        let restricted = profile.restrict_x(cx - range / 2.0, cx + range / 2.0);
        ws.metrics.reads_dropped += (profile.len() - restricted.len()) as u64;
        if restricted.len() < 4 {
            skipped += adaptive.intervals.len();
            continue;
        }
        for &interval in &adaptive.intervals {
            let mut cfg = base.clone();
            cfg.pair_strategy = base.pair_strategy.with_interval(interval);
            // The restricted profile has its own middle sample.
            cfg.reference_index = None;
            match locate(&restricted, &cfg, ws) {
                Ok(estimate) => trials.push(AdaptiveTrial {
                    range,
                    interval,
                    estimate,
                }),
                Err(_) => skipped += 1,
            }
        }
    }
    let sweep_ns = elapsed_ns(sweep_start);
    let inner_ns = ws.metrics.pipeline_ns() - inner_before;
    ws.metrics.adaptive_ns += sweep_ns;
    ws.metrics.adaptive_exclusive_ns += sweep_ns.saturating_sub(inner_ns);
    ws.metrics.adaptive_trials += trials.len() as u64;
    ws.metrics.adaptive_skipped += skipped as u64;
    lion_obs::event!(
        lion_obs::Level::Debug,
        "lion.adaptive.sweep",
        "trials" => trials.len(),
        "skipped" => skipped,
        "sweep_ns" => sweep_ns,
    );
    if trials.is_empty() {
        return Err(CoreError::NoPairs);
    }
    trials.sort_by(|a, b| {
        a.estimate
            .mean_residual
            .abs()
            .partial_cmp(&b.estimate.mean_residual.abs())
            .expect("residuals are finite")
    });
    let keep = adaptive.keep.min(trials.len());
    let inv = 1.0 / keep as f64;
    let avg = trials[..keep].iter().fold(Point3::ORIGIN, |acc, t| {
        Point3::new(
            acc.x + t.estimate.position.x * inv,
            acc.y + t.estimate.position.y * inv,
            acc.z + t.estimate.position.z * inv,
        )
    });
    let mut best = trials[0].estimate.clone();
    best.position = avg;
    Ok(AdaptiveOutcome {
        estimate: best,
        trials,
        skipped,
    })
}

/// The shared-prefix sweep entry point: preprocesses once into the
/// workspace-owned profile, then runs every grid cell on the shared
/// state.
fn sweep_shared(
    measurements: &[(Point3, f64)],
    base: &LocalizerConfig,
    mode: Mode,
    min_needed: usize,
    adaptive: &AdaptiveConfig,
    ws: &mut Workspace,
    out: &mut AdaptiveOutcome,
) -> Result<(), CoreError> {
    adaptive.validate()?;
    let mut profile = std::mem::take(&mut ws.profile);
    let result = prepare_profile_in(measurements, base, &mut profile, ws)
        .and_then(|()| sweep_profile_shared(&profile, base, mode, min_needed, adaptive, ws, out));
    ws.profile = profile;
    result
}

fn sweep_profile_shared(
    profile: &PhaseProfile,
    base: &LocalizerConfig,
    mode: Mode,
    min_needed: usize,
    adaptive: &AdaptiveConfig,
    ws: &mut Workspace,
    out: &mut AdaptiveOutcome,
) -> Result<(), CoreError> {
    let _sweep_span = lion_obs::span!("lion.adaptive");
    let sweep_start = Instant::now();
    out.trials.clear();
    out.skipped = 0;
    let Workspace { sweep, metrics, .. } = ws;
    let SweepScratch {
        coords,
        deltas,
        sorted_idx,
        range_order,
        cell,
        ..
    } = sweep;
    // Inner cells accrue pairs/solve time below; snapshotting the disjoint
    // pipeline sum lets the sweep attribute its own orchestration overhead
    // exactly, as the naive sweep does.
    let inner_before = metrics.pipeline_ns();
    let info = sweep_frame(profile, base, mode, coords, deltas, sorted_idx)?;
    let positions = profile.positions();
    record_reads_dropped(
        positions,
        sorted_idx,
        &adaptive.scanning_ranges,
        info.cx,
        metrics,
    );
    // Visit ranges ascending so each cell's sample subset extends the
    // previous one and the normal equations grow in place.
    range_order.clear();
    range_order.extend(0..adaptive.scanning_ranges.len());
    range_order.sort_unstable_by(|&a, &b| {
        adaptive.scanning_ranges[a].total_cmp(&adaptive.scanning_ranges[b])
    });
    let ctx = CellCtx {
        positions,
        coords: coords.as_slice(),
        deltas: deltas.as_slice(),
        sorted_idx: sorted_idx.as_slice(),
        k: info.k,
        cx: info.cx,
        reference: info.reference,
        centroid: info.centroid,
        axes: info.axes,
        lower_dimension: info.lower_dimension,
        side_hint: base.side_hint,
        pair_strategy: &base.pair_strategy,
        irls: resolve_irls(&base.weighting),
        min_needed,
        mode,
        grid: base.solver.grid().copied(),
    };
    let mut skipped = 0usize;
    for &interval in &adaptive.intervals {
        let mut have_prev = false;
        for &ri in range_order.iter() {
            let range = adaptive.scanning_ranges[ri];
            let cell_start = Instant::now();
            let solved = solve_cell(&ctx, range, interval, have_prev, cell, metrics);
            lion_obs::global().histogram_record("lion.adaptive.cell_ns", elapsed_ns(cell_start));
            match solved {
                Ok(estimate) => {
                    out.trials.push(AdaptiveTrial {
                        range,
                        interval,
                        estimate,
                    });
                    have_prev = true;
                }
                Err(_) => {
                    skipped += 1;
                    have_prev = false;
                }
            }
        }
    }
    let sweep_ns = elapsed_ns(sweep_start);
    let inner_ns = metrics.pipeline_ns() - inner_before;
    metrics.adaptive_ns += sweep_ns;
    metrics.adaptive_exclusive_ns += sweep_ns.saturating_sub(inner_ns);
    metrics.adaptive_trials += out.trials.len() as u64;
    metrics.adaptive_skipped += skipped as u64;
    lion_obs::event!(
        lion_obs::Level::Debug,
        "lion.adaptive.sweep",
        "trials" => out.trials.len(),
        "skipped" => skipped,
        "sweep_ns" => sweep_ns,
    );
    out.skipped = skipped;
    if out.trials.is_empty() {
        return Err(CoreError::NoPairs);
    }
    rank_trials(&mut out.trials);
    reduce_outcome(adaptive.keep, out);
    Ok(())
}

/// Per-sweep shared state computed once by [`sweep_frame`].
struct SweepFrameInfo {
    /// Range-center x (the trajectory's x centroid).
    cx: f64,
    /// Pinned reference sample: the one whose x is nearest `cx`.
    reference: usize,
    centroid: Point3,
    axes: [Vec3; 3],
    /// Number of spanned frame directions (solved coordinates).
    k: usize,
    lower_dimension: bool,
}

/// Validates the base configuration, analyzes the whole-trajectory
/// geometry, and fills the shared coordinate/delta/sort buffers.
fn sweep_frame(
    profile: &PhaseProfile,
    base: &LocalizerConfig,
    mode: Mode,
    coords: &mut Vec<f64>,
    deltas: &mut Vec<f64>,
    sorted_idx: &mut Vec<usize>,
) -> Result<SweepFrameInfo, CoreError> {
    if !(base.rank_tolerance > 0.0 && base.rank_tolerance < 1.0) {
        return Err(CoreError::InvalidConfig {
            parameter: "rank_tolerance",
            found: format!("{}", base.rank_tolerance),
        });
    }
    let positions = profile.positions();
    let n = positions.len();
    // Center ranges on the x centroid of the trajectory (the paper centers
    // its scanning range at x = 0 with the antenna at the track middle).
    let cx = positions.iter().map(|p| p.x).sum::<f64>() / n as f64;
    // The sample nearest the range center lies inside every centered
    // nonempty range, so one reference serves all cells. First wins ties.
    let mut reference = 0;
    let mut best = f64::INFINITY;
    for (i, p) in positions.iter().enumerate() {
        let d = (p.x - cx).abs();
        if d < best {
            best = d;
            reference = i;
        }
    }
    let frame = analyze_geometry_small(positions, mode, base.rank_tolerance)?;
    let k = frame.spanned;
    coords.clear();
    coords.reserve(n * k);
    for p in positions {
        let d = *p - frame.centroid;
        for axis in frame.axes.iter().take(k) {
            coords.push(d.dot(*axis));
        }
    }
    profile.delta_distances_into(reference, deltas);
    sorted_idx.clear();
    sorted_idx.extend(0..n);
    sorted_idx.sort_unstable_by(|&a, &b| positions[a].x.total_cmp(&positions[b].x));
    Ok(SweepFrameInfo {
        cx,
        reference,
        centroid: frame.centroid,
        axes: frame.axes,
        k,
        lower_dimension: k < frame.dims,
    })
}

/// Accounts the reads each scanning range excludes, matching the naive
/// sweep's per-range accounting (natural range order).
fn record_reads_dropped(
    positions: &[Point3],
    sorted_idx: &[usize],
    ranges: &[f64],
    cx: f64,
    metrics: &mut StageMetrics,
) {
    let n = positions.len();
    for &range in ranges {
        let lo = sorted_idx.partition_point(|&i| positions[i].x < cx - range / 2.0);
        let hi = sorted_idx.partition_point(|&i| positions[i].x <= cx + range / 2.0);
        metrics.reads_dropped += (n - (hi - lo)) as u64;
    }
}

/// Borrowed shared state every cell solve reads.
struct CellCtx<'a> {
    positions: &'a [Point3],
    coords: &'a [f64],
    deltas: &'a [f64],
    sorted_idx: &'a [usize],
    k: usize,
    cx: f64,
    reference: usize,
    centroid: Point3,
    axes: [Vec3; 3],
    lower_dimension: bool,
    side_hint: Option<Point3>,
    pair_strategy: &'a PairStrategy,
    irls: IrlsConfig,
    min_needed: usize,
    mode: Mode,
    /// `Some` routes every cell through the likelihood-grid backend.
    grid: Option<GridConfig>,
}

/// Resolves the localizer's weighting into the IRLS configuration the
/// normal-equation solver runs: plain least squares becomes uniform
/// weights, which converge immediately with zero reweighting iterations.
fn resolve_irls(weighting: &Weighting) -> IrlsConfig {
    match weighting {
        Weighting::Weighted(cfg) => *cfg,
        _ => IrlsConfig {
            weight_fn: WeightFunction::Uniform,
            ..IrlsConfig::default()
        },
    }
}

/// Builds the radical-line/plane row for the global pair `(i, j)` in the
/// shared frame (paper Eq. 12); returns the right-hand side.
fn build_row(ctx: &CellCtx<'_>, i: usize, j: usize, row: &mut [f64]) -> f64 {
    let k = ctx.k;
    let ci = &ctx.coords[i * k..(i + 1) * k];
    let cj = &ctx.coords[j * k..(j + 1) * k];
    let mut rhs = 0.0;
    for c in 0..k {
        row[c] = 2.0 * (ci[c] - cj[c]);
        rhs += ci[c] * ci[c] - cj[c] * cj[c];
    }
    row[k] = 2.0 * (ctx.deltas[i] - ctx.deltas[j]);
    rhs - ctx.deltas[i] * ctx.deltas[i] + ctx.deltas[j] * ctx.deltas[j]
}

/// Whether `prev` is an (ordered) subsequence of `cur`. Single pass over
/// `cur`; both lists are in sequence order so a narrower range's pairs
/// interleave into a wider range's in order.
fn is_subsequence(prev: &[(usize, usize)], cur: &[(usize, usize)]) -> bool {
    if prev.len() > cur.len() {
        return false;
    }
    let mut cur_it = cur.iter();
    'outer: for p in prev {
        for c in cur_it.by_ref() {
            if c == p {
                continue 'outer;
            }
        }
        return false;
    }
    true
}

/// Solves one `(range, interval)` grid cell on the shared sweep state.
///
/// With `allow_reuse`, and when the rows currently inside the cell's
/// normal equations form a subsequence of this cell's pair list, the
/// missing rows are inserted in place instead of rebuilding the system.
/// The two paths are bit-identical: the IRLS entry rebuilds the Gram
/// matrix in row order with uniform weights either way.
fn solve_cell(
    ctx: &CellCtx<'_>,
    range: f64,
    interval: f64,
    allow_reuse: bool,
    cell: &mut CellScratch,
    metrics: &mut StageMetrics,
) -> Result<Estimate, CoreError> {
    let positions = ctx.positions;
    let lo = ctx
        .sorted_idx
        .partition_point(|&i| positions[i].x < ctx.cx - range / 2.0);
    let hi = ctx
        .sorted_idx
        .partition_point(|&i| positions[i].x <= ctx.cx + range / 2.0);
    cell.subset.clear();
    cell.subset.extend_from_slice(&ctx.sorted_idx[lo..hi]);
    // Back to sequence order so pair generation sees the same ordering a
    // restricted sub-profile would.
    cell.subset.sort_unstable();
    if cell.subset.len() < ctx.min_needed {
        return Err(CoreError::TooFewMeasurements {
            got: cell.subset.len(),
            needed: ctx.min_needed,
        });
    }
    if let Some(grid) = &ctx.grid {
        return solve_cell_grid(ctx, grid, cell, metrics);
    }
    cell.subset_pos.clear();
    cell.subset_pos
        .extend(cell.subset.iter().map(|&i| positions[i]));
    {
        let _span = lion_obs::span!("lion.pairs");
        let t = Instant::now();
        ctx.pair_strategy
            .with_interval(interval)
            .pairs_into(&cell.subset_pos, &mut cell.local_pairs);
        metrics.pairs_ns += elapsed_ns(t);
    }
    if cell.local_pairs.is_empty() {
        return Err(CoreError::NoPairs);
    }
    let cols = ctx.k + 1;
    if cell.local_pairs.len() < cols {
        return Err(CoreError::TooFewMeasurements {
            got: cell.local_pairs.len(),
            needed: cols,
        });
    }
    cell.pairs.clear();
    cell.pairs.extend(
        cell.local_pairs
            .iter()
            .map(|&(a, b)| (cell.subset[a], cell.subset[b])),
    );
    let _span = lion_obs::span!("lion.solve");
    let t = Instant::now();
    let mut row = [0.0_f64; 4];
    let reuse =
        allow_reuse && cell.ne.cols() == cols && is_subsequence(&cell.ne_pairs, &cell.pairs);
    if reuse {
        // Walk both pair lists with one pointer: rows already inside the
        // system advance it; new rows are inserted at their aligned index.
        let mut prev_i = 0;
        for (pos, &(gi, gj)) in cell.pairs.iter().enumerate() {
            if prev_i < cell.ne_pairs.len() && cell.ne_pairs[prev_i] == (gi, gj) {
                prev_i += 1;
            } else {
                let rhs = build_row(ctx, gi, gj, &mut row);
                cell.ne.insert_row(pos, &row[..cols], rhs);
            }
        }
        metrics.adaptive_cells_reused += 1;
        lion_obs::global().counter_add("lion.adaptive.cells_reused", 1);
    } else {
        cell.ne.begin(cols);
        for &(gi, gj) in &cell.pairs {
            let rhs = build_row(ctx, gi, gj, &mut row);
            cell.ne.push_row(&row[..cols], rhs);
        }
    }
    cell.ne_pairs.clear();
    cell.ne_pairs.extend_from_slice(&cell.pairs);
    let rebuilds_before = cell.ne.gram_rebuilds();
    let outcome = solve_irls_normal(&mut cell.ne, &ctx.irls, &mut cell.irls)?;
    metrics.solves += 1;
    metrics.irls_iterations += outcome.iterations as u64;
    let m = cell.ne.rows();
    metrics.equations += m as u64;
    // Per-parameter standard errors with the final IRLS weights, the
    // normal-equation analog of the QR pipeline's `parameter_std`.
    crate::localizer::normal_param_std(
        &mut cell.ne,
        &cell.irls,
        &mut cell.param_std,
        &mut cell.cov_diag,
    );
    let rebuilds = cell.ne.gram_rebuilds() - rebuilds_before;
    if rebuilds > 0 {
        metrics.adaptive_gram_rebuilds += rebuilds;
        lion_obs::global().counter_add("lion.adaptive.gram_rebuilds", rebuilds);
    }
    metrics.solve_ns += elapsed_ns(t);
    drop(_span);
    let (position, position_std) = assemble_position(
        ctx.centroid,
        &ctx.axes,
        ctx.k,
        cell.ne.solution(),
        &cell.param_std,
        positions[ctx.reference],
        ctx.lower_dimension,
        ctx.side_hint,
    )?;
    Ok(Estimate {
        position,
        reference_distance: cell.ne.solution()[ctx.k],
        reference_position: positions[ctx.reference],
        mean_residual: outcome.mean_residual,
        weighted_rms: outcome.weighted_rms,
        iterations: outcome.iterations,
        equation_count: m,
        lower_dimension: ctx.lower_dimension,
        position_std,
    })
}

/// Solves one grid cell through the likelihood-grid backend on the
/// shared sweep state: the range-sliced subset indexes straight into the
/// shared delta buffer, and the pinned reference / global frame carry
/// over unchanged. The scanning interval plays no role (no pairing).
fn solve_cell_grid(
    ctx: &CellCtx<'_>,
    grid: &GridConfig,
    cell: &mut CellScratch,
    metrics: &mut StageMetrics,
) -> Result<Estimate, CoreError> {
    let _span = lion_obs::span!("lion.solve");
    let t = Instant::now();
    let problem = GridProblem {
        positions: ctx.positions,
        deltas: ctx.deltas,
        subset: Some(&cell.subset),
        reference: ctx.reference,
        anchor: ctx.centroid,
        planar: ctx.mode == Mode::TwoD,
        side_hint: ctx.side_hint,
    };
    let result = grid_search(&problem, grid, None).map(|mut best| {
        if ctx.lower_dimension {
            let resolved =
                pick_mirror_side(best.position, ctx.centroid, ctx.axes[ctx.k], ctx.side_hint);
            if resolved != best.position {
                best = GridBest {
                    position: resolved,
                    score: problem.score(resolved),
                };
            }
        }
        grid_estimate(&problem, best, grid.levels)
    });
    metrics.solve_ns += elapsed_ns(t);
    metrics.solves += 1;
    metrics.equations += cell.subset.len() as u64;
    result
}

/// Ranks trials by `|mean residual|` ascending, breaking ties by
/// interval then range — a total order over distinct grid cells, so the
/// result is independent of cell visit order.
fn rank_trials(trials: &mut [AdaptiveTrial]) {
    trials.sort_unstable_by(|a, b| {
        a.estimate
            .mean_residual
            .abs()
            .total_cmp(&b.estimate.mean_residual.abs())
            .then(a.interval.total_cmp(&b.interval))
            .then(a.range.total_cmp(&b.range))
    });
}

/// Averages the positions of the `keep` best (already ranked) trials
/// into the outcome's estimate; the remaining fields come from the best
/// trial. Identical arithmetic to the naive sweep's reduction.
fn reduce_outcome(keep: usize, out: &mut AdaptiveOutcome) {
    let keep = keep.min(out.trials.len());
    let inv = 1.0 / keep as f64;
    let avg = out.trials[..keep].iter().fold(Point3::ORIGIN, |acc, t| {
        Point3::new(
            acc.x + t.estimate.position.x * inv,
            acc.y + t.estimate.position.y * inv,
            acc.z + t.estimate.position.z * inv,
        )
    });
    out.estimate = out.trials[0].estimate.clone();
    out.estimate.position = avg;
}

/// An owned, immutable description of one adaptive sweep: the shared
/// preprocessed state plus the flattened `(range, interval)` grid in
/// sequential visit order (intervals outer, ranges ascending).
///
/// Cells are independent — solve them on any worker with any
/// [`Workspace`] via [`SweepPlan::solve_cell`], then reduce with
/// [`SweepPlan::finish`]. As long as results are passed to `finish` in
/// cell-index order, the outcome is bit-identical to the sequential
/// [`Localizer2d::locate_adaptive`] for any worker count: plan cells
/// always build their normal equations from scratch, which produces the
/// same Gram matrix as the sequential prefix-extension path (the IRLS
/// entry rebuilds in row order either way), and [`rank_trials`]' total
/// order makes the ranking visit-order independent.
#[derive(Debug, Clone)]
pub struct SweepPlan {
    positions: Vec<Point3>,
    coords: Vec<f64>,
    deltas: Vec<f64>,
    sorted_idx: Vec<usize>,
    cx: f64,
    reference: usize,
    centroid: Point3,
    axes: [Vec3; 3],
    k: usize,
    lower_dimension: bool,
    side_hint: Option<Point3>,
    pair_strategy: PairStrategy,
    irls: IrlsConfig,
    min_needed: usize,
    mode: Mode,
    grid: Option<GridConfig>,
    keep: usize,
    /// `(range, interval)` per cell, in sequential visit order.
    cells: Vec<(f64, f64)>,
}

impl SweepPlan {
    fn build(
        measurements: &[(Point3, f64)],
        base: &LocalizerConfig,
        mode: Mode,
        min_needed: usize,
        adaptive: &AdaptiveConfig,
        ws: &mut Workspace,
    ) -> Result<SweepPlan, CoreError> {
        adaptive.validate()?;
        let mut profile = std::mem::take(&mut ws.profile);
        let result = prepare_profile_in(measurements, base, &mut profile, ws)
            .and_then(|()| SweepPlan::from_profile(&profile, base, mode, min_needed, adaptive, ws));
        ws.profile = profile;
        result
    }

    fn from_profile(
        profile: &PhaseProfile,
        base: &LocalizerConfig,
        mode: Mode,
        min_needed: usize,
        adaptive: &AdaptiveConfig,
        ws: &mut Workspace,
    ) -> Result<SweepPlan, CoreError> {
        let mut coords = Vec::new();
        let mut deltas = Vec::new();
        let mut sorted_idx = Vec::new();
        let info = sweep_frame(
            profile,
            base,
            mode,
            &mut coords,
            &mut deltas,
            &mut sorted_idx,
        )?;
        let positions = profile.positions();
        record_reads_dropped(
            positions,
            &sorted_idx,
            &adaptive.scanning_ranges,
            info.cx,
            &mut ws.metrics,
        );
        let mut range_order: Vec<usize> = (0..adaptive.scanning_ranges.len()).collect();
        range_order.sort_unstable_by(|&a, &b| {
            adaptive.scanning_ranges[a].total_cmp(&adaptive.scanning_ranges[b])
        });
        let mut cells =
            Vec::with_capacity(adaptive.scanning_ranges.len() * adaptive.intervals.len());
        for &interval in &adaptive.intervals {
            for &ri in &range_order {
                cells.push((adaptive.scanning_ranges[ri], interval));
            }
        }
        Ok(SweepPlan {
            positions: positions.to_vec(),
            coords,
            deltas,
            sorted_idx,
            cx: info.cx,
            reference: info.reference,
            centroid: info.centroid,
            axes: info.axes,
            k: info.k,
            lower_dimension: info.lower_dimension,
            side_hint: base.side_hint,
            pair_strategy: base.pair_strategy.clone(),
            irls: resolve_irls(&base.weighting),
            min_needed,
            mode,
            grid: base.solver.grid().copied(),
            keep: adaptive.keep,
            cells,
        })
    }

    /// Number of grid cells in the plan.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// The `(range, interval)` of cell `index`.
    ///
    /// # Panics
    ///
    /// Panics when `index >= cell_count()`.
    pub fn cell(&self, index: usize) -> (f64, f64) {
        self.cells[index]
    }

    /// How many best trials [`SweepPlan::finish`] averages.
    pub fn keep(&self) -> usize {
        self.keep
    }

    /// Solves cell `index` with `ws`'s scratch buffers; pair/solve
    /// timings and counters land in `ws`.
    ///
    /// # Errors
    ///
    /// Per-cell failures ([`CoreError::NoPairs`],
    /// [`CoreError::TooFewMeasurements`], solver errors). Pass them to
    /// [`SweepPlan::finish`], which counts them as skipped.
    ///
    /// # Panics
    ///
    /// Panics when `index >= cell_count()`.
    pub fn solve_cell(&self, index: usize, ws: &mut Workspace) -> Result<AdaptiveTrial, CoreError> {
        let (range, interval) = self.cells[index];
        let ctx = CellCtx {
            positions: &self.positions,
            coords: &self.coords,
            deltas: &self.deltas,
            sorted_idx: &self.sorted_idx,
            k: self.k,
            cx: self.cx,
            reference: self.reference,
            centroid: self.centroid,
            axes: self.axes,
            lower_dimension: self.lower_dimension,
            side_hint: self.side_hint,
            pair_strategy: &self.pair_strategy,
            irls: self.irls,
            min_needed: self.min_needed,
            mode: self.mode,
            grid: self.grid,
        };
        let cell_start = Instant::now();
        let solved = solve_cell(
            &ctx,
            range,
            interval,
            false,
            &mut ws.sweep.cell,
            &mut ws.metrics,
        );
        lion_obs::global().histogram_record("lion.adaptive.cell_ns", elapsed_ns(cell_start));
        solved.map(|estimate| AdaptiveTrial {
            range,
            interval,
            estimate,
        })
    }

    /// Reduces per-cell results — **in cell-index order** — into the
    /// sweep outcome: failures count as skipped, survivors are ranked by
    /// `|mean residual|`, and the `keep` best positions averaged.
    ///
    /// # Errors
    ///
    /// [`CoreError::NoPairs`] when every cell failed.
    pub fn finish(
        &self,
        results: impl IntoIterator<Item = Result<AdaptiveTrial, CoreError>>,
    ) -> Result<AdaptiveOutcome, CoreError> {
        let mut out = AdaptiveOutcome::default();
        for result in results {
            match result {
                Ok(trial) => out.trials.push(trial),
                Err(_) => out.skipped += 1,
            }
        }
        if out.trials.is_empty() {
            return Err(CoreError::NoPairs);
        }
        rank_trials(&mut out.trials);
        reduce_outcome(self.keep, &mut out);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairs::PairStrategy;
    use std::f64::consts::{PI, TAU};

    const LAMBDA: f64 = 299_792_458.0 / 920.625e6;

    fn phase_of(target: Point3, p: Point3) -> f64 {
        (4.0 * PI * target.distance(p) / LAMBDA).rem_euclid(TAU)
    }

    fn linear_scan(target: Point3, half_range: f64, step: f64) -> Vec<(Point3, f64)> {
        let n = (2.0 * half_range / step) as usize;
        (0..=n)
            .map(|i| {
                let p = Point3::new(-half_range + i as f64 * step, 0.0, 0.0);
                (p, phase_of(target, p))
            })
            .collect()
    }

    fn cfg() -> LocalizerConfig {
        LocalizerConfig {
            smoothing_window: 1,
            pair_strategy: PairStrategy::Interval { interval: 0.2 },
            side_hint: Some(Point3::new(0.0, 0.5, 0.0)),
            ..LocalizerConfig::default()
        }
    }

    #[test]
    fn adaptive_sweep_matches_truth_on_clean_data() {
        let target = Point3::new(0.1, 0.8, 0.0);
        let m = linear_scan(target, 0.6, 0.005);
        let outcome = Localizer2d::new(cfg())
            .locate_adaptive(&m, &AdaptiveConfig::default())
            .unwrap();
        assert!(
            outcome.estimate.distance_error(target) < 1e-5,
            "error {}",
            outcome.estimate.distance_error(target)
        );
        assert!(!outcome.trials.is_empty());
        // Trials are sorted by |mean residual|.
        for w in outcome.trials.windows(2) {
            assert!(w[0].estimate.mean_residual.abs() <= w[1].estimate.mean_residual.abs() + 1e-15);
        }
    }

    #[test]
    fn range_restriction_reduces_sample_count() {
        let target = Point3::new(0.0, 0.8, 0.0);
        let m = linear_scan(target, 1.25, 0.01); // 2.5 m track
        let adaptive = AdaptiveConfig {
            scanning_ranges: vec![0.6],
            intervals: vec![0.2],
            keep: 1,
        };
        let outcome = Localizer2d::new(cfg())
            .locate_adaptive(&m, &adaptive)
            .unwrap();
        // With a 0.6 m range and 0.2 m interval there are ~40 pairs, far
        // fewer than the full 250-sample scan would give.
        assert!(outcome.trials[0].estimate.equation_count < 60);
    }

    #[test]
    fn empty_grid_rejected() {
        let m = linear_scan(Point3::new(0.0, 0.8, 0.0), 0.5, 0.01);
        let bad = AdaptiveConfig {
            scanning_ranges: vec![],
            intervals: vec![0.2],
            keep: 1,
        };
        assert!(Localizer2d::new(cfg()).locate_adaptive(&m, &bad).is_err());
        let bad = AdaptiveConfig {
            scanning_ranges: vec![0.6],
            intervals: vec![],
            keep: 1,
        };
        assert!(Localizer2d::new(cfg()).locate_adaptive(&m, &bad).is_err());
        let bad = AdaptiveConfig {
            scanning_ranges: vec![0.6],
            intervals: vec![0.2],
            keep: 0,
        };
        assert!(Localizer2d::new(cfg()).locate_adaptive(&m, &bad).is_err());
        let bad = AdaptiveConfig {
            scanning_ranges: vec![-0.6],
            intervals: vec![0.2],
            keep: 1,
        };
        assert!(Localizer2d::new(cfg()).locate_adaptive(&m, &bad).is_err());
    }

    #[test]
    fn all_failures_reported_as_no_pairs() {
        let m = linear_scan(Point3::new(0.0, 0.8, 0.0), 0.3, 0.01);
        // Intervals longer than the whole range: every combination fails.
        let bad = AdaptiveConfig {
            scanning_ranges: vec![0.4],
            intervals: vec![5.0],
            keep: 1,
        };
        assert!(matches!(
            Localizer2d::new(cfg()).locate_adaptive(&m, &bad),
            Err(CoreError::NoPairs)
        ));
    }

    #[test]
    fn skipped_counts_unusable_ranges() {
        let m = linear_scan(Point3::new(0.0, 0.8, 0.0), 0.5, 0.01);
        let adaptive = AdaptiveConfig {
            // 1 mm range keeps ~0 samples → whole row skipped.
            scanning_ranges: vec![0.001, 0.8],
            intervals: vec![0.2, 0.3],
            keep: 1,
        };
        let outcome = Localizer2d::new(cfg())
            .locate_adaptive(&m, &adaptive)
            .unwrap();
        assert!(outcome.skipped >= 2);
        assert!(!outcome.trials.is_empty());
    }

    #[test]
    fn keep_larger_than_trials_is_fine() {
        let target = Point3::new(0.0, 0.8, 0.0);
        let m = linear_scan(target, 0.5, 0.01);
        let adaptive = AdaptiveConfig {
            scanning_ranges: vec![0.8],
            intervals: vec![0.2],
            keep: 50,
        };
        let outcome = Localizer2d::new(cfg())
            .locate_adaptive(&m, &adaptive)
            .unwrap();
        assert!(outcome.estimate.distance_error(target) < 1e-5);
    }

    #[test]
    fn sweep_records_exclusive_time_disjoint_from_pipeline_stages() {
        let target = Point3::new(0.1, 0.8, 0.0);
        let m = linear_scan(target, 0.6, 0.005);
        let mut ws = Workspace::new();
        Localizer2d::new(cfg())
            .locate_adaptive_in(&m, &AdaptiveConfig::default(), &mut ws)
            .unwrap();
        let metrics = ws.take_metrics();
        // The exclusive share can never exceed the inclusive sweep time,
        // and busy time is the exact sum of the disjoint components.
        assert!(metrics.adaptive_exclusive_ns <= metrics.adaptive_ns);
        assert_eq!(
            metrics.busy_ns(),
            metrics.pipeline_ns() + metrics.adaptive_exclusive_ns
        );
        // The sweep ran inner solves, so some pipeline time was recorded
        // inside it; the inclusive timer must cover that too.
        assert!(metrics.solve_ns > 0);
        assert!(metrics.adaptive_ns >= metrics.adaptive_exclusive_ns);
    }

    #[test]
    fn shared_sweep_matches_naive_ranking() {
        let target = Point3::new(0.1, 0.8, 0.0);
        let m = linear_scan(target, 0.6, 0.005);
        let loc = Localizer2d::new(cfg());
        let grid = AdaptiveConfig::default();
        let shared = loc.locate_adaptive(&m, &grid).unwrap();
        let naive = loc
            .locate_adaptive_naive_in(&m, &grid, &mut Workspace::new())
            .unwrap();
        assert_eq!(shared.trials.len(), naive.trials.len());
        assert_eq!(shared.skipped, naive.skipped);
        // The shared frame/reference shift every cell's system only within
        // its column space, so each cell's estimate and residual agree to
        // floating-point noise. (On clean data all residuals are ~ machine
        // epsilon, so the *ranking* among them is noise — the noisy-data
        // regression test covers ranking parity.)
        for st in &shared.trials {
            let nt = naive
                .trials
                .iter()
                .find(|t| t.range == st.range && t.interval == st.interval)
                .expect("cell present in both sweeps");
            let d = st.estimate.position.distance(nt.estimate.position);
            assert!(d < 1e-6, "cell position diverged by {d}");
            assert!(
                (st.estimate.mean_residual - nt.estimate.mean_residual).abs() < 1e-9,
                "cell residual diverged"
            );
        }
        let d = shared.estimate.position.distance(naive.estimate.position);
        assert!(d < 1e-6, "positions diverged by {d}");
    }

    #[test]
    fn wider_ranges_reuse_narrower_systems() {
        let target = Point3::new(0.1, 0.8, 0.0);
        let m = linear_scan(target, 0.6, 0.005);
        let mut ws = Workspace::new();
        let outcome = Localizer2d::new(cfg())
            .locate_adaptive_in(&m, &AdaptiveConfig::default(), &mut ws)
            .unwrap();
        let metrics = ws.take_metrics();
        // 6 ranges × 6 intervals, every cell solvable: each interval's five
        // wider ranges extend the narrowest one's system.
        assert_eq!(outcome.trials.len(), 36);
        assert_eq!(metrics.adaptive_cells_reused, 30);
        // Fresh cells accumulate cleanly (no rebuild); each reused cell's
        // inserted rows dirty the Gram, forcing exactly one rebuild at the
        // IRLS entry — that rebuild is what makes the two paths
        // bit-identical.
        assert!(metrics.adaptive_gram_rebuilds >= metrics.adaptive_cells_reused);
    }

    #[test]
    fn repeated_sweeps_with_reused_workspace_are_bit_identical() {
        let target = Point3::new(0.1, 0.8, 0.0);
        let m = linear_scan(target, 0.6, 0.005);
        let loc = Localizer2d::new(cfg());
        let grid = AdaptiveConfig::default();
        let mut ws = Workspace::new();
        let mut first = AdaptiveOutcome::default();
        loc.locate_adaptive_into(&m, &grid, &mut ws, &mut first)
            .unwrap();
        let mut second = AdaptiveOutcome::default();
        loc.locate_adaptive_into(&m, &grid, &mut ws, &mut second)
            .unwrap();
        assert_eq!(first, second);
    }

    #[test]
    fn sweep_plan_matches_sequential_sweep() {
        let target = Point3::new(0.1, 0.8, 0.0);
        let m = linear_scan(target, 0.6, 0.005);
        let loc = Localizer2d::new(cfg());
        let grid = AdaptiveConfig::default();
        let sequential = loc.locate_adaptive(&m, &grid).unwrap();
        let mut ws = Workspace::new();
        let plan = loc.sweep_plan(&m, &grid, &mut ws).unwrap();
        assert_eq!(plan.cell_count(), 36);
        let results: Vec<_> = (0..plan.cell_count())
            .map(|i| plan.solve_cell(i, &mut ws))
            .collect();
        let fanned = plan.finish(results).unwrap();
        assert_eq!(sequential, fanned);
    }

    #[test]
    fn sweep_plan_3d_matches_sequential_sweep() {
        let target = Point3::new(0.1, 0.2, 0.7);
        let m: Vec<(Point3, f64)> = (0..400)
            .map(|i| {
                let a = i as f64 * TAU / 400.0;
                let p = Point3::new(0.35 * a.cos(), 0.35 * a.sin(), 0.0);
                (p, phase_of(target, p))
            })
            .collect();
        let mut c = cfg();
        c.side_hint = Some(Point3::new(0.0, 0.0, 0.5));
        let adaptive = AdaptiveConfig {
            scanning_ranges: vec![0.7, 0.5],
            intervals: vec![0.15, 0.25],
            keep: 2,
        };
        let loc = Localizer3d::new(c);
        let sequential = loc.locate_adaptive(&m, &adaptive).unwrap();
        let mut ws = Workspace::new();
        let plan = loc.sweep_plan(&m, &adaptive, &mut ws).unwrap();
        let results: Vec<_> = (0..plan.cell_count())
            .map(|i| plan.solve_cell(i, &mut ws))
            .collect();
        let fanned = plan.finish(results).unwrap();
        assert_eq!(sequential, fanned);
    }

    #[test]
    fn grid_solver_sweep_matches_truth_and_plan_fanout() {
        let target = Point3::new(0.1, 0.8, 0.0);
        let m = linear_scan(target, 0.6, 0.005);
        let mut c = cfg();
        c.solver = crate::SolverKind::Grid(crate::GridConfig::default());
        let loc = Localizer2d::new(c);
        let adaptive = AdaptiveConfig {
            scanning_ranges: vec![0.8, 1.0],
            intervals: vec![0.2],
            keep: 1,
        };
        let sequential = loc.locate_adaptive(&m, &adaptive).unwrap();
        assert!(
            sequential.estimate.distance_error(target) < 1e-4,
            "error {}",
            sequential.estimate.distance_error(target)
        );
        // Grid cells carry no pairing: the whole range subset scores.
        assert!(sequential.trials[0].estimate.equation_count > 100);
        let mut ws = Workspace::new();
        let plan = loc.sweep_plan(&m, &adaptive, &mut ws).unwrap();
        let results: Vec<_> = (0..plan.cell_count())
            .map(|i| plan.solve_cell(i, &mut ws))
            .collect();
        let fanned = plan.finish(results).unwrap();
        assert_eq!(sequential, fanned);
    }

    #[test]
    fn adaptive_3d_on_planar_circle() {
        let target = Point3::new(0.1, 0.2, 0.7);
        let m: Vec<(Point3, f64)> = (0..400)
            .map(|i| {
                let a = i as f64 * TAU / 400.0;
                let p = Point3::new(0.35 * a.cos(), 0.35 * a.sin(), 0.0);
                (p, phase_of(target, p))
            })
            .collect();
        let mut c = cfg();
        c.side_hint = Some(Point3::new(0.0, 0.0, 0.5));
        let adaptive = AdaptiveConfig {
            scanning_ranges: vec![0.7],
            intervals: vec![0.15, 0.25],
            keep: 2,
        };
        let outcome = Localizer3d::new(c).locate_adaptive(&m, &adaptive).unwrap();
        assert!(
            outcome.estimate.distance_error(target) < 1e-4,
            "error {}",
            outcome.estimate.distance_error(target)
        );
    }
}
