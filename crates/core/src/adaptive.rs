//! Adaptive parameter selection (paper Sec. IV-C1, evaluated in
//! Figs. 16–18).
//!
//! The scanning range and scanning interval materially change the estimate
//! quality: too small a range and the phase barely varies (plane-wave
//! regime); too large and off-beam samples poison the system; too small an
//! interval and noise dominates the pairwise phase difference. The paper's
//! key empirical finding is that the **mean weighted-least-squares
//! residual tracks the distance error**: the configuration whose mean
//! residual sits closest to zero is (nearly) the most accurate one. This
//! module sweeps the parameter grid, ranks trials by `|mean residual|`,
//! and averages the best few estimates.

use std::time::Instant;

use serde::{Deserialize, Serialize};

use lion_geom::Point3;

use crate::error::CoreError;
use crate::localizer::{Estimate, Localizer2d, Localizer3d, LocalizerConfig};
use crate::preprocess::PhaseProfile;
use crate::workspace::{elapsed_ns, Workspace};

/// The parameter grid for the adaptive sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveConfig {
    /// Scanning ranges to try (full widths in meters, centered on the
    /// trajectory's x centroid). The paper sweeps 0.6–1.1 m.
    pub scanning_ranges: Vec<f64>,
    /// Scanning intervals to try (meters). The paper sweeps 0.10–0.35 m.
    pub intervals: Vec<f64>,
    /// How many of the best trials (smallest `|mean residual|`) to average
    /// into the final estimate.
    pub keep: usize,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            scanning_ranges: vec![0.6, 0.7, 0.8, 0.9, 1.0, 1.1],
            intervals: vec![0.10, 0.15, 0.20, 0.25, 0.30, 0.35],
            keep: 3,
        }
    }
}

impl AdaptiveConfig {
    /// Starts a validating builder seeded with the paper's sweep grid
    /// (ranges 0.6–1.1 m, intervals 0.10–0.35 m, keep 3).
    ///
    /// # Example
    ///
    /// ```
    /// use lion_core::AdaptiveConfig;
    ///
    /// # fn main() -> Result<(), lion_core::CoreError> {
    /// let grid = AdaptiveConfig::builder()
    ///     .scanning_ranges(vec![0.6, 0.8])
    ///     .intervals(vec![0.2])
    ///     .keep(1)
    ///     .build()?;
    /// assert_eq!(grid.scanning_ranges.len(), 2);
    /// assert!(AdaptiveConfig::builder().keep(0).build().is_err());
    /// # Ok(())
    /// # }
    /// ```
    pub fn builder() -> AdaptiveConfigBuilder {
        AdaptiveConfigBuilder {
            config: AdaptiveConfig::default(),
        }
    }

    /// Checks the grid invariants: non-empty ranges/intervals, every entry
    /// positive and finite, `keep ≥ 1`. The sweep runs this before
    /// touching the data.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] naming the offending
    /// parameter.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.scanning_ranges.is_empty() || self.intervals.is_empty() {
            return Err(CoreError::InvalidConfig {
                parameter: "adaptive grid",
                found: "empty ranges or intervals".to_string(),
            });
        }
        if self.keep == 0 {
            return Err(CoreError::InvalidConfig {
                parameter: "keep",
                found: "0".to_string(),
            });
        }
        for &r in &self.scanning_ranges {
            if !(r > 0.0 && r.is_finite()) {
                return Err(CoreError::InvalidConfig {
                    parameter: "scanning_ranges",
                    found: format!("{r}"),
                });
            }
        }
        for &i in &self.intervals {
            if !(i > 0.0 && i.is_finite()) {
                return Err(CoreError::InvalidConfig {
                    parameter: "intervals",
                    found: format!("{i}"),
                });
            }
        }
        Ok(())
    }
}

/// Validating builder for [`AdaptiveConfig`]. Created by
/// [`AdaptiveConfig::builder`]; struct-literal construction keeps
/// working.
#[derive(Debug, Clone)]
pub struct AdaptiveConfigBuilder {
    config: AdaptiveConfig,
}

impl AdaptiveConfigBuilder {
    /// Sets the scanning ranges to sweep (full widths, meters).
    pub fn scanning_ranges(mut self, ranges: Vec<f64>) -> Self {
        self.config.scanning_ranges = ranges;
        self
    }

    /// Sets the scanning intervals to sweep (meters).
    pub fn intervals(mut self, intervals: Vec<f64>) -> Self {
        self.config.intervals = intervals;
        self
    }

    /// Sets how many of the best trials to average.
    pub fn keep(mut self, keep: usize) -> Self {
        self.config.keep = keep;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// See [`AdaptiveConfig::validate`].
    pub fn build(self) -> Result<AdaptiveConfig, CoreError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// One trial of the sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveTrial {
    /// Scanning range used (meters).
    pub range: f64,
    /// Scanning interval used (meters).
    pub interval: f64,
    /// The estimate this configuration produced.
    pub estimate: Estimate,
}

/// The outcome of an adaptive sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveOutcome {
    /// The selected estimate: the position is the average of the `keep`
    /// best trials; the remaining fields are copied from the single best
    /// trial.
    pub estimate: Estimate,
    /// All successful trials, ranked by `|mean residual|` ascending.
    pub trials: Vec<AdaptiveTrial>,
    /// Number of `(range, interval)` combinations that failed (too few
    /// pairs, rank problems, …) and were skipped.
    pub skipped: usize,
}

impl Localizer2d {
    /// Runs the adaptive parameter sweep for 2D localization.
    ///
    /// # Errors
    ///
    /// - configuration errors from [`AdaptiveConfig`] validation,
    /// - [`CoreError::NoPairs`] when every combination fails,
    /// - preprocessing errors from the underlying profile construction.
    pub fn locate_adaptive(
        &self,
        measurements: &[(Point3, f64)],
        adaptive: &AdaptiveConfig,
    ) -> Result<AdaptiveOutcome, CoreError> {
        self.locate_adaptive_in(measurements, adaptive, &mut Workspace::new())
    }

    /// [`Localizer2d::locate_adaptive`] with a reusable [`Workspace`].
    /// Bit-identical results; sweep timings and counters land in `ws`.
    ///
    /// # Errors
    ///
    /// See [`Localizer2d::locate_adaptive`].
    pub fn locate_adaptive_in(
        &self,
        measurements: &[(Point3, f64)],
        adaptive: &AdaptiveConfig,
        ws: &mut Workspace,
    ) -> Result<AdaptiveOutcome, CoreError> {
        let profile = crate::localizer::prepare_in(measurements, self.config(), ws)?;
        sweep(&profile, self.config(), adaptive, ws, |profile, cfg, ws| {
            Localizer2d::new(cfg.clone()).locate_profile_in(profile, ws)
        })
    }
}

impl Localizer3d {
    /// Runs the adaptive parameter sweep for 3D localization.
    ///
    /// # Errors
    ///
    /// See [`Localizer2d::locate_adaptive`].
    pub fn locate_adaptive(
        &self,
        measurements: &[(Point3, f64)],
        adaptive: &AdaptiveConfig,
    ) -> Result<AdaptiveOutcome, CoreError> {
        self.locate_adaptive_in(measurements, adaptive, &mut Workspace::new())
    }

    /// [`Localizer3d::locate_adaptive`] with a reusable [`Workspace`].
    ///
    /// # Errors
    ///
    /// See [`Localizer2d::locate_adaptive`].
    pub fn locate_adaptive_in(
        &self,
        measurements: &[(Point3, f64)],
        adaptive: &AdaptiveConfig,
        ws: &mut Workspace,
    ) -> Result<AdaptiveOutcome, CoreError> {
        let profile = crate::localizer::prepare_in(measurements, self.config(), ws)?;
        sweep(&profile, self.config(), adaptive, ws, |profile, cfg, ws| {
            Localizer3d::new(cfg.clone()).locate_profile_in(profile, ws)
        })
    }
}

fn sweep(
    profile: &PhaseProfile,
    base: &LocalizerConfig,
    adaptive: &AdaptiveConfig,
    ws: &mut Workspace,
    mut locate: impl FnMut(
        &PhaseProfile,
        &LocalizerConfig,
        &mut Workspace,
    ) -> Result<Estimate, CoreError>,
) -> Result<AdaptiveOutcome, CoreError> {
    adaptive.validate()?;
    let _sweep_span = lion_obs::span!("lion.adaptive");
    let sweep_start = Instant::now();
    // Inner trials re-enter the pipeline stages below; snapshotting their
    // disjoint sum lets the sweep attribute its own orchestration overhead
    // (grid iteration, profile restriction, ranking) exactly.
    let inner_before = ws.metrics.pipeline_ns();
    // Center ranges on the x centroid of the trajectory (the paper centers
    // its scanning range at x = 0 with the antenna at the track middle).
    let cx = profile.positions().iter().map(|p| p.x).sum::<f64>() / profile.len() as f64;
    let mut trials = Vec::new();
    let mut skipped = 0;
    for &range in &adaptive.scanning_ranges {
        let restricted = profile.restrict_x(cx - range / 2.0, cx + range / 2.0);
        ws.metrics.reads_dropped += (profile.len() - restricted.len()) as u64;
        if restricted.len() < 4 {
            skipped += adaptive.intervals.len();
            continue;
        }
        for &interval in &adaptive.intervals {
            let mut cfg = base.clone();
            cfg.pair_strategy = base.pair_strategy.with_interval(interval);
            // The restricted profile has its own middle sample.
            cfg.reference_index = None;
            match locate(&restricted, &cfg, ws) {
                Ok(estimate) => trials.push(AdaptiveTrial {
                    range,
                    interval,
                    estimate,
                }),
                Err(_) => skipped += 1,
            }
        }
    }
    let sweep_ns = elapsed_ns(sweep_start);
    let inner_ns = ws.metrics.pipeline_ns() - inner_before;
    ws.metrics.adaptive_ns += sweep_ns;
    ws.metrics.adaptive_exclusive_ns += sweep_ns.saturating_sub(inner_ns);
    ws.metrics.adaptive_trials += trials.len() as u64;
    ws.metrics.adaptive_skipped += skipped as u64;
    lion_obs::event!(
        lion_obs::Level::Debug,
        "lion.adaptive.sweep",
        "trials" => trials.len(),
        "skipped" => skipped,
        "sweep_ns" => sweep_ns,
    );
    if trials.is_empty() {
        return Err(CoreError::NoPairs);
    }
    trials.sort_by(|a, b| {
        a.estimate
            .mean_residual
            .abs()
            .partial_cmp(&b.estimate.mean_residual.abs())
            .expect("residuals are finite")
    });
    let keep = adaptive.keep.min(trials.len());
    let inv = 1.0 / keep as f64;
    let avg = trials[..keep].iter().fold(Point3::ORIGIN, |acc, t| {
        Point3::new(
            acc.x + t.estimate.position.x * inv,
            acc.y + t.estimate.position.y * inv,
            acc.z + t.estimate.position.z * inv,
        )
    });
    let mut best = trials[0].estimate.clone();
    best.position = avg;
    Ok(AdaptiveOutcome {
        estimate: best,
        trials,
        skipped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairs::PairStrategy;
    use std::f64::consts::{PI, TAU};

    const LAMBDA: f64 = 299_792_458.0 / 920.625e6;

    fn phase_of(target: Point3, p: Point3) -> f64 {
        (4.0 * PI * target.distance(p) / LAMBDA).rem_euclid(TAU)
    }

    fn linear_scan(target: Point3, half_range: f64, step: f64) -> Vec<(Point3, f64)> {
        let n = (2.0 * half_range / step) as usize;
        (0..=n)
            .map(|i| {
                let p = Point3::new(-half_range + i as f64 * step, 0.0, 0.0);
                (p, phase_of(target, p))
            })
            .collect()
    }

    fn cfg() -> LocalizerConfig {
        LocalizerConfig {
            smoothing_window: 1,
            pair_strategy: PairStrategy::Interval { interval: 0.2 },
            side_hint: Some(Point3::new(0.0, 0.5, 0.0)),
            ..LocalizerConfig::default()
        }
    }

    #[test]
    fn adaptive_sweep_matches_truth_on_clean_data() {
        let target = Point3::new(0.1, 0.8, 0.0);
        let m = linear_scan(target, 0.6, 0.005);
        let outcome = Localizer2d::new(cfg())
            .locate_adaptive(&m, &AdaptiveConfig::default())
            .unwrap();
        assert!(
            outcome.estimate.distance_error(target) < 1e-5,
            "error {}",
            outcome.estimate.distance_error(target)
        );
        assert!(!outcome.trials.is_empty());
        // Trials are sorted by |mean residual|.
        for w in outcome.trials.windows(2) {
            assert!(w[0].estimate.mean_residual.abs() <= w[1].estimate.mean_residual.abs() + 1e-15);
        }
    }

    #[test]
    fn range_restriction_reduces_sample_count() {
        let target = Point3::new(0.0, 0.8, 0.0);
        let m = linear_scan(target, 1.25, 0.01); // 2.5 m track
        let adaptive = AdaptiveConfig {
            scanning_ranges: vec![0.6],
            intervals: vec![0.2],
            keep: 1,
        };
        let outcome = Localizer2d::new(cfg())
            .locate_adaptive(&m, &adaptive)
            .unwrap();
        // With a 0.6 m range and 0.2 m interval there are ~40 pairs, far
        // fewer than the full 250-sample scan would give.
        assert!(outcome.trials[0].estimate.equation_count < 60);
    }

    #[test]
    fn empty_grid_rejected() {
        let m = linear_scan(Point3::new(0.0, 0.8, 0.0), 0.5, 0.01);
        let bad = AdaptiveConfig {
            scanning_ranges: vec![],
            intervals: vec![0.2],
            keep: 1,
        };
        assert!(Localizer2d::new(cfg()).locate_adaptive(&m, &bad).is_err());
        let bad = AdaptiveConfig {
            scanning_ranges: vec![0.6],
            intervals: vec![],
            keep: 1,
        };
        assert!(Localizer2d::new(cfg()).locate_adaptive(&m, &bad).is_err());
        let bad = AdaptiveConfig {
            scanning_ranges: vec![0.6],
            intervals: vec![0.2],
            keep: 0,
        };
        assert!(Localizer2d::new(cfg()).locate_adaptive(&m, &bad).is_err());
        let bad = AdaptiveConfig {
            scanning_ranges: vec![-0.6],
            intervals: vec![0.2],
            keep: 1,
        };
        assert!(Localizer2d::new(cfg()).locate_adaptive(&m, &bad).is_err());
    }

    #[test]
    fn all_failures_reported_as_no_pairs() {
        let m = linear_scan(Point3::new(0.0, 0.8, 0.0), 0.3, 0.01);
        // Intervals longer than the whole range: every combination fails.
        let bad = AdaptiveConfig {
            scanning_ranges: vec![0.4],
            intervals: vec![5.0],
            keep: 1,
        };
        assert!(matches!(
            Localizer2d::new(cfg()).locate_adaptive(&m, &bad),
            Err(CoreError::NoPairs)
        ));
    }

    #[test]
    fn skipped_counts_unusable_ranges() {
        let m = linear_scan(Point3::new(0.0, 0.8, 0.0), 0.5, 0.01);
        let adaptive = AdaptiveConfig {
            // 1 mm range keeps ~0 samples → whole row skipped.
            scanning_ranges: vec![0.001, 0.8],
            intervals: vec![0.2, 0.3],
            keep: 1,
        };
        let outcome = Localizer2d::new(cfg())
            .locate_adaptive(&m, &adaptive)
            .unwrap();
        assert!(outcome.skipped >= 2);
        assert!(!outcome.trials.is_empty());
    }

    #[test]
    fn keep_larger_than_trials_is_fine() {
        let target = Point3::new(0.0, 0.8, 0.0);
        let m = linear_scan(target, 0.5, 0.01);
        let adaptive = AdaptiveConfig {
            scanning_ranges: vec![0.8],
            intervals: vec![0.2],
            keep: 50,
        };
        let outcome = Localizer2d::new(cfg())
            .locate_adaptive(&m, &adaptive)
            .unwrap();
        assert!(outcome.estimate.distance_error(target) < 1e-5);
    }

    #[test]
    fn sweep_records_exclusive_time_disjoint_from_pipeline_stages() {
        let target = Point3::new(0.1, 0.8, 0.0);
        let m = linear_scan(target, 0.6, 0.005);
        let mut ws = Workspace::new();
        Localizer2d::new(cfg())
            .locate_adaptive_in(&m, &AdaptiveConfig::default(), &mut ws)
            .unwrap();
        let metrics = ws.take_metrics();
        // The exclusive share can never exceed the inclusive sweep time,
        // and busy time is the exact sum of the disjoint components.
        assert!(metrics.adaptive_exclusive_ns <= metrics.adaptive_ns);
        assert_eq!(
            metrics.busy_ns(),
            metrics.pipeline_ns() + metrics.adaptive_exclusive_ns
        );
        // The sweep ran inner solves, so some pipeline time was recorded
        // inside it; the inclusive timer must cover that too.
        assert!(metrics.solve_ns > 0);
        assert!(metrics.adaptive_ns >= metrics.adaptive_exclusive_ns);
    }

    #[test]
    fn adaptive_3d_on_planar_circle() {
        let target = Point3::new(0.1, 0.2, 0.7);
        let m: Vec<(Point3, f64)> = (0..400)
            .map(|i| {
                let a = i as f64 * TAU / 400.0;
                let p = Point3::new(0.35 * a.cos(), 0.35 * a.sin(), 0.0);
                (p, phase_of(target, p))
            })
            .collect();
        let mut c = cfg();
        c.side_hint = Some(Point3::new(0.0, 0.0, 0.5));
        let adaptive = AdaptiveConfig {
            scanning_ranges: vec![0.7],
            intervals: vec![0.15, 0.25],
            keep: 2,
        };
        let outcome = Localizer3d::new(c).locate_adaptive(&m, &adaptive).unwrap();
        assert!(
            outcome.estimate.distance_error(target) < 1e-4,
            "error {}",
            outcome.estimate.distance_error(target)
        );
    }
}
