//! O(delta) incremental streaming re-solve (the PR-8 tentpole).
//!
//! The replay path ([`crate::locate_window_in`]) re-runs the whole
//! unwrap → smooth → pairs → solve pipeline over the full
//! [`SlidingWindow`] on every cadence tick — O(window) work per solve
//! even when only a handful of reads entered or left since the last
//! tick. [`IncrementalState`] instead mirrors the window's preprocessed
//! state across ticks and patches only what the slide changed:
//!
//! - the **unwrap chain** is continued from the last surviving sample
//!   ([`crate::preprocess::unwrap_step`]) instead of re-anchoring at the
//!   front — the front samples' unwrapped values are never recomputed,
//!   so a slide touches O(appended) phases;
//! - the **smoothing tail** is recomputed only over the indices whose
//!   moving-average span changed ([`crate::preprocess::smoothed_at`]):
//!   a half-window at the new front (when reads were evicted) and a
//!   half-window plus the appended reads at the back;
//! - the **pair set** is re-scanned exactly (the two-pointer interval
//!   scan is O(window) but branch-cheap) and diffed against the previous
//!   tick's pairs: evicted-front rows leave via
//!   `NormalEq::remove_rows_front`, rows whose endpoints were re-smoothed
//!   are `replace_row`ed in place, and new tail rows are pushed — any
//!   structural mismatch falls back to a full replay;
//! - the **frame** (centroid + principal axes) is frozen between
//!   resyncs: a full-rank radical-line solve is frame-invariant in exact
//!   arithmetic, so solving in a slightly stale frame moves the world
//!   position only at floating-point order;
//! - the **reference sample** is pinned (absolute index chosen at the
//!   last resync): shifting every delta distance by a constant leaves
//!   the solved position invariant, so the reference is only abandoned —
//!   deterministically, via resync — when it is evicted or its smoothed
//!   value changes.
//!
//! # Parity tiers
//!
//! A **resync tick literally runs the replay path**, so its estimate is
//! bit-identical (`==`) to the oracle. A **delta tick** agrees with the
//! oracle to a documented 1e-6: the continued unwrap chain and the
//! direct-summation re-smoothing differ from the batch arithmetic at
//! floating-point association order, the normal-equation solve differs
//! from the replay QR at `κ(A)²·ε`, and the frozen frame / pinned
//! reference add further fp-order (but not model-order) deviations.
//! DESIGN.md §14 documents each term.
//!
//! # Deterministic fallback
//!
//! Every fallback-to-replay trigger is a pure function of the read
//! sequence (splice flags, slide counts, pair-list structure) — never of
//! wall-clock timing — so a stream re-solved on any worker count takes
//! replay and delta ticks at exactly the same points.

use std::time::Instant;

use lion_geom::{Point3, Vec3};
use lion_linalg::{
    solve_irls_normal, stats, IrlsConfig, NormalEq, NormalIrlsScratch, WeightFunction,
};

use crate::error::CoreError;
use crate::localizer::{
    analyze_geometry_small, assemble_position, locate_window_in, Estimate, LocalizerConfig,
    Weighting,
};
use crate::pairs::PairStrategy;
use crate::preprocess;
use crate::solver::{SolveSpace, SolverKind};
use crate::window::SlidingWindow;
use crate::workspace::{elapsed_ns, Workspace};

/// Delta ticks between forced resyncs. Bounds how far the frozen frame,
/// the continued unwrap chain, and rank-1 Gram drift can wander from the
/// replay oracle before the state is re-anchored bit-exactly.
pub const RESYNC_EVERY: u32 = 64;

/// Which path produced a streaming estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolvePath {
    /// The full O(window) replay pipeline ran (resync or fallback);
    /// bit-identical to the batch solver on the window contents.
    Replayed,
    /// The O(delta) incremental patch ran; within the documented 1e-6 of
    /// the replay oracle.
    Incremental,
}

/// Persistent per-stream state for O(delta) cadence re-solves.
///
/// Owned by the caller (one per stream) and fed the stream's
/// [`SlidingWindow`] on every cadence tick via
/// [`IncrementalState::solve_window`]. The state decides per tick
/// whether the slide since the last call is patchable; when it is not —
/// splice, too-large delta, evicted reference, non-linear solver,
/// structural pair change, or the periodic [`RESYNC_EVERY`] re-anchor —
/// it runs the replay path and rebuilds itself from the window.
#[derive(Debug, Clone)]
pub struct IncrementalState {
    /// Whether the mirrors below describe the window as of the last tick.
    valid: bool,
    ticks_since_resync: u32,
    /// Absolute stream index of `positions[0]` (advances by the evicted
    /// count every tick; the labels are arbitrary but tick-consistent).
    front_abs: u64,
    /// Absolute index of the pinned reference sample.
    ref_abs: u64,
    /// Frozen frame from the last resync (full-rank geometries only).
    centroid: Point3,
    axes: [Vec3; 3],
    k: usize,
    /// Config fingerprint; a change forces a resync.
    cfg_sig: (u64, usize, u64, u64),
    // Window mirrors, index-aligned with the window's samples.
    positions: Vec<Point3>,
    wrapped: Vec<f64>,
    unwrapped: Vec<f64>,
    smoothed: Vec<f64>,
    deltas: Vec<f64>,
    /// Frame coordinates, `k` per sample.
    coords: Vec<f64>,
    /// Pair list behind the normal-equation rows, in absolute indices.
    pairs_abs: Vec<(u64, u64)>,
    pairs_scratch: Vec<(usize, usize)>,
    pairs_next: Vec<(u64, u64)>,
    smooth_prefix: Vec<f64>,
    ne: NormalEq,
    irls: NormalIrlsScratch,
    param_std: Vec<f64>,
    cov_diag: Vec<f64>,
    rows_delta: u64,
    rebuilds: u64,
    delta_solves: u64,
}

impl Default for IncrementalState {
    fn default() -> Self {
        IncrementalState::new()
    }
}

/// Radical-line/plane row for the pair `(i, j)` in the frozen frame —
/// the same arithmetic as the adaptive sweep's row builder (paper
/// Eq. 12); returns the right-hand side.
fn build_row(coords: &[f64], deltas: &[f64], k: usize, i: usize, j: usize, row: &mut [f64]) -> f64 {
    let ci = &coords[i * k..(i + 1) * k];
    let cj = &coords[j * k..(j + 1) * k];
    let mut rhs = 0.0;
    for c in 0..k {
        row[c] = 2.0 * (ci[c] - cj[c]);
        rhs += ci[c] * ci[c] - cj[c] * cj[c];
    }
    row[k] = 2.0 * (deltas[i] - deltas[j]);
    rhs - deltas[i] * deltas[i] + deltas[j] * deltas[j]
}

/// The IRLS configuration the normal-equation solve runs: plain least
/// squares becomes uniform weights (identical to `adaptive`'s mapping).
fn resolve_irls(weighting: &Weighting) -> IrlsConfig {
    match weighting {
        Weighting::Weighted(cfg) => *cfg,
        _ => IrlsConfig {
            weight_fn: WeightFunction::Uniform,
            ..IrlsConfig::default()
        },
    }
}

fn config_signature(config: &LocalizerConfig) -> (u64, usize, u64, u64) {
    (
        config.wavelength.to_bits(),
        config.smoothing_window,
        config.pair_strategy.interval().to_bits(),
        config.rank_tolerance.to_bits(),
    )
}

impl IncrementalState {
    /// An empty (invalid) state; the first [`IncrementalState::solve_window`]
    /// call resyncs.
    pub fn new() -> Self {
        IncrementalState {
            valid: false,
            ticks_since_resync: 0,
            front_abs: 0,
            ref_abs: 0,
            centroid: Point3::ORIGIN,
            axes: [Vec3::new(0.0, 0.0, 0.0); 3],
            k: 0,
            cfg_sig: (0, 0, 0, 0),
            positions: Vec::new(),
            wrapped: Vec::new(),
            unwrapped: Vec::new(),
            smoothed: Vec::new(),
            deltas: Vec::new(),
            coords: Vec::new(),
            pairs_abs: Vec::new(),
            pairs_scratch: Vec::new(),
            pairs_next: Vec::new(),
            smooth_prefix: Vec::new(),
            ne: NormalEq::new(),
            irls: NormalIrlsScratch::new(),
            param_std: Vec::new(),
            cov_diag: Vec::new(),
            rows_delta: 0,
            rebuilds: 0,
            delta_solves: 0,
        }
    }

    /// Forces the next tick to replay and rebuild (e.g. after the caller
    /// mutated the window outside the slide contract).
    pub fn invalidate(&mut self) {
        self.valid = false;
    }

    /// Cumulative normal-equation rows touched by delta ticks (removed +
    /// replaced + pushed) — the O(delta) work metric.
    pub fn rows_delta(&self) -> u64 {
        self.rows_delta
    }

    /// Cumulative full rebuilds (resync/fallback replays that re-anchored
    /// the state).
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// Cumulative delta (incremental) solves performed.
    pub fn delta_solves(&self) -> u64 {
        self.delta_solves
    }

    /// Solves the window, incrementally when the slide since the last
    /// call permits, otherwise via a bit-exact replay that re-anchors the
    /// state. Consumes the window's pending [`crate::WindowDelta`].
    ///
    /// # Errors
    ///
    /// Exactly the replay path's errors ([`crate::locate_window_in`]):
    /// any tick whose incremental patch cannot proceed — including a
    /// window too small or too degenerate to solve — falls back to
    /// replay, and a failed replay invalidates the state.
    pub fn solve_window(
        &mut self,
        window: &mut SlidingWindow,
        config: &LocalizerConfig,
        space: SolveSpace,
        ws: &mut Workspace,
    ) -> Result<(Estimate, ResolvePath), CoreError> {
        let delta = window.take_slide_delta();
        let eligible = self.valid
            && !delta.spliced
            && self.ticks_since_resync < RESYNC_EVERY
            && config.reference_index.is_none()
            && matches!(config.solver, SolverKind::Linear)
            && matches!(config.pair_strategy, PairStrategy::Interval { .. })
            && self.cfg_sig == config_signature(config);
        self.front_abs += delta.evicted as u64;
        if eligible {
            if let Some(est) = self.delta_tick(delta.evicted, delta.appended, window, config, ws) {
                self.ticks_since_resync += 1;
                self.delta_solves += 1;
                return Ok((est, ResolvePath::Incremental));
            }
        }
        let est = self.resync(window, config, space, ws)?;
        Ok((est, ResolvePath::Replayed))
    }

    /// One incremental tick. Returns `None` on any fallback trigger; the
    /// state may then be partially updated, which is fine — the resync
    /// that follows rebuilds every mirror from the window.
    fn delta_tick(
        &mut self,
        evicted: usize,
        appended: usize,
        window: &SlidingWindow,
        config: &LocalizerConfig,
        ws: &mut Workspace,
    ) -> Option<Estimate> {
        let old_len = self.positions.len();
        let n_new = window.len();
        // Slide-model consistency: the window must equal the mirror with
        // `evicted` reads dropped at the front and `appended` at the back.
        if evicted > old_len || n_new != old_len - evicted + appended {
            return None;
        }
        let survivors = old_len - evicted;
        if survivors == 0 || evicted + appended >= n_new {
            return None; // delta as large as the window: replay is the honest path
        }
        if n_new < 4 {
            return None; // below any space's sample floor — let replay error
        }
        // Pinned reference must survive untouched.
        if self.ref_abs < self.front_abs {
            return None;
        }
        let ref_rel = (self.ref_abs - self.front_abs) as usize;
        if ref_rel >= n_new {
            return None;
        }
        let w = config.smoothing_window;
        let (half, odd) = (w / 2, w % 2);
        // Which (new-relative) indices had their moving-average span
        // changed by the slide: a front half-window when reads left, the
        // tail whose span reaches past the old end when reads arrived.
        let keep_lo = if evicted > 0 { half as i64 } else { 0 };
        let keep_hi = if appended > 0 {
            survivors as i64 - half as i64 - odd as i64
        } else {
            survivors as i64 - 1
        };
        let changed = move |r: usize| (r as i64) < keep_lo || (r as i64) > keep_hi;
        if changed(ref_rel) {
            return None; // reference re-smoothed: every delta shifts → resync
        }
        let k = self.k;
        // Slide the mirrors.
        self.positions.drain(..evicted);
        self.wrapped.drain(..evicted);
        self.unwrapped.drain(..evicted);
        self.smoothed.drain(..evicted);
        self.deltas.drain(..evicted);
        self.coords.drain(..evicted * k);
        // Cheap identity check that the surviving front really is the
        // window's front (the splice flag covers reorderings; this guards
        // the bookkeeping itself).
        let front = window.sample(0)?;
        if front.position != self.positions[0] || front.wrapped != self.wrapped[0] {
            return None;
        }
        // Append the new tail, continuing the unwrap chain.
        for s in window.samples().skip(survivors) {
            let prev_w = *self.wrapped.last()?;
            let prev_u = *self.unwrapped.last()?;
            self.positions.push(s.position);
            self.wrapped.push(s.wrapped);
            self.unwrapped
                .push(preprocess::unwrap_step(prev_w, prev_u, s.wrapped));
            let d = s.position - self.centroid;
            for axis in self.axes.iter().take(k) {
                self.coords.push(d.dot(*axis));
            }
        }
        if self.positions.len() != n_new {
            return None;
        }
        // Re-smooth only the changed spans.
        self.smoothed.resize(n_new, 0.0);
        self.deltas.resize(n_new, 0.0);
        let scale = config.wavelength / (4.0 * std::f64::consts::PI);
        let theta_r = self.smoothed[ref_rel];
        let lo_end = (keep_lo.max(0) as usize).min(n_new);
        let hi_start = ((keep_hi + 1).max(0) as usize).min(n_new);
        for r in (0..lo_end).chain(hi_start..n_new) {
            self.smoothed[r] = preprocess::smoothed_at(&self.unwrapped, w, r);
            self.deltas[r] = scale * (self.smoothed[r] - theta_r);
        }
        // Fresh exact pair scan, then diff against the rows in the system.
        let pairs_span = lion_obs::span!("lion.pairs");
        let t = Instant::now();
        config
            .pair_strategy
            .pairs_into(&self.positions, &mut self.pairs_scratch);
        ws.metrics.pairs_ns += elapsed_ns(t);
        drop(pairs_span);
        let cols = k + 1;
        if self.pairs_scratch.len() < cols {
            return None; // let replay produce the canonical error/estimate
        }
        let front_abs = self.front_abs;
        self.pairs_next.clear();
        self.pairs_next.extend(
            self.pairs_scratch
                .iter()
                .map(|&(i, j)| (front_abs + i as u64, front_abs + j as u64)),
        );
        let _solve_span = lion_obs::span!("lion.solve");
        let t = Instant::now();
        // Rows whose first endpoint was evicted form a prefix (the
        // interval scan emits pairs in ascending i with ascending j).
        let drop_front = self.pairs_abs.partition_point(|&(i, _)| i < front_abs);
        self.ne.remove_rows_front(drop_front);
        let mut touched = drop_front as u64;
        let old_tail = self.pairs_abs.len() - drop_front;
        if self.pairs_next.len() < old_tail {
            return None; // pairs vanished mid-list: structure changed
        }
        let mut row = [0.0_f64; 4];
        for t in 0..self.pairs_next.len() {
            let (ai, aj) = self.pairs_next[t];
            let (ri, rj) = ((ai - front_abs) as usize, (aj - front_abs) as usize);
            if rj >= n_new {
                return None;
            }
            if t < old_tail {
                if self.pairs_abs[drop_front + t] != (ai, aj) {
                    // Carried-j divergence (e.g. near a ping-pong
                    // turnaround): positional identity broke — resync.
                    return None;
                }
                if changed(ri) || changed(rj) {
                    let rhs = build_row(&self.coords, &self.deltas, k, ri, rj, &mut row);
                    self.ne.replace_row(t, &row[..cols], rhs);
                    touched += 1;
                }
            } else {
                let rhs = build_row(&self.coords, &self.deltas, k, ri, rj, &mut row);
                self.ne.push_row(&row[..cols], rhs);
                touched += 1;
            }
        }
        std::mem::swap(&mut self.pairs_abs, &mut self.pairs_next);
        self.rows_delta += touched;
        // Solve and assemble exactly like the adaptive sweep's cells.
        // Deliberately cold-started ([`solve_irls_normal`], not the
        // warm-start variant): when IRLS hits its iteration cap without
        // converging, the stopping point is trajectory-dependent, and
        // only the cold start tracks the replay oracle's trajectory
        // closely enough for the documented 1e-6 delta-tick parity.
        let irls = resolve_irls(&config.weighting);
        let outcome = solve_irls_normal(&mut self.ne, &irls, &mut self.irls).ok()?;
        let m = self.ne.rows();
        crate::localizer::normal_param_std(
            &mut self.ne,
            &self.irls,
            &mut self.param_std,
            &mut self.cov_diag,
        );
        let reference_position = self.positions[ref_rel];
        let (position, position_std) = assemble_position(
            self.centroid,
            &self.axes,
            k,
            self.ne.solution(),
            &self.param_std,
            reference_position,
            false,
            config.side_hint,
        )
        .ok()?;
        ws.metrics.solve_ns += elapsed_ns(t);
        ws.metrics.solves += 1;
        ws.metrics.irls_iterations += outcome.iterations as u64;
        ws.metrics.equations += m as u64;
        Some(Estimate {
            position,
            reference_distance: self.ne.solution()[k],
            reference_position,
            mean_residual: outcome.mean_residual,
            weighted_rms: outcome.weighted_rms,
            iterations: outcome.iterations,
            equation_count: m,
            lower_dimension: false,
            position_std,
        })
    }

    /// Replays the window (bit-exact oracle path), then rebuilds every
    /// mirror so the next tick can go incremental. Leaves the state
    /// invalid — forcing replay on every subsequent tick — when the
    /// configuration or geometry cannot support delta patches (pinned
    /// reference index, grid solver, non-interval pairing,
    /// lower-dimension trajectory).
    fn resync(
        &mut self,
        window: &mut SlidingWindow,
        config: &LocalizerConfig,
        space: SolveSpace,
        ws: &mut Workspace,
    ) -> Result<Estimate, CoreError> {
        self.valid = false;
        let est = locate_window_in(config, space, window, ws)?;
        self.rebuilds += 1;
        self.ticks_since_resync = 0;
        if config.reference_index.is_some()
            || !matches!(config.solver, SolverKind::Linear)
            || !matches!(config.pair_strategy, PairStrategy::Interval { .. })
        {
            return Ok(est);
        }
        let n = window.len();
        self.positions.clear();
        self.wrapped.clear();
        self.unwrapped.clear();
        for s in window.samples() {
            self.positions.push(s.position);
            self.wrapped.push(s.wrapped);
            let u = match self.unwrapped.last() {
                Some(&prev_u) => {
                    let prev_w = self.wrapped[self.wrapped.len() - 2];
                    preprocess::unwrap_step(prev_w, prev_u, s.wrapped)
                }
                None => s.wrapped,
            };
            self.unwrapped.push(u);
        }
        let Ok(frame) =
            analyze_geometry_small(&self.positions, space.mode(), config.rank_tolerance)
        else {
            return Ok(est);
        };
        if frame.spanned < frame.dims {
            // Lower-dimension recovery is replay-only (the discriminant
            // geometry is too sensitive to freeze a frame across slides).
            return Ok(est);
        }
        self.centroid = frame.centroid;
        self.axes = frame.axes;
        self.k = frame.dims;
        let k = self.k;
        stats::moving_average_into(
            &self.unwrapped,
            config.smoothing_window,
            &mut self.smooth_prefix,
            &mut self.smoothed,
        );
        let ref_rel = n / 2;
        self.ref_abs = self.front_abs + ref_rel as u64;
        let scale = config.wavelength / (4.0 * std::f64::consts::PI);
        let theta_r = self.smoothed[ref_rel];
        self.deltas.clear();
        self.deltas
            .extend(self.smoothed.iter().map(|t| scale * (t - theta_r)));
        self.coords.clear();
        self.coords.reserve(n * k);
        for p in &self.positions {
            let d = *p - frame.centroid;
            for axis in frame.axes.iter().take(k) {
                self.coords.push(d.dot(*axis));
            }
        }
        config
            .pair_strategy
            .pairs_into(&self.positions, &mut self.pairs_scratch);
        let cols = k + 1;
        if self.pairs_scratch.len() < cols {
            return Ok(est);
        }
        let front_abs = self.front_abs;
        self.pairs_abs.clear();
        self.pairs_abs.extend(
            self.pairs_scratch
                .iter()
                .map(|&(i, j)| (front_abs + i as u64, front_abs + j as u64)),
        );
        self.ne.begin(cols);
        let mut row = [0.0_f64; 4];
        for &(i, j) in &self.pairs_scratch {
            let rhs = build_row(&self.coords, &self.deltas, k, i, j, &mut row);
            self.ne.push_row(&row[..cols], rhs);
        }
        self.cfg_sig = config_signature(config);
        self.valid = true;
        Ok(est)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::SlidingWindow;
    use std::f64::consts::{PI, TAU};

    const LAMBDA: f64 = 299_792_458.0 / 920.625e6;

    fn phase_of(target: Point3, p: Point3) -> f64 {
        (4.0 * PI * target.distance(p) / LAMBDA).rem_euclid(TAU)
    }

    /// Circle-scan reads around the origin (full-rank 2D geometry).
    fn circle_reads(target: Point3, n: usize) -> Vec<(f64, Point3, f64)> {
        (0..n)
            .map(|i| {
                let a = i as f64 * TAU / 120.0;
                let p = Point3::new(0.3 * a.cos(), 0.3 * a.sin(), 0.0);
                (i as f64 * 0.01, p, phase_of(target, p))
            })
            .collect()
    }

    fn config() -> LocalizerConfig {
        LocalizerConfig {
            smoothing_window: 9,
            ..LocalizerConfig::paper()
        }
    }

    #[test]
    fn first_tick_replays_then_deltas_follow() {
        let target = Point3::new(1.0, 0.4, 0.0);
        let reads = circle_reads(target, 400);
        let mut window = SlidingWindow::new(128).unwrap();
        let mut state = IncrementalState::new();
        let mut ws = Workspace::new();
        let cfg = config();
        for r in &reads[..128] {
            window.push(r.0, r.1, r.2);
        }
        let (est, path) = state
            .solve_window(&mut window, &cfg, SolveSpace::TwoD, &mut ws)
            .unwrap();
        assert_eq!(path, ResolvePath::Replayed);
        assert!(est.distance_error(target) < 0.02);
        // Slide by 16 and re-solve: must go incremental and stay close to
        // a fresh replay of the same window.
        let mut incremental_ticks = 0;
        for chunk in reads[128..].chunks(16) {
            for r in chunk {
                window.push(r.0, r.1, r.2);
            }
            let (est, path) = state
                .solve_window(&mut window, &cfg, SolveSpace::TwoD, &mut ws)
                .unwrap();
            let oracle = locate_window_in(&cfg, SolveSpace::TwoD, &window, &mut ws).unwrap();
            assert!(
                est.position.distance(oracle.position) < 1e-6,
                "path {path:?}: {} vs oracle {}",
                est.position,
                oracle.position
            );
            if path == ResolvePath::Incremental {
                incremental_ticks += 1;
            }
        }
        assert!(
            incremental_ticks >= 10,
            "expected mostly delta ticks, got {incremental_ticks}"
        );
        assert!(state.rows_delta() > 0);
        assert!(state.delta_solves() >= incremental_ticks);
    }

    #[test]
    fn splice_forces_replay_tick() {
        let target = Point3::new(0.8, 0.6, 0.0);
        let reads = circle_reads(target, 300);
        let mut window = SlidingWindow::new(128).unwrap();
        let mut state = IncrementalState::new();
        let mut ws = Workspace::new();
        let cfg = config();
        for r in &reads[..160] {
            window.push(r.0, r.1, r.2);
        }
        state
            .solve_window(&mut window, &cfg, SolveSpace::TwoD, &mut ws)
            .unwrap();
        // Deliver a chunk with one read held back, then spliced late.
        for r in &reads[161..180] {
            window.push(r.0, r.1, r.2);
        }
        let held = &reads[160];
        window.push(held.0, held.1, held.2); // lands mid-window → splice
        let (est, path) = state
            .solve_window(&mut window, &cfg, SolveSpace::TwoD, &mut ws)
            .unwrap();
        assert_eq!(path, ResolvePath::Replayed);
        let oracle = locate_window_in(&cfg, SolveSpace::TwoD, &window, &mut ws).unwrap();
        assert_eq!(est, oracle, "replay tick must be bit-identical");
        // Next in-order chunk goes incremental again.
        for r in &reads[180..200] {
            window.push(r.0, r.1, r.2);
        }
        let (_, path) = state
            .solve_window(&mut window, &cfg, SolveSpace::TwoD, &mut ws)
            .unwrap();
        assert_eq!(path, ResolvePath::Incremental);
    }

    #[test]
    fn grid_solver_always_replays() {
        let target = Point3::new(0.9, 0.2, 0.0);
        let reads = circle_reads(target, 260);
        let mut window = SlidingWindow::new(128).unwrap();
        let mut state = IncrementalState::new();
        let mut ws = Workspace::new();
        let cfg = LocalizerConfig {
            solver: SolverKind::Grid(crate::solver::GridConfig::default()),
            ..config()
        };
        for r in &reads[..140] {
            window.push(r.0, r.1, r.2);
        }
        for chunk in reads[140..].chunks(20) {
            for r in chunk {
                window.push(r.0, r.1, r.2);
            }
            let (est, path) = state
                .solve_window(&mut window, &cfg, SolveSpace::TwoD, &mut ws)
                .unwrap();
            assert_eq!(path, ResolvePath::Replayed);
            let oracle = locate_window_in(&cfg, SolveSpace::TwoD, &window, &mut ws).unwrap();
            assert_eq!(est, oracle);
        }
    }

    #[test]
    fn periodic_resync_reanchors() {
        let target = Point3::new(1.1, 0.1, 0.0);
        let reads = circle_reads(target, 128 + (RESYNC_EVERY as usize + 4) * 4);
        let mut window = SlidingWindow::new(128).unwrap();
        let mut state = IncrementalState::new();
        let mut ws = Workspace::new();
        let cfg = config();
        for r in &reads[..128] {
            window.push(r.0, r.1, r.2);
        }
        state
            .solve_window(&mut window, &cfg, SolveSpace::TwoD, &mut ws)
            .unwrap();
        let mut replays = 0;
        for chunk in reads[128..].chunks(4) {
            for r in chunk {
                window.push(r.0, r.1, r.2);
            }
            let (_, path) = state
                .solve_window(&mut window, &cfg, SolveSpace::TwoD, &mut ws)
                .unwrap();
            if path == ResolvePath::Replayed {
                replays += 1;
            }
        }
        // More ticks than RESYNC_EVERY ran, so at least one periodic
        // re-anchor must have fired.
        assert!(replays >= 1, "expected a periodic resync");
        assert!(state.rebuilds() >= 2); // initial + periodic
    }

    #[test]
    fn invalidate_forces_replay() {
        let target = Point3::new(0.7, 0.7, 0.0);
        let reads = circle_reads(target, 200);
        let mut window = SlidingWindow::new(96).unwrap();
        let mut state = IncrementalState::new();
        let mut ws = Workspace::new();
        let cfg = config();
        for r in &reads[..120] {
            window.push(r.0, r.1, r.2);
        }
        state
            .solve_window(&mut window, &cfg, SolveSpace::TwoD, &mut ws)
            .unwrap();
        for r in &reads[120..136] {
            window.push(r.0, r.1, r.2);
        }
        state.invalidate();
        let (_, path) = state
            .solve_window(&mut window, &cfg, SolveSpace::TwoD, &mut ws)
            .unwrap();
        assert_eq!(path, ResolvePath::Replayed);
    }
}
