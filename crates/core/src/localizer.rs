//! The LION localizer: light-weight, robust position estimation from a
//! phase profile (paper Secs. III and IV-B).
//!
//! The pipeline is:
//!
//! 1. unwrap + smooth the phases ([`crate::preprocess::PhaseProfile`]),
//! 2. pick sample pairs ([`crate::pairs::PairStrategy`]),
//! 3. stack one radical-line/plane equation per pair
//!    ([`crate::model::build_system`]),
//! 4. solve by (iteratively reweighted) least squares,
//! 5. if the trajectory spans fewer dimensions than the target space,
//!    recover the perpendicular coordinate from the reference distance
//!    `d_r` (paper Sec. III-C, Observation 2).

use std::time::Instant;

use lion_geom::{Point3, Vec3};
use lion_linalg::{lstsq, IrlsConfig, Matrix, NormalEq, NormalIrlsScratch};
use serde::{Deserialize, Serialize};

use crate::error::CoreError;
use crate::pairs::PairStrategy;
use crate::preprocess::PhaseProfile;
use crate::workspace::{elapsed_ns, Workspace};

/// Which estimator solves the stacked linear system.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Weighting {
    /// Ordinary least squares (paper Eq. 13).
    LeastSquares,
    /// Iteratively reweighted least squares with the Gaussian-of-residual
    /// weight (paper Eqs. 14–16) — the paper's WLS.
    Weighted(IrlsConfig),
}

impl Default for Weighting {
    fn default() -> Self {
        Weighting::Weighted(IrlsConfig::default())
    }
}

/// Configuration shared by [`Localizer2d`] and [`Localizer3d`].
#[derive(Debug, Clone, PartialEq)]
pub struct LocalizerConfig {
    /// Carrier wavelength in meters (default: the paper's 920.625 MHz →
    /// ≈ 0.3256 m).
    pub wavelength: f64,
    /// Moving-average window applied to the unwrapped phases (samples);
    /// 0 or 1 disables smoothing. Default 9.
    pub smoothing_window: usize,
    /// Pair selection strategy. Default: sliding pairs 0.2 m apart.
    pub pair_strategy: PairStrategy,
    /// Estimator. Default: the paper's weighted least squares.
    pub weighting: Weighting,
    /// Reference sample index for the distance differences; default
    /// (`None`) uses the middle sample.
    pub reference_index: Option<usize>,
    /// Approximate target position used to disambiguate the mirror
    /// solution on lower-dimension trajectories. The natural choice is the
    /// antenna's manually measured physical center. Without a hint the
    /// positive side of the canonical trajectory normal is chosen.
    pub side_hint: Option<Point3>,
    /// Relative singular-value threshold below which a trajectory
    /// direction counts as unspanned (triggers the lower-dimension path).
    /// Default 0.05.
    pub rank_tolerance: f64,
    /// Which estimation backend runs the solve (default: the paper's
    /// linear model; see [`crate::solver::SolverKind`]).
    pub solver: crate::solver::SolverKind,
}

impl Default for LocalizerConfig {
    fn default() -> Self {
        LocalizerConfig {
            wavelength: 299_792_458.0 / 920.625e6,
            smoothing_window: 9,
            pair_strategy: PairStrategy::default(),
            weighting: Weighting::default(),
            reference_index: None,
            side_hint: None,
            rank_tolerance: 0.05,
            solver: crate::solver::SolverKind::Linear,
        }
    }
}

impl LocalizerConfig {
    /// The paper's configuration: 920.625 MHz carrier, window-9 smoothing,
    /// 0.2 m sliding pairs, Gaussian-residual IRLS. Identical to
    /// [`LocalizerConfig::default`], named for discoverability.
    pub fn paper() -> Self {
        LocalizerConfig::default()
    }

    /// Starts a validating builder seeded with the paper's configuration.
    ///
    /// # Example
    ///
    /// ```
    /// use lion_core::LocalizerConfig;
    ///
    /// # fn main() -> Result<(), lion_core::CoreError> {
    /// let cfg = LocalizerConfig::builder()
    ///     .smoothing_window(5)
    ///     .rank_tolerance(0.02)
    ///     .build()?;
    /// assert_eq!(cfg.smoothing_window, 5);
    /// assert!(LocalizerConfig::builder().wavelength(-1.0).build().is_err());
    /// # Ok(())
    /// # }
    /// ```
    pub fn builder() -> LocalizerConfigBuilder {
        LocalizerConfigBuilder {
            config: LocalizerConfig::default(),
        }
    }

    /// Checks the configuration's standalone invariants (those that do not
    /// depend on the measurement count).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] naming the offending parameter.
    pub fn validate(&self) -> Result<(), CoreError> {
        if !(self.wavelength > 0.0 && self.wavelength.is_finite()) {
            return Err(CoreError::InvalidConfig {
                parameter: "wavelength",
                found: format!("{}", self.wavelength),
            });
        }
        if self.smoothing_window == 0 {
            return Err(CoreError::InvalidConfig {
                parameter: "smoothing_window",
                found: "0".to_string(),
            });
        }
        if !(self.rank_tolerance > 0.0 && self.rank_tolerance < 1.0) {
            return Err(CoreError::InvalidConfig {
                parameter: "rank_tolerance",
                found: format!("{}", self.rank_tolerance),
            });
        }
        let interval = self.pair_strategy.interval();
        if !(interval > 0.0 && interval.is_finite()) {
            return Err(CoreError::InvalidConfig {
                parameter: "pair interval",
                found: format!("{interval}"),
            });
        }
        self.solver.validate()?;
        Ok(())
    }
}

/// Validating builder for [`LocalizerConfig`], in the style of
/// `Antenna::builder`. Created by [`LocalizerConfig::builder`]; plain
/// struct-literal construction keeps working for callers that prefer it.
#[derive(Debug, Clone)]
pub struct LocalizerConfigBuilder {
    config: LocalizerConfig,
}

impl LocalizerConfigBuilder {
    /// Sets the carrier wavelength in meters.
    pub fn wavelength(mut self, wavelength: f64) -> Self {
        self.config.wavelength = wavelength;
        self
    }

    /// Sets the moving-average smoothing window (samples, must be ≥ 1;
    /// 1 disables smoothing).
    pub fn smoothing_window(mut self, window: usize) -> Self {
        self.config.smoothing_window = window;
        self
    }

    /// Sets the pair-selection strategy.
    pub fn pair_strategy(mut self, strategy: PairStrategy) -> Self {
        self.config.pair_strategy = strategy;
        self
    }

    /// Sets the estimator (plain vs iteratively-reweighted least squares).
    pub fn weighting(mut self, weighting: Weighting) -> Self {
        self.config.weighting = weighting;
        self
    }

    /// Pins the reference sample index (default: the middle sample).
    pub fn reference_index(mut self, index: usize) -> Self {
        self.config.reference_index = Some(index);
        self
    }

    /// Sets the mirror-disambiguation hint for lower-dimension
    /// trajectories.
    pub fn side_hint(mut self, hint: Point3) -> Self {
        self.config.side_hint = Some(hint);
        self
    }

    /// Sets the relative singular-value threshold for the
    /// lower-dimension path (must lie in `(0, 1)`).
    pub fn rank_tolerance(mut self, tolerance: f64) -> Self {
        self.config.rank_tolerance = tolerance;
        self
    }

    /// Selects the estimation backend (linear least squares vs the
    /// likelihood grid); validated by [`LocalizerConfigBuilder::build`].
    pub fn solver(mut self, kind: crate::solver::SolverKind) -> Self {
        self.config.solver = kind;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for a non-positive or
    /// non-finite wavelength, a zero smoothing window, a rank tolerance
    /// outside `(0, 1)`, or a non-positive pair interval.
    pub fn build(self) -> Result<LocalizerConfig, CoreError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// The result of one localization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Estimate {
    /// Estimated target position. For 2D localization, `z` is the mean
    /// height of the tag samples.
    pub position: Point3,
    /// Estimated reference distance `d_r` (meters).
    pub reference_distance: f64,
    /// The reference tag position the distances were measured against.
    pub reference_position: Point3,
    /// Mean equation residual after the final solve — the quantity the
    /// adaptive parameter selection drives toward zero (paper Sec. IV-C1).
    pub mean_residual: f64,
    /// Weighted RMS residual (diagnostic).
    pub weighted_rms: f64,
    /// Reweighting iterations performed (0 for plain least squares).
    pub iterations: usize,
    /// Number of equations in the solved system.
    pub equation_count: usize,
    /// Whether the lower-dimension recovery path was taken.
    pub lower_dimension: bool,
    /// Approximate 1σ standard errors of the solved coordinates (world
    /// axes, meters), from the weighted-least-squares covariance
    /// `σ̂²·(AᵀWA)⁻¹`. Zero when the covariance could not be formed.
    /// For lower-dimension solves the recovered coordinate's uncertainty
    /// is *not* included (it is dominated by the `d_r` error and the
    /// discriminant geometry).
    pub position_std: lion_geom::Vec3,
}

impl Estimate {
    /// Euclidean distance from this estimate to a ground-truth position.
    pub fn distance_error(&self, truth: Point3) -> f64 {
        self.position.distance(truth)
    }
}

impl Default for Estimate {
    /// An all-zero placeholder (origin position, no residual statistics).
    /// Exists so outcome buffers can be pre-allocated and refilled in
    /// place; every real estimate comes from a solve.
    fn default() -> Self {
        Estimate {
            position: Point3::ORIGIN,
            reference_distance: 0.0,
            reference_position: Point3::ORIGIN,
            mean_residual: 0.0,
            weighted_rms: 0.0,
            iterations: 0,
            equation_count: 0,
            lower_dimension: false,
            position_std: Vec3::new(0.0, 0.0, 0.0),
        }
    }
}

/// 2D localization: the target and the tag trajectory lie in (or are
/// projected onto) the horizontal plane; sample `z` coordinates are
/// ignored except to report the plane height.
///
/// # Example
///
/// ```
/// use lion_core::{Localizer2d, LocalizerConfig};
/// use lion_geom::Point3;
///
/// # fn main() -> Result<(), lion_core::CoreError> {
/// // Noise-free synthetic measurements of an antenna at (0.5, 0.8).
/// let antenna = Point3::new(0.5, 0.8, 0.0);
/// let lambda = LocalizerConfig::default().wavelength;
/// let measurements: Vec<(Point3, f64)> = (0..60)
///     .map(|i| {
///         let a = i as f64 * 0.1;
///         let p = Point3::new(0.3 * a.cos(), 0.3 * a.sin(), 0.0);
///         let phase = (4.0 * std::f64::consts::PI * antenna.distance(p) / lambda)
///             .rem_euclid(2.0 * std::f64::consts::PI);
///         (p, phase)
///     })
///     .collect();
/// let mut config = LocalizerConfig::default();
/// config.smoothing_window = 1;
/// let estimate = Localizer2d::new(config).locate(&measurements)?;
/// assert!(estimate.distance_error(antenna) < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Localizer2d {
    config: LocalizerConfig,
}

/// 3D localization over a trajectory that spans two (planar, with `d_r`
/// recovery) or three dimensions.
#[derive(Debug, Clone, Default)]
pub struct Localizer3d {
    config: LocalizerConfig,
}

impl Localizer2d {
    /// Creates a 2D localizer.
    pub fn new(config: LocalizerConfig) -> Self {
        Localizer2d { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &LocalizerConfig {
        &self.config
    }

    /// Locates the target from `(position, wrapped phase)` measurements.
    ///
    /// # Errors
    ///
    /// See [`CoreError`]; notably [`CoreError::DegenerateGeometry`] when
    /// all samples coincide, and [`CoreError::RecoveryFailed`] when the
    /// lower-dimension discriminant is negative (heavy noise).
    pub fn locate(&self, measurements: &[(Point3, f64)]) -> Result<Estimate, CoreError> {
        self.locate_in(measurements, &mut Workspace::new())
    }

    /// [`Localizer2d::locate`] with a reusable [`Workspace`]: solver
    /// buffers come from (and stage metrics are recorded into) `ws`.
    /// Bit-identical to `locate`.
    ///
    /// # Errors
    ///
    /// See [`Localizer2d::locate`].
    pub fn locate_in(
        &self,
        measurements: &[(Point3, f64)],
        ws: &mut Workspace,
    ) -> Result<Estimate, CoreError> {
        let mut profile = std::mem::take(&mut ws.profile);
        let result = prepare_profile_in(measurements, &self.config, &mut profile, ws)
            .and_then(|()| self.locate_profile_in(&profile, ws));
        ws.profile = profile;
        result
    }

    /// Locates from the reads held by a [`crate::SlidingWindow`];
    /// superseded by the space-parametric free function
    /// [`locate_window_in`], which both solve spaces and the incremental
    /// re-solve path share.
    ///
    /// # Errors
    ///
    /// See [`Localizer2d::locate`].
    #[deprecated(
        since = "0.8.0",
        note = "use the free `lion_core::locate_window_in(config, SolveSpace::TwoD, window, ws)` \
                (the seam-aware streaming entry point)"
    )]
    pub fn locate_window_in(
        &self,
        window: &crate::SlidingWindow,
        ws: &mut Workspace,
    ) -> Result<Estimate, CoreError> {
        locate_window_in(&self.config, crate::SolveSpace::TwoD, window, ws)
    }

    /// Locates from an already prepared (unwrapped/smoothed) profile.
    ///
    /// # Errors
    ///
    /// See [`Localizer2d::locate`].
    #[deprecated(
        since = "0.6.0",
        note = "use `locate_profile_in` with a reusable `Workspace` (the \
                consolidated solve entry point)"
    )]
    pub fn locate_profile(&self, profile: &PhaseProfile) -> Result<Estimate, CoreError> {
        self.locate_profile_in(profile, &mut Workspace::new())
    }

    /// Locates from an already prepared (unwrapped/smoothed) profile with
    /// a reusable [`Workspace`] — the entry point the adaptive parameter
    /// sweep uses to avoid re-unwrapping, and the dispatch point where
    /// [`LocalizerConfig::solver`] selects the backend.
    ///
    /// # Errors
    ///
    /// See [`Localizer2d::locate`].
    pub fn locate_profile_in(
        &self,
        profile: &PhaseProfile,
        ws: &mut Workspace,
    ) -> Result<Estimate, CoreError> {
        crate::solver::dispatch_profile(profile, &self.config, crate::SolveSpace::TwoD, ws)
    }
}

impl Localizer3d {
    /// Creates a 3D localizer.
    pub fn new(config: LocalizerConfig) -> Self {
        Localizer3d { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &LocalizerConfig {
        &self.config
    }

    /// Locates the target from `(position, wrapped phase)` measurements.
    ///
    /// # Errors
    ///
    /// See [`CoreError`]; notably [`CoreError::DegenerateGeometry`] when
    /// the samples are collinear — the paper proves a single straight
    /// trajectory cannot fix a 3D position (Sec. III-C2).
    pub fn locate(&self, measurements: &[(Point3, f64)]) -> Result<Estimate, CoreError> {
        self.locate_in(measurements, &mut Workspace::new())
    }

    /// [`Localizer3d::locate`] with a reusable [`Workspace`]: solver
    /// buffers come from (and stage metrics are recorded into) `ws`.
    /// Bit-identical to `locate`.
    ///
    /// # Errors
    ///
    /// See [`Localizer3d::locate`].
    pub fn locate_in(
        &self,
        measurements: &[(Point3, f64)],
        ws: &mut Workspace,
    ) -> Result<Estimate, CoreError> {
        let mut profile = std::mem::take(&mut ws.profile);
        let result = prepare_profile_in(measurements, &self.config, &mut profile, ws)
            .and_then(|()| self.locate_profile_in(&profile, ws));
        ws.profile = profile;
        result
    }

    /// Locates from the reads held by a [`crate::SlidingWindow`];
    /// superseded by the space-parametric free function
    /// [`locate_window_in`].
    ///
    /// # Errors
    ///
    /// See [`Localizer3d::locate`].
    #[deprecated(
        since = "0.8.0",
        note = "use the free `lion_core::locate_window_in(config, SolveSpace::ThreeD, window, ws)` \
                (the seam-aware streaming entry point)"
    )]
    pub fn locate_window_in(
        &self,
        window: &crate::SlidingWindow,
        ws: &mut Workspace,
    ) -> Result<Estimate, CoreError> {
        locate_window_in(&self.config, crate::SolveSpace::ThreeD, window, ws)
    }

    /// Locates from an already prepared profile.
    ///
    /// # Errors
    ///
    /// See [`Localizer3d::locate`].
    #[deprecated(
        since = "0.6.0",
        note = "use `locate_profile_in` with a reusable `Workspace` (the \
                consolidated solve entry point)"
    )]
    pub fn locate_profile(&self, profile: &PhaseProfile) -> Result<Estimate, CoreError> {
        self.locate_profile_in(profile, &mut Workspace::new())
    }

    /// Locates from an already prepared profile with a reusable
    /// [`Workspace`]; the dispatch point where
    /// [`LocalizerConfig::solver`] selects the backend.
    ///
    /// # Errors
    ///
    /// See [`Localizer3d::locate`].
    pub fn locate_profile_in(
        &self,
        profile: &PhaseProfile,
        ws: &mut Workspace,
    ) -> Result<Estimate, CoreError> {
        crate::solver::dispatch_profile(profile, &self.config, crate::SolveSpace::ThreeD, ws)
    }
}

/// Locates from the reads held by a [`crate::SlidingWindow`] — the
/// consolidated streaming entry point, replacing the near-duplicate
/// `Localizer2d::locate_window_in` / `Localizer3d::locate_window_in`
/// methods with one seam-aware function parametric over the solve space.
///
/// The window's `(position, wrapped phase)` measurements are staged into
/// `ws`'s reusable buffer and replayed through the standard unwrap →
/// smooth → pairs → solve pipeline (dispatching on
/// [`LocalizerConfig::solver`]), so the result is **bit-identical** to
/// the batch `locate` on the same window contents — the streaming/batch
/// parity guarantee, and the oracle the O(delta)
/// [`crate::IncrementalState`] path is checked against.
///
/// # Errors
///
/// See [`Localizer2d::locate`] / [`Localizer3d::locate`].
pub fn locate_window_in(
    config: &LocalizerConfig,
    space: crate::SolveSpace,
    window: &crate::SlidingWindow,
    ws: &mut Workspace,
) -> Result<Estimate, CoreError> {
    let mut staged = std::mem::take(&mut ws.samples);
    window.write_soa_into(&mut staged);
    let mut profile = std::mem::take(&mut ws.profile);
    let result = prepare_profile_lanes_in(&staged, config, &mut profile, ws)
        .and_then(|()| crate::solver::dispatch_profile(&profile, config, space, ws));
    ws.profile = profile;
    ws.samples = staged;
    result
}

/// Builds and preprocesses the phase profile for a localizer config,
/// recording unwrap/smooth timings into the workspace.
pub(crate) fn prepare_in(
    measurements: &[(Point3, f64)],
    config: &LocalizerConfig,
    ws: &mut Workspace,
) -> Result<PhaseProfile, CoreError> {
    let span = lion_obs::span!("lion.unwrap");
    let t = Instant::now();
    let mut profile = PhaseProfile::from_wrapped(measurements, config.wavelength)?;
    ws.metrics.unwrap_ns += elapsed_ns(t);
    drop(span);
    let _span = lion_obs::span!("lion.smooth");
    let t = Instant::now();
    profile.smooth(config.smoothing_window);
    ws.metrics.smooth_ns += elapsed_ns(t);
    Ok(profile)
}

/// [`prepare_in`] into a caller-owned profile: rebuilds `profile` from
/// the wrapped measurements and smooths it using the workspace's scratch
/// buffers, so the steady-state prepare stage performs no heap
/// allocations. Timings land in the same `unwrap_ns`/`smooth_ns` buckets.
pub(crate) fn prepare_profile_in(
    measurements: &[(Point3, f64)],
    config: &LocalizerConfig,
    profile: &mut PhaseProfile,
    ws: &mut Workspace,
) -> Result<(), CoreError> {
    let span = lion_obs::span!("lion.unwrap");
    let t = Instant::now();
    let rebuilt = profile.rebuild_from_wrapped(measurements, config.wavelength);
    ws.metrics.unwrap_ns += elapsed_ns(t);
    drop(span);
    rebuilt?;
    let _span = lion_obs::span!("lion.smooth");
    let t = Instant::now();
    let mut prefix = std::mem::take(&mut ws.sweep.smooth_prefix);
    let mut tmp = std::mem::take(&mut ws.sweep.smooth_tmp);
    profile.smooth_with_scratch(config.smoothing_window, &mut prefix, &mut tmp);
    ws.sweep.smooth_prefix = prefix;
    ws.sweep.smooth_tmp = tmp;
    ws.metrics.smooth_ns += elapsed_ns(t);
    Ok(())
}

/// [`prepare_profile_in`] from SoA staging lanes: the streaming entry
/// point's preprocessing, rebuilding the profile straight from the
/// [`crate::SlidingWindow`]'s lane-wise snapshot. Same validation, unwrap
/// kernel, and smoothing scratch as the tuple-staged route, so the two
/// produce bit-identical profiles.
pub(crate) fn prepare_profile_lanes_in(
    samples: &crate::workspace::SampleSoa,
    config: &LocalizerConfig,
    profile: &mut PhaseProfile,
    ws: &mut Workspace,
) -> Result<(), CoreError> {
    let span = lion_obs::span!("lion.unwrap");
    let t = Instant::now();
    let rebuilt = profile.rebuild_from_lanes(
        &samples.xs,
        &samples.ys,
        &samples.zs,
        &samples.phases,
        config.wavelength,
    );
    ws.metrics.unwrap_ns += elapsed_ns(t);
    drop(span);
    rebuilt?;
    let _span = lion_obs::span!("lion.smooth");
    let t = Instant::now();
    let mut prefix = std::mem::take(&mut ws.sweep.smooth_prefix);
    let mut tmp = std::mem::take(&mut ws.sweep.smooth_tmp);
    profile.smooth_with_scratch(config.smoothing_window, &mut prefix, &mut tmp);
    ws.sweep.smooth_prefix = prefix;
    ws.sweep.smooth_tmp = tmp;
    ws.metrics.smooth_ns += elapsed_ns(t);
    Ok(())
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Mode {
    TwoD,
    ThreeD,
}

/// Stack-only principal-component frame shared by every solve path: a
/// 3×3 symmetric eigendecomposition of `Σ d·dᵀ` instead of an SVD of the
/// centered `n × k` matrix, so computing it allocates nothing. The square
/// roots of the eigenvalues equal the singular values of the centered
/// matrix, so the spanned-direction count matches what an SVD route would
/// report up to floating-point noise far below the rank tolerance.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FrameSmall {
    pub(crate) centroid: Point3,
    /// Orthonormal axes, strongest spread first. For 2D mode only the xy
    /// components are nonzero and the last axis is `±e_z`.
    pub(crate) axes: [Vec3; 3],
    /// How many directions the trajectory spans at the given tolerance.
    pub(crate) spanned: usize,
    /// The target dimensionality (2 or 3).
    pub(crate) dims: usize,
}

pub(crate) fn analyze_geometry_small(
    positions: &[Point3],
    mode: Mode,
    rank_tolerance: f64,
) -> Result<FrameSmall, CoreError> {
    let n = positions.len();
    let inv = 1.0 / n as f64;
    let centroid = positions.iter().fold(Point3::ORIGIN, |acc, p| {
        Point3::new(acc.x + p.x * inv, acc.y + p.y * inv, acc.z + p.z * inv)
    });
    let dims = match mode {
        Mode::TwoD => 2,
        Mode::ThreeD => 3,
    };
    // Unnormalized sample covariance Σ d·dᵀ; its eigenvalues are the
    // squared singular values of the centered sample matrix. 2D mode
    // keeps the z row/column exactly zero, which `sym_eigen3` preserves.
    let mut cov = [[0.0_f64; 3]; 3];
    for p in positions {
        let d = *p - centroid;
        let v = match mode {
            Mode::TwoD => [d.x, d.y, 0.0],
            Mode::ThreeD => [d.x, d.y, d.z],
        };
        for r in 0..3 {
            for c in 0..3 {
                cov[r][c] += v[r] * v[c];
            }
        }
    }
    let (vals, vecs) = lion_linalg::sym_eigen3(&cov);
    let s1 = vals[0].max(0.0).sqrt();
    if s1 <= 1e-12 {
        return Err(CoreError::DegenerateGeometry {
            detail: "all tag positions coincide".to_string(),
        });
    }
    let axes = [
        Vec3::new(vecs[0][0], vecs[0][1], vecs[0][2]),
        Vec3::new(vecs[1][0], vecs[1][1], vecs[1][2]),
        Vec3::new(vecs[2][0], vecs[2][1], vecs[2][2]),
    ];
    let spanned = vals
        .iter()
        .take(dims)
        .filter(|&&v| v.max(0.0).sqrt() / s1 >= rank_tolerance)
        .count();
    if spanned == 0 {
        return Err(CoreError::DegenerateGeometry {
            detail: "tag positions span no direction".to_string(),
        });
    }
    if mode == Mode::ThreeD && spanned == 1 {
        return Err(CoreError::DegenerateGeometry {
            detail: "a single linear trajectory cannot determine a 3D position \
                     (paper Sec. III-C2); add a second line or a planar scan"
                .to_string(),
        });
    }
    if dims - spanned > 1 {
        return Err(CoreError::DegenerateGeometry {
            detail: format!(
                "trajectory spans {spanned} of {dims} dimensions; only one \
                 missing dimension can be recovered from the reference distance"
            ),
        });
    }
    Ok(FrameSmall {
        centroid,
        axes,
        spanned,
        dims,
    })
}

/// Canonical orientation for the recovery normal: flip so the dominant
/// component is positive (z, then y, then x precedence), making the
/// default "positive side" deterministic.
pub(crate) fn canonicalize(n: Vec3) -> Vec3 {
    let flip = if n.z.abs() > 1e-9 {
        n.z < 0.0
    } else if n.y.abs() > 1e-9 {
        n.y < 0.0
    } else {
        n.x < 0.0
    };
    if flip {
        -n
    } else {
        n
    }
}

/// Shared solver body with a caller-chosen sample floor: the multistatic
/// extension feeds as few as three "samples" (one per antenna).
pub(crate) fn run_with_min(
    profile: &PhaseProfile,
    config: &LocalizerConfig,
    mode: Mode,
    min_needed: usize,
) -> Result<Estimate, CoreError> {
    run_with_min_in(profile, config, mode, min_needed, &mut Workspace::new())
}

/// [`run_with_min`] with caller-provided solver buffers and metrics.
pub(crate) fn run_with_min_in(
    profile: &PhaseProfile,
    config: &LocalizerConfig,
    mode: Mode,
    min_needed: usize,
    ws: &mut Workspace,
) -> Result<Estimate, CoreError> {
    let n = profile.len();
    if n < min_needed {
        return Err(CoreError::TooFewMeasurements {
            got: n,
            needed: min_needed,
        });
    }
    let reference = match config.reference_index {
        Some(r) if r < n => r,
        Some(r) => {
            return Err(CoreError::InvalidConfig {
                parameter: "reference_index",
                found: format!("{r} for {n} samples"),
            })
        }
        None => n / 2,
    };
    if !(config.rank_tolerance > 0.0 && config.rank_tolerance < 1.0) {
        return Err(CoreError::InvalidConfig {
            parameter: "rank_tolerance",
            found: format!("{}", config.rank_tolerance),
        });
    }
    let positions = profile.positions();
    let frame = analyze_geometry_small(positions, mode, config.rank_tolerance)?;
    let lower_dimension = frame.spanned < frame.dims;
    let k = frame.spanned;
    profile.delta_distances_into(reference, &mut ws.deltas);

    // Frame coordinates of every sample, **axis-major** into the
    // workspace's reusable buffer: each solved axis is one contiguous
    // lane, streamed from the profile's SoA position lanes — the layout
    // the SIMD row-assembly kernel gathers from.
    let (xs, ys, zs) = (profile.xs(), profile.ys(), profile.zs());
    ws.coords.clear();
    ws.coords.reserve(n * k);
    for axis in frame.axes.iter().take(k) {
        for i in 0..n {
            ws.coords.push(
                (xs[i] - frame.centroid.x) * axis.x
                    + (ys[i] - frame.centroid.y) * axis.y
                    + (zs[i] - frame.centroid.z) * axis.z,
            );
        }
    }
    let pairs_span = lion_obs::span!("lion.pairs");
    let t = Instant::now();
    config.pair_strategy.pairs_into(positions, &mut ws.pairs);
    ws.metrics.pairs_ns += elapsed_ns(t);
    drop(pairs_span);
    let _solve_span = lion_obs::span!("lion.solve");
    let t = Instant::now();
    let Workspace {
        design,
        rhs,
        coords,
        metrics,
        deltas,
        pairs,
        pair_i,
        pair_j,
        solution,
        param_std,
        ne,
        ne_irls,
        cov_diag,
        ..
    } = ws;
    crate::model::build_system_soa(coords, n, k, deltas, pairs, pair_i, pair_j, design, rhs)?;
    let m = design.rows();
    let (mean_residual, weighted_rms, iterations) = match &config.weighting {
        Weighting::Weighted(cfg) => {
            // The weighted hot path solves on the normal equations: the
            // Gram accumulation and Gaussian reweighting run through the
            // `lion_linalg::simd` kernels and the IRLS loop is
            // allocation-free in steady state. It agrees with a QR IRLS
            // route to within the shared stopping tolerance (the Gram
            // conditioning term κ(A)²·ε is far below it for the paper's
            // well-scaled 3–4 column systems).
            ne.set_system(k + 1, design.as_slice(), rhs.as_slice());
            let outcome = lion_linalg::solve_irls_normal(ne, cfg, ne_irls)?;
            normal_param_std(ne, ne_irls, param_std, cov_diag);
            solution.clear();
            solution.extend_from_slice(ne.solution());
            (
                outcome.mean_residual,
                outcome.weighted_rms,
                outcome.iterations,
            )
        }
        Weighting::LeastSquares => {
            // Plain least squares keeps the QR route: better conditioned,
            // and cold enough that its per-solve allocations don't matter.
            let x = lstsq::solve(design, rhs)?;
            let res = lstsq::residuals(design, rhs, &x)?;
            let mean = lion_linalg::stats::mean(&res).unwrap_or(0.0);
            let rms = lion_linalg::stats::rms(&res).unwrap_or(0.0);
            let uniform = vec![1.0; res.len()];
            param_std.clear();
            param_std.extend(parameter_std(design, &res, &uniform));
            solution.clear();
            solution.extend_from_slice(x.as_slice());
            (mean, rms, 0)
        }
    };
    metrics.solve_ns += elapsed_ns(t);
    metrics.solves += 1;
    metrics.irls_iterations += iterations as u64;
    metrics.equations += m as u64;
    drop(_solve_span);

    let (position, position_std) = assemble_position(
        frame.centroid,
        &frame.axes,
        k,
        solution,
        param_std,
        positions[reference],
        lower_dimension,
        config.side_hint,
    )?;
    let d_r = solution[k];

    Ok(Estimate {
        position,
        reference_distance: d_r,
        reference_position: positions[reference],
        mean_residual,
        weighted_rms,
        iterations,
        equation_count: m,
        lower_dimension,
        position_std,
    })
}

/// World-coordinate reconstruction shared by every solve path: rebuilds
/// the position from the frame solution, maps per-parameter standard
/// errors to world axes, and — on lower-dimension trajectories — recovers
/// the perpendicular coordinate from the reference distance (paper
/// Sec. III-C, Observation 2). `axes` must hold at least `k + 1` entries
/// when `lower_dimension` is set (entry `k` is the recovery normal).
#[allow(clippy::too_many_arguments)]
pub(crate) fn assemble_position(
    centroid: Point3,
    axes: &[Vec3],
    k: usize,
    solution: &[f64],
    parameter_std: &[f64],
    reference_position: Point3,
    lower_dimension: bool,
    side_hint: Option<Point3>,
) -> Result<(Point3, Vec3), CoreError> {
    let mut position = centroid;
    for (c, axis) in axes.iter().take(k).enumerate() {
        position = position + *axis * solution[c];
    }
    let d_r = solution[k];
    // Map per-parameter standard errors from frame axes to world axes:
    // var(world_component) = Σ_c (axis_c · e)²·σ_c².
    let position_std = if parameter_std.len() >= k {
        let mut var = [0.0_f64; 3];
        for (c, axis) in axes.iter().take(k).enumerate() {
            let s2 = parameter_std[c] * parameter_std[c];
            var[0] += axis.x * axis.x * s2;
            var[1] += axis.y * axis.y * s2;
            var[2] += axis.z * axis.z * s2;
        }
        Vec3::new(var[0].sqrt(), var[1].sqrt(), var[2].sqrt())
    } else {
        Vec3::new(0.0, 0.0, 0.0)
    };

    if lower_dimension {
        // Recover the perpendicular coordinate from d_r (Observation 2):
        // d_r² = Σ_c (sol_c − ref_c)² + w², reference has w = 0 because it
        // lies on the trajectory subspace.
        let ref_p = reference_position - centroid;
        let mut planar_sq = 0.0;
        for (c, axis) in axes.iter().take(k).enumerate() {
            let rc = ref_p.dot(*axis);
            planar_sq += (solution[c] - rc) * (solution[c] - rc);
        }
        let disc = d_r * d_r - planar_sq;
        // Tolerate slightly negative discriminants from noise.
        let tol = 1e-6 + 0.01 * d_r.abs() * d_r.abs();
        if disc < -tol {
            return Err(CoreError::RecoveryFailed { discriminant: disc });
        }
        let w = disc.max(0.0).sqrt();
        let normal = canonicalize(axes[k]);
        let plus = position + normal * w;
        let minus = position - normal * w;
        position = match side_hint {
            Some(h) => {
                if plus.distance(h) <= minus.distance(h) {
                    plus
                } else {
                    minus
                }
            }
            None => plus,
        };
    }
    Ok((position, position_std))
}

/// Per-parameter standard errors from a solved normal-equation system
/// and its IRLS scratch — the normal-equation analog of the QR pipeline's
/// [`parameter_std`], shared by the batch weighted path, the adaptive
/// sweep's cells, and the incremental delta ticks. Writes the 1σ errors
/// (coordinates then `d_r`) into `param_std`, leaving it empty when the
/// covariance is unavailable (no spare degrees of freedom, degenerate
/// weights, or a singular Gram matrix).
pub(crate) fn normal_param_std(
    ne: &mut NormalEq,
    irls: &NormalIrlsScratch,
    param_std: &mut Vec<f64>,
    cov_diag: &mut Vec<f64>,
) {
    param_std.clear();
    let m = ne.rows();
    let cols = ne.cols();
    if m <= cols {
        return;
    }
    let wsum: f64 = irls.weights().iter().sum();
    // NaN-safe: `>` is false for NaN, so NaN weight sums bail out too.
    let wsum_ok = wsum > 0.0;
    if !wsum_ok {
        return;
    }
    let dof = (m - cols) as f64;
    let sigma2 = irls
        .residuals()
        .iter()
        .zip(irls.weights())
        .map(|(r, w)| w * r * r)
        .sum::<f64>()
        / dof.max(1.0)
        / (wsum / m as f64).max(f64::MIN_POSITIVE);
    if ne.set_weights(irls.weights()).is_ok() && ne.covariance_diag_into(cov_diag).is_ok() {
        param_std.extend(cov_diag.iter().map(|d| (sigma2 * d).max(0.0).sqrt()));
    }
}

/// Diagonal of `σ̂²·(AᵀWA)⁻¹` → per-parameter standard errors.
fn parameter_std(design: &Matrix, residuals: &[f64], weights: &[f64]) -> Vec<f64> {
    let (m, n) = design.shape();
    if m <= n {
        return Vec::new();
    }
    let wsum: f64 = weights.iter().sum();
    // NaN-safe: `>` is false for NaN, so NaN weight sums bail out too.
    let wsum_ok = wsum > 0.0;
    if !wsum_ok {
        return Vec::new();
    }
    // Weighted residual variance with n fitted parameters.
    let dof = (m - n) as f64;
    let sigma2 = residuals
        .iter()
        .zip(weights)
        .map(|(r, w)| w * r * r)
        .sum::<f64>()
        / dof.max(1.0)
        / (wsum / m as f64).max(f64::MIN_POSITIVE);
    let Ok(gram) = design.weighted_gram(weights) else {
        return Vec::new();
    };
    let Ok(inv) = lion_linalg::Lu::decompose(&gram).and_then(|lu| lu.inverse()) else {
        return Vec::new();
    };
    (0..n)
        .map(|i| (sigma2 * inv[(i, i)]).max(0.0).sqrt())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{PI, TAU};

    const LAMBDA: f64 = 299_792_458.0 / 920.625e6;

    /// Noise-free wrapped phase for an antenna at `target`.
    fn phase_of(target: Point3, p: Point3) -> f64 {
        (4.0 * PI * target.distance(p) / LAMBDA).rem_euclid(TAU)
    }

    fn circle_measurements(target: Point3, n: usize, radius: f64) -> Vec<(Point3, f64)> {
        (0..n)
            .map(|i| {
                let a = i as f64 * TAU / n as f64;
                let p = Point3::new(radius * a.cos(), radius * a.sin(), 0.0);
                (p, phase_of(target, p))
            })
            .collect()
    }

    fn clean_config() -> LocalizerConfig {
        LocalizerConfig {
            smoothing_window: 1,
            pair_strategy: PairStrategy::Interval { interval: 0.15 },
            ..LocalizerConfig::default()
        }
    }

    #[test]
    fn locates_antenna_from_circular_scan_2d() {
        // Paper Fig. 6 geometry: circle radius 0.3, antenna at 1 m.
        for target in [
            Point3::new(1.0, 0.0, 0.0),
            Point3::new(
                std::f64::consts::FRAC_1_SQRT_2,
                std::f64::consts::FRAC_1_SQRT_2,
                0.0,
            ),
            Point3::new(0.0, 1.0, 0.0),
        ] {
            let m = circle_measurements(target, 300, 0.3);
            let est = Localizer2d::new(clean_config()).locate(&m).unwrap();
            assert!(
                est.distance_error(target) < 1e-6,
                "target {target}: error {}",
                est.distance_error(target)
            );
            assert!(!est.lower_dimension);
            assert!(est.mean_residual.abs() < 1e-9);
        }
    }

    #[test]
    fn locates_antenna_from_linear_scan_2d_lower_dimension() {
        // Paper Fig. 9 geometry: tag on x ∈ [−0.3, 0.3], antenna (0.2, 1).
        let target = Point3::new(0.2, 1.0, 0.0);
        let m: Vec<(Point3, f64)> = (0..240)
            .map(|i| {
                let x = -0.3 + i as f64 * 0.0025;
                let p = Point3::new(x, 0.0, 0.0);
                (p, phase_of(target, p))
            })
            .collect();
        let mut cfg = clean_config();
        cfg.side_hint = Some(Point3::new(0.0, 0.5, 0.0));
        let est = Localizer2d::new(cfg).locate(&m).unwrap();
        assert!(est.lower_dimension);
        assert!(
            est.distance_error(target) < 1e-6,
            "error {}",
            est.distance_error(target)
        );
    }

    #[test]
    fn diagonal_linear_track_uses_rotated_frame() {
        // A 45°-slanted track: the lower-dimension path must build its
        // frame from the principal direction, not an axis.
        let target = Point3::new(0.5, 1.2, 0.0);
        let dir = (1.0_f64 / 2.0_f64.sqrt(), 1.0 / 2.0_f64.sqrt());
        let m: Vec<(Point3, f64)> = (0..300)
            .map(|i| {
                let s = -0.4 + i as f64 * (0.8 / 299.0);
                let p = Point3::new(s * dir.0, s * dir.1, 0.0);
                (p, phase_of(target, p))
            })
            .collect();
        let mut cfg = clean_config();
        cfg.side_hint = Some(Point3::new(0.0, 1.0, 0.0));
        let est = Localizer2d::new(cfg).locate(&m).unwrap();
        assert!(est.lower_dimension);
        assert!(
            est.distance_error(target) < 1e-6,
            "error {}",
            est.distance_error(target)
        );
    }

    #[test]
    fn tilted_plane_3d_recovery() {
        // Circular scan in a plane tilted 30° about the x-axis; the
        // recovery normal is no longer a coordinate axis.
        let tilt = 30.0_f64.to_radians();
        let target = Point3::new(0.1, 0.3, 0.9);
        let m: Vec<(Point3, f64)> = (0..300)
            .map(|i| {
                let a = i as f64 * TAU / 300.0;
                let (u, v) = (0.35 * a.cos(), 0.35 * a.sin());
                // Plane basis: e1 = x, e2 = cos(t)·y + sin(t)·z.
                let p = Point3::new(u, v * tilt.cos(), v * tilt.sin());
                (p, phase_of(target, p))
            })
            .collect();
        let mut cfg = clean_config();
        cfg.side_hint = Some(target);
        let est = Localizer3d::new(cfg).locate(&m).unwrap();
        assert!(est.lower_dimension);
        assert!(
            est.distance_error(target) < 1e-5,
            "error {}",
            est.distance_error(target)
        );
    }

    #[test]
    fn mirror_solution_follows_hint() {
        let target = Point3::new(0.1, -0.9, 0.0); // antenna on the NEGATIVE y side
        let m: Vec<(Point3, f64)> = (0..200)
            .map(|i| {
                let x = -0.4 + i as f64 * 0.004;
                let p = Point3::new(x, 0.0, 0.0);
                (p, phase_of(target, p))
            })
            .collect();
        let mut cfg = clean_config();
        cfg.side_hint = Some(Point3::new(0.0, -0.5, 0.0));
        let est = Localizer2d::new(cfg).locate(&m).unwrap();
        assert!(est.distance_error(target) < 1e-6);
        // Without a hint the positive-y mirror is returned.
        let mut cfg = clean_config();
        cfg.side_hint = None;
        let est = Localizer2d::new(cfg).locate(&m).unwrap();
        let mirror = Point3::new(0.1, 0.9, 0.0);
        assert!(est.distance_error(mirror) < 1e-6);
    }

    #[test]
    fn locates_antenna_3d_from_three_line_scan() {
        let target = Point3::new(0.1, 0.8, 0.15);
        let scan = lion_geom::ThreeLineScan::new(-0.4, 0.4, 0.2, 0.2).unwrap();
        // Sample along the continuous serpentine path (the paper's "move
        // the tag from the end of one line to the start of the next") so
        // unwrapping stays consistent across lines.
        use lion_geom::Trajectory;
        let m: Vec<(Point3, f64)> = scan
            .to_path()
            .sample(0.1, 50.0)
            .into_iter()
            .map(|w| (w.position, phase_of(target, w.position)))
            .collect();
        let mut cfg = clean_config();
        cfg.pair_strategy = PairStrategy::StructuredScan {
            scan,
            x_interval: 0.2,
            tolerance: 0.003,
        };
        let est = Localizer3d::new(cfg).locate(&m).unwrap();
        assert!(
            est.distance_error(target) < 1e-6,
            "error {}",
            est.distance_error(target)
        );
        assert!(!est.lower_dimension);
    }

    #[test]
    fn locates_antenna_3d_from_planar_circle_with_recovery() {
        // Circular trajectory in the z=0 plane, antenna above it.
        let target = Point3::new(0.2, 0.3, 0.7);
        let m = circle_measurements(target, 300, 0.4);
        let mut cfg = clean_config();
        cfg.side_hint = Some(Point3::new(0.0, 0.0, 0.5));
        let est = Localizer3d::new(cfg).locate(&m).unwrap();
        assert!(est.lower_dimension);
        assert!(
            est.distance_error(target) < 1e-6,
            "error {}",
            est.distance_error(target)
        );
    }

    #[test]
    fn single_line_cannot_do_3d() {
        let target = Point3::new(0.0, 1.0, 0.2);
        let m: Vec<(Point3, f64)> = (0..100)
            .map(|i| {
                let p = Point3::new(i as f64 * 0.01, 0.0, 0.0);
                (p, phase_of(target, p))
            })
            .collect();
        let err = Localizer3d::new(clean_config()).locate(&m).unwrap_err();
        assert!(matches!(err, CoreError::DegenerateGeometry { .. }));
    }

    #[test]
    fn coincident_positions_rejected() {
        let m: Vec<(Point3, f64)> = (0..10).map(|_| (Point3::ORIGIN, 0.3)).collect();
        let err = Localizer2d::new(clean_config()).locate(&m).unwrap_err();
        assert!(matches!(err, CoreError::DegenerateGeometry { .. }));
    }

    #[test]
    fn too_few_measurements_rejected() {
        let m = vec![(Point3::ORIGIN, 0.0), (Point3::new(0.1, 0.0, 0.0), 0.1)];
        assert!(matches!(
            Localizer2d::new(clean_config()).locate(&m),
            Err(CoreError::TooFewMeasurements { .. })
        ));
    }

    #[test]
    fn invalid_reference_index_rejected() {
        let target = Point3::new(0.5, 0.5, 0.0);
        let m = circle_measurements(target, 50, 0.3);
        let mut cfg = clean_config();
        cfg.reference_index = Some(999);
        assert!(matches!(
            Localizer2d::new(cfg).locate(&m),
            Err(CoreError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn invalid_rank_tolerance_rejected() {
        let m = circle_measurements(Point3::new(0.5, 0.5, 0.0), 50, 0.3);
        let mut cfg = clean_config();
        cfg.rank_tolerance = 0.0;
        assert!(Localizer2d::new(cfg).locate(&m).is_err());
    }

    #[test]
    fn pair_interval_too_large_yields_no_pairs() {
        let m = circle_measurements(Point3::new(0.5, 0.5, 0.0), 50, 0.1);
        let mut cfg = clean_config();
        cfg.pair_strategy = PairStrategy::Interval { interval: 5.0 };
        assert!(matches!(
            Localizer2d::new(cfg).locate(&m),
            Err(CoreError::NoPairs)
        ));
    }

    #[test]
    fn weighted_and_plain_agree_on_clean_data() {
        let target = Point3::new(0.6, 0.7, 0.0);
        let m = circle_measurements(target, 200, 0.3);
        let mut cfg_ls = clean_config();
        cfg_ls.weighting = Weighting::LeastSquares;
        let e_ls = Localizer2d::new(cfg_ls).locate(&m).unwrap();
        let e_wls = Localizer2d::new(clean_config()).locate(&m).unwrap();
        assert!(e_ls.position.distance(e_wls.position) < 1e-8);
        assert_eq!(e_ls.iterations, 0);
    }

    #[test]
    fn estimate_reports_metadata() {
        let target = Point3::new(0.5, 0.8, 0.0);
        let m = circle_measurements(target, 100, 0.3);
        let est = Localizer2d::new(clean_config()).locate(&m).unwrap();
        assert!(est.equation_count > 0);
        assert!(est.reference_distance > 0.0);
        // d_r matches the true distance to the reference position.
        let true_dr = target.distance(est.reference_position);
        assert!((est.reference_distance - true_dr).abs() < 1e-6);
    }

    #[test]
    fn wrapped_input_is_unwrapped_internally() {
        // Same as the circular test but with a noisy-free profile whose
        // phases wrap dozens of times — locate() must handle it.
        let target = Point3::new(1.0, 0.2, 0.0);
        let m = circle_measurements(target, 400, 0.3);
        // Count wraps to make sure the test is meaningful.
        let mut wraps = 0;
        for w in m.windows(2) {
            if (w[1].1 - w[0].1).abs() > PI {
                wraps += 1;
            }
        }
        assert!(wraps > 2, "test should exercise unwrapping, wraps={wraps}");
        let est = Localizer2d::new(clean_config()).locate(&m).unwrap();
        assert!(est.distance_error(target) < 1e-6);
    }

    #[test]
    fn position_std_reflects_noise_level() {
        // Deterministic pseudo-Gaussian noise via a simple LCG.
        let mut state: u64 = 0x12345678;
        let mut gauss = move || {
            let mut s = 0.0;
            for _ in 0..12 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                s += (state >> 11) as f64 / (1u64 << 53) as f64;
            }
            s - 6.0 // Irwin-Hall ≈ N(0, 1)
        };
        let target = Point3::new(0.4, 0.9, 0.0);
        let clean = circle_measurements(target, 300, 0.3);
        let noisy: Vec<(Point3, f64)> = clean
            .iter()
            .map(|&(p, t)| (p, (t + 0.1 * gauss()).rem_euclid(TAU)))
            .collect();
        let clean_est = Localizer2d::new(clean_config()).locate(&clean).unwrap();
        let noisy_est = Localizer2d::new(clean_config()).locate(&noisy).unwrap();
        // Clean data: negligible uncertainty.
        assert!(clean_est.position_std.norm() < 1e-6);
        // Noisy data: uncertainty reported, and consistent with the actual
        // error (within a generous 6σ).
        let sigma = noisy_est.position_std.norm();
        assert!(sigma > 1e-5, "std {sigma}");
        assert!(
            noisy_est.distance_error(target) < 6.0 * sigma + 1e-4,
            "error {} vs sigma {}",
            noisy_est.distance_error(target),
            sigma
        );
        // The 2D solve leaves z untouched: zero uncertainty there.
        assert_eq!(noisy_est.position_std.z, 0.0);
    }

    #[test]
    fn canonicalize_orients_normals() {
        assert_eq!(
            canonicalize(Vec3::new(0.0, 0.0, -1.0)),
            Vec3::new(0.0, 0.0, 1.0)
        );
        assert_eq!(
            canonicalize(Vec3::new(0.0, -1.0, 0.0)),
            Vec3::new(0.0, 1.0, 0.0)
        );
        assert_eq!(
            canonicalize(Vec3::new(-1.0, 0.0, 0.0)),
            Vec3::new(1.0, 0.0, 0.0)
        );
        assert_eq!(
            canonicalize(Vec3::new(0.5, 0.5, 0.5)),
            Vec3::new(0.5, 0.5, 0.5)
        );
    }
}
