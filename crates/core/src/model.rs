//! The linear localization model: turning sample pairs into the
//! least-squares system `𝓐·𝓧 = 𝓚` (paper Eqs. 7, 9, 12).
//!
//! For a pair of tag positions `Tᵢ, Tⱼ` with distance differences
//! `Δdᵢ, Δdⱼ` relative to the common reference sample, substituting
//! `d_t = d_r + Δd_t` (Eq. 6) into the radical-line equation (Eq. 5) and
//! expanding `d² = d_r² + 2·d_r·Δd + Δd²` cancels the quadratic `d_r²`
//! term and leaves one linear equation per pair:
//!
//! ```text
//! Σ_c 2(c_i − c_j)·c  +  2(Δdᵢ − Δdⱼ)·d_r  =  Σ_c (c_i² − c_j²) − Δdᵢ² + Δdⱼ²
//! ```
//!
//! over the coordinates `c` (x, y in 2D; x, y, z in 3D) plus the unknown
//! reference distance `d_r`.

use lion_linalg::{Matrix, Vector};

use crate::error::CoreError;

/// Builds the design matrix and right-hand side from per-sample coordinates
/// and distance differences.
///
/// `coords` is row-major `n × k` (`k` solvable coordinates per sample, in
/// whatever frame the caller chose); `deltas` has length `n`. Each pair
/// `(i, j)` becomes one row with `k + 1` columns — the coordinates then
/// `d_r`.
///
/// # Errors
///
/// - [`CoreError::InvalidConfig`] when buffer sizes disagree or `k == 0`,
/// - [`CoreError::NoPairs`] when `pairs` is empty,
/// - [`CoreError::TooFewMeasurements`] when there are fewer pairs than
///   unknowns (`k + 1`),
/// - [`CoreError::InvalidConfig`] when a pair index is out of bounds.
pub fn build_system(
    coords: &[f64],
    k: usize,
    deltas: &[f64],
    pairs: &[(usize, usize)],
) -> Result<(Matrix, Vector), CoreError> {
    let mut design = Matrix::zeros(0, 0);
    let mut rhs = Vector::zeros(0);
    build_system_into(coords, k, deltas, pairs, &mut design, &mut rhs)?;
    Ok((design, rhs))
}

/// [`build_system`] into caller-provided buffers, reusing their
/// allocations.
///
/// `design` and `rhs` are resized in place and fully overwritten. This is
/// the entry point the per-worker [`crate::Workspace`] drives: a batch of
/// solves reuses one design matrix instead of allocating per solve.
///
/// # Errors
///
/// Same as [`build_system`]; on error the buffer contents are unspecified.
pub fn build_system_into(
    coords: &[f64],
    k: usize,
    deltas: &[f64],
    pairs: &[(usize, usize)],
    design: &mut Matrix,
    rhs: &mut Vector,
) -> Result<(), CoreError> {
    if k == 0 {
        return Err(CoreError::InvalidConfig {
            parameter: "k",
            found: "0".to_string(),
        });
    }
    if !coords.len().is_multiple_of(k) || coords.len() / k != deltas.len() {
        return Err(CoreError::InvalidConfig {
            parameter: "coords/deltas",
            found: format!("{} coords (k={k}) vs {} deltas", coords.len(), deltas.len()),
        });
    }
    if pairs.is_empty() {
        return Err(CoreError::NoPairs);
    }
    let n = deltas.len();
    if pairs.len() < k + 1 {
        return Err(CoreError::TooFewMeasurements {
            got: pairs.len(),
            needed: k + 1,
        });
    }
    design.reset_zeroed(pairs.len(), k + 1);
    rhs.reset_zeroed(pairs.len());
    for (row, &(i, j)) in pairs.iter().enumerate() {
        if i >= n || j >= n {
            return Err(CoreError::InvalidConfig {
                parameter: "pairs",
                found: format!("pair ({i}, {j}) out of bounds for {n} samples"),
            });
        }
        let mut kappa = 0.0;
        for c in 0..k {
            let ci = coords[i * k + c];
            let cj = coords[j * k + c];
            design[(row, c)] = 2.0 * (ci - cj);
            kappa += ci * ci - cj * cj;
        }
        design[(row, k)] = 2.0 * (deltas[i] - deltas[j]);
        kappa -= deltas[i] * deltas[i] - deltas[j] * deltas[j];
        rhs[row] = kappa;
    }
    Ok(())
}

/// [`build_system_into`] over **axis-major** coordinates, assembled by
/// the runtime-dispatched `lion_linalg::simd` row kernel.
///
/// `coords` is `k × n` axis-major (`coords[c * n + i]` is coordinate `c`
/// of sample `i`) — each frame axis is one contiguous lane, which is what
/// lets the kernel gather both pair endpoints with vector loads. The
/// caller-owned `pair_i`/`pair_j` lanes are refilled from `pairs` (after
/// bounds validation, so the `i32` narrowing is always exact). Validation
/// and row arithmetic mirror [`build_system_into`] operation for
/// operation; for identical inputs the produced system is bit-identical.
///
/// # Errors
///
/// Same as [`build_system`]; on error the buffer contents are
/// unspecified.
#[allow(clippy::too_many_arguments)]
pub fn build_system_soa(
    coords: &[f64],
    n: usize,
    k: usize,
    deltas: &[f64],
    pairs: &[(usize, usize)],
    pair_i: &mut Vec<i32>,
    pair_j: &mut Vec<i32>,
    design: &mut Matrix,
    rhs: &mut Vector,
) -> Result<(), CoreError> {
    if k == 0 {
        return Err(CoreError::InvalidConfig {
            parameter: "k",
            found: "0".to_string(),
        });
    }
    if coords.len() != n * k || deltas.len() != n {
        return Err(CoreError::InvalidConfig {
            parameter: "coords/deltas",
            found: format!("{} coords (k={k}) vs {} deltas", coords.len(), deltas.len()),
        });
    }
    if pairs.is_empty() {
        return Err(CoreError::NoPairs);
    }
    if pairs.len() < k + 1 {
        return Err(CoreError::TooFewMeasurements {
            got: pairs.len(),
            needed: k + 1,
        });
    }
    pair_i.clear();
    pair_j.clear();
    pair_i.reserve(pairs.len());
    pair_j.reserve(pairs.len());
    for &(i, j) in pairs {
        if i >= n || j >= n {
            return Err(CoreError::InvalidConfig {
                parameter: "pairs",
                found: format!("pair ({i}, {j}) out of bounds for {n} samples"),
            });
        }
        pair_i.push(i as i32);
        pair_j.push(j as i32);
    }
    design.reset_zeroed(pairs.len(), k + 1);
    rhs.reset_zeroed(pairs.len());
    lion_linalg::simd::radical_rows(
        coords,
        n,
        k,
        deltas,
        pair_i,
        pair_j,
        design.as_mut_slice(),
        rhs.as_mut_slice(),
    );
    Ok(())
}

/// Verifies analytically that the true target satisfies the generated
/// equations (used by tests and debug assertions): returns the maximum
/// absolute equation violation at the given solution.
pub fn max_violation(design: &Matrix, rhs: &Vector, solution: &Vector) -> f64 {
    match design.mul_vector(solution) {
        Ok(ax) => ax
            .as_slice()
            .iter()
            .zip(rhs.as_slice())
            .fold(0.0_f64, |m, (a, b)| m.max((a - b).abs())),
        Err(_) => f64::INFINITY,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lion_geom::Point3;

    /// Builds exact coords/deltas for an antenna at `target` and returns
    /// the system plus the expected solution.
    fn exact_system_2d(
        target: Point3,
        tags: &[Point3],
        reference: usize,
    ) -> (Matrix, Vector, Vector) {
        let d_ref = target.distance(tags[reference]);
        let deltas: Vec<f64> = tags.iter().map(|t| target.distance(*t) - d_ref).collect();
        let coords: Vec<f64> = tags.iter().flat_map(|t| [t.x, t.y]).collect();
        let pairs: Vec<(usize, usize)> = (0..tags.len() - 1).map(|i| (i, i + 1)).collect();
        let (a, k) = build_system(&coords, 2, &deltas, &pairs).unwrap();
        let expect = Vector::from_slice(&[target.x, target.y, d_ref]);
        (a, k, expect)
    }

    #[test]
    fn exact_solution_satisfies_equations_2d() {
        let target = Point3::new(0.5, 0.8, 0.0);
        let tags: Vec<Point3> = (0..8)
            .map(|i| {
                let a = i as f64 * 0.7;
                Point3::new(0.3 * a.cos(), 0.3 * a.sin(), 0.0)
            })
            .collect();
        let (a, k, expect) = exact_system_2d(target, &tags, 0);
        assert!(max_violation(&a, &k, &expect) < 1e-12);
    }

    #[test]
    fn solving_exact_system_recovers_target_2d() {
        let target = Point3::new(-0.2, 1.1, 0.0);
        let tags: Vec<Point3> = (0..10)
            .map(|i| {
                let a = i as f64 * 0.6;
                Point3::new(0.25 * a.cos() + 0.05, 0.25 * a.sin() - 0.1, 0.0)
            })
            .collect();
        let (a, k, expect) = exact_system_2d(target, &tags, 0);
        let sol = lion_linalg::lstsq::solve(&a, &k).unwrap();
        for (s, e) in sol.as_slice().iter().zip(expect.as_slice()) {
            assert!((s - e).abs() < 1e-9, "{s} vs {e}");
        }
    }

    #[test]
    fn exact_solution_3d() {
        let target = Point3::new(0.1, 0.9, 0.3);
        let tags: Vec<Point3> = (0..12)
            .map(|i| {
                let a = i as f64 * 0.5;
                Point3::new(0.3 * a.cos(), 0.3 * a.sin(), 0.05 * i as f64)
            })
            .collect();
        let reference = 3;
        let d_ref = target.distance(tags[reference]);
        let deltas: Vec<f64> = tags.iter().map(|t| target.distance(*t) - d_ref).collect();
        let coords: Vec<f64> = tags.iter().flat_map(|t| [t.x, t.y, t.z]).collect();
        let pairs: Vec<(usize, usize)> = (0..tags.len() - 1).map(|i| (i, i + 1)).collect();
        let (a, k) = build_system(&coords, 3, &deltas, &pairs).unwrap();
        let sol = lion_linalg::lstsq::solve(&a, &k).unwrap();
        let expect = [target.x, target.y, target.z, d_ref];
        for (s, e) in sol.as_slice().iter().zip(expect) {
            assert!((s - e).abs() < 1e-8, "{s} vs {e}");
        }
    }

    #[test]
    fn one_dimensional_frame_solves_u_and_dr() {
        // Collinear tags: solve only [u, d_r] in the track frame.
        let target = Point3::new(0.2, 1.0, 0.0); // u* = 0.2, perpendicular 1.0
        let us: Vec<f64> = (0..30).map(|i| -0.3 + i as f64 * 0.02).collect();
        let tags: Vec<Point3> = us.iter().map(|&u| Point3::new(u, 0.0, 0.0)).collect();
        let reference = 15;
        let d_ref = target.distance(tags[reference]);
        let deltas: Vec<f64> = tags.iter().map(|t| target.distance(*t) - d_ref).collect();
        let pairs: Vec<(usize, usize)> = (0..20).map(|i| (i, i + 10)).collect();
        let (a, k) = build_system(&us, 1, &deltas, &pairs).unwrap();
        let sol = lion_linalg::lstsq::solve(&a, &k).unwrap();
        assert!((sol[0] - 0.2).abs() < 1e-9, "u {}", sol[0]);
        assert!((sol[1] - d_ref).abs() < 1e-9, "d_r {}", sol[1]);
        // Perpendicular recovery: v = √(d_r² − (u − u_ref)²).
        let v = (sol[1] * sol[1] - (sol[0] - us[reference]).powi(2)).sqrt();
        assert!((v - 1.0).abs() < 1e-9);
    }

    #[test]
    fn validation_errors() {
        assert!(matches!(
            build_system(&[], 0, &[], &[(0, 1)]),
            Err(CoreError::InvalidConfig { parameter: "k", .. })
        ));
        assert!(matches!(
            build_system(&[1.0, 2.0, 3.0], 2, &[0.0], &[(0, 1)]),
            Err(CoreError::InvalidConfig { .. })
        ));
        assert!(matches!(
            build_system(&[1.0, 2.0], 1, &[0.0, 0.1], &[]),
            Err(CoreError::NoPairs)
        ));
        assert!(matches!(
            build_system(&[1.0, 2.0], 1, &[0.0, 0.1], &[(0, 1)]),
            Err(CoreError::TooFewMeasurements { needed: 2, .. })
        ));
        assert!(matches!(
            build_system(&[1.0, 2.0], 1, &[0.0, 0.1], &[(0, 5), (0, 1)]),
            Err(CoreError::InvalidConfig {
                parameter: "pairs",
                ..
            })
        ));
    }

    #[test]
    fn max_violation_detects_wrong_solution() {
        let target = Point3::new(0.5, 0.8, 0.0);
        let tags: Vec<Point3> = (0..6)
            .map(|i| {
                let a = i as f64;
                Point3::new(0.3 * a.cos(), 0.3 * a.sin(), 0.0)
            })
            .collect();
        let (a, k, expect) = exact_system_2d(target, &tags, 0);
        let mut wrong = expect.clone();
        wrong[0] += 0.1;
        assert!(max_violation(&a, &k, &wrong) > 1e-3);
        // Dimension mismatch returns infinity rather than panicking.
        assert!(max_violation(&a, &k, &Vector::zeros(1)).is_infinite());
    }
}
