//! Bounded-memory sliding windows over a live read stream.
//!
//! Offline entry points ([`crate::Localizer2d::locate`]) consume a whole
//! trace at once. A deployed reader instead produces one read at a time,
//! indefinitely — the online pipeline keeps only the most recent reads in
//! a [`SlidingWindow`]: a time-ordered ring buffer with a hard capacity,
//! so an arbitrary-length trace runs in O(window) memory.
//!
//! The window stores each sample's **wrapped** phase (exactly as the
//! reader reported it) alongside an incrementally maintained unwrapped
//! phase. Solves use the wrapped phases: [`crate::locate_window_in`]
//! replays the window through the exact same unwrap → smooth → pairs →
//! solve path as the batch `locate`, so a streaming solve on a static
//! window is **bit-identical** to the batch solver on the same reads.
//! That full replay remains the parity oracle; an
//! [`crate::IncrementalState`] can instead consume the window's
//! [`WindowDelta`] (see [`SlidingWindow::take_slide_delta`]) to re-solve
//! in O(delta) per tick — see DESIGN.md §"Streaming calibration" and
//! §"Incremental re-solve" for the numerical tradeoff.
//!
//! Out-of-order arrival is handled by timestamp-sorted insertion: a late
//! read is spliced into its time slot (so the window always equals the
//! re-sorted trace), and a read older than everything a full window
//! retains is rejected as too late.

use std::collections::VecDeque;

use lion_geom::Point3;

use crate::error::CoreError;
use crate::preprocess;

/// One read held by a [`SlidingWindow`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowSample {
    /// Read timestamp (seconds, the stream's own clock).
    pub time: f64,
    /// Tag position at the moment of the read.
    pub position: Point3,
    /// The phase exactly as reported, in `[0, 2π)` — what solves consume.
    pub wrapped: f64,
    /// Incrementally unwrapped phase (relative to the window's oldest
    /// sample); a cheap continuity diagnostic, not used by the solver.
    pub unwrapped: f64,
}

/// What [`SlidingWindow::push`] did with a read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// Inserted; the window had room.
    Inserted,
    /// Inserted; the oldest sample was evicted to make room.
    Evicted,
    /// Rejected: the read is older than everything a full window retains.
    TooLate,
}

/// How the window's contents changed since the last
/// [`SlidingWindow::take_slide_delta`] call — the contract an
/// incremental re-solver consumes instead of replaying the whole window.
///
/// The common streaming shape is pure sliding: `evicted` reads left the
/// front, `appended` reads joined the back, nothing moved in between.
/// `spliced` flags everything else — an out-of-order read inserted into
/// the middle, or a [`SlidingWindow::clear`] — after which positional
/// bookkeeping from the previous tick is void and the consumer must fall
/// back to a full replay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowDelta {
    /// Reads accepted since the last delta take (all at the back unless
    /// `spliced`).
    pub appended: usize,
    /// Reads evicted from the front since the last delta take.
    pub evicted: usize,
    /// Set when an accepted read landed anywhere but the back, or the
    /// window was cleared: the slide model above does not hold.
    pub spliced: bool,
}

/// A bounded, time-ordered ring buffer of phase reads.
///
/// # Example
///
/// ```
/// use lion_core::window::{PushOutcome, SlidingWindow};
/// use lion_geom::Point3;
///
/// # fn main() -> Result<(), lion_core::CoreError> {
/// let mut w = SlidingWindow::new(3)?;
/// for i in 0..5 {
///     w.push(i as f64, Point3::new(i as f64 * 0.01, 0.0, 0.0), 0.1 * i as f64);
/// }
/// assert_eq!(w.len(), 3);
/// assert_eq!(w.evicted(), 2);
/// // A read older than the retained span of a full window is rejected.
/// assert_eq!(w.push(0.5, Point3::ORIGIN, 0.0), PushOutcome::TooLate);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    samples: VecDeque<WindowSample>,
    capacity: usize,
    evicted: u64,
    rejected_late: u64,
    pending: WindowDelta,
}

impl SlidingWindow {
    /// Creates a window holding at most `capacity` reads.
    ///
    /// The backing buffer is allocated once, up front; pushes never
    /// reallocate, which is what keeps unbounded streams in O(window)
    /// memory.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] when `capacity` is zero.
    pub fn new(capacity: usize) -> Result<Self, CoreError> {
        if capacity == 0 {
            return Err(CoreError::InvalidConfig {
                parameter: "window_capacity",
                found: "0".to_string(),
            });
        }
        Ok(SlidingWindow {
            samples: VecDeque::with_capacity(capacity),
            capacity,
            evicted: 0,
            rejected_late: 0,
            pending: WindowDelta::default(),
        })
    }

    /// Maximum number of reads retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Allocated slots of the backing buffer — exposed so tests can pin
    /// the O(window) memory guarantee (it must not grow after warm-up).
    pub fn backing_capacity(&self) -> usize {
        self.samples.capacity()
    }

    /// Reads currently held.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` when no reads are held.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Returns `true` when the window is at capacity (pushes evict).
    pub fn is_full(&self) -> bool {
        self.samples.len() == self.capacity
    }

    /// Total reads evicted to make room since construction.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Total reads rejected as too late since construction.
    pub fn rejected_late(&self) -> u64 {
        self.rejected_late
    }

    /// Time span covered by the window (newest − oldest timestamp), the
    /// online analogue of the paper's *scanning range*; 0 when fewer than
    /// two reads are held.
    pub fn span(&self) -> f64 {
        match (self.samples.front(), self.samples.back()) {
            (Some(a), Some(b)) => b.time - a.time,
            _ => 0.0,
        }
    }

    /// The held samples, oldest first.
    pub fn samples(&self) -> impl Iterator<Item = &WindowSample> {
        self.samples.iter()
    }

    /// The sample at index `i` (0 = oldest), or `None` past the end.
    pub fn sample(&self, i: usize) -> Option<&WindowSample> {
        self.samples.get(i)
    }

    /// Returns the changes accumulated since the previous call and resets
    /// the accounting, so consecutive calls describe disjoint spans of
    /// stream history. A fresh window reports an all-zero delta.
    ///
    /// Rejected reads ([`PushOutcome::TooLate`]) never appear in a delta —
    /// they did not change the window.
    pub fn take_slide_delta(&mut self) -> WindowDelta {
        std::mem::take(&mut self.pending)
    }

    /// Inserts a read in timestamp order, evicting the oldest read when
    /// full. A read with a non-finite field, or older than everything a
    /// full window retains, is rejected (the latter as
    /// [`PushOutcome::TooLate`]). Ties insert after existing equal
    /// timestamps, so in-order delivery is never reordered.
    pub fn push(&mut self, time: f64, position: Point3, wrapped: f64) -> PushOutcome {
        if !time.is_finite() || !position.is_finite() || !wrapped.is_finite() {
            self.rejected_late += 1;
            return PushOutcome::TooLate;
        }
        let mut evicted_now = false;
        if self.is_full() {
            if let Some(front) = self.samples.front() {
                if time < front.time {
                    self.rejected_late += 1;
                    return PushOutcome::TooLate;
                }
            }
            // Evict BEFORE inserting so the backing buffer never exceeds
            // `capacity` elements and therefore never reallocates.
            self.samples.pop_front();
            self.evicted += 1;
            self.pending.evicted += 1;
            evicted_now = true;
        }
        // Insertion index: after every sample with time <= new time.
        // Streams are overwhelmingly in-order, so scan from the back.
        let mut idx = self.samples.len();
        while idx > 0 && self.samples[idx - 1].time > time {
            idx -= 1;
        }
        self.pending.appended += 1;
        if idx < self.samples.len() {
            self.pending.spliced = true;
        }
        self.samples.insert(
            idx,
            WindowSample {
                time,
                position,
                wrapped,
                unwrapped: wrapped, // fixed up below
            },
        );
        // An eviction re-anchors the whole unwrap chain; an in-window
        // insert only invalidates the tail from the insertion point.
        self.reunwrap_from(if evicted_now { 0 } else { idx });
        if evicted_now {
            PushOutcome::Evicted
        } else {
            PushOutcome::Inserted
        }
    }

    /// Recomputes the incremental unwrapped phases from `start` to the
    /// newest sample. In-order pushes hit this with `start = len − 1`
    /// (O(1)); an out-of-order splice or an eviction re-anchors the tail.
    fn reunwrap_from(&mut self, start: usize) {
        let n = self.samples.len();
        for i in start..n {
            if i == 0 {
                let s = &mut self.samples[0];
                s.unwrapped = s.wrapped;
                continue;
            }
            let prev = self.samples[i - 1];
            let s = &mut self.samples[i];
            let mut jump = s.wrapped - prev.wrapped;
            while jump >= std::f64::consts::PI {
                jump -= std::f64::consts::TAU;
            }
            while jump < -std::f64::consts::PI {
                jump += std::f64::consts::TAU;
            }
            s.unwrapped = prev.unwrapped + jump;
        }
    }

    /// Writes the window's `(position, wrapped phase)` measurements —
    /// oldest first — into `out` (cleared first). This is exactly the
    /// list the batch entry points accept, which is what makes streaming
    /// solves bit-identical to [`crate::Localizer2d::locate`] on the same
    /// window.
    pub fn write_measurements_into(&self, out: &mut Vec<(Point3, f64)>) {
        out.clear();
        out.extend(self.samples.iter().map(|s| (s.position, s.wrapped)));
    }

    /// Writes the window's reads — oldest first — into SoA staging lanes
    /// (cleared first): timestamps, the three position axes, and wrapped
    /// phases each contiguous. The lane-wise counterpart of
    /// [`SlidingWindow::write_measurements_into`], feeding the SIMD
    /// preprocessing kernels; both stage the same samples in the same
    /// order, so the two routes solve bit-identically.
    pub(crate) fn write_soa_into(&self, out: &mut crate::workspace::SampleSoa) {
        out.clear();
        for s in &self.samples {
            out.ts.push(s.time);
            out.xs.push(s.position.x);
            out.ys.push(s.position.y);
            out.zs.push(s.position.z);
            out.phases.push(s.wrapped);
        }
    }

    /// Builds a [`preprocess::PhaseProfile`] from the window's
    /// incrementally unwrapped phases (diagnostics; solves go through
    /// [`SlidingWindow::write_measurements_into`] instead).
    ///
    /// # Errors
    ///
    /// See [`preprocess::PhaseProfile::from_unwrapped`].
    pub fn to_profile(&self, wavelength: f64) -> Result<preprocess::PhaseProfile, CoreError> {
        preprocess::PhaseProfile::from_unwrapped(
            self.samples.iter().map(|s| s.position).collect(),
            self.samples.iter().map(|s| s.unwrapped).collect(),
            wavelength,
        )
    }

    /// Drops every held read (counters are kept). The pending
    /// [`WindowDelta`] is marked spliced: positional bookkeeping from
    /// before the clear no longer describes the window.
    pub fn clear(&mut self) {
        self.samples.clear();
        self.pending.spliced = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::TAU;

    fn p(x: f64) -> Point3 {
        Point3::new(x, 0.0, 0.0)
    }

    #[test]
    fn zero_capacity_rejected() {
        assert!(matches!(
            SlidingWindow::new(0),
            Err(CoreError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn push_evicts_oldest_beyond_capacity() {
        let mut w = SlidingWindow::new(4).unwrap();
        for i in 0..10 {
            let out = w.push(i as f64, p(i as f64), 0.0);
            if i < 4 {
                assert_eq!(out, PushOutcome::Inserted);
            } else {
                assert_eq!(out, PushOutcome::Evicted);
            }
        }
        assert_eq!(w.len(), 4);
        assert_eq!(w.evicted(), 6);
        let times: Vec<f64> = w.samples().map(|s| s.time).collect();
        assert_eq!(times, vec![6.0, 7.0, 8.0, 9.0]);
    }

    #[test]
    fn out_of_order_insertion_sorts_by_time() {
        let mut w = SlidingWindow::new(8).unwrap();
        for t in [0.0, 3.0, 1.0, 2.0, 5.0, 4.0] {
            w.push(t, p(t), 0.0);
        }
        let times: Vec<f64> = w.samples().map(|s| s.time).collect();
        assert_eq!(times, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn too_late_rejected_only_when_full() {
        let mut w = SlidingWindow::new(3).unwrap();
        for t in [5.0, 6.0] {
            w.push(t, p(t), 0.0);
        }
        // Not full: an older read is fine.
        assert_eq!(w.push(1.0, p(1.0), 0.0), PushOutcome::Inserted);
        // Full: older than the retained front is rejected.
        assert_eq!(w.push(0.5, p(0.5), 0.0), PushOutcome::TooLate);
        assert_eq!(w.rejected_late(), 1);
        assert_eq!(w.len(), 3);
    }

    #[test]
    fn non_finite_reads_rejected() {
        let mut w = SlidingWindow::new(3).unwrap();
        assert_eq!(w.push(f64::NAN, p(0.0), 0.0), PushOutcome::TooLate);
        assert_eq!(w.push(0.0, p(0.0), f64::INFINITY), PushOutcome::TooLate);
        assert!(w.is_empty());
    }

    #[test]
    fn incremental_unwrap_matches_batch_unwrap() {
        // A ramp that wraps several times.
        let truth: Vec<f64> = (0..50).map(|i| 0.4 * i as f64).collect();
        let wrapped: Vec<f64> = truth.iter().map(|t| t.rem_euclid(TAU)).collect();
        let mut w = SlidingWindow::new(64).unwrap();
        for (i, &theta) in wrapped.iter().enumerate() {
            w.push(i as f64, p(i as f64 * 0.01), theta);
        }
        let batch = preprocess::unwrap_phases(&wrapped);
        for (s, b) in w.samples().zip(&batch) {
            assert!((s.unwrapped - b).abs() < 1e-12, "{} vs {}", s.unwrapped, b);
        }
    }

    #[test]
    fn unwrap_consistent_after_out_of_order_splice() {
        let truth: Vec<f64> = (0..20).map(|i| 0.5 * i as f64).collect();
        let wrapped: Vec<f64> = truth.iter().map(|t| t.rem_euclid(TAU)).collect();
        let mut w = SlidingWindow::new(32).unwrap();
        // Deliver with index 7 held back until the end.
        for (i, &theta) in wrapped.iter().enumerate() {
            if i != 7 {
                w.push(i as f64, p(i as f64 * 0.01), theta);
            }
        }
        w.push(7.0, p(0.07), wrapped[7]);
        let batch = preprocess::unwrap_phases(&wrapped);
        for (s, b) in w.samples().zip(&batch) {
            assert!((s.unwrapped - b).abs() < 1e-12);
        }
    }

    #[test]
    fn span_and_measurements() {
        let mut w = SlidingWindow::new(4).unwrap();
        assert_eq!(w.span(), 0.0);
        w.push(1.0, p(0.1), 0.2);
        w.push(3.0, p(0.3), 0.4);
        assert_eq!(w.span(), 2.0);
        let mut out = vec![(Point3::ORIGIN, 9.9)];
        w.write_measurements_into(&mut out);
        assert_eq!(out, vec![(p(0.1), 0.2), (p(0.3), 0.4)]);
        w.clear();
        assert!(w.is_empty());
    }

    #[test]
    fn slide_delta_counts_in_order_appends_and_evictions() {
        let mut w = SlidingWindow::new(4).unwrap();
        assert_eq!(w.take_slide_delta(), WindowDelta::default());
        for i in 0..3 {
            w.push(i as f64, p(i as f64), 0.0);
        }
        let d = w.take_slide_delta();
        assert_eq!(d.appended, 3);
        assert_eq!(d.evicted, 0);
        assert!(!d.spliced);
        // Fill to capacity, then slide twice.
        for i in 3..6 {
            w.push(i as f64, p(i as f64), 0.0);
        }
        let d = w.take_slide_delta();
        assert_eq!(d.appended, 3);
        assert_eq!(d.evicted, 2);
        assert!(!d.spliced);
        // Take resets: nothing new means an all-zero delta.
        assert_eq!(w.take_slide_delta(), WindowDelta::default());
    }

    #[test]
    fn slide_delta_flags_splices_and_clears() {
        let mut w = SlidingWindow::new(8).unwrap();
        for t in [0.0, 1.0, 3.0] {
            w.push(t, p(t), 0.0);
        }
        w.take_slide_delta();
        // Out-of-order read lands mid-window.
        w.push(2.0, p(2.0), 0.0);
        let d = w.take_slide_delta();
        assert_eq!(d.appended, 1);
        assert!(d.spliced);
        // A subsequent in-order append is clean again.
        w.push(4.0, p(4.0), 0.0);
        assert!(!w.take_slide_delta().spliced);
        w.clear();
        let d = w.take_slide_delta();
        assert_eq!(d.appended, 0);
        assert!(d.spliced);
    }

    #[test]
    fn slide_delta_ignores_rejected_reads() {
        let mut w = SlidingWindow::new(2).unwrap();
        w.push(5.0, p(5.0), 0.0);
        w.push(6.0, p(6.0), 0.0);
        w.take_slide_delta();
        assert_eq!(w.push(1.0, p(1.0), 0.0), PushOutcome::TooLate);
        assert_eq!(w.push(f64::NAN, p(0.0), 0.0), PushOutcome::TooLate);
        assert_eq!(w.take_slide_delta(), WindowDelta::default());
    }

    #[test]
    fn backing_buffer_never_grows() {
        let mut w = SlidingWindow::new(256).unwrap();
        for i in 0..1000 {
            w.push(
                i as f64,
                p(i as f64 * 1e-3),
                (i as f64 * 0.3).rem_euclid(TAU),
            );
        }
        let warm = w.backing_capacity();
        for i in 1000..20_000 {
            w.push(
                i as f64,
                p(i as f64 * 1e-3),
                (i as f64 * 0.3).rem_euclid(TAU),
            );
        }
        assert_eq!(w.backing_capacity(), warm, "ring buffer reallocated");
        assert_eq!(w.len(), 256);
    }
}
