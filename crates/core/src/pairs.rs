//! Pair selection: choosing which tag-position pairs become radical-line
//! equations.
//!
//! Every pair of samples `(i, j)` yields one linear equation (paper Eq. 7 /
//! Eq. 9). Which pairs to use is a real design choice (paper Sec. IV-B1):
//! pairs must be far enough apart that the phase difference dominates the
//! noise, and their displacement directions must be diverse enough that
//! every coordinate is observable.

use serde::{Deserialize, Serialize};

use lion_geom::{Point3, ThreeLineScan};

/// A strategy for turning a sample sequence into equation pairs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum PairStrategy {
    /// Pair each sample `i` with the first later sample at least `interval`
    /// meters away — the generic sliding scheme; `interval` is the paper's
    /// "scanning interval" `x_o`.
    Interval {
        /// Minimum spatial separation between paired samples (meters).
        interval: f64,
    },
    /// All pairs separated by at least `min_separation`, subsampled evenly
    /// to at most `max_pairs` — the exhaustive option for ablations.
    AllWithMinSeparation {
        /// Minimum spatial separation (meters).
        min_separation: f64,
        /// Cap on the number of emitted pairs.
        max_pairs: usize,
    },
    /// The paper's structured scheme for the three-line 3D scan (Fig. 11,
    /// Eq. 10): x-pairs along `L1` at interval `x_interval`, plus same-`x`
    /// cross pairs `L1`–`L3` (observing y) and `L1`–`L2` (observing z).
    StructuredScan {
        /// The scan geometry the samples were collected on.
        scan: ThreeLineScan,
        /// Spacing `x_o` of the x-pairs (meters).
        x_interval: f64,
        /// Position-matching tolerance (meters).
        tolerance: f64,
    },
}

impl Default for PairStrategy {
    fn default() -> Self {
        PairStrategy::Interval { interval: 0.2 }
    }
}

impl PairStrategy {
    /// Returns a copy of the strategy with its spacing parameter replaced —
    /// used by the adaptive parameter sweep, which varies the scanning
    /// interval without otherwise changing the strategy.
    pub fn with_interval(&self, interval: f64) -> PairStrategy {
        match self {
            PairStrategy::Interval { .. } => PairStrategy::Interval { interval },
            PairStrategy::AllWithMinSeparation { max_pairs, .. } => {
                PairStrategy::AllWithMinSeparation {
                    min_separation: interval,
                    max_pairs: *max_pairs,
                }
            }
            PairStrategy::StructuredScan {
                scan, tolerance, ..
            } => PairStrategy::StructuredScan {
                scan: *scan,
                x_interval: interval,
                tolerance: *tolerance,
            },
        }
    }

    /// The current spacing parameter.
    pub fn interval(&self) -> f64 {
        match self {
            PairStrategy::Interval { interval } => *interval,
            PairStrategy::AllWithMinSeparation { min_separation, .. } => *min_separation,
            PairStrategy::StructuredScan { x_interval, .. } => *x_interval,
        }
    }

    /// Generates sample-index pairs for the given positions.
    ///
    /// Invalid parameters (non-positive intervals) yield an empty list,
    /// which the caller reports as [`crate::CoreError::NoPairs`].
    pub fn pairs(&self, positions: &[Point3]) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        self.pairs_into(positions, &mut out);
        out
    }

    /// [`PairStrategy::pairs`] into a caller-provided buffer, reusing its
    /// allocation. For [`PairStrategy::Interval`] and
    /// [`PairStrategy::AllWithMinSeparation`] this is allocation-free in
    /// steady state; [`PairStrategy::StructuredScan`] still allocates
    /// internally for its per-line classification (it is not on the
    /// adaptive hot path — the zero-alloc sweep guarantee covers the
    /// interval strategies).
    pub fn pairs_into(&self, positions: &[Point3], out: &mut Vec<(usize, usize)>) {
        out.clear();
        match self {
            PairStrategy::Interval { interval } => interval_pairs_into(positions, *interval, out),
            PairStrategy::AllWithMinSeparation {
                min_separation,
                max_pairs,
            } => all_pairs_into(positions, *min_separation, *max_pairs, out),
            PairStrategy::StructuredScan {
                scan,
                x_interval,
                tolerance,
            } => out.extend(structured_pairs(positions, scan, *x_interval, *tolerance)),
        }
    }
}

fn interval_pairs_into(positions: &[Point3], interval: f64, out: &mut Vec<(usize, usize)>) {
    if !(interval > 0.0 && interval.is_finite()) {
        return;
    }
    let mut j = 0;
    for i in 0..positions.len() {
        if j <= i {
            j = i + 1;
        }
        while j < positions.len() && positions[i].distance(positions[j]) < interval {
            j += 1;
        }
        if j < positions.len() {
            out.push((i, j));
        }
    }
}

fn all_pairs_into(
    positions: &[Point3],
    min_separation: f64,
    max_pairs: usize,
    out: &mut Vec<(usize, usize)>,
) {
    if !(min_separation > 0.0 && min_separation.is_finite()) || max_pairs == 0 {
        return;
    }
    let n = positions.len();
    // Estimate the count and choose strides to stay near the cap without an
    // O(n²) materialization first.
    let total_candidates = n.saturating_mul(n.saturating_sub(1)) / 2;
    let stride = (total_candidates / max_pairs.max(1)).max(1);
    let mut counter = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            if positions[i].distance(positions[j]) >= min_separation {
                if counter.is_multiple_of(stride) && out.len() < max_pairs {
                    out.push((i, j));
                }
                counter += 1;
            }
        }
        if out.len() >= max_pairs {
            break;
        }
    }
}

fn structured_pairs(
    positions: &[Point3],
    scan: &ThreeLineScan,
    x_interval: f64,
    tolerance: f64,
) -> Vec<(usize, usize)> {
    // NaN-safe: comparisons are false for NaN, so NaN parameters bail out.
    let params_ok = x_interval > 0.0 && x_interval.is_finite() && tolerance > 0.0;
    if !params_ok {
        return Vec::new();
    }
    // Classify samples onto the three lines by (y, z) proximity.
    let mut l1: Vec<usize> = Vec::new();
    let mut l2: Vec<usize> = Vec::new();
    let mut l3: Vec<usize> = Vec::new();
    for (i, p) in positions.iter().enumerate() {
        if p.y.abs() <= tolerance && p.z.abs() <= tolerance {
            l1.push(i);
        } else if p.y.abs() <= tolerance && (p.z - scan.z_offset()).abs() <= tolerance {
            l2.push(i);
        } else if (p.y + scan.y_offset()).abs() <= tolerance && p.z.abs() <= tolerance {
            l3.push(i);
        }
    }
    let by_x = |v: &mut Vec<usize>| {
        v.sort_by(|&a, &b| positions[a].x.partial_cmp(&positions[b].x).expect("finite"));
    };
    by_x(&mut l1);
    by_x(&mut l2);
    by_x(&mut l3);

    // Binary search for the sample nearest a target x on a sorted line.
    let nearest = |line: &[usize], x: f64| -> Option<usize> {
        if line.is_empty() {
            return None;
        }
        let pos = line.partition_point(|&i| positions[i].x < x);
        let candidates = [pos.checked_sub(1), Some(pos)];
        let mut best: Option<usize> = None;
        for c in candidates.into_iter().flatten() {
            if c < line.len() {
                let idx = line[c];
                let err = (positions[idx].x - x).abs();
                if err <= tolerance && best.is_none_or(|b| (positions[b].x - x).abs() > err) {
                    best = Some(idx);
                }
            }
        }
        best
    };

    let mut out = Vec::new();
    for &i in &l1 {
        let x = positions[i].x;
        // x-pair along L1 (observes the x coordinate).
        if let Some(j) = nearest(&l1, x + x_interval) {
            if j != i {
                out.push((i, j));
            }
        }
        // Cross pair to L3 at the same x (observes y).
        if let Some(j) = nearest(&l3, x) {
            out.push((i, j));
        }
        // Cross pair to L2 at the same x (observes z).
        if let Some(j) = nearest(&l2, x) {
            out.push((i, j));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_positions(n: usize, step: f64) -> Vec<Point3> {
        (0..n)
            .map(|i| Point3::new(i as f64 * step, 0.0, 0.0))
            .collect()
    }

    #[test]
    fn interval_pairs_respect_spacing() {
        let positions = line_positions(101, 0.01); // 1 m span
        let pairs = PairStrategy::Interval { interval: 0.2 }.pairs(&positions);
        assert!(!pairs.is_empty());
        for (i, j) in &pairs {
            assert!(positions[*i].distance(positions[*j]) >= 0.2 - 1e-12);
            assert!(i < j);
        }
        // First pair starts at sample 0 paired 20 samples later.
        assert_eq!(pairs[0], (0, 20));
        // Samples near the end have no partner and are skipped (exact
        // count wiggles by one with float rounding of the 0.2 m cutoff).
        assert!((80..=81).contains(&pairs.len()), "{}", pairs.len());
    }

    #[test]
    fn interval_too_large_yields_empty() {
        let positions = line_positions(10, 0.01);
        assert!(PairStrategy::Interval { interval: 1.0 }
            .pairs(&positions)
            .is_empty());
        assert!(PairStrategy::Interval { interval: -1.0 }
            .pairs(&positions)
            .is_empty());
        assert!(PairStrategy::Interval { interval: f64::NAN }
            .pairs(&positions)
            .is_empty());
    }

    #[test]
    fn all_pairs_capped() {
        let positions = line_positions(50, 0.05);
        let pairs = PairStrategy::AllWithMinSeparation {
            min_separation: 0.1,
            max_pairs: 100,
        }
        .pairs(&positions);
        assert!(pairs.len() <= 100);
        assert!(!pairs.is_empty());
        for (i, j) in &pairs {
            assert!(positions[*i].distance(positions[*j]) >= 0.1 - 1e-12);
        }
        // Zero cap → empty.
        assert!(PairStrategy::AllWithMinSeparation {
            min_separation: 0.1,
            max_pairs: 0
        }
        .pairs(&positions)
        .is_empty());
    }

    #[test]
    fn structured_pairs_cover_all_axes() {
        let scan = ThreeLineScan::new(-0.4, 0.4, 0.2, 0.2).unwrap();
        // Build ideal samples on the three lines, 1 cm apart.
        let mut positions = Vec::new();
        for i in 0..=80 {
            let x = -0.4 + i as f64 * 0.01;
            let (p1, p2, p3) = scan.positions_at(x);
            positions.push(p1);
            positions.push(p2);
            positions.push(p3);
        }
        let pairs = PairStrategy::StructuredScan {
            scan,
            x_interval: 0.2,
            tolerance: 0.005,
        }
        .pairs(&positions);
        assert!(!pairs.is_empty());
        // Check the three equation families are all present.
        let mut has_x = false;
        let mut has_y = false;
        let mut has_z = false;
        for (i, j) in &pairs {
            let d = positions[*j] - positions[*i];
            if d.x.abs() > 0.1 {
                has_x = true;
            }
            if d.y.abs() > 0.1 {
                has_y = true;
            }
            if d.z.abs() > 0.1 {
                has_z = true;
            }
        }
        assert!(has_x && has_y && has_z, "x={has_x} y={has_y} z={has_z}");
    }

    #[test]
    fn structured_pairs_empty_without_matching_lines() {
        let scan = ThreeLineScan::new(-0.4, 0.4, 0.2, 0.2).unwrap();
        // Samples nowhere near the scan lines.
        let positions: Vec<Point3> = (0..20).map(|i| Point3::new(i as f64, 5.0, 5.0)).collect();
        let pairs = PairStrategy::StructuredScan {
            scan,
            x_interval: 0.2,
            tolerance: 0.005,
        }
        .pairs(&positions);
        assert!(pairs.is_empty());
    }

    #[test]
    fn with_interval_rewrites_spacing() {
        let s = PairStrategy::default().with_interval(0.35);
        assert_eq!(s.interval(), 0.35);
        let s = PairStrategy::AllWithMinSeparation {
            min_separation: 0.1,
            max_pairs: 7,
        }
        .with_interval(0.5);
        assert_eq!(s.interval(), 0.5);
        match s {
            PairStrategy::AllWithMinSeparation { max_pairs, .. } => assert_eq!(max_pairs, 7),
            _ => panic!("variant changed"),
        }
        let scan = ThreeLineScan::new(-0.4, 0.4, 0.2, 0.2).unwrap();
        let s = PairStrategy::StructuredScan {
            scan,
            x_interval: 0.1,
            tolerance: 0.01,
        }
        .with_interval(0.25);
        assert_eq!(s.interval(), 0.25);
    }

    #[test]
    fn empty_positions_yield_empty_pairs() {
        assert!(PairStrategy::default().pairs(&[]).is_empty());
        assert!(PairStrategy::default().pairs(&[Point3::ORIGIN]).is_empty());
    }
}
