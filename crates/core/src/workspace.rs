//! Reusable solver workspaces and per-stage instrumentation.
//!
//! A [`Workspace`] owns the buffers the LION pipeline fills on every solve
//! — the radical-line design matrix, its right-hand side, the frame
//! coordinates, and the IRLS scratch — so a hot loop (the batch engine's
//! workers, the conveyor tracker, the adaptive sweep) reuses one set of
//! allocations instead of allocating per solve. It also carries
//! [`StageMetrics`]: monotonic per-stage timers and counters that every
//! workspace-threaded entry point (`locate_in`, `locate_adaptive_in`,
//! `calibrate_in`) records into.
//!
//! Workspace reuse never changes results: every buffer is fully rewritten
//! by each solve, so `locate_in` with a reused workspace is bit-identical
//! to `locate` with a fresh one.

use lion_linalg::{Matrix, NormalEq, NormalIrlsScratch, Vector};
use serde::{Deserialize, Serialize};
use std::time::Instant;

use crate::preprocess::PhaseProfile;

/// Monotonic per-stage timers (nanoseconds) and counters accumulated
/// across the localization runs recorded into one [`Workspace`].
///
/// Timers are measured with [`std::time::Instant`] and therefore
/// monotonic; counters are exact. The adaptive timer covers the whole
/// sweep and therefore *includes* the pair-generation and solve time of
/// its inner trials — the four pipeline timers (`unwrap_ns`, `smooth_ns`,
/// `pairs_ns`, `solve_ns`) are mutually disjoint, `adaptive_ns` is not
/// disjoint from them. The sweep additionally records
/// `adaptive_exclusive_ns`, the share of `adaptive_ns` spent outside
/// those four stages, so [`StageMetrics::busy_ns`] can sum disjoint
/// components exactly.
///
/// # Example
///
/// ```
/// use lion_core::{Localizer2d, LocalizerConfig, Workspace};
/// use lion_geom::Point3;
/// use std::f64::consts::{PI, TAU};
///
/// # fn main() -> Result<(), lion_core::CoreError> {
/// let antenna = Point3::new(0.5, 0.8, 0.0);
/// let lambda = LocalizerConfig::paper().wavelength;
/// let m: Vec<(Point3, f64)> = (0..120)
///     .map(|i| {
///         let a = i as f64 * TAU / 120.0;
///         let p = Point3::new(0.3 * a.cos(), 0.3 * a.sin(), 0.0);
///         (p, (4.0 * PI * antenna.distance(p) / lambda) % TAU)
///     })
///     .collect();
/// let mut ws = Workspace::new();
/// Localizer2d::new(LocalizerConfig::paper()).locate_in(&m, &mut ws)?;
/// let metrics = ws.take_metrics();
/// assert_eq!(metrics.solves, 1);
/// assert!(metrics.equations > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageMetrics {
    /// Time spent unwrapping the modulo-2π phases.
    pub unwrap_ns: u64,
    /// Time spent in the moving-average smoother.
    pub smooth_ns: u64,
    /// Time spent generating sample pairs.
    pub pairs_ns: u64,
    /// Time spent in the least-squares / IRLS solver (includes building
    /// the stacked system).
    pub solve_ns: u64,
    /// Wall time of adaptive parameter sweeps (includes the nested pair
    /// generation and solves of the sweep's trials).
    pub adaptive_ns: u64,
    /// The sweep-exclusive share of `adaptive_ns`: orchestration time the
    /// sweep spent *outside* the four pipeline stages (grid iteration,
    /// profile restriction, trial ranking). Disjoint from `unwrap_ns` /
    /// `smooth_ns` / `pairs_ns` / `solve_ns`, so
    /// `pipeline_ns() + adaptive_exclusive_ns` is the total busy time
    /// without double counting.
    pub adaptive_exclusive_ns: u64,
    /// Number of linear-system solves performed.
    pub solves: u64,
    /// Total IRLS reweighting iterations across all solves.
    pub irls_iterations: u64,
    /// Total stacked radical-line/plane equations across all solves.
    pub equations: u64,
    /// Reads excluded by adaptive scanning-range restriction.
    pub reads_dropped: u64,
    /// Successful `(range, interval)` trials across adaptive sweeps.
    pub adaptive_trials: u64,
    /// Skipped `(range, interval)` combinations across adaptive sweeps.
    pub adaptive_skipped: u64,
    /// Sweep cells that extended a narrower range's normal equations in
    /// place instead of rebuilding from scratch.
    pub adaptive_cells_reused: u64,
    /// Full Gram-matrix rebuilds performed by the incremental
    /// normal-equation solver during adaptive sweeps.
    pub adaptive_gram_rebuilds: u64,
}

impl StageMetrics {
    /// Adds every timer and counter of `other` into `self`.
    pub fn merge(&mut self, other: &StageMetrics) {
        self.unwrap_ns += other.unwrap_ns;
        self.smooth_ns += other.smooth_ns;
        self.pairs_ns += other.pairs_ns;
        self.solve_ns += other.solve_ns;
        self.adaptive_ns += other.adaptive_ns;
        self.adaptive_exclusive_ns += other.adaptive_exclusive_ns;
        self.solves += other.solves;
        self.irls_iterations += other.irls_iterations;
        self.equations += other.equations;
        self.reads_dropped += other.reads_dropped;
        self.adaptive_trials += other.adaptive_trials;
        self.adaptive_skipped += other.adaptive_skipped;
        self.adaptive_cells_reused += other.adaptive_cells_reused;
        self.adaptive_gram_rebuilds += other.adaptive_gram_rebuilds;
    }

    /// Sum of the four disjoint pipeline timers (unwrap + smooth + pairs +
    /// solve), excluding the overlapping adaptive timer.
    pub fn pipeline_ns(&self) -> u64 {
        self.unwrap_ns + self.smooth_ns + self.pairs_ns + self.solve_ns
    }

    /// Total busy time as a sum of disjoint components: the four pipeline
    /// stages plus the sweep-exclusive adaptive overhead. No clamping
    /// heuristics — every nanosecond is counted exactly once.
    pub fn busy_ns(&self) -> u64 {
        self.pipeline_ns() + self.adaptive_exclusive_ns
    }

    /// Resets every timer and counter to zero.
    pub fn reset(&mut self) {
        *self = StageMetrics::default();
    }
}

/// Elapsed nanoseconds since `start`, saturating at `u64::MAX`.
pub(crate) fn elapsed_ns(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Structure-of-arrays staging for windowed reads: timestamps, the three
/// position axes, and wrapped phases each in their own contiguous lane.
/// [`crate::SlidingWindow::write_soa_into`] fills it column-wise so the
/// preprocessing kernels (`lion_linalg::simd`) stream each lane without
/// gathering from an array-of-structs tuple buffer.
#[derive(Debug, Clone, Default)]
pub(crate) struct SampleSoa {
    /// Read timestamps (seconds), oldest first.
    pub(crate) ts: Vec<f64>,
    /// Position x-coordinates.
    pub(crate) xs: Vec<f64>,
    /// Position y-coordinates.
    pub(crate) ys: Vec<f64>,
    /// Position z-coordinates.
    pub(crate) zs: Vec<f64>,
    /// Wrapped phases (radians).
    pub(crate) phases: Vec<f64>,
}

impl SampleSoa {
    /// Empties every lane, keeping capacity.
    pub(crate) fn clear(&mut self) {
        self.ts.clear();
        self.xs.clear();
        self.ys.clear();
        self.zs.clear();
        self.phases.clear();
    }
}

/// Reusable buffers for one adaptive-sweep grid cell: the sample subset,
/// its pair lists, the incremental normal equations, and the IRLS
/// scratch. Owned per [`Workspace`] so the steady-state sweep touches no
/// allocator.
#[derive(Debug, Clone, Default)]
pub(crate) struct CellScratch {
    /// Global sample indices inside the cell's scanning range, in
    /// sequence order.
    pub(crate) subset: Vec<usize>,
    /// Positions of `subset`, for pair generation.
    pub(crate) subset_pos: Vec<lion_geom::Point3>,
    /// Pairs in subset-local indices.
    pub(crate) local_pairs: Vec<(usize, usize)>,
    /// Pairs mapped to global sample indices.
    pub(crate) pairs: Vec<(usize, usize)>,
    /// Global pairs of the rows currently inside `ne` (push order).
    pub(crate) ne_pairs: Vec<(usize, usize)>,
    /// Incrementally maintained normal equations.
    pub(crate) ne: NormalEq,
    /// IRLS iteration scratch.
    pub(crate) irls: NormalIrlsScratch,
    /// Per-parameter standard errors of the last solve.
    pub(crate) param_std: Vec<f64>,
    /// Covariance-diagonal scratch.
    pub(crate) cov_diag: Vec<f64>,
}

/// Reusable buffers for the shared-prefix adaptive sweep: the global
/// frame coordinates, distance deltas, x-sorted sample order, and the
/// per-cell scratch.
#[derive(Debug, Clone, Default)]
pub(crate) struct SweepScratch {
    /// Frame coordinates of every sample (`n × k`, row-major).
    pub(crate) coords: Vec<f64>,
    /// Distance deltas against the pinned global reference.
    pub(crate) deltas: Vec<f64>,
    /// Sample indices sorted ascending by x, for binary-searched range
    /// slicing.
    pub(crate) sorted_idx: Vec<usize>,
    /// Indices of the configured scanning ranges, ascending by value, so
    /// each range extends the previous (narrower) one's system.
    pub(crate) range_order: Vec<usize>,
    /// Moving-average prefix-sum scratch.
    pub(crate) smooth_prefix: Vec<f64>,
    /// Moving-average output scratch.
    pub(crate) smooth_tmp: Vec<f64>,
    /// Per-cell solver scratch.
    pub(crate) cell: CellScratch,
}

/// Reusable solver state for the LION pipeline.
///
/// Holds the design matrix, right-hand side, frame-coordinate buffer, and
/// least-squares scratch that [`crate::Localizer2d::locate_in`] and
/// friends fill on every run, plus the [`StageMetrics`] they record into.
/// Create one per worker/thread and reuse it across solves; see the
/// module docs for the reuse guarantee.
#[derive(Debug, Clone)]
pub struct Workspace {
    pub(crate) design: Matrix,
    pub(crate) rhs: Vector,
    /// Frame coordinates of the batch solve path, **axis-major**
    /// (`coords[c * n + i]` is coordinate `c` of sample `i`): each of the
    /// `k` frame axes is one contiguous lane, the layout the
    /// `lion_linalg::simd` row-assembly kernel gathers from.
    pub(crate) coords: Vec<f64>,
    pub(crate) metrics: StageMetrics,
    /// SoA staging for windowed solves: a [`crate::SlidingWindow`]'s
    /// reads are copied here lane-wise (capacity retained across solves)
    /// before running the standard pipeline.
    pub(crate) samples: SampleSoa,
    /// Reusable unwrapped/smoothed profile; `locate_in` and the adaptive
    /// sweep stage their preprocessing here instead of allocating a fresh
    /// profile per call.
    pub(crate) profile: PhaseProfile,
    /// Distance deltas against the reference sample (batch solve path).
    pub(crate) deltas: Vec<f64>,
    /// Sample pairs of the batch solve path.
    pub(crate) pairs: Vec<(usize, usize)>,
    /// Pair endpoints as `i32` index lanes — the gather-friendly mirror
    /// of `pairs` the SIMD row-assembly kernel consumes.
    pub(crate) pair_i: Vec<i32>,
    pub(crate) pair_j: Vec<i32>,
    /// Solution of the last batch solve (coordinates then `d_r`).
    pub(crate) solution: Vec<f64>,
    /// Per-parameter standard errors of the last batch solve.
    pub(crate) param_std: Vec<f64>,
    /// Normal equations of the batch weighted solve path.
    pub(crate) ne: NormalEq,
    /// IRLS scratch of the batch weighted solve path.
    pub(crate) ne_irls: NormalIrlsScratch,
    /// Covariance-diagonal scratch of the batch weighted solve path.
    pub(crate) cov_diag: Vec<f64>,
    /// Adaptive-sweep scratch (frame coordinates, sorted index, per-cell
    /// normal equations).
    pub(crate) sweep: SweepScratch,
}

impl Workspace {
    /// Creates an empty workspace; buffers grow on first use and are then
    /// reused.
    pub fn new() -> Self {
        Workspace {
            design: Matrix::zeros(0, 0),
            rhs: Vector::zeros(0),
            coords: Vec::new(),
            metrics: StageMetrics::default(),
            samples: SampleSoa::default(),
            profile: PhaseProfile::default(),
            deltas: Vec::new(),
            pairs: Vec::new(),
            pair_i: Vec::new(),
            pair_j: Vec::new(),
            solution: Vec::new(),
            param_std: Vec::new(),
            ne: NormalEq::new(),
            ne_irls: NormalIrlsScratch::new(),
            cov_diag: Vec::new(),
            sweep: SweepScratch::default(),
        }
    }

    /// The metrics accumulated so far.
    pub fn metrics(&self) -> &StageMetrics {
        &self.metrics
    }

    /// Returns the accumulated metrics and resets them to zero, leaving
    /// the solver buffers (and their capacity) intact. The batch engine
    /// calls this after each job to get per-job stage metrics.
    pub fn take_metrics(&mut self) -> StageMetrics {
        std::mem::take(&mut self.metrics)
    }
}

impl Default for Workspace {
    fn default() -> Self {
        Workspace::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = StageMetrics {
            unwrap_ns: 1,
            solve_ns: 2,
            solves: 3,
            ..StageMetrics::default()
        };
        let b = StageMetrics {
            unwrap_ns: 10,
            solve_ns: 20,
            solves: 30,
            equations: 7,
            ..StageMetrics::default()
        };
        a.merge(&b);
        assert_eq!(a.unwrap_ns, 11);
        assert_eq!(a.solve_ns, 22);
        assert_eq!(a.solves, 33);
        assert_eq!(a.equations, 7);
        assert_eq!(a.pipeline_ns(), 11 + 22);
    }

    #[test]
    fn take_metrics_resets() {
        let mut ws = Workspace::new();
        ws.metrics.solves = 5;
        let taken = ws.take_metrics();
        assert_eq!(taken.solves, 5);
        assert_eq!(ws.metrics(), &StageMetrics::default());
    }
}
