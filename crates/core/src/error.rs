use std::error::Error;
use std::fmt;

use lion_geom::GeomError;
use lion_linalg::LinalgError;

/// Errors produced by the LION localization and calibration pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// Not enough measurements to form the requested system.
    TooFewMeasurements {
        /// Measurements supplied.
        got: usize,
        /// Minimum required for this operation.
        needed: usize,
    },
    /// A measurement contained NaN/inf coordinates or phase.
    NonFiniteMeasurement {
        /// Index of the offending sample.
        index: usize,
    },
    /// The tag positions do not span enough dimensions for the requested
    /// localization (e.g. a single straight line for 3D — paper
    /// Sec. III-C2 proves this case unsolvable).
    DegenerateGeometry {
        /// Human-readable description.
        detail: String,
    },
    /// The lower-dimension recovery of the perpendicular coordinate failed:
    /// `d_r² < (distance in the solved subspace)²`, usually a sign of heavy
    /// noise or a wrong reference.
    RecoveryFailed {
        /// The (negative) discriminant encountered.
        discriminant: f64,
    },
    /// An invalid configuration value.
    InvalidConfig {
        /// The parameter name.
        parameter: &'static str,
        /// Display of the offending value.
        found: String,
    },
    /// No pairs could be generated with the configured strategy (interval
    /// too large for the scanned range, structured scan not matching the
    /// data, ...).
    NoPairs,
    /// The likelihood-grid backend found no finitely scored candidate
    /// cell — every evaluated score was NaN/inf, typically from
    /// non-finite distance deltas.
    GridExhausted {
        /// Candidates evaluated before giving up.
        evaluated: usize,
    },
    /// The likelihood surface was (near-)flat on the coarse grid level:
    /// its score contrast fell below the configured minimum, so
    /// refinement cannot localize.
    DegenerateLikelihood {
        /// The observed max−min score contrast on the coarse level.
        contrast: f64,
    },
    /// An underlying linear-algebra failure.
    Linalg(LinalgError),
    /// An underlying geometry failure.
    Geometry(GeomError),
}

impl CoreError {
    /// A stable snake_case label for this error's variant, independent of
    /// the variant's payload — the key the observability layer uses for
    /// per-error-kind failure counters and report breakdowns.
    pub fn kind(&self) -> &'static str {
        match self {
            CoreError::TooFewMeasurements { .. } => "too_few_measurements",
            CoreError::NonFiniteMeasurement { .. } => "non_finite_measurement",
            CoreError::DegenerateGeometry { .. } => "degenerate_geometry",
            CoreError::RecoveryFailed { .. } => "recovery_failed",
            CoreError::InvalidConfig { .. } => "invalid_config",
            CoreError::NoPairs => "no_pairs",
            CoreError::GridExhausted { .. } => "grid_exhausted",
            CoreError::DegenerateLikelihood { .. } => "degenerate_likelihood",
            CoreError::Linalg(_) => "linalg",
            CoreError::Geometry(_) => "geometry",
        }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::TooFewMeasurements { got, needed } => {
                write!(f, "too few measurements: got {got}, need at least {needed}")
            }
            CoreError::NonFiniteMeasurement { index } => {
                write!(f, "non-finite measurement at index {index}")
            }
            CoreError::DegenerateGeometry { detail } => {
                write!(f, "degenerate trajectory geometry: {detail}")
            }
            CoreError::RecoveryFailed { discriminant } => write!(
                f,
                "lower-dimension recovery failed (negative discriminant {discriminant:.3e})"
            ),
            CoreError::InvalidConfig { parameter, found } => {
                write!(f, "invalid configuration {parameter}: {found}")
            }
            CoreError::NoPairs => write!(f, "pair selection produced no equations"),
            CoreError::GridExhausted { evaluated } => write!(
                f,
                "likelihood grid exhausted: no finite score among {evaluated} candidates"
            ),
            CoreError::DegenerateLikelihood { contrast } => write!(
                f,
                "degenerate likelihood surface (coarse contrast {contrast:.3e})"
            ),
            CoreError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            CoreError::Geometry(e) => write!(f, "geometry failure: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Linalg(e) => Some(e),
            CoreError::Geometry(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for CoreError {
    fn from(e: LinalgError) -> Self {
        CoreError::Linalg(e)
    }
}

impl From<GeomError> for CoreError {
    fn from(e: GeomError) -> Self {
        CoreError::Geometry(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let errors = [
            CoreError::TooFewMeasurements { got: 1, needed: 4 },
            CoreError::NonFiniteMeasurement { index: 3 },
            CoreError::DegenerateGeometry {
                detail: "single line for 3d".into(),
            },
            CoreError::RecoveryFailed { discriminant: -0.1 },
            CoreError::InvalidConfig {
                parameter: "interval",
                found: "-1".into(),
            },
            CoreError::NoPairs,
            CoreError::GridExhausted { evaluated: 1331 },
            CoreError::DegenerateLikelihood { contrast: 1e-15 },
            CoreError::Linalg(LinalgError::Singular),
            CoreError::Geometry(GeomError::Degenerate { operation: "x" }),
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn kinds_are_stable_snake_case_labels() {
        let pairs = [
            (
                CoreError::TooFewMeasurements { got: 1, needed: 4 },
                "too_few_measurements",
            ),
            (CoreError::NoPairs, "no_pairs"),
            (CoreError::GridExhausted { evaluated: 0 }, "grid_exhausted"),
            (
                CoreError::DegenerateLikelihood { contrast: 0.0 },
                "degenerate_likelihood",
            ),
            (CoreError::Linalg(LinalgError::Singular), "linalg"),
        ];
        for (e, kind) in pairs {
            assert_eq!(e.kind(), kind);
            assert!(e.kind().chars().all(|c| c.is_ascii_lowercase() || c == '_'));
        }
    }

    #[test]
    fn sources_chain() {
        let e = CoreError::Linalg(LinalgError::Singular);
        assert!(e.source().is_some());
        assert!(CoreError::NoPairs.source().is_none());
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
