//! Multistatic tag localization with the LION model — an extension beyond
//! the paper.
//!
//! The paper's case study (Sec. V-F1) locates a static tag from several
//! calibrated antennas with a *differential hologram*. But the geometry is
//! symmetric to LION's own setting: antennas at known positions reading
//! one tag constrain the tag to circles around the antennas, so the same
//! radical-line linearization applies — with one complication. Between a
//! *moving* tag's consecutive reads, phase can be unwrapped by continuity;
//! between *different antennas* there is no continuity, so each antenna's
//! offset-corrected phase fixes its distance only modulo λ/2:
//!
//! ```text
//! d_j = d_ref + (λ/4π)·(θ'_j − θ'_ref) + n_j·(λ/2),   n_j ∈ ℤ
//! ```
//!
//! With antennas a meter or so apart, the relative integers `n_j` are
//! small, so this module enumerates `n ∈ [−max, max]^(J−1)`, solves the
//! LION linear system for each hypothesis, and ranks hypotheses by
//! residual, breaking ties toward the side hint. The whole search costs
//! microseconds, versus the hologram's grid scan.
//!
//! **Identifiability.** The pairwise radical-line rows of `J` antennas
//! have rank `J − 1`. Residuals can expose a wrong integer hypothesis only
//! when `J − 1` exceeds the unknown count (3 for a full-rank 2D solve,
//! 2 for a collinear array): every hypothesis of an exactly-determined
//! system fits perfectly, exactly like GNSS integer ambiguities without
//! redundant satellites. With the paper's minimal 3-antenna rig the
//! solver therefore returns the feasible lattice candidate closest to the
//! side hint — fine when the tag area is known to within the alias
//! spacing (≈ 10–40 cm here) — while `J ≥ 5` (or `J ≥ 4` collinear)
//! resolves the integers from the data alone.

use lion_geom::Point3;
use serde::{Deserialize, Serialize};

use crate::error::CoreError;
use crate::localizer::{Estimate, LocalizerConfig, Mode};
use crate::pairs::PairStrategy;
use crate::preprocess::PhaseProfile;

/// Configuration for the multistatic solver.
#[derive(Debug, Clone, PartialEq)]
pub struct MultistaticConfig {
    /// Carrier wavelength (meters).
    pub wavelength: f64,
    /// Half-width of the integer-ambiguity search per non-reference
    /// antenna: `n_j ∈ [−max_ambiguity, max_ambiguity]`. The needed range
    /// is `⌈(max distance difference)/(λ/2)⌉`; 6 covers antennas within
    /// ~1 m of path difference at UHF.
    pub max_ambiguity: i32,
    /// Rough tag location: disambiguates the mirror solution (antennas in
    /// a line cannot tell front from back) and breaks residual ties.
    pub side_hint: Option<Point3>,
    /// Relative singular-value threshold for the geometry analysis (see
    /// [`LocalizerConfig::rank_tolerance`]).
    pub rank_tolerance: f64,
    /// Optional axis-aligned feasible region `(center, half_extent)`:
    /// candidates outside it are discarded. This encodes the same prior a
    /// hologram's bounded search volume does, and is what makes minimal
    /// (non-redundant) arrays usable.
    pub region: Option<(Point3, f64)>,
}

impl Default for MultistaticConfig {
    fn default() -> Self {
        MultistaticConfig {
            wavelength: 299_792_458.0 / 920.625e6,
            max_ambiguity: 6,
            side_hint: None,
            rank_tolerance: 0.05,
            region: None,
        }
    }
}

/// Result of a multistatic localization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultistaticEstimate {
    /// Estimated tag position.
    pub position: Point3,
    /// Estimated distance from the tag to the reference (first) antenna.
    pub reference_distance: f64,
    /// Winning integer ambiguities, one per non-reference antenna.
    pub ambiguities: Vec<i32>,
    /// Weighted RMS residual of the winning hypothesis.
    pub rms_residual: f64,
    /// Number of ambiguity hypotheses evaluated.
    pub hypotheses: usize,
}

/// Locates a static tag from offset-corrected phases of `J ≥ 3` antennas.
///
/// `readings` are `(antenna phase center, offset-corrected wrapped phase)`
/// — i.e. [`crate::Calibration::corrected_phase`] outputs. The first
/// reading is the ambiguity reference.
///
/// # Errors
///
/// - [`CoreError::TooFewMeasurements`] for fewer than 3 antennas,
/// - [`CoreError::NonFiniteMeasurement`] for NaN/inf readings,
/// - [`CoreError::InvalidConfig`] for a non-positive wavelength or
///   negative ambiguity range,
/// - [`CoreError::DegenerateGeometry`] when no hypothesis admits a
///   feasible solution (all discriminants negative / solves fail).
pub fn locate_tag(
    readings: &[(Point3, f64)],
    config: &MultistaticConfig,
) -> Result<MultistaticEstimate, CoreError> {
    let j = readings.len();
    if j < 3 {
        return Err(CoreError::TooFewMeasurements { got: j, needed: 3 });
    }
    for (i, (p, t)) in readings.iter().enumerate() {
        if !p.is_finite() || !t.is_finite() {
            return Err(CoreError::NonFiniteMeasurement { index: i });
        }
    }
    if !(config.wavelength > 0.0 && config.wavelength.is_finite()) {
        return Err(CoreError::InvalidConfig {
            parameter: "wavelength",
            found: format!("{}", config.wavelength),
        });
    }
    if config.max_ambiguity < 0 {
        return Err(CoreError::InvalidConfig {
            parameter: "max_ambiguity",
            found: format!("{}", config.max_ambiguity),
        });
    }
    let positions: Vec<Point3> = readings.iter().map(|(p, _)| *p).collect();
    // Pair every antenna with every other (tiny J).
    let min_spacing = {
        let mut m = f64::INFINITY;
        for a in 0..j {
            for b in (a + 1)..j {
                m = m.min(positions[a].distance(positions[b]));
            }
        }
        m
    };
    // NaN-safe: comparison is false for NaN spacings.
    let spacing_ok = min_spacing > 1e-6;
    if !spacing_ok {
        return Err(CoreError::DegenerateGeometry {
            detail: "two antennas coincide".to_string(),
        });
    }
    let localizer_cfg = LocalizerConfig {
        wavelength: config.wavelength,
        smoothing_window: 1,
        pair_strategy: PairStrategy::AllWithMinSeparation {
            min_separation: min_spacing * 0.5,
            max_pairs: j * (j - 1) / 2,
        },
        reference_index: Some(0),
        side_hint: config.side_hint,
        rank_tolerance: config.rank_tolerance,
        // Plain least squares, deliberately: with only a handful of
        // equations, the IRLS weights can drive disagreeing equations to
        // zero and make *wrong* integer hypotheses fit perfectly — the
        // residual must honestly reflect the misfit to rank hypotheses.
        weighting: crate::localizer::Weighting::LeastSquares,
        solver: crate::solver::SolverKind::Linear,
    };
    let tau = std::f64::consts::TAU;
    let span = config.max_ambiguity;
    let width = (2 * span + 1) as usize;
    let combos = width.pow((j - 1) as u32);
    let mut candidates: Vec<MultistaticEstimate> = Vec::new();
    let mut hypothesis_phases = vec![0.0_f64; j];
    hypothesis_phases[0] = readings[0].1;
    for combo in 0..combos {
        let mut idx = combo;
        let mut ambiguities = Vec::with_capacity(j - 1);
        for phase_slot in hypothesis_phases
            .iter_mut()
            .skip(1)
            .zip(readings.iter().skip(1))
        {
            let (slot, reading) = phase_slot;
            let n = (idx % width) as i32 - span;
            idx /= width;
            ambiguities.push(n);
            *slot = reading.1 + n as f64 * tau;
        }
        let Ok(profile) = PhaseProfile::from_unwrapped(
            positions.clone(),
            hypothesis_phases.clone(),
            config.wavelength,
        ) else {
            continue;
        };
        let Ok(est) = crate::localizer::run_with_min(&profile, &localizer_cfg, Mode::TwoD, 3)
        else {
            continue;
        };
        // Feasibility: the tag must be in front of a positive reference
        // distance and inside the declared region, if any. (NaN-safe: the
        // comparison is false for NaN.)
        let dr_ok = est.reference_distance > 0.0;
        if !dr_ok {
            continue;
        }
        if let Some((center, half)) = config.region {
            if (est.position.x - center.x).abs() > half
                || (est.position.y - center.y).abs() > half
                || (est.position.z - center.z).abs() > half
            {
                continue;
            }
        }
        candidates.push(MultistaticEstimate {
            position: est.position,
            reference_distance: est.reference_distance,
            ambiguities,
            rms_residual: est.weighted_rms,
            hypotheses: combos,
        });
    }
    // Wrong-integer hypotheses can be *exactly* self-consistent (they
    // describe a real point on the solution lattice), so residual alone
    // cannot always discriminate. Keep every hypothesis whose residual is
    // within a band of the best and let the prior (side hint, else
    // proximity to the array) choose among those aliases.
    let min_rms = candidates
        .iter()
        .map(|c| c.rms_residual)
        .fold(f64::INFINITY, f64::min);
    let band = min_rms * 2.0 + 1e-9;
    let anchor = config.side_hint.unwrap_or_else(|| {
        // Centroid of the array as a weak prior.
        let inv = 1.0 / j as f64;
        positions.iter().fold(Point3::ORIGIN, |acc, p| {
            Point3::new(acc.x + p.x * inv, acc.y + p.y * inv, acc.z + p.z * inv)
        })
    });
    candidates
        .into_iter()
        .filter(|c| c.rms_residual <= band)
        .min_by(|a, b| {
            a.position
                .distance(anchor)
                .partial_cmp(&b.position.distance(anchor))
                .expect("finite positions")
        })
        .ok_or_else(|| CoreError::DegenerateGeometry {
            detail: "no ambiguity hypothesis produced a feasible solution".to_string(),
        })
}

/// Re-export of the diagnostic [`Estimate`] type alias used internally.
pub type MultistaticDiagnostics = Estimate;

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{PI, TAU};

    const LAMBDA: f64 = 299_792_458.0 / 920.625e6;

    /// Offset-corrected wrapped phase for a tag seen from an antenna.
    fn phase_of(antenna: Point3, tag: Point3) -> f64 {
        (4.0 * PI * antenna.distance(tag) / LAMBDA).rem_euclid(TAU)
    }

    fn cfg(hint: Point3) -> MultistaticConfig {
        MultistaticConfig {
            side_hint: Some(hint),
            ..MultistaticConfig::default()
        }
    }

    #[test]
    fn three_collinear_antennas_recover_the_tag() {
        // The paper's rig: antennas at x = -0.3, 0, 0.3; tag at (-0.1, 0.8).
        let tag = Point3::new(-0.1, 0.8, 0.0);
        let readings: Vec<(Point3, f64)> = [-0.3_f64, 0.0, 0.3]
            .iter()
            .map(|&x| {
                let a = Point3::new(x, 0.0, 0.0);
                (a, phase_of(a, tag))
            })
            .collect();
        let est = locate_tag(&readings, &cfg(Point3::new(0.0, 0.7, 0.0))).unwrap();
        assert!(
            est.position.distance(tag) < 0.002,
            "error {} at {}",
            est.position.distance(tag),
            est.position
        );
        assert!(est.rms_residual < 1e-6);
        assert_eq!(est.ambiguities.len(), 2);
        assert!((est.reference_distance - readings[0].0.distance(tag)).abs() < 0.002);
    }

    #[test]
    fn redundant_array_resolves_ambiguities_from_data_alone() {
        // Five non-collinear antennas: rank 4 > 3 unknowns, so the true
        // integer hypothesis is the only one with a (near-)zero residual —
        // even with a deliberately misleading hint.
        let tag = Point3::new(0.15, 0.9, 0.0);
        let antennas = [
            Point3::new(-0.3, 0.0, 0.0),
            Point3::new(0.3, 0.0, 0.0),
            Point3::new(0.0, 0.25, 0.0),
            Point3::new(-0.15, 0.12, 0.0),
            Point3::new(0.2, 0.3, 0.0),
        ];
        let readings: Vec<(Point3, f64)> =
            antennas.iter().map(|&a| (a, phase_of(a, tag))).collect();
        // Hint placed away from the tag: redundancy must win regardless.
        let mut c = cfg(Point3::new(-0.2, 0.6, 0.0));
        c.max_ambiguity = 4; // keep the 9^4 ≈ 6.5k-combo search quick
        let est = locate_tag(&readings, &c).unwrap();
        assert!(
            est.position.distance(tag) < 0.005,
            "error {} at {}",
            est.position.distance(tag),
            est.position
        );
        assert!(est.rms_residual < 1e-9);
    }

    #[test]
    fn minimal_array_is_hint_limited() {
        // With 4 antennas (rank 3 = unknowns) every hypothesis fits
        // exactly; the solver falls back to the hint, which must then be
        // within the alias spacing of the truth.
        let tag = Point3::new(0.15, 0.9, 0.0);
        let antennas = [
            Point3::new(-0.3, 0.0, 0.0),
            Point3::new(0.3, 0.0, 0.0),
            Point3::new(0.0, 0.25, 0.0),
            Point3::new(-0.15, 0.12, 0.0),
        ];
        let readings: Vec<(Point3, f64)> =
            antennas.iter().map(|&a| (a, phase_of(a, tag))).collect();
        // A hint close to the truth resolves the lattice choice.
        let est = locate_tag(&readings, &cfg(Point3::new(0.12, 0.88, 0.0))).unwrap();
        assert!(
            est.position.distance(tag) < 0.01,
            "error {}",
            est.position.distance(tag)
        );
    }

    #[test]
    fn noise_tolerance_with_hint() {
        // 0.05 rad phase noise (≈ 1.3 mm of distance) on each reading.
        let tag = Point3::new(-0.05, 0.75, 0.0);
        let noise = [0.03, -0.05, 0.04];
        let readings: Vec<(Point3, f64)> = [-0.3_f64, 0.0, 0.3]
            .iter()
            .zip(noise)
            .map(|(&x, dn)| {
                let a = Point3::new(x, 0.0, 0.0);
                (a, (phase_of(a, tag) + dn).rem_euclid(TAU))
            })
            .collect();
        let est = locate_tag(&readings, &cfg(Point3::new(0.0, 0.7, 0.0))).unwrap();
        // With only 3 collinear antennas the depth dilution is large; a few
        // centimeters is the expected scale (compare the hologram's 4.7 cm
        // in the paper's calibrated case study).
        assert!(
            est.position.distance(tag) < 0.08,
            "error {}",
            est.position.distance(tag)
        );
    }

    #[test]
    fn region_prior_prunes_aliases() {
        // Minimal collinear array plus a region box: aliases outside the
        // box are discarded even when the hint is vague.
        let tag = Point3::new(-0.1, 0.8, 0.0);
        let readings: Vec<(Point3, f64)> = [-0.3_f64, 0.0, 0.3]
            .iter()
            .map(|&x| {
                let a = Point3::new(x, 0.0, 0.0);
                (a, phase_of(a, tag))
            })
            .collect();
        let c = MultistaticConfig {
            side_hint: Some(Point3::new(0.0, 0.7, 0.0)),
            region: Some((Point3::new(0.0, 0.8, 0.0), 0.2)),
            ..MultistaticConfig::default()
        };
        let est = locate_tag(&readings, &c).unwrap();
        assert!(
            (est.position.x - tag.x).abs() <= 0.3 && (est.position.y - tag.y).abs() <= 0.2,
            "inside the region: {}",
            est.position
        );
        // A region that excludes every candidate errors out.
        let c = MultistaticConfig {
            region: Some((Point3::new(5.0, 5.0, 0.0), 0.05)),
            ..MultistaticConfig::default()
        };
        assert!(matches!(
            locate_tag(&readings, &c),
            Err(CoreError::DegenerateGeometry { .. })
        ));
    }

    #[test]
    fn validation_errors() {
        let a = Point3::new(0.0, 0.0, 0.0);
        let b = Point3::new(0.3, 0.0, 0.0);
        assert!(matches!(
            locate_tag(&[(a, 0.1), (b, 0.2)], &MultistaticConfig::default()),
            Err(CoreError::TooFewMeasurements { .. })
        ));
        let readings = vec![(a, 0.1), (b, 0.2), (Point3::new(0.6, 0.0, 0.0), f64::NAN)];
        assert!(matches!(
            locate_tag(&readings, &MultistaticConfig::default()),
            Err(CoreError::NonFiniteMeasurement { index: 2 })
        ));
        let readings = vec![(a, 0.1), (a, 0.2), (b, 0.3)];
        assert!(matches!(
            locate_tag(&readings, &MultistaticConfig::default()),
            Err(CoreError::DegenerateGeometry { .. })
        ));
        let bad = MultistaticConfig {
            wavelength: -1.0,
            ..MultistaticConfig::default()
        };
        let readings = vec![(a, 0.1), (b, 0.2), (Point3::new(0.6, 0.0, 0.0), 0.3)];
        assert!(locate_tag(&readings, &bad).is_err());
        let bad = MultistaticConfig {
            max_ambiguity: -1,
            ..MultistaticConfig::default()
        };
        assert!(locate_tag(&readings, &bad).is_err());
    }

    #[test]
    fn winning_ambiguities_match_geometry() {
        // Verify the chosen integers reproduce the true distance
        // differences.
        let tag = Point3::new(0.1, 0.85, 0.0);
        let antennas = [
            Point3::new(-0.3, 0.0, 0.0),
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(0.3, 0.0, 0.0),
        ];
        let readings: Vec<(Point3, f64)> =
            antennas.iter().map(|&a| (a, phase_of(a, tag))).collect();
        let est = locate_tag(&readings, &cfg(Point3::new(0.0, 0.7, 0.0))).unwrap();
        let scale = LAMBDA / (4.0 * PI);
        for (k, &n) in est.ambiguities.iter().enumerate() {
            let j = k + 1;
            let true_dd = antennas[j].distance(tag) - antennas[0].distance(tag);
            let implied = scale * (readings[j].1 - readings[0].1 + n as f64 * TAU);
            assert!(
                (implied - true_dd).abs() < 1e-3,
                "antenna {j}: implied {implied} vs true {true_dd}"
            );
        }
    }
}
