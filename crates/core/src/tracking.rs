//! Continuous tag tracking — the paper's conveyor application
//! (Sec. V-C2) as a streaming API.
//!
//! A static, calibrated antenna watches tagged items ride a conveyor with
//! known velocity. Localizing an item from one antenna is the mirror image
//! of localizing an antenna from one tag: inside a sliding window, the
//! item's positions *relative to the window start* are known
//! (`δⱼ = v·(tⱼ − t₀)`), so LION solves for the antenna position `q` in
//! that frame and the item position follows as `antenna − q`. Each window
//! yields one [`TrackPoint`]; overlapping windows trace the item through
//! the read zone.

use lion_geom::{Point3, Vec3};
use serde::{Deserialize, Serialize};

use crate::error::CoreError;
use crate::localizer::{Estimate, Localizer2d, LocalizerConfig};

/// One tracking output: where the item was at `time`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrackPoint {
    /// Timestamp of the window start (seconds, reader clock).
    pub time: f64,
    /// Estimated item position at that instant.
    pub position: Point3,
    /// The underlying localization estimate (diagnostics).
    pub estimate: Estimate,
}

/// Configuration for [`ConveyorTracker`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrackerConfig {
    /// The calibrated antenna phase center (world coordinates).
    pub antenna: Point3,
    /// Conveyor velocity (m/s, world coordinates).
    pub velocity: Vec3,
    /// Samples per sliding window. Windows shorter than the read zone
    /// trade accuracy for latency.
    pub window: usize,
    /// Samples to advance between windows.
    pub stride: usize,
    /// Localizer settings for each window solve.
    pub localizer: LocalizerConfig,
}

impl TrackerConfig {
    /// Starts a validating builder seeded with the belt-along-x defaults
    /// for an antenna at `antenna` (1 m/s belt; call
    /// [`TrackerConfigBuilder::velocity`] to change it).
    ///
    /// # Example
    ///
    /// ```
    /// use lion_core::TrackerConfig;
    /// use lion_geom::{Point3, Vec3};
    ///
    /// # fn main() -> Result<(), lion_core::CoreError> {
    /// let cfg = TrackerConfig::builder(Point3::new(0.0, 0.8, 0.0))
    ///     .velocity(Vec3::new(0.1, 0.0, 0.0))
    ///     .window(600)
    ///     .stride(100)
    ///     .build()?;
    /// assert_eq!(cfg.window, 600);
    /// assert!(
    ///     TrackerConfig::builder(Point3::ORIGIN).window(4).build().is_err()
    /// );
    /// # Ok(())
    /// # }
    /// ```
    pub fn builder(antenna: Point3) -> TrackerConfigBuilder {
        TrackerConfigBuilder {
            config: TrackerConfig::belt_along_x(antenna, 1.0),
        }
    }

    /// Checks the tracker invariants: nonzero finite velocity, window ≥ 8,
    /// stride ≥ 1. [`ConveyorTracker::new`] runs the same checks.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] naming the offending
    /// parameter.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.velocity.norm() == 0.0 || !self.velocity.norm().is_finite() {
            return Err(CoreError::InvalidConfig {
                parameter: "velocity",
                found: format!("{}", self.velocity),
            });
        }
        if self.window < 8 {
            return Err(CoreError::InvalidConfig {
                parameter: "window",
                found: format!("{}", self.window),
            });
        }
        if self.stride == 0 {
            return Err(CoreError::InvalidConfig {
                parameter: "stride",
                found: "0".to_string(),
            });
        }
        Ok(())
    }

    /// A sensible default for a belt moving along +x at `speed` m/s under
    /// an antenna at `antenna`.
    pub fn belt_along_x(antenna: Point3, speed: f64) -> Self {
        let localizer = LocalizerConfig {
            // The antenna is above/behind the belt: use it as the mirror
            // hint.
            side_hint: Some(antenna),
            ..LocalizerConfig::default()
        };
        TrackerConfig {
            antenna,
            velocity: Vec3::new(speed, 0.0, 0.0),
            // The window must span enough belt travel for the radical-line
            // geometry to be observable — the paper's scanning-range sweet
            // spot is ~0.8 m (Fig. 16/17); at 120 reads/s and 0.1 m/s this
            // is ~6 s ≈ 0.6 m of travel.
            window: 720,
            stride: 120,
            localizer,
        }
    }
}

/// Validating builder for [`TrackerConfig`]. Created by
/// [`TrackerConfig::builder`]; struct-literal construction keeps working.
#[derive(Debug, Clone)]
pub struct TrackerConfigBuilder {
    config: TrackerConfig,
}

impl TrackerConfigBuilder {
    /// Sets the conveyor velocity (m/s, world coordinates).
    pub fn velocity(mut self, velocity: Vec3) -> Self {
        self.config.velocity = velocity;
        self
    }

    /// Sets the samples per sliding window (must be ≥ 8).
    pub fn window(mut self, window: usize) -> Self {
        self.config.window = window;
        self
    }

    /// Sets the samples to advance between windows (must be ≥ 1).
    pub fn stride(mut self, stride: usize) -> Self {
        self.config.stride = stride;
        self
    }

    /// Sets the localizer settings used for each window solve.
    pub fn localizer(mut self, localizer: LocalizerConfig) -> Self {
        self.config.localizer = localizer;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// See [`TrackerConfig::validate`].
    pub fn build(self) -> Result<TrackerConfig, CoreError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// Sliding-window tracker for items on a conveyor of known velocity.
///
/// # Example
///
/// ```
/// use lion_core::tracking::{ConveyorTracker, TrackerConfig};
/// use lion_geom::Point3;
/// use std::f64::consts::{PI, TAU};
///
/// # fn main() -> Result<(), lion_core::CoreError> {
/// // Item starts at x = -0.4 and rides the belt at 0.1 m/s; a calibrated
/// // antenna sits at (0, 0.8).
/// let antenna = Point3::new(0.0, 0.8, 0.0);
/// let lambda = 299_792_458.0 / 920.625e6;
/// let reads: Vec<(f64, f64)> = (0..800)
///     .map(|i| {
///         let t = i as f64 * 0.01;
///         let p = Point3::new(-0.4 + 0.1 * t, 0.0, 0.0);
///         (t, (4.0 * PI * antenna.distance(p) / lambda) % TAU)
///     })
///     .collect();
/// let mut config = TrackerConfig::belt_along_x(antenna, 0.1);
/// config.localizer.smoothing_window = 1;
/// let tracker = ConveyorTracker::new(config)?;
/// let track = tracker.track(&reads)?;
/// assert!(!track.is_empty());
/// // First window starts at t = 0, where the item truly was at x = -0.4.
/// assert!((track[0].position.x + 0.4).abs() < 1e-3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ConveyorTracker {
    config: TrackerConfig,
}

impl ConveyorTracker {
    /// Creates a tracker.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for a zero velocity, a window
    /// below 8 samples, or a zero stride.
    pub fn new(config: TrackerConfig) -> Result<Self, CoreError> {
        config.validate()?;
        Ok(ConveyorTracker { config })
    }

    /// The configuration in use.
    pub fn config(&self) -> &TrackerConfig {
        &self.config
    }

    /// Tracks one item through the read zone from timestamped phase reads
    /// `(time, wrapped phase)`. Reads may be irregularly spaced (e.g. from
    /// an inventory layer with misses) but must be in time order.
    ///
    /// Windows whose solve fails (too few reads, degenerate geometry) are
    /// skipped; an empty result means no window was solvable.
    ///
    /// # Errors
    ///
    /// - [`CoreError::TooFewMeasurements`] when there are fewer reads than
    ///   one window,
    /// - [`CoreError::InvalidConfig`] when timestamps are not
    ///   non-decreasing or not finite.
    pub fn track(&self, reads: &[(f64, f64)]) -> Result<Vec<TrackPoint>, CoreError> {
        let cfg = &self.config;
        if reads.len() < cfg.window {
            return Err(CoreError::TooFewMeasurements {
                got: reads.len(),
                needed: cfg.window,
            });
        }
        for (i, w) in reads.windows(2).enumerate() {
            if !w[0].0.is_finite() || !w[0].1.is_finite() {
                return Err(CoreError::NonFiniteMeasurement { index: i });
            }
            if w[1].0 < w[0].0 {
                return Err(CoreError::InvalidConfig {
                    parameter: "reads",
                    found: format!("timestamps decrease at index {}", i + 1),
                });
            }
        }
        let localizer = Localizer2d::new(cfg.localizer.clone());
        let mut out = Vec::new();
        let mut start = 0;
        while start + cfg.window <= reads.len() {
            let window = &reads[start..start + cfg.window];
            let t0 = window[0].0;
            // Relative positions from the known belt motion.
            let rel: Vec<(Point3, f64)> = window
                .iter()
                .map(|&(t, phase)| (Point3::ORIGIN + cfg.velocity * (t - t0), phase))
                .collect();
            // The hint must be expressed in the window frame: antenna
            // relative to (unknown) item position — only the side matters,
            // so project the world hint onto the perpendicular space.
            if let Ok(estimate) = localizer.locate(&rel) {
                let position = Point3::new(
                    cfg.antenna.x - estimate.position.x,
                    cfg.antenna.y - estimate.position.y,
                    cfg.antenna.z - estimate.position.z,
                );
                out.push(TrackPoint {
                    time: t0,
                    position,
                    estimate,
                });
            }
            start += cfg.stride;
        }
        Ok(out)
    }

    /// Predicted item position at `query_time` from a track point,
    /// extrapolating along the belt.
    pub fn extrapolate(&self, point: &TrackPoint, query_time: f64) -> Point3 {
        point.position + self.config.velocity * (query_time - point.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{PI, TAU};

    const LAMBDA: f64 = 299_792_458.0 / 920.625e6;

    fn reads_for(antenna: Point3, start: Point3, speed: f64, n: usize, dt: f64) -> Vec<(f64, f64)> {
        (0..n)
            .map(|i| {
                let t = i as f64 * dt;
                let p = Point3::new(start.x + speed * t, start.y, start.z);
                let phase = (4.0 * PI * antenna.distance(p) / LAMBDA).rem_euclid(TAU);
                (t, phase)
            })
            .collect()
    }

    fn tracker(antenna: Point3) -> ConveyorTracker {
        let mut config = TrackerConfig::belt_along_x(antenna, 0.1);
        config.localizer.smoothing_window = 1;
        config.window = 300;
        config.stride = 100;
        ConveyorTracker::new(config).expect("valid config")
    }

    #[test]
    fn tracks_item_through_read_zone() {
        let antenna = Point3::new(0.0, 0.8, 0.0);
        let start = Point3::new(-0.5, 0.0, 0.0);
        let reads = reads_for(antenna, start, 0.1, 1000, 0.01);
        let track = tracker(antenna).track(&reads).expect("tracks");
        assert!(track.len() >= 5, "{} windows", track.len());
        for tp in &track {
            // Truth at the window start.
            let truth = Point3::new(start.x + 0.1 * tp.time, 0.0, 0.0);
            assert!(
                tp.position.to_xy().distance(truth.to_xy()) < 0.01,
                "t={}: est {} vs truth {}",
                tp.time,
                tp.position,
                truth
            );
        }
        // Track times advance by stride × dt.
        for w in track.windows(2) {
            assert!((w[1].time - w[0].time - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn handles_irregular_timestamps() {
        let antenna = Point3::new(0.0, 0.8, 0.0);
        let start = Point3::new(-0.5, 0.0, 0.0);
        let mut reads = reads_for(antenna, start, 0.1, 1000, 0.01);
        // Drop a third of the reads (simulated misses).
        let mut i = 0;
        reads.retain(|_| {
            i += 1;
            i % 3 != 0
        });
        let track = tracker(antenna).track(&reads).expect("tracks");
        assert!(!track.is_empty());
        for tp in &track {
            let truth = Point3::new(start.x + 0.1 * tp.time, 0.0, 0.0);
            assert!(tp.position.to_xy().distance(truth.to_xy()) < 0.01);
        }
    }

    #[test]
    fn extrapolation_moves_with_belt() {
        let antenna = Point3::new(0.0, 0.8, 0.0);
        let t = tracker(antenna);
        let tp = TrackPoint {
            time: 2.0,
            position: Point3::new(-0.3, 0.0, 0.0),
            estimate: Estimate {
                position: Point3::new(0.3, 0.8, 0.0),
                reference_distance: 0.9,
                reference_position: Point3::ORIGIN,
                mean_residual: 0.0,
                weighted_rms: 0.0,
                iterations: 0,
                equation_count: 10,
                lower_dimension: true,
                position_std: lion_geom::Vec3::new(0.0, 0.0, 0.0),
            },
        };
        let p = t.extrapolate(&tp, 3.0);
        assert!((p.x + 0.2).abs() < 1e-12);
        let back = t.extrapolate(&tp, 1.0);
        assert!((back.x + 0.4).abs() < 1e-12);
    }

    #[test]
    fn config_validation() {
        let antenna = Point3::new(0.0, 0.8, 0.0);
        let mut c = TrackerConfig::belt_along_x(antenna, 0.1);
        c.velocity = Vec3::new(0.0, 0.0, 0.0);
        assert!(ConveyorTracker::new(c).is_err());
        let mut c = TrackerConfig::belt_along_x(antenna, 0.1);
        c.window = 4;
        assert!(ConveyorTracker::new(c).is_err());
        let mut c = TrackerConfig::belt_along_x(antenna, 0.1);
        c.stride = 0;
        assert!(ConveyorTracker::new(c).is_err());
    }

    #[test]
    fn input_validation() {
        let antenna = Point3::new(0.0, 0.8, 0.0);
        let t = tracker(antenna);
        assert!(matches!(
            t.track(&[(0.0, 0.1); 10]),
            Err(CoreError::TooFewMeasurements { .. })
        ));
        let mut reads = reads_for(antenna, Point3::new(-0.5, 0.0, 0.0), 0.1, 400, 0.01);
        reads[100].0 = 0.0; // time goes backwards
        assert!(matches!(
            t.track(&reads),
            Err(CoreError::InvalidConfig { .. })
        ));
        let mut reads = reads_for(antenna, Point3::new(-0.5, 0.0, 0.0), 0.1, 400, 0.01);
        reads[5].1 = f64::NAN;
        assert!(matches!(
            t.track(&reads),
            Err(CoreError::NonFiniteMeasurement { .. })
        ));
    }
}
