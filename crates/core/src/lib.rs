//! # lion-core
//!
//! The LION linear localization model and phase-calibration pipeline —
//! the primary contribution of *"Pinpoint Achilles' Heel in RFID
//! Localization: Phase Calibration of RFID Antenna based on Linear
//! Localization Model"* (ICDCS 2022).
//!
//! ## The idea
//!
//! A tag at known positions `{Tᵢ}` reporting phases `{θᵢ}` pins the antenna
//! to circles/spheres centered on the `Tᵢ`. Instead of intersecting those
//! quadratic loci (or the hyperbolas of TDoA), LION subtracts pairs of
//! circle equations: the quadratic terms cancel and each pair leaves a
//! **radical line** (2D) or **radical plane** (3D) — a *linear* equation in
//! the antenna coordinates plus one extra unknown, the reference distance
//! `d_r` that absorbs the phase ambiguity. Stacking many pairs gives an
//! overdetermined linear system solved in microseconds by (weighted) least
//! squares.
//!
//! ## Pipeline
//!
//! 1. [`preprocess`] — unwrap the modulo-2π phases, smooth
//!    ([`preprocess::PhaseProfile`]),
//! 2. [`pairs`] — choose sample pairs ([`pairs::PairStrategy`]),
//! 3. [`model`] — stack the linear system,
//! 4. [`Localizer2d`] / [`Localizer3d`] — solve with the paper's weighted
//!    least squares, recovering a missing perpendicular coordinate from
//!    `d_r` when the trajectory spans fewer dimensions than the space,
//! 5. [`adaptive`] — sweep scanning range/interval and keep the estimates
//!    whose mean residual is closest to zero,
//! 6. [`calibrate`] — convert the located phase center into the antenna's
//!    center displacement and hardware phase offset.
//!
//! # Example
//!
//! ```
//! use lion_core::{Localizer2d, LocalizerConfig};
//! use lion_geom::Point3;
//! use std::f64::consts::{PI, TAU};
//!
//! # fn main() -> Result<(), lion_core::CoreError> {
//! // Simulate a tag circling the origin while an antenna at (1, 0) reads it.
//! let antenna = Point3::new(1.0, 0.0, 0.0);
//! let lambda = LocalizerConfig::default().wavelength;
//! let measurements: Vec<(Point3, f64)> = (0..200)
//!     .map(|i| {
//!         let a = i as f64 * TAU / 200.0;
//!         let p = Point3::new(0.3 * a.cos(), 0.3 * a.sin(), 0.0);
//!         (p, (4.0 * PI * antenna.distance(p) / lambda) % TAU)
//!     })
//!     .collect();
//! let est = Localizer2d::new(LocalizerConfig::paper()).locate(&measurements)?;
//! // Millimeter-level with the default smoothing window (which trades a
//! // small bias for noise robustness; set `smoothing_window = 1` for
//! // machine-precision recovery on clean data).
//! assert!(est.distance_error(antenna) < 5e-3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod calibrate;
mod error;
mod localizer;
pub mod model;
pub mod multistatic;
pub mod pairs;
pub mod preprocess;
pub mod quality;
pub mod resolve;
pub mod solver;
pub mod tracking;
pub mod window;
pub mod workspace;

pub use adaptive::{
    AdaptiveConfig, AdaptiveConfigBuilder, AdaptiveOutcome, AdaptiveTrial, SweepPlan,
};
pub use calibrate::{
    estimate_offset, fuse_calibrations, Calibration, CalibrationSpread, Calibrator,
};
pub use error::CoreError;
pub use localizer::{
    locate_window_in, Estimate, Localizer2d, Localizer3d, LocalizerConfig, LocalizerConfigBuilder,
    Weighting,
};
pub use multistatic::{MultistaticConfig, MultistaticEstimate};
pub use pairs::PairStrategy;
pub use preprocess::PhaseProfile;
pub use quality::{validate_profile, ProfileQuality, StepViolation};
pub use resolve::{IncrementalState, ResolvePath};
pub use solver::{GridConfig, GridSolver, LinearSolver, SolveSpace, Solver, SolverKind};
pub use tracking::{ConveyorTracker, TrackPoint, TrackerConfig, TrackerConfigBuilder};
pub use window::{PushOutcome, SlidingWindow, WindowDelta, WindowSample};
pub use workspace::{StageMetrics, Workspace};
