//! Ranking-parity regression between the shared-prefix sweep and the
//! preserved naive sweep on fig16-style noisy data.
//!
//! On noisy measurements the per-cell mean residuals differ by far more
//! than floating-point noise, so both sweeps must agree on which grid
//! cells are best — the property the paper's adaptive parameter
//! selection rests on. Clean-data parity (per-cell estimates) is covered
//! by the in-module tests; this one pins the *ranking*.

use std::f64::consts::{PI, TAU};

use lion_core::{AdaptiveConfig, Localizer2d, LocalizerConfig, PairStrategy};
use lion_geom::Point3;

const LAMBDA: f64 = 299_792_458.0 / 920.625e6;

/// Deterministic LCG standard-normal-ish draws (sum of 12 uniforms).
struct Lcg(u64);

impl Lcg {
    fn normal(&mut self) -> f64 {
        let mut sum = 0.0;
        for _ in 0..12 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            sum += (self.0 >> 11) as f64 / (1u64 << 53) as f64;
        }
        sum - 6.0
    }
}

/// A fig16-style workload: a tag array scanned along a ±0.75 m track in
/// front of an antenna at (0, 0.8, 0), with Gaussian phase noise.
fn fig16_measurements(target: Point3, sigma: f64, seed: u64) -> Vec<(Point3, f64)> {
    let mut rng = Lcg(seed);
    (0..=300)
        .map(|i| {
            let p = Point3::new(-0.75 + i as f64 * 0.005, 0.0, 0.0);
            let phase = 4.0 * PI * target.distance(p) / LAMBDA + sigma * rng.normal();
            (p, phase.rem_euclid(TAU))
        })
        .collect()
}

fn cfg() -> LocalizerConfig {
    LocalizerConfig {
        pair_strategy: PairStrategy::Interval { interval: 0.2 },
        side_hint: Some(Point3::new(0.0, 0.5, 0.0)),
        ..LocalizerConfig::default()
    }
}

#[test]
fn shared_and_naive_sweeps_rank_cells_identically_on_noisy_data() {
    let target = Point3::new(0.1, 0.8, 0.0);
    let loc = Localizer2d::new(cfg());
    let grid = AdaptiveConfig::default();
    for seed in [7, 42, 1234] {
        let m = fig16_measurements(target, 0.1, seed);
        let shared = loc.locate_adaptive(&m, &grid).expect("shared sweep");
        let naive = loc
            .locate_adaptive_naive_in(&m, &grid, &mut lion_core::Workspace::new())
            .expect("naive sweep");
        assert_eq!(shared.trials.len(), naive.trials.len(), "seed {seed}");
        assert_eq!(shared.skipped, naive.skipped, "seed {seed}");
        // Both sweeps pick the same best cells, in the same order.
        for (rank, (s, n)) in shared.trials.iter().zip(&naive.trials).enumerate() {
            assert_eq!(
                (s.range, s.interval),
                (n.range, n.interval),
                "seed {seed}: ranking diverged at rank {rank}"
            );
        }
        // And the averaged estimates coincide to floating-point noise.
        let d = shared.estimate.position.distance(naive.estimate.position);
        assert!(d < 1e-6, "seed {seed}: positions diverged by {d}");
    }
}

#[test]
fn shared_sweep_stays_accurate_on_noisy_data() {
    let target = Point3::new(0.1, 0.8, 0.0);
    let loc = Localizer2d::new(cfg());
    let grid = AdaptiveConfig::default();
    let m = fig16_measurements(target, 0.1, 99);
    let outcome = loc.locate_adaptive(&m, &grid).expect("sweep succeeds");
    // The paper reports ~0.04 m median error under comparable noise;
    // allow generous headroom while still catching gross regressions.
    let err = outcome.estimate.distance_error(target);
    assert!(err < 0.15, "noisy-sweep error {err}");
}
