//! Property-based tests of the LION pipeline invariants.

use proptest::prelude::*;
use std::f64::consts::{PI, TAU};

use lion_core::preprocess::{unwrap_phases, wrap_phase, PhaseProfile};
use lion_core::{
    GridConfig, GridSolver, Localizer2d, Localizer3d, LocalizerConfig, PairStrategy, SolveSpace,
    Workspace,
};
use lion_geom::Point3;

const LAMBDA: f64 = 299_792_458.0 / 920.625e6;

fn phase_of(target: Point3, p: Point3) -> f64 {
    (4.0 * PI * target.distance(p) / LAMBDA).rem_euclid(TAU)
}

fn clean_config() -> LocalizerConfig {
    LocalizerConfig {
        smoothing_window: 1,
        pair_strategy: PairStrategy::Interval { interval: 0.15 },
        ..LocalizerConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn unwrap_inverts_wrapping_of_smooth_profiles(
        start in -10.0_f64..10.0,
        steps in proptest::collection::vec(-2.5_f64..2.5, 1..200),
    ) {
        // Any profile whose per-sample step is < π survives the wrap/unwrap
        // round trip up to a constant 2π multiple.
        let mut truth = vec![start];
        for s in &steps {
            let prev = *truth.last().expect("nonempty");
            truth.push(prev + s);
        }
        let wrapped: Vec<f64> = truth.iter().map(|&t| wrap_phase(t)).collect();
        let unwrapped = unwrap_phases(&wrapped);
        let k = (unwrapped[0] - truth[0]) / TAU;
        prop_assert!((k - k.round()).abs() < 1e-9);
        for (u, t) in unwrapped.iter().zip(&truth) {
            prop_assert!((u - t - k.round() * TAU).abs() < 1e-9, "{u} vs {t}");
        }
    }

    #[test]
    fn unwrapped_jumps_are_below_pi(
        wrapped in proptest::collection::vec(0.0_f64..TAU, 2..150),
    ) {
        let un = unwrap_phases(&wrapped);
        for w in un.windows(2) {
            prop_assert!((w[1] - w[0]).abs() < PI + 1e-12);
        }
        // Re-wrapping returns the original values.
        for (u, w) in un.iter().zip(&wrapped) {
            let d = (wrap_phase(*u) - w).abs();
            prop_assert!(d < 1e-9 || (TAU - d) < 1e-9);
        }
    }

    #[test]
    fn noise_free_lion_recovers_random_2d_geometry(
        tx in -1.0_f64..1.0,
        ty in 0.5_f64..1.5,
        radius in 0.2_f64..0.5,
        phase_offset in 0.0_f64..TAU,
    ) {
        // Circular scan, antenna anywhere in front: exact recovery.
        let target = Point3::new(tx, ty, 0.0);
        let m: Vec<(Point3, f64)> = (0..240)
            .map(|i| {
                let a = i as f64 * TAU / 240.0;
                let p = Point3::new(radius * a.cos(), radius * a.sin(), 0.0);
                (p, wrap_phase(phase_of(target, p) + phase_offset))
            })
            .collect();
        let est = Localizer2d::new(clean_config()).locate(&m).expect("locates");
        prop_assert!(
            est.distance_error(target) < 1e-5,
            "error {} for target {target}",
            est.distance_error(target)
        );
        // Constant hardware offsets must not bias the estimate at all.
    }

    #[test]
    fn noise_free_lion_recovers_linear_scan_2d(
        tx in -0.3_f64..0.3,
        ty in 0.4_f64..1.5,
    ) {
        let target = Point3::new(tx, ty, 0.0);
        let m: Vec<(Point3, f64)> = (0..300)
            .map(|i| {
                let p = Point3::new(-0.45 + i as f64 * 0.003, 0.0, 0.0);
                (p, phase_of(target, p))
            })
            .collect();
        let mut cfg = clean_config();
        cfg.side_hint = Some(Point3::new(0.0, 1.0, 0.0));
        let est = Localizer2d::new(cfg).locate(&m).expect("locates");
        prop_assert!(est.lower_dimension);
        prop_assert!(
            est.distance_error(target) < 1e-5,
            "error {}",
            est.distance_error(target)
        );
    }

    #[test]
    fn noise_free_lion_recovers_3d_from_planar_circle(
        tx in -0.3_f64..0.3,
        ty in -0.3_f64..0.3,
        tz in 0.4_f64..1.2,
    ) {
        let target = Point3::new(tx, ty, tz);
        let m: Vec<(Point3, f64)> = (0..300)
            .map(|i| {
                let a = i as f64 * TAU / 300.0;
                let p = Point3::new(0.4 * a.cos(), 0.4 * a.sin(), 0.0);
                (p, phase_of(target, p))
            })
            .collect();
        let mut cfg = clean_config();
        cfg.side_hint = Some(Point3::new(0.0, 0.0, 1.0));
        let est = Localizer3d::new(cfg).locate(&m).expect("locates");
        prop_assert!(est.lower_dimension);
        prop_assert!(
            est.distance_error(target) < 1e-4,
            "error {}",
            est.distance_error(target)
        );
    }

    #[test]
    fn estimate_reference_distance_matches_geometry(
        tx in -0.5_f64..0.5,
        ty in 0.5_f64..1.2,
    ) {
        let target = Point3::new(tx, ty, 0.0);
        let m: Vec<(Point3, f64)> = (0..200)
            .map(|i| {
                let a = i as f64 * TAU / 200.0;
                let p = Point3::new(0.3 * a.cos(), 0.3 * a.sin(), 0.0);
                (p, phase_of(target, p))
            })
            .collect();
        let est = Localizer2d::new(clean_config()).locate(&m).expect("locates");
        let true_dr = target.distance(est.reference_position);
        prop_assert!((est.reference_distance - true_dr).abs() < 1e-5);
    }

    #[test]
    fn profile_restrict_preserves_order_and_values(
        min_x in -0.5_f64..0.0,
        max_x in 0.0_f64..0.5,
    ) {
        let m: Vec<(Point3, f64)> = (0..100)
            .map(|i| (Point3::new(-0.5 + i as f64 * 0.01, 0.0, 0.0), 0.05 * i as f64))
            .collect();
        let profile = PhaseProfile::from_wrapped(&m, LAMBDA).expect("valid");
        let r = profile.restrict_x(min_x, max_x);
        prop_assert!(r.len() <= profile.len());
        for w in r.positions().windows(2) {
            prop_assert!(w[0].x <= w[1].x);
        }
        for p in r.positions() {
            prop_assert!(p.x >= min_x - 1e-12 && p.x <= max_x + 1e-12);
        }
    }

    #[test]
    fn pair_strategies_respect_index_order(
        n in 10_usize..200,
        interval in 0.01_f64..0.5,
    ) {
        let positions: Vec<Point3> =
            (0..n).map(|i| Point3::new(i as f64 * 0.005, 0.0, 0.0)).collect();
        for strategy in [
            PairStrategy::Interval { interval },
            PairStrategy::AllWithMinSeparation { min_separation: interval, max_pairs: 500 },
        ] {
            for (i, j) in strategy.pairs(&positions) {
                prop_assert!(i < j);
                prop_assert!(j < n);
                prop_assert!(positions[i].distance(positions[j]) >= interval - 1e-12);
            }
        }
    }

    #[test]
    fn mirror_candidates_are_symmetric(
        tx in -0.2_f64..0.2,
        ty in 0.4_f64..1.0,
    ) {
        // Hinting the wrong side must return the exact mirror image.
        let target = Point3::new(tx, ty, 0.0);
        let m: Vec<(Point3, f64)> = (0..200)
            .map(|i| {
                let p = Point3::new(-0.4 + i as f64 * 0.004, 0.0, 0.0);
                (p, phase_of(target, p))
            })
            .collect();
        let mut up = clean_config();
        up.side_hint = Some(Point3::new(0.0, 1.0, 0.0));
        let mut down = clean_config();
        down.side_hint = Some(Point3::new(0.0, -1.0, 0.0));
        let e_up = Localizer2d::new(up).locate(&m).expect("locates");
        let e_down = Localizer2d::new(down).locate(&m).expect("locates");
        prop_assert!((e_up.position.x - e_down.position.x).abs() < 1e-7);
        prop_assert!((e_up.position.y + e_down.position.y).abs() < 1e-7);
    }

    #[test]
    fn grid_refinement_never_ranks_below_the_coarse_pass(
        tx in -0.6_f64..0.6,
        ty in 0.5_f64..1.4,
        sigma in 0.0_f64..0.3,
        seed in 0_u64..1u64 << 32,
    ) {
        // Each refinement level carries its incumbent best forward, so
        // the traced per-level score sequence must be non-increasing
        // (up to the deterministic tie band) for any geometry and any
        // phase-noise level — the coarse pass is never beaten by a
        // *worse* refined candidate.
        let target = Point3::new(tx, ty, 0.0);
        let mut lcg = seed.wrapping_mul(2).wrapping_add(1);
        let mut noise = move || {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((lcg >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 2.0
        };
        let m: Vec<(Point3, f64)> = (0..200)
            .map(|i| {
                let a = i as f64 * TAU / 200.0;
                let p = Point3::new(0.3 * a.cos(), 0.3 * a.sin(), 0.0);
                (p, wrap_phase(phase_of(target, p) + sigma * noise()))
            })
            .collect();
        let cfg = clean_config();
        let mut profile = PhaseProfile::from_wrapped(&m, cfg.wavelength).expect("valid");
        profile.smooth(cfg.smoothing_window);
        let mut scores = Vec::new();
        GridSolver::default()
            .solve_profile_traced(&profile, &cfg, SolveSpace::TwoD, &mut Workspace::new(), &mut scores)
            .expect("grid solves");
        prop_assert_eq!(scores.len(), GridConfig::default().levels);
        for w in scores.windows(2) {
            prop_assert!(
                w[1] <= w[0] * (1.0 + 1e-9) + 1e-18,
                "refinement regressed: {:?}",
                scores
            );
        }
        prop_assert!(
            *scores.last().expect("levels > 0") <= scores[0] * (1.0 + 1e-9) + 1e-18,
            "final level ranks below the coarse pass: {:?}",
            scores
        );
    }
}
