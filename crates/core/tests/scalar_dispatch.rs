//! Forced-dispatch hook: CI exercises the scalar fallback end to end.
//!
//! Every SIMD kernel ships with a bit-identical scalar twin, and
//! `lion_linalg::simd::force` pins the dispatcher to one backend. This
//! suite runs the full batch and windowed localization pipelines twice
//! — once auto-dispatched (AVX2/NEON where available), once forced to
//! scalar — and demands bitwise-equal estimates. On hosts without SIMD
//! the two runs are trivially the same path; on SIMD hosts this is the
//! end-to-end proof that vectorization never changes a solve. One test
//! binary, one test fn: `force` is process-global state.

use std::f64::consts::{PI, TAU};

use lion_core::{
    locate_window_in, Estimate, Localizer2d, LocalizerConfig, PairStrategy, SlidingWindow,
    SolveSpace, Workspace,
};
use lion_geom::Point3;
use lion_linalg::simd::{self, Backend};

const LAMBDA: f64 = 299_792_458.0 / 920.625e6;

fn linear_scan(target: Point3, half_range: f64, step: f64) -> Vec<(Point3, f64)> {
    let n = (2.0 * half_range / step) as usize;
    (0..=n)
        .map(|i| {
            let p = Point3::new(-half_range + i as f64 * step, 0.0, 0.0);
            (p, (4.0 * PI * target.distance(p) / LAMBDA).rem_euclid(TAU))
        })
        .collect()
}

fn assert_bit_identical(auto: &Estimate, scalar: &Estimate, path: &str) {
    let pairs = [
        ("position.x", auto.position.x, scalar.position.x),
        ("position.y", auto.position.y, scalar.position.y),
        ("position.z", auto.position.z, scalar.position.z),
        (
            "reference_distance",
            auto.reference_distance,
            scalar.reference_distance,
        ),
        ("mean_residual", auto.mean_residual, scalar.mean_residual),
        ("weighted_rms", auto.weighted_rms, scalar.weighted_rms),
        ("position_std.x", auto.position_std.x, scalar.position_std.x),
        ("position_std.y", auto.position_std.y, scalar.position_std.y),
        ("position_std.z", auto.position_std.z, scalar.position_std.z),
    ];
    for (name, a, s) in pairs {
        assert_eq!(
            a.to_bits(),
            s.to_bits(),
            "{path}: {name} differs between auto ({a}) and forced-scalar ({s}) dispatch"
        );
    }
    assert_eq!(auto.iterations, scalar.iterations, "{path}: iterations");
    assert_eq!(
        auto.equation_count, scalar.equation_count,
        "{path}: equation_count"
    );
}

#[test]
fn forced_scalar_pipeline_is_bit_identical() {
    let target = Point3::new(0.1, 0.8, 0.0);
    let m = linear_scan(target, 0.6, 0.005);
    let config = LocalizerConfig {
        smoothing_window: 9,
        pair_strategy: PairStrategy::Interval { interval: 0.2 },
        side_hint: Some(Point3::new(0.0, 0.5, 0.0)),
        ..LocalizerConfig::default()
    };
    let localizer = Localizer2d::new(config.clone());
    let mut ws = Workspace::new();

    // Batch path.
    let auto = localizer.locate_in(&m, &mut ws).expect("auto solve");
    simd::force(Some(Backend::Scalar));
    let scalar = localizer.locate_in(&m, &mut ws).expect("scalar solve");
    simd::force(None);
    assert_bit_identical(&auto, &scalar, "batch locate_in");
    // The clean synthetic scan must still localize; guards against both
    // runs agreeing on garbage.
    assert!(auto.distance_error(target) < 5e-2);

    // Windowed (SoA-staged) path.
    let mut window = SlidingWindow::new(128).expect("valid capacity");
    for (i, &(p, phase)) in m.iter().take(128).enumerate() {
        window.push(i as f64 * 0.01, p, phase);
    }
    let auto = locate_window_in(&config, SolveSpace::TwoD, &window, &mut ws).expect("auto solve");
    simd::force(Some(Backend::Scalar));
    let scalar =
        locate_window_in(&config, SolveSpace::TwoD, &window, &mut ws).expect("scalar solve");
    simd::force(None);
    assert_bit_identical(&auto, &scalar, "windowed locate_window_in");
}
