//! The steady-state shared-prefix sweep must not touch the heap.
//!
//! A counting global allocator wraps the system allocator; after two
//! warm-up sweeps size every workspace buffer and intern the telemetry
//! keys, a third sweep over the same workload must perform **zero**
//! allocations. Runs single-threaded by construction (one test in this
//! binary), so the counter observes only the sweep.

use std::alloc::{GlobalAlloc, Layout, System};
use std::f64::consts::{PI, TAU};
use std::sync::atomic::{AtomicU64, Ordering};

use lion_core::{
    locate_window_in, AdaptiveConfig, AdaptiveOutcome, Localizer2d, LocalizerConfig, PairStrategy,
    SlidingWindow, SolveSpace, Workspace,
};
use lion_geom::Point3;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const LAMBDA: f64 = 299_792_458.0 / 920.625e6;

fn linear_scan(target: Point3, half_range: f64, step: f64) -> Vec<(Point3, f64)> {
    let n = (2.0 * half_range / step) as usize;
    (0..=n)
        .map(|i| {
            let p = Point3::new(-half_range + i as f64 * step, 0.0, 0.0);
            (p, (4.0 * PI * target.distance(p) / LAMBDA).rem_euclid(TAU))
        })
        .collect()
}

#[test]
fn steady_state_sweep_allocates_nothing() {
    let target = Point3::new(0.1, 0.8, 0.0);
    let m = linear_scan(target, 0.6, 0.005);
    let config = LocalizerConfig {
        smoothing_window: 9,
        pair_strategy: PairStrategy::Interval { interval: 0.2 },
        side_hint: Some(Point3::new(0.0, 0.5, 0.0)),
        ..LocalizerConfig::default()
    };
    let localizer = Localizer2d::new(config);
    let grid = AdaptiveConfig::default();
    let mut ws = Workspace::new();
    let mut out = AdaptiveOutcome::default();
    // Two warm-up sweeps: the first grows every buffer, the second
    // verifies the workload itself is stable (and interns the global
    // telemetry counter/histogram keys).
    for _ in 0..2 {
        localizer
            .locate_adaptive_into(&m, &grid, &mut ws, &mut out)
            .expect("clean sweep succeeds");
    }
    assert_eq!(out.trials.len(), 36, "every grid cell must solve");

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    localizer
        .locate_adaptive_into(&m, &grid, &mut ws, &mut out)
        .expect("clean sweep succeeds");
    let during = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert_eq!(
        during, 0,
        "steady-state adaptive sweep performed {during} heap allocations"
    );
    // Window-9 smoothing biases clean data slightly; only sanity here.
    assert!(out.estimate.distance_error(target) < 5e-2);

    // The SoA-staged windowed path: in steady state, pushing one read
    // into a full sliding window and re-running the windowed locate
    // (which stages the window into the workspace's SoA sample lanes,
    // unwraps, smooths, and solves) must also leave the heap untouched.
    let config = localizer.config().clone();
    let mut window = SlidingWindow::new(128).expect("valid capacity");
    let mut feed = m.iter().cycle();
    let mut tick = 0.0_f64;
    let mut push_one = |window: &mut SlidingWindow| {
        let &(p, phase) = feed.next().expect("endless feed");
        tick += 0.01;
        window.push(tick, p, phase);
    };
    for _ in 0..128 {
        push_one(&mut window);
    }
    for _ in 0..2 {
        locate_window_in(&config, SolveSpace::TwoD, &window, &mut ws).expect("clean window solves");
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    push_one(&mut window);
    let est =
        locate_window_in(&config, SolveSpace::TwoD, &window, &mut ws).expect("clean window solves");
    let during = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert_eq!(
        during, 0,
        "steady-state windowed locate performed {during} heap allocations"
    );
    assert!(est.distance_error(target) < 1e-1);
}
