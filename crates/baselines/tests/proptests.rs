//! Property-based tests for the baseline localizers.

use proptest::prelude::*;
use std::f64::consts::{PI, TAU};

use lion_baselines::hologram::{self, HologramConfig, SearchVolume};
use lion_baselines::parabola::{self, ParabolaConfig};
use lion_baselines::tagspin::{self, TagspinConfig};
use lion_geom::Point3;

const LAMBDA: f64 = 299_792_458.0 / 920.625e6;

fn phase_of(target: Point3, p: Point3) -> f64 {
    (4.0 * PI * target.distance(p) / LAMBDA).rem_euclid(TAU)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn hologram_peak_stays_inside_the_volume_and_finds_truth(
        tx in -0.3_f64..0.3,
        ty in 0.5_f64..1.0,
    ) {
        let target = Point3::new(tx, ty, 0.0);
        let m: Vec<(Point3, f64)> = (0..40)
            .map(|i| {
                let a = i as f64 * TAU / 40.0;
                let p = Point3::new(0.3 * a.cos(), 0.3 * a.sin(), 0.0);
                (p, phase_of(target, p))
            })
            .collect();
        let volume = SearchVolume::square_2d(target, 0.04);
        let cfg = HologramConfig {
            grid_size: 0.004,
            wavelength: LAMBDA,
            augmented: true,
        };
        let est = hologram::locate(&m, volume, &cfg).expect("locates");
        prop_assert!((est.position.x - target.x).abs() <= 0.04 + 1e-9);
        prop_assert!((est.position.y - target.y).abs() <= 0.04 + 1e-9);
        prop_assert!(est.position.distance(target) < 0.008, "error {}", est.position.distance(target));
        prop_assert!((0.0..=1.0 + 1e-9).contains(&est.likelihood));
    }

    #[test]
    fn hologram_likelihood_invariant_to_global_phase_shift(
        tx in -0.2_f64..0.2,
        shift in 0.0_f64..TAU,
    ) {
        let target = Point3::new(tx, 0.7, 0.0);
        let m: Vec<(Point3, f64)> = (0..30)
            .map(|i| {
                let a = i as f64 * TAU / 30.0;
                let p = Point3::new(0.25 * a.cos(), 0.25 * a.sin(), 0.0);
                (p, phase_of(target, p))
            })
            .collect();
        let shifted: Vec<(Point3, f64)> = m
            .iter()
            .map(|&(p, t)| (p, (t + shift).rem_euclid(TAU)))
            .collect();
        let volume = SearchVolume::square_2d(target, 0.03);
        let cfg = HologramConfig {
            grid_size: 0.005,
            wavelength: LAMBDA,
            augmented: false,
        };
        let a = hologram::locate(&m, volume, &cfg).expect("locates");
        let b = hologram::locate(&shifted, volume, &cfg).expect("locates");
        // Differential scoring: a constant offset moves nothing.
        prop_assert!(a.position.distance(b.position) < 1e-9);
        prop_assert!((a.likelihood - b.likelihood).abs() < 1e-9);
    }

    #[test]
    fn parabola_vertex_matches_target_in_small_angle_regime(
        x0 in -0.05_f64..0.05,
        depth in 0.8_f64..1.5,
    ) {
        let target = Point3::new(x0, depth, 0.0);
        let m: Vec<(Point3, f64)> = (0..120)
            .map(|i| {
                let p = Point3::new(-0.12 + i as f64 * 0.002, 0.0, 0.0);
                (p, phase_of(target, p))
            })
            .collect();
        let cfg = ParabolaConfig {
            smoothing_window: 1,
            ..ParabolaConfig::default()
        };
        let est = parabola::locate(&m, &cfg).expect("locates");
        prop_assert!((est.vertex_x - x0).abs() < 0.004, "vertex {} vs {}", est.vertex_x, x0);
        prop_assert!(
            (est.perpendicular_distance - depth).abs() < 0.08 * depth,
            "depth {} vs {}",
            est.perpendicular_distance,
            depth
        );
    }

    #[test]
    fn tagspin_azimuth_tracks_target_direction(
        phi in 0.0_f64..TAU,
        range in 0.6_f64..1.2,
    ) {
        let target = Point3::new(range * phi.cos(), range * phi.sin(), 0.0);
        let m: Vec<(Point3, f64)> = (0..360)
            .map(|i| {
                let a = i as f64 * TAU / 360.0;
                let p = Point3::new(0.15 * a.cos(), 0.15 * a.sin(), 0.0);
                (p, phase_of(target, p))
            })
            .collect();
        let cfg = TagspinConfig {
            smoothing_window: 1,
            ..TagspinConfig::default()
        };
        let est = tagspin::locate(&m, &cfg).expect("locates");
        let d = lion_linalg::stats::circular_diff(est.azimuth, phi).abs();
        prop_assert!(d < 0.02, "azimuth error {d} at phi {phi}");
        prop_assert!((est.harmonic_consistency - 1.0).abs() < 0.1);
    }
}
