//! The parabola-fit baseline (paper Sec. VI, ref \[8\]).
//!
//! For a tag moving along a straight line at perpendicular distance `y₀`
//! from the antenna, the unwrapped phase is
//!
//! ```text
//! θ(x) = (4π/λ)·√((x − x₀)² + y₀²)
//!      ≈ (4π/λ)·(y₀ + (x − x₀)²/(2·y₀))        for |x − x₀| ≪ y₀,
//! ```
//!
//! i.e. approximately a parabola with vertex at the closest-approach
//! coordinate `x₀` and curvature `4π/(λ·y₀)`. Fitting a quadratic gives a
//! very fast 2D estimate — but only for linear scans, only in 2D, and with
//! an accuracy that degrades as the scan range grows beyond the
//! small-angle regime (the limitations the paper cites when motivating
//! LION).

use lion_core::PhaseProfile;
use lion_geom::Point3;
use lion_linalg::poly::Polynomial;
use serde::{Deserialize, Serialize};

use crate::BaselineError;

/// Configuration for the parabola fit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParabolaConfig {
    /// Carrier wavelength in meters.
    pub wavelength: f64,
    /// Moving-average window for the unwrapped phases.
    pub smoothing_window: usize,
    /// Maximum perpendicular deviation (meters) before the trajectory is
    /// rejected as non-linear.
    pub linearity_tolerance: f64,
}

impl Default for ParabolaConfig {
    fn default() -> Self {
        ParabolaConfig {
            wavelength: 299_792_458.0 / 920.625e6,
            smoothing_window: 9,
            linearity_tolerance: 1e-3,
        }
    }
}

/// Result of a parabola-fit localization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParabolaEstimate {
    /// Estimated target position. The perpendicular offset is signed
    /// positive (the method cannot tell which side the antenna is on).
    pub position: Point3,
    /// Closest-approach coordinate along the scan direction.
    pub vertex_x: f64,
    /// Estimated perpendicular distance `y₀`.
    pub perpendicular_distance: f64,
    /// RMS residual of the quadratic fit (radians) — large values flag
    /// departure from the parabolic regime.
    pub fit_rms: f64,
}

/// Locates a target from a linear scan by fitting a parabola to the
/// unwrapped phase profile.
///
/// The scan is assumed to run along the x-axis (constant y and z); pass
/// measurements in scan order.
///
/// # Errors
///
/// - preprocessing errors from [`PhaseProfile::from_wrapped`],
/// - [`BaselineError::UnsupportedGeometry`] when the trajectory is not a
///   straight x-axis-parallel line within `linearity_tolerance`,
/// - [`BaselineError::UnsupportedGeometry`] when the fitted curvature is
///   not positive (the vertex is outside the scanned range),
/// - numeric errors from the polynomial fit.
pub fn locate(
    measurements: &[(Point3, f64)],
    config: &ParabolaConfig,
) -> Result<ParabolaEstimate, BaselineError> {
    let mut profile = PhaseProfile::from_wrapped(measurements, config.wavelength)?;
    profile.smooth(config.smoothing_window);
    let positions = profile.positions();
    // The scan must be an x-axis-parallel line.
    let y0_line = positions[0].y;
    let z0_line = positions[0].z;
    for p in positions {
        if (p.y - y0_line).abs() > config.linearity_tolerance
            || (p.z - z0_line).abs() > config.linearity_tolerance
        {
            return Err(BaselineError::UnsupportedGeometry {
                detail: "parabola fit requires a straight scan parallel to the x-axis".to_string(),
            });
        }
    }
    let xs: Vec<f64> = positions.iter().map(|p| p.x).collect();
    let poly = Polynomial::fit(&xs, profile.phases(), 2)?;
    let Some((vertex_x, _)) = poly.vertex() else {
        return Err(BaselineError::UnsupportedGeometry {
            detail: "fitted phase profile has no parabolic vertex".to_string(),
        });
    };
    let curvature = poly.quadratic_curvature().unwrap_or(0.0);
    if curvature <= 0.0 {
        return Err(BaselineError::UnsupportedGeometry {
            detail: format!("non-positive phase curvature {curvature:.3}"),
        });
    }
    // θ'' = 4π/(λ·y₀)  ⇒  y₀ = 4π/(λ·θ'').
    let y0 = 4.0 * std::f64::consts::PI / (config.wavelength * curvature);
    let residuals: Vec<f64> = xs
        .iter()
        .zip(profile.phases())
        .map(|(&x, &t)| poly.eval(x) - t)
        .collect();
    let fit_rms = lion_linalg::stats::rms(&residuals).unwrap_or(0.0);
    Ok(ParabolaEstimate {
        position: Point3::new(vertex_x, y0_line + y0, z0_line),
        vertex_x,
        perpendicular_distance: y0,
        fit_rms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{PI, TAU};

    const LAMBDA: f64 = 299_792_458.0 / 920.625e6;

    fn scan(target: Point3, half_range: f64, n: usize) -> Vec<(Point3, f64)> {
        (0..n)
            .map(|i| {
                let x = -half_range + 2.0 * half_range * i as f64 / (n - 1) as f64;
                let p = Point3::new(x, 0.0, 0.0);
                let phase = (4.0 * PI * target.distance(p) / LAMBDA).rem_euclid(TAU);
                (p, phase)
            })
            .collect()
    }

    fn cfg() -> ParabolaConfig {
        ParabolaConfig {
            smoothing_window: 1,
            ..ParabolaConfig::default()
        }
    }

    #[test]
    fn recovers_vertex_and_depth_in_small_angle_regime() {
        // Narrow scan (±0.15 m) against a 1 m deep target: the parabolic
        // approximation is excellent.
        let target = Point3::new(0.05, 1.0, 0.0);
        let m = scan(target, 0.15, 120);
        let est = locate(&m, &cfg()).unwrap();
        assert!((est.vertex_x - 0.05).abs() < 2e-3, "x {}", est.vertex_x);
        assert!(
            (est.perpendicular_distance - 1.0).abs() < 0.03,
            "depth {}",
            est.perpendicular_distance
        );
        assert!(est.position.distance(target) < 0.03);
    }

    #[test]
    fn accuracy_degrades_with_wide_scans() {
        // The wide-scan error must exceed the narrow-scan error: the
        // quadratic Taylor expansion breaks down — the limitation the
        // paper cites for ref [8].
        let target = Point3::new(0.0, 0.8, 0.0);
        let narrow = locate(&scan(target, 0.1, 100), &cfg()).unwrap();
        let wide = locate(&scan(target, 0.7, 100), &cfg()).unwrap();
        let e_narrow = narrow.position.distance(target);
        let e_wide = wide.position.distance(target);
        assert!(
            e_wide > 2.0 * e_narrow,
            "wide {e_wide} should be much worse than narrow {e_narrow}"
        );
    }

    #[test]
    fn rejects_non_linear_trajectory() {
        let target = Point3::new(0.5, 0.5, 0.0);
        let m: Vec<(Point3, f64)> = (0..100)
            .map(|i| {
                let a = i as f64 * TAU / 100.0;
                let p = Point3::new(0.3 * a.cos(), 0.3 * a.sin(), 0.0);
                let phase = (4.0 * PI * target.distance(p) / LAMBDA).rem_euclid(TAU);
                (p, phase)
            })
            .collect();
        assert!(matches!(
            locate(&m, &cfg()),
            Err(BaselineError::UnsupportedGeometry { .. })
        ));
    }

    #[test]
    fn rejects_vertex_outside_scan() {
        // Target far to the side: phase is monotonic over the scan, the
        // fitted curvature can even be negative.
        let target = Point3::new(5.0, 0.3, 0.0);
        let m = scan(target, 0.2, 80);
        let r = locate(&m, &cfg());
        match r {
            Err(BaselineError::UnsupportedGeometry { .. }) => {}
            Ok(est) => {
                // If the fit happens to have positive curvature, the
                // estimate must be visibly wrong — flagged by fit quality.
                assert!(est.position.distance(target) > 0.5);
            }
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn scan_at_height_keeps_plane() {
        let target = Point3::new(0.0, 1.0, 0.5);
        let m: Vec<(Point3, f64)> = (0..100)
            .map(|i| {
                let p = Point3::new(-0.15 + i as f64 * 0.003, 0.2, 0.5);
                let phase = (4.0 * PI * target.distance(p) / LAMBDA).rem_euclid(TAU);
                (p, phase)
            })
            .collect();
        let est = locate(&m, &cfg()).unwrap();
        assert_eq!(est.position.z, 0.5);
        // Depth estimate is relative to the scan line (distance in the
        // plane containing the line and the target).
        assert!(est.perpendicular_distance > 0.5);
    }

    #[test]
    fn fit_rms_reported() {
        let target = Point3::new(0.0, 1.0, 0.0);
        let est = locate(&scan(target, 0.12, 100), &cfg()).unwrap();
        assert!(est.fit_rms >= 0.0 && est.fit_rms < 0.2);
    }
}
