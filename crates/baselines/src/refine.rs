//! Coarse-to-fine hologram search: a fairness upgrade for the DAH
//! baseline.
//!
//! The paper times DAH at its naive full-grid cost. An obvious
//! optimization (which the paper does not consider, but a production DAH
//! would use) is hierarchical refinement: scan a coarse grid, then rescan
//! a shrinking window around the peak at progressively finer grids. The
//! cost drops from `O((extent/grid)^dim)` to a few small scans — though it
//! can lock onto the wrong interference fringe if the coarse level is
//! wider than the fringe spacing, which is why the implementation keeps
//! each refinement window several coarse cells wide.
//!
//! Including this here makes the LION-vs-DAH timing comparison honest in
//! both directions: `run_experiments ablation_refine` shows that even the
//! *optimized* hologram remains orders of magnitude slower than LION's
//! linear solve at equal accuracy.

use lion_geom::Point3;

use crate::hologram::{build_hologram, HologramConfig, HologramEstimate, SearchVolume};
use crate::BaselineError;

/// Configuration for the hierarchical search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefineConfig {
    /// Grid size of the coarsest level (meters). Should stay below half
    /// the interference fringe spacing to avoid locking a wrong lobe;
    /// λ/4 ≈ 8 cm is a safe default at UHF.
    pub coarse_grid: f64,
    /// Grid size of the finest level (meters) — the output resolution.
    pub fine_grid: f64,
    /// Grid shrink factor between levels (e.g. 4 → each level is 4× finer).
    pub shrink: f64,
    /// Half-width of each refinement window, in *current-level* cells.
    pub window_cells: f64,
    /// Underlying hologram settings (wavelength, augmentation).
    pub hologram: HologramConfig,
}

impl Default for RefineConfig {
    fn default() -> Self {
        RefineConfig {
            coarse_grid: 0.02,
            fine_grid: 0.001,
            shrink: 4.0,
            window_cells: 3.0,
            hologram: HologramConfig::default(),
        }
    }
}

/// Runs the coarse-to-fine search. Returns the finest-level estimate with
/// `cells_evaluated` accumulated across all levels.
///
/// # Errors
///
/// - [`BaselineError::InvalidParameter`] for inconsistent grids
///   (`fine_grid > coarse_grid`, non-positive values, `shrink ≤ 1`),
/// - all errors of [`build_hologram`].
pub fn locate_refined(
    measurements: &[(Point3, f64)],
    volume: SearchVolume,
    config: &RefineConfig,
) -> Result<HologramEstimate, BaselineError> {
    let grids_ok = config.coarse_grid > 0.0
        && config.fine_grid > 0.0
        && config.fine_grid <= config.coarse_grid
        && config.shrink > 1.0
        && config.window_cells >= 1.0;
    if !grids_ok {
        return Err(BaselineError::InvalidParameter {
            parameter: "refine config",
            found: format!("{config:?}"),
        });
    }
    let mut level_volume = volume;
    let mut grid = config.coarse_grid;
    let mut total_cells = 0usize;
    let last;
    loop {
        let cfg = HologramConfig {
            grid_size: grid,
            ..config.hologram
        };
        let (_, estimate) = build_hologram(measurements, level_volume, &cfg)?;
        total_cells += estimate.cells_evaluated;
        let peak = estimate.position;
        if grid <= config.fine_grid {
            last = HologramEstimate {
                cells_evaluated: total_cells,
                ..estimate
            };
            break;
        }
        // Shrink around the peak; never below the next grid level's window.
        let next_grid = (grid / config.shrink).max(config.fine_grid);
        let half = config.window_cells * grid;
        level_volume = SearchVolume {
            center: peak,
            half_extent_x: half,
            half_extent_y: half,
            half_extent_z: if volume.half_extent_z > 0.0 {
                half
            } else {
                0.0
            },
        };
        grid = next_grid;
    }
    Ok(last)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{PI, TAU};

    const LAMBDA: f64 = 299_792_458.0 / 920.625e6;

    fn measurements(target: Point3, n: usize) -> Vec<(Point3, f64)> {
        (0..n)
            .map(|i| {
                let a = i as f64 * TAU / n as f64;
                let p = Point3::new(0.3 * a.cos(), 0.3 * a.sin(), 0.0);
                let phase = (4.0 * PI * target.distance(p) / LAMBDA).rem_euclid(TAU);
                (p, phase)
            })
            .collect()
    }

    fn cfg() -> RefineConfig {
        RefineConfig {
            hologram: HologramConfig {
                wavelength: LAMBDA,
                augmented: false,
                ..HologramConfig::default()
            },
            ..RefineConfig::default()
        }
    }

    #[test]
    fn refined_matches_full_grid_accuracy_at_fraction_of_cost() {
        let target = Point3::new(0.45, 0.55, 0.0);
        let m = measurements(target, 40);
        let volume = SearchVolume::square_2d(Point3::new(0.4, 0.5, 0.0), 0.15);
        let refined = locate_refined(&m, volume, &cfg()).unwrap();
        let full_cfg = HologramConfig {
            grid_size: 0.001,
            wavelength: LAMBDA,
            augmented: false,
        };
        let (_, full) = build_hologram(&m, volume, &full_cfg).unwrap();
        assert!(
            refined.position.distance(full.position) < 0.003,
            "refined {} vs full {}",
            refined.position,
            full.position
        );
        assert!(refined.position.distance(target) < 0.003);
        // Cost: the full grid is 301² ≈ 90k cells; refinement should be
        // at least 10x cheaper.
        assert!(
            refined.cells_evaluated * 10 < full.cells_evaluated,
            "refined {} vs full {} cells",
            refined.cells_evaluated,
            full.cells_evaluated
        );
    }

    #[test]
    fn three_d_refinement_works() {
        let target = Point3::new(0.1, 0.8, 0.1);
        // Two scan lines at different heights for 3D observability.
        let mut m = Vec::new();
        for i in 0..50 {
            let x = -0.3 + i as f64 * 0.012;
            for z in [0.0, 0.2] {
                let p = Point3::new(x, 0.0, z);
                let phase = (4.0 * PI * target.distance(p) / LAMBDA).rem_euclid(TAU);
                m.push((p, phase));
            }
        }
        let volume = SearchVolume::cube_3d(Point3::new(0.1, 0.8, 0.1), 0.08);
        let est = locate_refined(&m, volume, &cfg()).unwrap();
        assert!(
            est.position.distance(target) < 0.01,
            "error {}",
            est.position.distance(target)
        );
    }

    #[test]
    fn invalid_configs_rejected() {
        let m = measurements(Point3::new(0.5, 0.5, 0.0), 10);
        let volume = SearchVolume::square_2d(Point3::new(0.5, 0.5, 0.0), 0.1);
        let mut c = cfg();
        c.fine_grid = 0.05; // finer than coarse? no — coarser than coarse
        assert!(locate_refined(&m, volume, &c).is_err());
        let mut c = cfg();
        c.shrink = 1.0;
        assert!(locate_refined(&m, volume, &c).is_err());
        let mut c = cfg();
        c.window_cells = 0.5;
        assert!(locate_refined(&m, volume, &c).is_err());
        let mut c = cfg();
        c.coarse_grid = -1.0;
        assert!(locate_refined(&m, volume, &c).is_err());
    }

    #[test]
    fn single_level_when_grids_equal() {
        let target = Point3::new(0.5, 0.5, 0.0);
        let m = measurements(target, 20);
        let volume = SearchVolume::square_2d(target, 0.05);
        let mut c = cfg();
        c.coarse_grid = 0.005;
        c.fine_grid = 0.005;
        let est = locate_refined(&m, volume, &c).unwrap();
        // One level: cells equal a single scan of the full volume.
        let single = HologramConfig {
            grid_size: 0.005,
            wavelength: LAMBDA,
            augmented: false,
        };
        let (_, full) = build_hologram(&m, volume, &single).unwrap();
        assert_eq!(est.cells_evaluated, full.cells_evaluated);
    }
}
