//! Tagspin-style rotating-tag baseline (paper Sec. VI, ref \[7\]).
//!
//! Tagspin emulates a circular antenna array by spinning a tag on a
//! turntable. For a turntable of radius `r` centered at the origin and a
//! target at distance `D ≫ r` and azimuth `φ`, the tag–target distance
//! expands as
//!
//! ```text
//! d(α) ≈ D − r·cos(α − φ) + (r²/2D)·sin²(α − φ)
//!      = const − r·cosφ·cosα − r·sinφ·sinα − (r²/4D)·cos(2(α − φ)) + …
//! ```
//!
//! so the unwrapped phase over one revolution is a **Fourier series in the
//! rotation angle**: the first harmonic gives the azimuth `φ`, the second
//! harmonic's amplitude `k·r²/(4D)` gives the range `D`. Fitting the
//! harmonics is a plain linear least-squares problem — fast, but locked to
//! circular trajectories and degrading as `r/D` grows, which is exactly
//! the trajectory-shape limitation the paper cites when motivating LION.

use lion_core::PhaseProfile;
use lion_geom::{Point2, Point3};
use lion_linalg::{lstsq, Matrix, Vector};
use serde::{Deserialize, Serialize};

use crate::BaselineError;

/// Configuration for the Tagspin-style solver.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TagspinConfig {
    /// Carrier wavelength in meters.
    pub wavelength: f64,
    /// Moving-average window for the unwrapped phases.
    pub smoothing_window: usize,
    /// Maximum deviation of sample radii from their mean before the
    /// trajectory is rejected as non-circular (meters).
    pub circularity_tolerance: f64,
}

impl Default for TagspinConfig {
    fn default() -> Self {
        TagspinConfig {
            wavelength: 299_792_458.0 / 920.625e6,
            smoothing_window: 9,
            circularity_tolerance: 1e-3,
        }
    }
}

/// Result of a Tagspin-style localization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TagspinEstimate {
    /// Estimated target position (in the turntable plane).
    pub position: Point3,
    /// Estimated azimuth of the target from the turntable center (rad).
    pub azimuth: f64,
    /// Estimated range from the turntable center (meters).
    pub range: f64,
    /// First-harmonic amplitude consistency: the fitted amplitude divided
    /// by the expected `(4π/λ)·r` (≈ 1 when the far-field model holds).
    pub harmonic_consistency: f64,
}

/// Locates a target from one revolution of a turntable scan.
///
/// The measurements must lie on a circle in a `z = const` plane, in
/// rotation order.
///
/// # Errors
///
/// - preprocessing errors from [`PhaseProfile::from_wrapped`],
/// - [`BaselineError::UnsupportedGeometry`] when the samples are not
///   circular within tolerance or the harmonic fit degenerates,
/// - numeric errors from the least-squares fit.
pub fn locate(
    measurements: &[(Point3, f64)],
    config: &TagspinConfig,
) -> Result<TagspinEstimate, BaselineError> {
    let mut profile = PhaseProfile::from_wrapped(measurements, config.wavelength)?;
    profile.smooth(config.smoothing_window);
    let positions = profile.positions();
    if positions.len() < 8 {
        return Err(BaselineError::TooFewMeasurements {
            got: positions.len(),
            needed: 8,
        });
    }
    // Center and radius of the turntable from the samples.
    let n = positions.len() as f64;
    let z0 = positions[0].z;
    let center = positions.iter().fold(Point2::new(0.0, 0.0), |acc, p| {
        Point2::new(acc.x + p.x / n, acc.y + p.y / n)
    });
    let radii: Vec<f64> = positions
        .iter()
        .map(|p| p.to_xy().distance(center))
        .collect();
    let radius = radii.iter().sum::<f64>() / n;
    for (p, r) in positions.iter().zip(&radii) {
        if (r - radius).abs() > config.circularity_tolerance
            || (p.z - z0).abs() > config.circularity_tolerance
        {
            return Err(BaselineError::UnsupportedGeometry {
                detail: "tagspin requires a planar circular trajectory".to_string(),
            });
        }
    }
    if radius < 1e-4 {
        return Err(BaselineError::UnsupportedGeometry {
            detail: "turntable radius is degenerate".to_string(),
        });
    }
    // Harmonic regression of the unwrapped phase on the rotation angle.
    let angles: Vec<f64> = positions
        .iter()
        .map(|p| (p.y - center.y).atan2(p.x - center.x))
        .collect();
    let design = Matrix::from_fn(angles.len(), 5, |r, c| match c {
        0 => 1.0,
        1 => angles[r].cos(),
        2 => angles[r].sin(),
        3 => (2.0 * angles[r]).cos(),
        _ => (2.0 * angles[r]).sin(),
    });
    let rhs = Vector::from_slice(profile.phases());
    let coeff = lstsq::solve(&design, &rhs)?;
    let k = 4.0 * std::f64::consts::PI / config.wavelength;
    // First harmonic: θ ≈ … − k·r·cosφ·cosα − k·r·sinφ·sinα.
    let c1 = coeff[1];
    let c2 = coeff[2];
    let azimuth = (-c2).atan2(-c1);
    let amp1 = (c1 * c1 + c2 * c2).sqrt();
    let harmonic_consistency = amp1 / (k * radius);
    // Second harmonic: amplitude k·r²/(4D) ⇒ D = k·r²/(4·amp2).
    let amp2 = (coeff[3] * coeff[3] + coeff[4] * coeff[4]).sqrt();
    if amp2 < 1e-9 {
        return Err(BaselineError::UnsupportedGeometry {
            detail: "second harmonic vanished; target too far for ranging".to_string(),
        });
    }
    let range = k * radius * radius / (4.0 * amp2);
    let position = Point3::new(
        center.x + range * azimuth.cos(),
        center.y + range * azimuth.sin(),
        z0,
    );
    Ok(TagspinEstimate {
        position,
        azimuth,
        range,
        harmonic_consistency,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{PI, TAU};

    const LAMBDA: f64 = 299_792_458.0 / 920.625e6;

    fn turntable_measurements(target: Point3, radius: f64, n: usize) -> Vec<(Point3, f64)> {
        (0..n)
            .map(|i| {
                let a = i as f64 * TAU / n as f64;
                let p = Point3::new(radius * a.cos(), radius * a.sin(), 0.0);
                let phase = (4.0 * PI * target.distance(p) / LAMBDA).rem_euclid(TAU);
                (p, phase)
            })
            .collect()
    }

    fn cfg() -> TagspinConfig {
        TagspinConfig {
            smoothing_window: 1,
            ..TagspinConfig::default()
        }
    }

    #[test]
    fn recovers_azimuth_accurately() {
        for deg in [0.0_f64, 30.0, 120.0, 245.0] {
            let phi = deg.to_radians();
            let target = Point3::new(0.9 * phi.cos(), 0.9 * phi.sin(), 0.0);
            let m = turntable_measurements(target, 0.15, 720);
            let est = locate(&m, &cfg()).unwrap();
            let d = lion_linalg::stats::circular_diff(est.azimuth, phi).abs();
            assert!(d < 0.01, "azimuth {deg}°: error {d} rad");
            assert!((est.harmonic_consistency - 1.0).abs() < 0.05);
        }
    }

    #[test]
    fn range_estimate_is_first_order_accurate() {
        let target = Point3::new(0.8, 0.0, 0.0);
        let m = turntable_measurements(target, 0.15, 720);
        let est = locate(&m, &cfg()).unwrap();
        // Range from the 2nd harmonic is approximate (higher-order terms);
        // expect ~10% accuracy at r/D ≈ 0.19.
        assert!((est.range - 0.8).abs() < 0.1, "range {} vs 0.8", est.range);
        assert!(est.position.distance(target) < 0.12);
    }

    #[test]
    fn accuracy_degrades_relative_to_lion() {
        // On the same trace, LION's exact model beats the far-field
        // harmonic approximation — the reason the paper prefers a
        // trajectory-agnostic exact solver.
        let target = Point3::new(0.7, 0.3, 0.0);
        let m = turntable_measurements(target, 0.2, 720);
        let spin = locate(&m, &cfg()).unwrap();
        let lion = lion_core::Localizer2d::new(lion_core::LocalizerConfig {
            smoothing_window: 1,
            ..lion_core::LocalizerConfig::default()
        })
        .locate(&m)
        .unwrap();
        let e_spin = spin.position.distance(target);
        let e_lion = lion.distance_error(target);
        assert!(
            e_lion < e_spin,
            "LION {e_lion} should beat tagspin {e_spin}"
        );
    }

    #[test]
    fn rejects_non_circular_trajectories() {
        let target = Point3::new(0.5, 0.5, 0.0);
        let m: Vec<(Point3, f64)> = (0..100)
            .map(|i| {
                let p = Point3::new(-0.3 + i as f64 * 0.006, 0.0, 0.0);
                let phase = (4.0 * PI * target.distance(p) / LAMBDA).rem_euclid(TAU);
                (p, phase)
            })
            .collect();
        assert!(matches!(
            locate(&m, &cfg()),
            Err(BaselineError::UnsupportedGeometry { .. })
        ));
    }

    #[test]
    fn rejects_tiny_inputs() {
        let target = Point3::new(0.5, 0.5, 0.0);
        let m = turntable_measurements(target, 0.15, 4);
        assert!(matches!(
            locate(&m, &cfg()),
            Err(BaselineError::TooFewMeasurements { .. })
        ));
    }

    #[test]
    fn constant_offset_does_not_bias_azimuth() {
        let phi = 1.1_f64;
        let target = Point3::new(0.9 * phi.cos(), 0.9 * phi.sin(), 0.0);
        let m: Vec<(Point3, f64)> = turntable_measurements(target, 0.15, 720)
            .into_iter()
            .map(|(p, t)| (p, (t + 2.2).rem_euclid(TAU)))
            .collect();
        let est = locate(&m, &cfg()).unwrap();
        let d = lion_linalg::stats::circular_diff(est.azimuth, phi).abs();
        assert!(d < 0.01, "azimuth error {d}");
    }
}
