//! The hyperbola (TDoA) baseline (paper Sec. VI, refs \[6, 14–19\]).
//!
//! Each pair of tag positions with phase-derived distance difference
//! `Δd_{ij}` constrains the target to a hyperbola (2D) / hyperboloid (3D):
//! `‖p − Tᵢ‖ − ‖p − Tⱼ‖ = Δd_{ij}`. Finding the common intersection of
//! many such quadratic loci is a non-linear least-squares problem; this
//! implementation solves it with Levenberg–Marquardt — which is exactly
//! the "time-consuming … optimal estimation for large amounts of quadratic
//! functions" cost the paper contrasts with LION's single linear solve.

use lion_geom::Point3;
use lion_linalg::{LevenbergMarquardt, Vector};
use serde::{Deserialize, Serialize};

use lion_core::{PairStrategy, PhaseProfile};

use crate::BaselineError;

/// Configuration for the hyperbola solver.
#[derive(Debug, Clone, PartialEq)]
pub struct HyperbolaConfig {
    /// Carrier wavelength in meters.
    pub wavelength: f64,
    /// Moving-average window for the unwrapped phases.
    pub smoothing_window: usize,
    /// Pair selection (shares LION's strategies).
    pub pair_strategy: PairStrategy,
    /// Estimate the z coordinate too (needs a trajectory spanning 3D).
    pub three_dimensional: bool,
    /// Initial guess; defaults to 1 m in front of the trajectory centroid.
    pub initial_guess: Option<Point3>,
    /// The Levenberg–Marquardt settings.
    pub lm: LevenbergMarquardt,
}

impl Default for HyperbolaConfig {
    fn default() -> Self {
        HyperbolaConfig {
            wavelength: 299_792_458.0 / 920.625e6,
            smoothing_window: 9,
            pair_strategy: PairStrategy::default(),
            three_dimensional: false,
            initial_guess: None,
            lm: LevenbergMarquardt::default(),
        }
    }
}

/// Result of a hyperbola localization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HyperbolaEstimate {
    /// Estimated target position (z is the trajectory plane height in 2D
    /// mode).
    pub position: Point3,
    /// Final cost `½Σr²` of the non-linear fit.
    pub cost: f64,
    /// Levenberg–Marquardt iterations — the work metric showing why this
    /// is slower than LION's closed-form solve.
    pub iterations: usize,
    /// Number of hyperbola constraints (pairs).
    pub constraints: usize,
}

/// Locates the target by intersecting phase-difference hyperbolas.
///
/// # Errors
///
/// - preprocessing errors from [`PhaseProfile::from_wrapped`],
/// - [`BaselineError::TooFewMeasurements`] when pair selection yields
///   fewer constraints than unknowns,
/// - numeric errors from the LM solver.
pub fn locate(
    measurements: &[(Point3, f64)],
    config: &HyperbolaConfig,
) -> Result<HyperbolaEstimate, BaselineError> {
    let mut profile = PhaseProfile::from_wrapped(measurements, config.wavelength)?;
    profile.smooth(config.smoothing_window);
    let positions = profile.positions().to_vec();
    let reference = positions.len() / 2;
    let deltas = profile.delta_distances(reference);
    let pairs = config.pair_strategy.pairs(&positions);
    let unknowns = if config.three_dimensional { 3 } else { 2 };
    if pairs.len() < unknowns {
        return Err(BaselineError::TooFewMeasurements {
            got: pairs.len(),
            needed: unknowns,
        });
    }
    // Distance differences per pair.
    let constraints: Vec<(Point3, Point3, f64)> = pairs
        .iter()
        .map(|&(i, j)| (positions[i], positions[j], deltas[i] - deltas[j]))
        .collect();

    let n = positions.len() as f64;
    let centroid = positions.iter().fold(Point3::ORIGIN, |acc, p| {
        Point3::new(acc.x + p.x / n, acc.y + p.y / n, acc.z + p.z / n)
    });
    let guess =
        config
            .initial_guess
            .unwrap_or(Point3::new(centroid.x, centroid.y + 1.0, centroid.z));
    let z_plane = centroid.z;

    let x0 = if config.three_dimensional {
        Vector::from_slice(&[guess.x, guess.y, guess.z])
    } else {
        Vector::from_slice(&[guess.x, guess.y])
    };
    let report = config.lm.minimize(
        &x0,
        |x, out| {
            let p = if x.len() == 3 {
                Point3::new(x[0], x[1], x[2])
            } else {
                Point3::new(x[0], x[1], z_plane)
            };
            for (slot, (ti, tj, dd)) in out.iter_mut().zip(&constraints) {
                *slot = p.distance(*ti) - p.distance(*tj) - dd;
            }
        },
        constraints.len(),
    )?;
    let position = if config.three_dimensional {
        Point3::new(report.solution[0], report.solution[1], report.solution[2])
    } else {
        Point3::new(report.solution[0], report.solution[1], z_plane)
    };
    Ok(HyperbolaEstimate {
        position,
        cost: report.cost,
        iterations: report.iterations,
        constraints: constraints.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{PI, TAU};

    const LAMBDA: f64 = 299_792_458.0 / 920.625e6;

    fn phase_of(target: Point3, p: Point3) -> f64 {
        (4.0 * PI * target.distance(p) / LAMBDA).rem_euclid(TAU)
    }

    fn cfg() -> HyperbolaConfig {
        HyperbolaConfig {
            smoothing_window: 1,
            pair_strategy: PairStrategy::Interval { interval: 0.15 },
            ..HyperbolaConfig::default()
        }
    }

    #[test]
    fn locates_from_circular_scan_2d() {
        let target = Point3::new(0.8, 0.3, 0.0);
        let m: Vec<(Point3, f64)> = (0..200)
            .map(|i| {
                let a = i as f64 * TAU / 200.0;
                let p = Point3::new(0.3 * a.cos(), 0.3 * a.sin(), 0.0);
                (p, phase_of(target, p))
            })
            .collect();
        let est = locate(&m, &cfg()).unwrap();
        assert!(
            est.position.distance(target) < 1e-4,
            "error {}",
            est.position.distance(target)
        );
        assert!(est.cost < 1e-9);
        assert!(est.constraints > 10);
    }

    #[test]
    fn locates_from_linear_scan_2d() {
        let target = Point3::new(0.2, 1.0, 0.0);
        let m: Vec<(Point3, f64)> = (0..240)
            .map(|i| {
                let p = Point3::new(-0.3 + i as f64 * 0.0025, 0.0, 0.0);
                (p, phase_of(target, p))
            })
            .collect();
        let mut c = cfg();
        c.initial_guess = Some(Point3::new(0.0, 0.8, 0.0));
        let est = locate(&m, &c).unwrap();
        assert!(
            est.position.distance(target) < 1e-3,
            "error {}",
            est.position.distance(target)
        );
    }

    #[test]
    fn locates_3d_from_three_line_scan() {
        use lion_geom::{ThreeLineScan, Trajectory};
        let target = Point3::new(0.1, 0.8, 0.15);
        let scan = ThreeLineScan::new(-0.4, 0.4, 0.2, 0.2).unwrap();
        let m: Vec<(Point3, f64)> = scan
            .to_path()
            .sample(0.1, 50.0)
            .into_iter()
            .map(|w| (w.position, phase_of(target, w.position)))
            .collect();
        let mut c = cfg();
        c.three_dimensional = true;
        c.initial_guess = Some(Point3::new(0.0, 0.6, 0.0));
        let est = locate(&m, &c).unwrap();
        assert!(
            est.position.distance(target) < 1e-3,
            "error {}",
            est.position.distance(target)
        );
    }

    #[test]
    fn too_few_pairs_rejected() {
        let target = Point3::new(0.0, 1.0, 0.0);
        let m: Vec<(Point3, f64)> = (0..10)
            .map(|i| {
                let p = Point3::new(i as f64 * 0.001, 0.0, 0.0);
                (p, phase_of(target, p))
            })
            .collect();
        let mut c = cfg();
        c.pair_strategy = PairStrategy::Interval { interval: 10.0 };
        assert!(matches!(
            locate(&m, &c),
            Err(BaselineError::TooFewMeasurements { .. })
        ));
    }

    #[test]
    fn preprocessing_errors_propagate() {
        let m = vec![(Point3::ORIGIN, 0.1)];
        assert!(matches!(locate(&m, &cfg()), Err(BaselineError::Core(_))));
    }

    #[test]
    fn iterations_reported() {
        let target = Point3::new(0.4, 0.7, 0.0);
        let m: Vec<(Point3, f64)> = (0..100)
            .map(|i| {
                let a = i as f64 * TAU / 100.0;
                let p = Point3::new(0.25 * a.cos(), 0.25 * a.sin(), 0.0);
                (p, phase_of(target, p))
            })
            .collect();
        let est = locate(&m, &cfg()).unwrap();
        assert!(est.iterations >= 1);
    }
}
