//! # lion-baselines
//!
//! Comparison methods for the LION reproduction (ICDCS 2022):
//!
//! - [`hologram`] — Tagoram's **Differential Augmented Hologram (DAH)**
//!   [paper ref 2]: grid search over the surveillance area scoring each
//!   cell by phase-difference likelihood. The accuracy yardstick the paper
//!   compares LION against in Figs. 6, 9, 13, 14 — and the computational
//!   heavyweight that motivates LION's linear model.
//! - [`hyperbola`] — the TDoA family [paper refs 6, 14–19]: pairwise
//!   distance differences define hyperbolas; the target is found by
//!   non-linear least squares (Levenberg–Marquardt here), demonstrating
//!   the "seconds to solve lots of quadratic equations" cost the paper
//!   cites.
//! - [`parabola`] — the parabola fit [paper ref 8]: for a *linear* scan,
//!   the unwrapped phase is approximately quadratic in the scan coordinate
//!   near the closest approach; vertex and curvature give a fast 2D
//!   estimate, but the method is restricted to linear trajectories and 2D.
//! - [`tagspin`] — the rotating-tag harmonic fit [paper ref 7]: a
//!   circular scan's unwrapped phase is a Fourier series in the rotation
//!   angle (first harmonic = azimuth, second = range), fast but locked to
//!   circular trajectories.
//! - [`multi_antenna`] — the differential hologram across multiple static
//!   antennas used in the paper's case study (Figs. 19–20), where phase
//!   calibration shows its value.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hologram;
pub mod hyperbola;
pub mod multi_antenna;
pub mod parabola;
pub mod refine;
pub mod tagspin;

pub use hologram::{Hologram, HologramConfig, HologramEstimate, SearchVolume};
pub use hyperbola::{HyperbolaConfig, HyperbolaEstimate};
pub use multi_antenna::{AntennaReading, MultiAntennaConfig};
pub use parabola::{ParabolaConfig, ParabolaEstimate};
pub use refine::{locate_refined, RefineConfig};
pub use tagspin::{TagspinConfig, TagspinEstimate};

/// Errors produced by the baseline implementations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BaselineError {
    /// Not enough measurements for the method.
    TooFewMeasurements {
        /// Measurements supplied.
        got: usize,
        /// Minimum required.
        needed: usize,
    },
    /// A parameter was invalid (grid size, search extent, ...).
    InvalidParameter {
        /// The parameter name.
        parameter: &'static str,
        /// Display of the offending value.
        found: String,
    },
    /// Input contained NaN/inf.
    NonFiniteInput {
        /// Index of the offending sample.
        index: usize,
    },
    /// The method's geometric preconditions were violated (e.g. parabola
    /// fit on a non-linear trajectory).
    UnsupportedGeometry {
        /// Human-readable description.
        detail: String,
    },
    /// An underlying numeric failure.
    Numeric(lion_linalg::LinalgError),
    /// A preprocessing failure from the core pipeline.
    Core(lion_core::CoreError),
}

impl BaselineError {
    /// A stable snake_case label for this error's variant, independent of
    /// the variant's payload — the same taxonomy contract as
    /// [`lion_core::CoreError::kind`] (used for failure counters and the
    /// workspace-wide `lion::Error::kind`).
    pub fn kind(&self) -> &'static str {
        match self {
            BaselineError::TooFewMeasurements { .. } => "too_few_measurements",
            BaselineError::InvalidParameter { .. } => "invalid_parameter",
            BaselineError::NonFiniteInput { .. } => "non_finite_input",
            BaselineError::UnsupportedGeometry { .. } => "unsupported_geometry",
            BaselineError::Numeric(_) => "numeric",
            BaselineError::Core(e) => e.kind(),
        }
    }
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::TooFewMeasurements { got, needed } => {
                write!(f, "too few measurements: got {got}, need {needed}")
            }
            BaselineError::InvalidParameter { parameter, found } => {
                write!(f, "invalid parameter {parameter}: {found}")
            }
            BaselineError::NonFiniteInput { index } => {
                write!(f, "non-finite input at index {index}")
            }
            BaselineError::UnsupportedGeometry { detail } => {
                write!(f, "unsupported geometry: {detail}")
            }
            BaselineError::Numeric(e) => write!(f, "numeric failure: {e}"),
            BaselineError::Core(e) => write!(f, "preprocessing failure: {e}"),
        }
    }
}

impl std::error::Error for BaselineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BaselineError::Numeric(e) => Some(e),
            BaselineError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<lion_linalg::LinalgError> for BaselineError {
    fn from(e: lion_linalg::LinalgError) -> Self {
        BaselineError::Numeric(e)
    }
}

impl From<lion_core::CoreError> for BaselineError {
    fn from(e: lion_core::CoreError) -> Self {
        BaselineError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_source() {
        let errors: Vec<BaselineError> = vec![
            BaselineError::TooFewMeasurements { got: 1, needed: 3 },
            BaselineError::InvalidParameter {
                parameter: "grid",
                found: "-1".into(),
            },
            BaselineError::NonFiniteInput { index: 0 },
            BaselineError::UnsupportedGeometry {
                detail: "circular scan".into(),
            },
            BaselineError::Numeric(lion_linalg::LinalgError::Singular),
            BaselineError::Core(lion_core::CoreError::NoPairs),
        ];
        for e in &errors {
            assert!(!e.to_string().is_empty());
        }
        use std::error::Error;
        assert!(errors[4].source().is_some());
        assert!(errors[0].source().is_none());
    }
}
