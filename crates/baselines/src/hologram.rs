//! Tagoram's Differential Augmented Hologram (DAH) — the hologram-based
//! baseline (paper Sec. II-C and ref \[2\]).
//!
//! The surveillance volume is cut into a grid; each cell `p` is scored by
//! how consistently the *measured* phase differences match the *expected*
//! ones for a target at `p`:
//!
//! ```text
//! L(p) = | Σᵢ wᵢ · exp(j·(Δθᵢ − Δφᵢ(p))) | / Σᵢ wᵢ
//! ```
//!
//! where `Δθᵢ = θᵢ − θ_ref` is the measured phase difference and
//! `Δφᵢ(p) = (4π/λ)·(dᵢ(p) − d_ref(p))` the expected one. Using
//! *differences* cancels the constant hardware offset, exactly as the
//! paper observes. The "augmented" part adds weights: after a first
//! uniform-weight pass, each measurement is reweighted by its phase
//! residual at the provisional peak and the hologram is rebuilt —
//! sharpening the peak (paper Fig. 4b).
//!
//! The cost is the point: `cells × measurements` complex rotations. A 2D
//! (20 cm)² search at 1 mm is 40k cells; the 3D (20 cm)³ version is 8M —
//! which is why the paper's Fig. 13(b) shows DAH's 3D time exploding while
//! LION stays at a single linear solve.

use lion_geom::Point3;
use serde::{Deserialize, Serialize};

use crate::BaselineError;

/// Axis-aligned search volume for the grid scan.
///
/// For 2D holograms set `half_extent_z = 0` — the grid then has a single
/// z-layer at `center.z`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SearchVolume {
    /// Center of the search volume.
    pub center: Point3,
    /// Half extent along x (meters).
    pub half_extent_x: f64,
    /// Half extent along y (meters).
    pub half_extent_y: f64,
    /// Half extent along z (meters); 0 for a planar (2D) hologram.
    pub half_extent_z: f64,
}

impl SearchVolume {
    /// A square 2D search area in the plane `z = center.z`.
    pub fn square_2d(center: Point3, half_extent: f64) -> Self {
        SearchVolume {
            center,
            half_extent_x: half_extent,
            half_extent_y: half_extent,
            half_extent_z: 0.0,
        }
    }

    /// A cubic 3D search volume.
    pub fn cube_3d(center: Point3, half_extent: f64) -> Self {
        SearchVolume {
            center,
            half_extent_x: half_extent,
            half_extent_y: half_extent,
            half_extent_z: half_extent,
        }
    }
}

/// Configuration for the DAH grid search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HologramConfig {
    /// Grid cell size in meters (the paper uses 1 mm).
    pub grid_size: f64,
    /// Carrier wavelength in meters.
    pub wavelength: f64,
    /// Enable the augmented (weighted) second pass.
    pub augmented: bool,
}

impl Default for HologramConfig {
    fn default() -> Self {
        HologramConfig {
            grid_size: 0.001,
            wavelength: 299_792_458.0 / 920.625e6,
            augmented: true,
        }
    }
}

/// The computed likelihood grid.
#[derive(Debug, Clone, PartialEq)]
pub struct Hologram {
    origin: Point3,
    grid_size: f64,
    nx: usize,
    ny: usize,
    nz: usize,
    values: Vec<f64>,
}

impl Hologram {
    /// Grid dimensions `(nx, ny, nz)`.
    pub fn dimensions(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// Total number of cells.
    pub fn cell_count(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// World position of cell `(i, j, k)`.
    ///
    /// # Panics
    ///
    /// Panics when an index is out of range.
    pub fn cell_position(&self, i: usize, j: usize, k: usize) -> Point3 {
        assert!(
            i < self.nx && j < self.ny && k < self.nz,
            "cell out of range"
        );
        Point3::new(
            self.origin.x + i as f64 * self.grid_size,
            self.origin.y + j as f64 * self.grid_size,
            self.origin.z + k as f64 * self.grid_size,
        )
    }

    /// Likelihood at cell `(i, j, k)`; `None` out of range.
    pub fn value(&self, i: usize, j: usize, k: usize) -> Option<f64> {
        if i < self.nx && j < self.ny && k < self.nz {
            Some(self.values[(k * self.ny + j) * self.nx + i])
        } else {
            None
        }
    }

    /// The raw likelihood buffer (x-fastest layout).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Cell with the maximum likelihood: `(position, likelihood)`.
    pub fn peak(&self) -> (Point3, f64) {
        let mut best = 0;
        let mut best_v = f64::NEG_INFINITY;
        for (idx, &v) in self.values.iter().enumerate() {
            if v > best_v {
                best_v = v;
                best = idx;
            }
        }
        let i = best % self.nx;
        let j = (best / self.nx) % self.ny;
        let k = best / (self.nx * self.ny);
        (self.cell_position(i, j, k), best_v)
    }
}

/// Result of a DAH localization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HologramEstimate {
    /// Grid cell with the highest likelihood.
    pub position: Point3,
    /// Peak likelihood in `[0, 1]`.
    pub likelihood: f64,
    /// Number of grid cells evaluated (× passes) — the work metric behind
    /// the paper's Fig. 13(b) timing gap.
    pub cells_evaluated: usize,
    /// Number of measurements used.
    pub measurements: usize,
}

/// Builds the DAH and returns the full grid (for heatmap dumps à la paper
/// Figs. 4 and 20) plus the estimate.
///
/// # Errors
///
/// - [`BaselineError::TooFewMeasurements`] for fewer than 2 samples,
/// - [`BaselineError::InvalidParameter`] for non-positive grid size /
///   extents / wavelength,
/// - [`BaselineError::NonFiniteInput`] for NaN/inf samples.
pub fn build_hologram(
    measurements: &[(Point3, f64)],
    volume: SearchVolume,
    config: &HologramConfig,
) -> Result<(Hologram, HologramEstimate), BaselineError> {
    validate(measurements, &volume, config)?;
    let reference = measurements.len() / 2;
    // First pass: uniform weights.
    let weights = vec![1.0; measurements.len()];
    let mut holo = score(measurements, reference, &volume, config, &weights);
    let mut cells = holo.cell_count();
    if config.augmented {
        // Reweight by phase residual at the provisional peak and rebuild.
        let (peak, _) = holo.peak();
        let weights = residual_weights(measurements, reference, peak, config.wavelength);
        holo = score(measurements, reference, &volume, config, &weights);
        cells += holo.cell_count();
    }
    let (position, likelihood) = holo.peak();
    let estimate = HologramEstimate {
        position,
        likelihood,
        cells_evaluated: cells,
        measurements: measurements.len(),
    };
    Ok((holo, estimate))
}

/// Convenience wrapper returning only the estimate.
///
/// # Errors
///
/// See [`build_hologram`].
pub fn locate(
    measurements: &[(Point3, f64)],
    volume: SearchVolume,
    config: &HologramConfig,
) -> Result<HologramEstimate, BaselineError> {
    build_hologram(measurements, volume, config).map(|(_, e)| e)
}

fn validate(
    measurements: &[(Point3, f64)],
    volume: &SearchVolume,
    config: &HologramConfig,
) -> Result<(), BaselineError> {
    if measurements.len() < 2 {
        return Err(BaselineError::TooFewMeasurements {
            got: measurements.len(),
            needed: 2,
        });
    }
    for (i, (p, t)) in measurements.iter().enumerate() {
        if !p.is_finite() || !t.is_finite() {
            return Err(BaselineError::NonFiniteInput { index: i });
        }
    }
    if !(config.grid_size > 0.0 && config.grid_size.is_finite()) {
        return Err(BaselineError::InvalidParameter {
            parameter: "grid_size",
            found: format!("{}", config.grid_size),
        });
    }
    if !(config.wavelength > 0.0 && config.wavelength.is_finite()) {
        return Err(BaselineError::InvalidParameter {
            parameter: "wavelength",
            found: format!("{}", config.wavelength),
        });
    }
    // NaN-safe: `x > 0.0` is false for NaN, so NaN extents are rejected.
    let extents_ok =
        volume.half_extent_x > 0.0 && volume.half_extent_y > 0.0 && volume.half_extent_z >= 0.0;
    if !extents_ok || !volume.center.is_finite() {
        return Err(BaselineError::InvalidParameter {
            parameter: "search volume",
            found: format!("{volume:?}"),
        });
    }
    Ok(())
}

fn axis_cells(half_extent: f64, grid: f64) -> usize {
    (2.0 * half_extent / grid).round() as usize + 1
}

fn score(
    measurements: &[(Point3, f64)],
    reference: usize,
    volume: &SearchVolume,
    config: &HologramConfig,
    weights: &[f64],
) -> Hologram {
    let g = config.grid_size;
    let nx = axis_cells(volume.half_extent_x, g);
    let ny = axis_cells(volume.half_extent_y, g);
    let nz = if volume.half_extent_z > 0.0 {
        axis_cells(volume.half_extent_z, g)
    } else {
        1
    };
    let origin = Point3::new(
        volume.center.x - volume.half_extent_x,
        volume.center.y - volume.half_extent_y,
        if nz > 1 {
            volume.center.z - volume.half_extent_z
        } else {
            volume.center.z
        },
    );
    let k_wave = 4.0 * std::f64::consts::PI / config.wavelength;
    let (ref_pos, ref_phase) = measurements[reference];
    let wsum: f64 = weights.iter().sum::<f64>().max(f64::MIN_POSITIVE);
    let mut values = vec![0.0; nx * ny * nz];
    for kz in 0..nz {
        let z = origin.z + kz as f64 * g;
        for jy in 0..ny {
            let y = origin.y + jy as f64 * g;
            for ix in 0..nx {
                let p = Point3::new(origin.x + ix as f64 * g, y, z);
                let d_ref = p.distance(ref_pos);
                let mut re = 0.0;
                let mut im = 0.0;
                for (m, &(pos, phase)) in measurements.iter().enumerate() {
                    let expected = k_wave * (p.distance(pos) - d_ref);
                    let angle = (phase - ref_phase) - expected;
                    let w = weights[m];
                    re += w * angle.cos();
                    im += w * angle.sin();
                }
                values[(kz * ny + jy) * nx + ix] = (re * re + im * im).sqrt() / wsum;
            }
        }
    }
    Hologram {
        origin,
        grid_size: g,
        nx,
        ny,
        nz,
        values,
    }
}

fn residual_weights(
    measurements: &[(Point3, f64)],
    reference: usize,
    peak: Point3,
    wavelength: f64,
) -> Vec<f64> {
    let k_wave = 4.0 * std::f64::consts::PI / wavelength;
    let (ref_pos, ref_phase) = measurements[reference];
    let d_ref = peak.distance(ref_pos);
    let residuals: Vec<f64> = measurements
        .iter()
        .map(|&(pos, phase)| {
            let expected = k_wave * (peak.distance(pos) - d_ref);
            lion_linalg::stats::circular_diff(phase - ref_phase, expected)
        })
        .collect();
    let sigma = lion_linalg::stats::std_dev(&residuals).unwrap_or(0.0);
    if sigma < 1e-12 {
        return vec![1.0; measurements.len()];
    }
    let mu = lion_linalg::stats::mean(&residuals).unwrap_or(0.0);
    residuals
        .iter()
        .map(|r| {
            let z = (r - mu) / sigma;
            (-0.5 * z * z).exp()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{PI, TAU};

    const LAMBDA: f64 = 299_792_458.0 / 920.625e6;

    fn phase_of(target: Point3, p: Point3) -> f64 {
        (4.0 * PI * target.distance(p) / LAMBDA).rem_euclid(TAU)
    }

    fn cfg(grid: f64) -> HologramConfig {
        HologramConfig {
            grid_size: grid,
            wavelength: LAMBDA,
            augmented: true,
        }
    }

    fn circular_measurements(target: Point3, n: usize) -> Vec<(Point3, f64)> {
        (0..n)
            .map(|i| {
                let a = i as f64 * TAU / n as f64;
                let p = Point3::new(0.3 * a.cos(), 0.3 * a.sin(), 0.0);
                (p, phase_of(target, p))
            })
            .collect()
    }

    #[test]
    fn peak_lands_on_target_2d() {
        let target = Point3::new(0.5, 0.5, 0.0);
        let m = circular_measurements(target, 60);
        let volume = SearchVolume::square_2d(Point3::new(0.5, 0.5, 0.0), 0.05);
        let (_, est) = build_hologram(&m, volume, &cfg(0.002)).unwrap();
        assert!(
            est.position.distance(target) <= 0.003,
            "peak at {}, error {}",
            est.position,
            est.position.distance(target)
        );
        assert!(est.likelihood > 0.99);
        assert_eq!(est.measurements, 60);
    }

    #[test]
    fn likelihood_is_normalized() {
        let target = Point3::new(0.4, 0.6, 0.0);
        let m = circular_measurements(target, 30);
        let volume = SearchVolume::square_2d(Point3::new(0.4, 0.6, 0.0), 0.03);
        let (holo, est) = build_hologram(&m, volume, &cfg(0.003)).unwrap();
        assert!(est.likelihood <= 1.0 + 1e-9);
        assert!(holo
            .values()
            .iter()
            .all(|&v| (0.0..=1.0 + 1e-9).contains(&v)));
    }

    #[test]
    fn grid_geometry() {
        let target = Point3::new(0.0, 0.5, 0.0);
        let m = circular_measurements(target, 10);
        let volume = SearchVolume::square_2d(Point3::new(0.0, 0.5, 0.0), 0.05);
        let (holo, _) = build_hologram(&m, volume, &cfg(0.01)).unwrap();
        let (nx, ny, nz) = holo.dimensions();
        assert_eq!((nx, ny, nz), (11, 11, 1));
        assert_eq!(holo.cell_count(), 121);
        // Corners are at center ± half extent.
        let c0 = holo.cell_position(0, 0, 0);
        assert!((c0.x + 0.05).abs() < 1e-12);
        assert!((c0.y - 0.45).abs() < 1e-12);
        let c_end = holo.cell_position(10, 10, 0);
        assert!((c_end.x - 0.05).abs() < 1e-12);
        assert!(holo.value(0, 0, 0).is_some());
        assert!(holo.value(11, 0, 0).is_none());
    }

    #[test]
    fn hologram_3d_search() {
        let target = Point3::new(0.05, 0.8, 0.1);
        // Two-line scan in 3D (z = 0 and z = 0.2).
        let mut m = Vec::new();
        for i in 0..60 {
            let x = -0.3 + i as f64 * 0.01;
            for z in [0.0, 0.2] {
                let p = Point3::new(x, 0.0, z);
                m.push((p, phase_of(target, p)));
            }
        }
        let volume = SearchVolume::cube_3d(Point3::new(0.05, 0.8, 0.1), 0.03);
        let (holo, est) = build_hologram(&m, volume, &cfg(0.005)).unwrap();
        assert_eq!(holo.dimensions().2, 13);
        assert!(
            est.position.distance(target) <= 0.01,
            "error {}",
            est.position.distance(target)
        );
    }

    #[test]
    fn augmentation_counts_double_cells() {
        let target = Point3::new(0.3, 0.4, 0.0);
        let m = circular_measurements(target, 20);
        let volume = SearchVolume::square_2d(target, 0.02);
        let plain = HologramConfig {
            augmented: false,
            ..cfg(0.004)
        };
        let (_, e1) = build_hologram(&m, volume, &plain).unwrap();
        let (_, e2) = build_hologram(&m, volume, &cfg(0.004)).unwrap();
        assert_eq!(e2.cells_evaluated, 2 * e1.cells_evaluated);
    }

    #[test]
    fn offsets_cancel_in_differential() {
        // A constant hardware offset must not move the peak.
        let target = Point3::new(0.45, 0.55, 0.0);
        let m: Vec<(Point3, f64)> = circular_measurements(target, 40)
            .into_iter()
            .map(|(p, t)| (p, (t + 2.9).rem_euclid(TAU)))
            .collect();
        let volume = SearchVolume::square_2d(target, 0.03);
        let (_, est) = build_hologram(&m, volume, &cfg(0.003)).unwrap();
        assert!(est.position.distance(target) <= 0.005);
    }

    #[test]
    fn validation_errors() {
        let target = Point3::new(0.0, 0.5, 0.0);
        let m = circular_measurements(target, 10);
        let volume = SearchVolume::square_2d(target, 0.05);
        assert!(matches!(
            build_hologram(&m[..1], volume, &cfg(0.01)),
            Err(BaselineError::TooFewMeasurements { .. })
        ));
        let mut bad = cfg(0.01);
        bad.grid_size = 0.0;
        assert!(build_hologram(&m, volume, &bad).is_err());
        let mut bad = cfg(0.01);
        bad.wavelength = -1.0;
        assert!(build_hologram(&m, volume, &bad).is_err());
        let bad_vol = SearchVolume {
            half_extent_x: 0.0,
            ..volume
        };
        assert!(build_hologram(&m, bad_vol, &cfg(0.01)).is_err());
        let mut nan = m.clone();
        nan[0].1 = f64::NAN;
        assert!(matches!(
            build_hologram(&nan, volume, &cfg(0.01)),
            Err(BaselineError::NonFiniteInput { index: 0 })
        ));
    }

    #[test]
    fn locate_matches_build() {
        let target = Point3::new(0.2, 0.7, 0.0);
        let m = circular_measurements(target, 30);
        let volume = SearchVolume::square_2d(target, 0.02);
        let e1 = locate(&m, volume, &cfg(0.004)).unwrap();
        let (_, e2) = build_hologram(&m, volume, &cfg(0.004)).unwrap();
        assert_eq!(e1, e2);
    }
}
