//! Multi-antenna differential hologram — the paper's case study
//! (Sec. V-F1, Figs. 19–20).
//!
//! Several static antennas read one static tag; candidate tag positions
//! are scored by how well the *between-antenna* phase differences match
//! expectation. This is where phase calibration pays off: the paper shows
//! the raw localization error of 8.49 cm dropping to 5.76 cm after
//! calibrating the phase centers and to 4.68 cm after also removing the
//! per-antenna phase offsets.

use lion_geom::Point3;
use lion_linalg::stats;
use serde::{Deserialize, Serialize};

use crate::hologram::SearchVolume;
use crate::BaselineError;

/// One antenna's contribution: its assumed position (physical center, or
/// the calibrated phase center) and the phase it measured from the tag.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AntennaReading {
    /// Antenna position used for the expected-phase computation.
    pub position: Point3,
    /// Measured (wrapped) phase in radians — typically an average over
    /// many reads.
    pub phase: f64,
    /// Hardware phase offset to subtract before differencing (0 when
    /// uncalibrated).
    pub phase_offset: f64,
}

impl AntennaReading {
    /// A reading with no offset correction.
    pub fn new(position: Point3, phase: f64) -> Self {
        AntennaReading {
            position,
            phase,
            phase_offset: 0.0,
        }
    }

    /// Attaches a calibrated phase offset.
    pub fn with_offset(mut self, offset: f64) -> Self {
        self.phase_offset = offset;
        self
    }

    fn corrected_phase(&self) -> f64 {
        stats::wrap_angle(self.phase - self.phase_offset)
    }
}

/// Configuration for the multi-antenna differential hologram.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiAntennaConfig {
    /// Grid cell size in meters.
    pub grid_size: f64,
    /// Carrier wavelength in meters.
    pub wavelength: f64,
}

impl Default for MultiAntennaConfig {
    fn default() -> Self {
        MultiAntennaConfig {
            grid_size: 0.001,
            wavelength: 299_792_458.0 / 920.625e6,
        }
    }
}

/// Result of a multi-antenna tag localization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiAntennaEstimate {
    /// Peak-likelihood grid cell.
    pub position: Point3,
    /// Peak likelihood in `[0, 1]`.
    pub likelihood: f64,
    /// Number of antenna pairs used.
    pub pairs: usize,
    /// Grid cells evaluated.
    pub cells_evaluated: usize,
}

/// Locates a static tag from several static antennas by differential
/// hologram.
///
/// # Errors
///
/// - [`BaselineError::TooFewMeasurements`] with fewer than 2 antennas,
/// - [`BaselineError::InvalidParameter`] for bad grid/extent/wavelength,
/// - [`BaselineError::NonFiniteInput`] for NaN/inf readings.
pub fn locate_tag(
    readings: &[AntennaReading],
    volume: SearchVolume,
    config: &MultiAntennaConfig,
) -> Result<MultiAntennaEstimate, BaselineError> {
    if readings.len() < 2 {
        return Err(BaselineError::TooFewMeasurements {
            got: readings.len(),
            needed: 2,
        });
    }
    for (i, r) in readings.iter().enumerate() {
        if !r.position.is_finite() || !r.phase.is_finite() || !r.phase_offset.is_finite() {
            return Err(BaselineError::NonFiniteInput { index: i });
        }
    }
    // NaN-safe: every comparison is false for NaN, so NaN inputs fail.
    let params_ok = config.grid_size > 0.0
        && config.grid_size.is_finite()
        && config.wavelength > 0.0
        && config.wavelength.is_finite()
        && volume.half_extent_x > 0.0
        && volume.half_extent_y > 0.0
        && volume.half_extent_z >= 0.0;
    if !params_ok {
        return Err(BaselineError::InvalidParameter {
            parameter: "config/volume",
            found: format!("{config:?} {volume:?}"),
        });
    }
    let g = config.grid_size;
    let nx = (2.0 * volume.half_extent_x / g).round() as usize + 1;
    let ny = (2.0 * volume.half_extent_y / g).round() as usize + 1;
    let nz = if volume.half_extent_z > 0.0 {
        (2.0 * volume.half_extent_z / g).round() as usize + 1
    } else {
        1
    };
    let origin = Point3::new(
        volume.center.x - volume.half_extent_x,
        volume.center.y - volume.half_extent_y,
        if nz > 1 {
            volume.center.z - volume.half_extent_z
        } else {
            volume.center.z
        },
    );
    let k_wave = 4.0 * std::f64::consts::PI / config.wavelength;
    let mut pairs = Vec::new();
    for a in 0..readings.len() {
        for b in (a + 1)..readings.len() {
            pairs.push((a, b));
        }
    }
    let mut best = (Point3::ORIGIN, f64::NEG_INFINITY);
    for kz in 0..nz {
        for jy in 0..ny {
            for ix in 0..nx {
                let p = Point3::new(
                    origin.x + ix as f64 * g,
                    origin.y + jy as f64 * g,
                    origin.z + kz as f64 * g,
                );
                let mut re = 0.0;
                let mut im = 0.0;
                for &(a, b) in &pairs {
                    let expected = k_wave
                        * (p.distance(readings[a].position) - p.distance(readings[b].position));
                    let measured = readings[a].corrected_phase() - readings[b].corrected_phase();
                    let angle = measured - expected;
                    re += angle.cos();
                    im += angle.sin();
                }
                let v = (re * re + im * im).sqrt() / pairs.len() as f64;
                if v > best.1 {
                    best = (p, v);
                }
            }
        }
    }
    Ok(MultiAntennaEstimate {
        position: best.0,
        likelihood: best.1,
        pairs: pairs.len(),
        cells_evaluated: nx * ny * nz,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{PI, TAU};

    const LAMBDA: f64 = 299_792_458.0 / 920.625e6;

    fn reading(antenna: Point3, tag: Point3, offset: f64) -> AntennaReading {
        let phase = (4.0 * PI * antenna.distance(tag) / LAMBDA + offset).rem_euclid(TAU);
        AntennaReading::new(antenna, phase)
    }

    fn antennas() -> Vec<Point3> {
        // The paper's rig: three antennas in a line, 0.3 m apart.
        vec![
            Point3::new(-0.3, 0.0, 0.0),
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(0.3, 0.0, 0.0),
        ]
    }

    #[test]
    fn locates_tag_with_clean_phases() {
        // Paper geometry: tag at (−10 cm, 80 cm) from the center antenna.
        let tag = Point3::new(-0.1, 0.8, 0.0);
        let readings: Vec<AntennaReading> = antennas()
            .into_iter()
            .map(|a| reading(a, tag, 0.0))
            .collect();
        let volume = SearchVolume::square_2d(Point3::new(0.0, 0.8, 0.0), 0.15);
        let est = locate_tag(
            &readings,
            volume,
            &MultiAntennaConfig {
                grid_size: 0.002,
                ..MultiAntennaConfig::default()
            },
        )
        .unwrap();
        assert!(
            est.position.distance(tag) < 0.01,
            "error {}",
            est.position.distance(tag)
        );
        assert_eq!(est.pairs, 3);
        assert!(est.likelihood > 0.99);
    }

    #[test]
    fn uncorrected_offsets_degrade_then_calibration_fixes() {
        let tag = Point3::new(-0.1, 0.8, 0.0);
        let offsets = [3.98, 2.74, 4.07]; // the paper's measured offsets
        let biased: Vec<AntennaReading> = antennas()
            .into_iter()
            .zip(offsets)
            .map(|(a, o)| reading(a, tag, o))
            .collect();
        let corrected: Vec<AntennaReading> = biased
            .iter()
            .zip(offsets)
            .map(|(r, o)| (*r).with_offset(o))
            .collect();
        let volume = SearchVolume::square_2d(Point3::new(0.0, 0.8, 0.0), 0.15);
        let cfg = MultiAntennaConfig {
            grid_size: 0.002,
            ..MultiAntennaConfig::default()
        };
        let e_biased = locate_tag(&biased, volume, &cfg).unwrap();
        let e_corrected = locate_tag(&corrected, volume, &cfg).unwrap();
        let err_biased = e_biased.position.distance(tag);
        let err_corrected = e_corrected.position.distance(tag);
        assert!(err_corrected < 0.01, "corrected error {err_corrected}");
        assert!(
            err_biased > err_corrected,
            "offset calibration should help: {err_biased} vs {err_corrected}"
        );
    }

    #[test]
    fn validation() {
        let tag = Point3::new(0.0, 0.8, 0.0);
        let one = vec![reading(Point3::ORIGIN, tag, 0.0)];
        let volume = SearchVolume::square_2d(tag, 0.1);
        let cfg = MultiAntennaConfig::default();
        assert!(matches!(
            locate_tag(&one, volume, &cfg),
            Err(BaselineError::TooFewMeasurements { .. })
        ));
        let mut two = vec![
            reading(Point3::new(-0.3, 0.0, 0.0), tag, 0.0),
            reading(Point3::new(0.3, 0.0, 0.0), tag, 0.0),
        ];
        let bad = MultiAntennaConfig {
            grid_size: 0.0,
            ..cfg
        };
        assert!(locate_tag(&two, volume, &bad).is_err());
        two[0].phase = f64::NAN;
        assert!(matches!(
            locate_tag(&two, volume, &cfg),
            Err(BaselineError::NonFiniteInput { index: 0 })
        ));
    }

    #[test]
    fn likelihood_bounded() {
        let tag = Point3::new(0.05, 0.7, 0.0);
        let readings: Vec<AntennaReading> = antennas()
            .into_iter()
            .map(|a| reading(a, tag, 1.0))
            .collect();
        // Same offset on every antenna cancels in the differential.
        let volume = SearchVolume::square_2d(Point3::new(0.0, 0.7, 0.0), 0.1);
        let est = locate_tag(
            &readings,
            volume,
            &MultiAntennaConfig {
                grid_size: 0.005,
                ..MultiAntennaConfig::default()
            },
        )
        .unwrap();
        assert!(est.likelihood <= 1.0 + 1e-9);
        assert!(est.position.distance(tag) < 0.02);
    }
}
