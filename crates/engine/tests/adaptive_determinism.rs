//! The adaptive fan-out must be bit-deterministic: any engine worker
//! count produces exactly the same [`AdaptiveOutcome`] as the sequential
//! core sweep — positions, residuals, trial order, skip counts, all of
//! it, compared with `==` (no tolerances).

use std::f64::consts::{PI, TAU};

use lion_core::{AdaptiveConfig, Localizer2d, Localizer3d, LocalizerConfig, PairStrategy};
use lion_engine::Engine;
use lion_geom::Point3;

const LAMBDA: f64 = 299_792_458.0 / 920.625e6;

fn phase_of(target: Point3, p: Point3) -> f64 {
    (4.0 * PI * target.distance(p) / LAMBDA).rem_euclid(TAU)
}

/// A fig16-style linear scan with deterministic LCG phase noise, so
/// residuals differ meaningfully between grid cells.
fn noisy_linear_scan(target: Point3, half_range: f64, step: f64, sigma: f64) -> Vec<(Point3, f64)> {
    let mut state: u64 = 0x5DEECE66D;
    let mut noise = || {
        // Two LCG draws → approximately Gaussian via the sum of uniforms.
        let mut sum = 0.0;
        for _ in 0..12 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            sum += (state >> 11) as f64 / (1u64 << 53) as f64;
        }
        (sum - 6.0) * sigma
    };
    let n = (2.0 * half_range / step) as usize;
    (0..=n)
        .map(|i| {
            let p = Point3::new(-half_range + i as f64 * step, 0.0, 0.0);
            (p, (phase_of(target, p) + noise()).rem_euclid(TAU))
        })
        .collect()
}

fn cfg() -> LocalizerConfig {
    LocalizerConfig {
        smoothing_window: 1,
        pair_strategy: PairStrategy::Interval { interval: 0.2 },
        side_hint: Some(Point3::new(0.0, 0.5, 0.0)),
        ..LocalizerConfig::default()
    }
}

#[test]
fn adaptive_2d_is_bit_identical_across_worker_counts() {
    let target = Point3::new(0.1, 0.8, 0.0);
    let m = noisy_linear_scan(target, 0.6, 0.005, 0.05);
    let config = cfg();
    let grid = AdaptiveConfig::default();
    let sequential = Localizer2d::new(config.clone())
        .locate_adaptive(&m, &grid)
        .expect("sequential sweep succeeds");
    for workers in [1, 2, 4, 7] {
        let engine = Engine::builder().workers(workers).build().expect("valid");
        let fanned = engine
            .locate_adaptive_2d(&m, &config, &grid)
            .expect("fanned sweep succeeds");
        assert_eq!(sequential, fanned, "workers={workers}");
    }
}

#[test]
fn adaptive_3d_is_bit_identical_across_worker_counts() {
    let target = Point3::new(0.1, 0.2, 0.7);
    let m: Vec<(Point3, f64)> = (0..400)
        .map(|i| {
            let a = i as f64 * TAU / 400.0;
            let p = Point3::new(0.35 * a.cos(), 0.35 * a.sin(), 0.0);
            (p, phase_of(target, p))
        })
        .collect();
    let mut config = cfg();
    config.side_hint = Some(Point3::new(0.0, 0.0, 0.5));
    let grid = AdaptiveConfig {
        scanning_ranges: vec![0.5, 0.7],
        intervals: vec![0.15, 0.2, 0.25],
        keep: 2,
    };
    let sequential = Localizer3d::new(config.clone())
        .locate_adaptive(&m, &grid)
        .expect("sequential sweep succeeds");
    for workers in [1, 3, 6] {
        let engine = Engine::builder().workers(workers).build().expect("valid");
        let fanned = engine
            .locate_adaptive_3d(&m, &config, &grid)
            .expect("fanned sweep succeeds");
        assert_eq!(sequential, fanned, "workers={workers}");
    }
}

#[test]
fn per_cell_failures_count_as_skipped_in_fanout() {
    let target = Point3::new(0.0, 0.8, 0.0);
    let m = noisy_linear_scan(target, 0.5, 0.01, 0.02);
    let config = cfg();
    // The 1 mm range keeps too few samples in every interval column.
    let grid = AdaptiveConfig {
        scanning_ranges: vec![0.001, 0.8],
        intervals: vec![0.2, 0.3],
        keep: 1,
    };
    let sequential = Localizer2d::new(config.clone())
        .locate_adaptive(&m, &grid)
        .expect("usable cells remain");
    let fanned = Engine::builder()
        .workers(4)
        .build()
        .expect("valid")
        .locate_adaptive_2d(&m, &config, &grid)
        .expect("usable cells remain");
    assert_eq!(sequential, fanned);
    assert_eq!(fanned.skipped, 2);
}
