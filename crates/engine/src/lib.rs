//! # lion-engine
//!
//! Work-queue batch execution for LION localization and calibration.
//!
//! The solver itself ([`lion_core`]) locates one antenna from one trace in
//! microseconds; production deployments (and the paper's own evaluation)
//! run *many* independent solves — one per antenna, per trial, per
//! parameter setting. This crate fans a batch of such [`Job`]s across a
//! fixed pool of scoped worker threads:
//!
//! - **Deterministic**: results come back in submission order, and every
//!   job computes on its own immutable inputs with a thread-local
//!   [`lion_core::Workspace`], so the estimates are bit-identical to a
//!   serial run regardless of the worker count.
//! - **Allocation-free steady state**: each worker reuses one workspace
//!   (design matrix, RHS, IRLS scratch) across all the jobs it drains.
//! - **Instrumented**: the per-stage timers and counters the workspace
//!   records ([`lion_core::StageMetrics`]) are collected per job and
//!   aggregated into a [`MetricsReport`].
//!
//! # Example
//!
//! ```
//! use lion_engine::{Engine, Job};
//! use lion_core::LocalizerConfig;
//! use lion_geom::Point3;
//! use std::f64::consts::{PI, TAU};
//!
//! # fn main() -> Result<(), lion_core::CoreError> {
//! let antenna = Point3::new(1.0, 0.0, 0.0);
//! let lambda = LocalizerConfig::paper().wavelength;
//! let trace: Vec<(Point3, f64)> = (0..200)
//!     .map(|i| {
//!         let a = i as f64 * TAU / 200.0;
//!         let p = Point3::new(0.3 * a.cos(), 0.3 * a.sin(), 0.0);
//!         (p, (4.0 * PI * antenna.distance(p) / lambda) % TAU)
//!     })
//!     .collect();
//! let jobs: Vec<Job> = (0..8)
//!     .map(|_| Job::locate_2d(trace.clone(), LocalizerConfig::paper()))
//!     .collect();
//! let outcome = Engine::builder().workers(2).build()?.run(&jobs);
//! assert_eq!(outcome.results.len(), 8);
//! let est = outcome.results[0].as_ref().expect("clean trace locates");
//! assert!(est.estimate().expect("locate job").distance_error(antenna) < 5e-3);
//! assert!(outcome.report.total.solves >= 8);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod job;
pub mod metrics;
mod stream;

pub use engine::{BatchOutcome, Engine, EngineBuilder};
pub use job::{Job, JobKind, JobOutput};
pub use metrics::{JobTiming, MetricsReport, StageDistributions};
pub use stream::{StreamJob, StreamOutcome};
