//! Concurrent stream execution: many tag streams, one worker pool.
//!
//! A batch [`crate::Job`] is "here is a finished trace, locate it"; a
//! [`StreamJob`] is "here is a *live feed* of reads for one tag, keep a
//! running estimate". [`Engine::run_streams`] multiplexes any number of
//! such feeds across the same scoped worker pool as [`Engine::run`], one
//! stream per worker at a time, draining a shared atomic cursor.
//!
//! Each stream gets its own bounded [`Ingress`] queue between arrival and
//! solve — the per-stream backpressure. Reads arrive in bursts (a real
//! reader reports inventory rounds, not single tags); when a burst
//! overflows the queue, the **oldest queued** reads are shed, newest
//! kept. Both the burst schedule and the shed set are pure functions of
//! the job description, so outcomes are bit-identical across worker
//! counts and runs — see `tests/stream_backpressure.rs`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use lion_core::{CoreError, ResolvePath};
use lion_obs::{Doctor, DoctorConfig, HealthReport, SolveObservation};
use lion_stream::{
    Ingress, ResolveMode, StreamConfig, StreamEstimate, StreamLocalizer, StreamRead,
};

use crate::engine::{job_contexts, Engine};

/// One tag's read feed plus the pipeline and backpressure settings to
/// run it under.
#[derive(Debug, Clone)]
pub struct StreamJob {
    /// The reads, in arrival order (not necessarily timestamp order —
    /// the window re-sorts).
    pub reads: Vec<StreamRead>,
    /// Pipeline configuration.
    pub config: StreamConfig,
    /// Reads delivered per arrival burst (an inventory round). The queue
    /// is drained between bursts.
    pub burst: usize,
    /// Ingress queue capacity; a burst larger than this sheds its oldest
    /// queued reads deterministically.
    pub queue_capacity: usize,
    /// Whether to force a final solve on whatever the window holds after
    /// the feed ends (reads past the last cadence point).
    pub flush_at_end: bool,
    /// Optional calibration-health watchdogs: when set, a
    /// [`Doctor`] observes every solve and the outcome carries its
    /// [`HealthReport`].
    pub doctor: Option<DoctorConfig>,
    /// Optional cross-check backend: when set, every cadence emission is
    /// re-solved on the same window through this solver and the distance
    /// between the two estimates feeds the doctor's
    /// `solver_disagreement` rule.
    pub cross_check: Option<lion_core::SolverKind>,
}

impl StreamJob {
    /// A job with the default burst shape: bursts of 32 into a queue of
    /// 64, flushing at end-of-stream.
    pub fn new(reads: Vec<StreamRead>, config: StreamConfig) -> Self {
        StreamJob {
            reads,
            config,
            burst: 32,
            queue_capacity: 64,
            flush_at_end: true,
            doctor: None,
            cross_check: None,
        }
    }

    /// Sets the arrival burst size.
    pub fn with_burst(mut self, burst: usize) -> Self {
        self.burst = burst;
        self
    }

    /// Sets the ingress queue capacity.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Enables or disables the end-of-stream flush solve.
    pub fn with_flush_at_end(mut self, flush: bool) -> Self {
        self.flush_at_end = flush;
        self
    }

    /// Enables calibration-health watchdogs for this stream: a
    /// [`Doctor`] with `config` observes every solve (residual drift,
    /// convergence stalls, ingress shed rate, solve-latency p99) and the
    /// outcome's [`StreamOutcome::health`] carries its report.
    pub fn with_doctor(mut self, config: DoctorConfig) -> Self {
        self.doctor = Some(config);
        self
    }

    /// Enables the solver cross-check: every emission is re-solved on
    /// the same window with `kind` (e.g.
    /// `SolverKind::Grid(GridConfig::default())` against a linear
    /// primary) and the estimate distance feeds the doctor's
    /// `solver_disagreement` rule. The kind must be valid under
    /// [`lion_core::SolverKind::validate`].
    pub fn with_solver_cross_check(mut self, kind: lion_core::SolverKind) -> Self {
        self.cross_check = Some(kind);
        self
    }

    /// Checks the job's invariants (burst ≥ 1; queue and pipeline config
    /// via their own validators).
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] naming the offending parameter.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.burst == 0 {
            return Err(CoreError::InvalidConfig {
                parameter: "burst",
                found: "0".to_string(),
            });
        }
        if self.queue_capacity == 0 {
            return Err(CoreError::InvalidConfig {
                parameter: "queue_capacity",
                found: "0".to_string(),
            });
        }
        if let Some(kind) = &self.cross_check {
            kind.validate()?;
        }
        self.config.validate()
    }
}

/// Everything one stream produced.
#[derive(Debug, Clone)]
pub struct StreamOutcome {
    /// Every estimate the pipeline emitted, in emission order.
    pub estimates: Vec<StreamEstimate>,
    /// Reads the feed offered.
    pub reads_in: u64,
    /// Reads shed by ingress backpressure (queue overflow, oldest-drop).
    pub overflow_dropped: u64,
    /// Reads rejected by the window as too late.
    pub late_rejected: u64,
    /// Due solves that failed (counted, not fatal — the stream carries
    /// on; a window can be transiently degenerate).
    pub solve_errors: u64,
    /// Whether the stream ended in the converged state.
    pub converged: bool,
    /// Normal-equation rows touched by incremental delta re-solves
    /// (zero unless the job ran [`ResolveMode::Incremental`]).
    pub resolve_rows_delta: u64,
    /// Full incremental-state rebuilds (warm-up, periodic re-anchors,
    /// fallbacks); zero in replay mode.
    pub resolve_rebuilds: u64,
    /// Emitted solves that fell back to the replay path while in
    /// incremental mode; zero in replay mode.
    pub resolve_fallbacks: u64,
    /// The watchdog report, when the job ran with
    /// [`StreamJob::with_doctor`].
    pub health: Option<HealthReport>,
}

impl StreamOutcome {
    /// The last emitted estimate, if any solve succeeded.
    pub fn final_estimate(&self) -> Option<&StreamEstimate> {
        self.estimates.last()
    }
}

/// Runs one stream to completion: burst-offer into ingress, drain into
/// the pipeline, repeat; optional flush at end-of-feed. `trace` is the
/// job's root context minted at submission — attached here so the whole
/// solve tree (ingress → window → unwrap → … → adaptive) hangs under
/// one `lion.stream.job` root even on a foreign worker thread.
fn run_stream_job(
    job: &StreamJob,
    trace: Option<lion_obs::TraceContext>,
) -> Result<StreamOutcome, CoreError> {
    job.validate()?;
    let _trace = trace.map(lion_obs::attach);
    let _span = lion_obs::span!("lion.stream.job");
    let mut pipeline = StreamLocalizer::new(job.config.clone())?;
    let mut ingress = Ingress::new(job.queue_capacity)?;
    let mut doctor = job.doctor.clone().map(Doctor::new);
    // Live telemetry plane: when a hub is installed, every solve feeds
    // the fleet SLO window. One relaxed atomic load when it isn't.
    let hub = lion_obs::telemetry_hub();
    // Clock solves only when someone consumes the latency.
    let clock_solves = doctor.is_some() || hub.is_some();
    let mut estimates = Vec::new();
    let mut solve_errors = 0u64;
    let mut observed_accepted = 0u64;
    let mut observed_shed = 0u64;
    let mut observe = |doctor: &mut Option<Doctor>,
                       estimate: &StreamEstimate,
                       ingress: &Ingress,
                       solve_ns: u64,
                       solver_disagreement_m: Option<f64>| {
        let Some(doctor) = doctor.as_mut() else {
            return;
        };
        let accepted = ingress.offered() - ingress.overflow_dropped();
        let shed = ingress.overflow_dropped();
        // Replay mode replays by design — there is no fallback signal to
        // report, so the doctor's rule sees no data rather than alarms.
        let resolve_fallback = match job.config.resolve_mode {
            ResolveMode::Incremental => Some(estimate.resolve_path == ResolvePath::Replayed),
            _ => None,
        };
        doctor.observe(SolveObservation {
            time: estimate.trigger_time,
            mean_residual: estimate.mean_residual,
            converged: estimate.converged,
            solve_ns,
            reads_in: accepted - observed_accepted,
            shed: shed - observed_shed,
            solver_disagreement_m,
            resolve_fallback,
        });
        observed_accepted = accepted;
        observed_shed = shed;
    };
    // The second opinion: re-solve the emission's window through the
    // cross-check backend and measure how far the two estimators
    // diverge. A failed cross-check solve yields no data point (the
    // doctor's rule reports insufficient data rather than guessing).
    let cross_check = |pipeline: &mut StreamLocalizer, estimate: &StreamEstimate| {
        job.cross_check.and_then(|kind| {
            pipeline
                .cross_check_in(kind)
                .ok()
                .map(|alt| alt.position.distance(estimate.position))
        })
    };
    for burst in job.reads.chunks(job.burst) {
        {
            let _ingress_span = lion_obs::span!("lion.stream.ingress");
            for &read in burst {
                // Overflow sheds the oldest queued read; it never reaches
                // the pipeline, exactly as if the reader buffer dropped it.
                let _ = ingress.offer(read);
            }
        }
        while let Some((read, arrival)) = ingress.pop_with_arrival() {
            let pushed_at = clock_solves.then(Instant::now);
            match pipeline.push_at(read, arrival) {
                Ok(Some(estimate)) => {
                    let solve_ns =
                        pushed_at.map_or(0, |t| lion_obs::saturating_ns_between(t, Instant::now()));
                    if let Some(hub) = &hub {
                        hub.with_fleet(|fleet| fleet.observe_solve(solve_ns));
                    }
                    let disagreement = doctor
                        .is_some()
                        .then(|| cross_check(&mut pipeline, &estimate))
                        .flatten();
                    observe(&mut doctor, &estimate, &ingress, solve_ns, disagreement);
                    estimates.push(estimate);
                }
                Ok(None) => {}
                Err(e) => {
                    solve_errors += 1;
                    if let Some(hub) = &hub {
                        hub.with_fleet(|fleet| fleet.observe_failure(e.kind()));
                    }
                }
            }
        }
    }
    if job.flush_at_end {
        // Only meaningful when reads arrived after the last cadence
        // solve; a flush on an already-solved window re-emits.
        let flushed_at = clock_solves.then(Instant::now);
        match pipeline.flush() {
            Ok(Some(estimate)) => {
                let solve_ns =
                    flushed_at.map_or(0, |t| lion_obs::saturating_ns_between(t, Instant::now()));
                if let Some(hub) = &hub {
                    hub.with_fleet(|fleet| fleet.observe_solve(solve_ns));
                }
                let disagreement = doctor
                    .is_some()
                    .then(|| cross_check(&mut pipeline, &estimate))
                    .flatten();
                observe(&mut doctor, &estimate, &ingress, solve_ns, disagreement);
                estimates.push(estimate);
            }
            Ok(None) => {}
            Err(e) => {
                solve_errors += 1;
                if let Some(hub) = &hub {
                    hub.with_fleet(|fleet| fleet.observe_failure(e.kind()));
                }
            }
        }
    }
    lion_obs::event!(
        lion_obs::Level::Info,
        "lion.stream.job.done",
        "reads" => job.reads.len() as u64,
        "estimates" => estimates.len() as u64,
        "dropped" => ingress.overflow_dropped(),
        "converged" => pipeline.is_converged(),
    );
    Ok(StreamOutcome {
        reads_in: ingress.offered(),
        overflow_dropped: ingress.overflow_dropped(),
        late_rejected: pipeline.rejected_late(),
        solve_errors,
        converged: pipeline.is_converged(),
        resolve_rows_delta: pipeline.resolve_rows_delta(),
        resolve_rebuilds: pipeline.resolve_rebuilds(),
        resolve_fallbacks: pipeline.resolve_fallbacks(),
        health: doctor.map(|d| d.report()),
        estimates,
    })
}

impl Engine {
    /// Runs every stream to completion across the worker pool, returning
    /// outcomes in submission order.
    ///
    /// Parallelism is *across* streams: each stream is drained start to
    /// finish by one worker (reads within a stream are sequential by
    /// nature), and workers pull the next pending stream from an atomic
    /// cursor. Outcomes are bit-identical for any worker count. A job
    /// with an invalid configuration fails in its own slot without
    /// affecting the rest.
    ///
    /// When a [`lion_obs::TelemetryHub`] is installed, each doctored
    /// stream's [`HealthReport`] is ingested into the hub's fleet rollup
    /// — in submission order, after collection, so the rollup is
    /// identical for any worker count. Streams are identified by
    /// `config.label` when set, else by submission slot (`stream-<i>`).
    ///
    /// When the hub's **history plane** is enabled
    /// ([`lion_obs::TelemetryHub::enable_history`]), the run also brackets
    /// itself with [`lion_obs::TelemetryHub::sample_tick`] (one due-check
    /// before the first job, one after ingestion) and records each
    /// stream's estimates into the time-series store as
    /// `lion.stream.*{stream="<label>"}` series, timestamped in *stream
    /// time* — so the stored history, like the outcomes, is bit-identical
    /// across worker counts.
    pub fn run_streams(&self, jobs: &[StreamJob]) -> Vec<Result<StreamOutcome, CoreError>> {
        let workers = self.workers().min(jobs.len()).max(1);
        let hub = lion_obs::telemetry_hub();
        // Fixed lifecycle point: sampling before any job starts keeps
        // the tick count independent of worker scheduling.
        if let Some(hub) = &hub {
            hub.sample_tick();
        }
        // Root trace contexts in submission order (see `job_contexts`).
        let contexts = job_contexts(jobs.len());
        if workers == 1 {
            return ingest_fleet_health(
                jobs,
                jobs.iter()
                    .zip(&contexts)
                    .map(|(job, ctx)| run_stream_job(job, *ctx))
                    .collect(),
            );
        }
        let cursor = AtomicUsize::new(0);
        let mut collected: Vec<(usize, Result<StreamOutcome, CoreError>)> =
            Vec::with_capacity(jobs.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(job) = jobs.get(i) else { break };
                            local.push((i, run_stream_job(job, contexts[i])));
                        }
                        local
                    })
                })
                .collect();
            for handle in handles {
                collected.extend(handle.join().expect("stream worker panicked"));
            }
        });
        collected.sort_unstable_by_key(|(i, _)| *i);
        ingest_fleet_health(
            jobs,
            collected.into_iter().map(|(_, outcome)| outcome).collect(),
        )
    }
}

/// The stream's telemetry identity: its configured label, or its
/// submission slot.
fn stream_label(job: &StreamJob, slot: usize) -> String {
    job.config
        .label
        .clone()
        .unwrap_or_else(|| format!("stream-{slot}"))
}

/// Feeds every doctored outcome's health report into the installed
/// telemetry hub's fleet rollup and, when the history plane is on,
/// records per-stream series and runs one sampler due-check — all in
/// submission order. Pass-through (one relaxed atomic load) when no hub
/// is installed.
fn ingest_fleet_health(
    jobs: &[StreamJob],
    outcomes: Vec<Result<StreamOutcome, CoreError>>,
) -> Vec<Result<StreamOutcome, CoreError>> {
    if let Some(hub) = lion_obs::telemetry_hub() {
        hub.with_fleet(|fleet| {
            for (i, (job, outcome)) in jobs.iter().zip(&outcomes).enumerate() {
                if let Ok(outcome) = outcome {
                    if let Some(health) = &outcome.health {
                        fleet.ingest(&stream_label(job, i), health);
                    }
                }
            }
        });
        record_stream_series(&hub, jobs, &outcomes);
        hub.sample_tick();
    }
    outcomes
}

/// Records each stream's outcome into the hub's time-series store:
/// per-estimate `residual` / `confidence` gauges timestamped in stream
/// time (`trigger_time` seconds → ns), plus final `reads_in` /
/// `overflow_dropped` cumulative counters. No-op unless
/// [`lion_obs::TelemetryHub::enable_history`] was called.
fn record_stream_series(
    hub: &lion_obs::TelemetryHub,
    jobs: &[StreamJob],
    outcomes: &[Result<StreamOutcome, CoreError>],
) {
    let Some(tsdb) = hub.tsdb() else {
        return;
    };
    let series = |metric: &str, label: &str| format!("lion.stream.{metric}{{stream=\"{label}\"}}");
    for (i, (job, outcome)) in jobs.iter().zip(outcomes).enumerate() {
        let Ok(outcome) = outcome else { continue };
        let label = stream_label(job, i);
        let mut last_t_ns = 0u64;
        for estimate in &outcome.estimates {
            // Stream-time timestamps: deterministic across runs and
            // worker counts, unlike the wall clock.
            let t_ns = (estimate.trigger_time * 1e9) as u64;
            last_t_ns = last_t_ns.max(t_ns);
            tsdb.push_gauge(&series("residual", &label), t_ns, estimate.mean_residual);
            tsdb.push_gauge(&series("confidence", &label), t_ns, estimate.confidence);
        }
        tsdb.push_counter(&series("reads_in", &label), last_t_ns, outcome.reads_in);
        tsdb.push_counter(
            &series("overflow_dropped", &label),
            last_t_ns,
            outcome.overflow_dropped,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lion_geom::Point3;
    use lion_stream::Cadence;
    use std::f64::consts::{PI, TAU};

    fn clean_reads(antenna: Point3, n: usize) -> Vec<StreamRead> {
        let lambda = StreamConfig::default().localizer.wavelength;
        (0..n)
            .map(|i| {
                let a = i as f64 * TAU / 120.0;
                let p = Point3::new(0.3 * a.cos(), 0.3 * a.sin(), 0.0);
                StreamRead {
                    time: i as f64 * 0.01,
                    position: p,
                    phase: (4.0 * PI * antenna.distance(p) / lambda) % TAU,
                    ..StreamRead::default()
                }
            })
            .collect()
    }

    #[test]
    fn streams_come_back_in_submission_order() {
        // Distinct antennas identify the slots.
        let jobs: Vec<StreamJob> = (0..6)
            .map(|i| {
                let antenna = Point3::new(1.0 + 0.1 * i as f64, 0.4, 0.0);
                StreamJob::new(clean_reads(antenna, 300), StreamConfig::default())
            })
            .collect();
        let outcomes = Engine::builder()
            .workers(3)
            .build()
            .expect("valid")
            .run_streams(&jobs);
        assert_eq!(outcomes.len(), 6);
        for (i, outcome) in outcomes.iter().enumerate() {
            let outcome = outcome.as_ref().expect("clean stream runs");
            let expected = Point3::new(1.0 + 0.1 * i as f64, 0.4, 0.0);
            let got = outcome
                .final_estimate()
                .expect("estimates emitted")
                .position;
            assert!(got.distance(expected) < 5e-2, "slot {i}: {got:?}");
        }
    }

    #[test]
    fn outcomes_are_identical_across_worker_counts() {
        let jobs: Vec<StreamJob> = (0..4)
            .map(|i| {
                let antenna = Point3::new(1.0 + 0.1 * i as f64, 0.4, 0.0);
                StreamJob::new(clean_reads(antenna, 250), StreamConfig::default())
                    .with_burst(40)
                    .with_queue_capacity(24)
            })
            .collect();
        let serial = Engine::serial().run_streams(&jobs);
        let parallel = Engine::builder()
            .workers(4)
            .build()
            .expect("valid")
            .run_streams(&jobs);
        for (s, p) in serial.iter().zip(&parallel) {
            let (s, p) = (s.as_ref().unwrap(), p.as_ref().unwrap());
            assert_eq!(s.overflow_dropped, p.overflow_dropped);
            assert_eq!(s.estimates.len(), p.estimates.len());
            for (a, b) in s.estimates.iter().zip(&p.estimates) {
                // Bit-identical, not approximately equal.
                assert_eq!(a.position, b.position);
                assert_eq!(a.d_r, b.d_r);
                assert_eq!(a.seq, b.seq);
            }
        }
    }

    #[test]
    fn oversized_bursts_shed_deterministically() {
        let antenna = Point3::new(1.2, 0.4, 0.0);
        // 100-read bursts into a 25-slot queue: 75 shed per full burst.
        let job = StreamJob::new(
            clean_reads(antenna, 300),
            StreamConfig::builder()
                .cadence(Cadence::EveryReads(8))
                .build()
                .unwrap(),
        )
        .with_burst(100)
        .with_queue_capacity(25);
        let outcome = Engine::serial()
            .run_streams(std::slice::from_ref(&job))
            .pop()
            .unwrap()
            .expect("runs");
        assert_eq!(outcome.reads_in, 300);
        assert_eq!(outcome.overflow_dropped, 3 * 75);
        // And the exact same counts again.
        let again = Engine::serial().run_streams(&[job]).pop().unwrap().unwrap();
        assert_eq!(again.overflow_dropped, outcome.overflow_dropped);
        assert_eq!(again.estimates.len(), outcome.estimates.len());
    }

    #[test]
    fn incremental_outcomes_are_identical_across_worker_counts() {
        let jobs: Vec<StreamJob> = (0..4)
            .map(|i| {
                let antenna = Point3::new(1.0 + 0.1 * i as f64, 0.4, 0.0);
                let config = StreamConfig::builder()
                    .resolve_mode(ResolveMode::Incremental)
                    .build()
                    .unwrap();
                StreamJob::new(clean_reads(antenna, 300), config)
                    .with_burst(40)
                    .with_queue_capacity(24)
            })
            .collect();
        let serial = Engine::serial().run_streams(&jobs);
        let parallel = Engine::builder()
            .workers(4)
            .build()
            .expect("valid")
            .run_streams(&jobs);
        for (s, p) in serial.iter().zip(&parallel) {
            let (s, p) = (s.as_ref().unwrap(), p.as_ref().unwrap());
            // The replay/delta tick pattern and every estimate are
            // bit-identical regardless of worker count.
            assert_eq!(s.resolve_rows_delta, p.resolve_rows_delta);
            assert_eq!(s.resolve_rebuilds, p.resolve_rebuilds);
            assert_eq!(s.resolve_fallbacks, p.resolve_fallbacks);
            assert_eq!(s.estimates.len(), p.estimates.len());
            for (a, b) in s.estimates.iter().zip(&p.estimates) {
                assert_eq!(a.resolve_path, b.resolve_path);
                assert_eq!(a.position, b.position);
                assert_eq!(a.d_r, b.d_r);
            }
            assert!(s.resolve_rows_delta > 0, "delta ticks must have run");
            assert!(s.resolve_rebuilds >= 1);
        }
    }

    #[test]
    fn replay_jobs_report_zero_resolve_metrics() {
        let antenna = Point3::new(1.2, 0.4, 0.0);
        let job = StreamJob::new(clean_reads(antenna, 200), StreamConfig::default());
        let outcome = Engine::serial()
            .run_streams(std::slice::from_ref(&job))
            .pop()
            .unwrap()
            .expect("runs");
        assert_eq!(outcome.resolve_rows_delta, 0);
        assert_eq!(outcome.resolve_rebuilds, 0);
        assert_eq!(outcome.resolve_fallbacks, 0);
    }

    #[test]
    fn invalid_job_fails_in_its_own_slot() {
        let antenna = Point3::new(1.2, 0.4, 0.0);
        let good = StreamJob::new(clean_reads(antenna, 200), StreamConfig::default());
        let bad = good.clone().with_burst(0);
        let outcomes = Engine::serial().run_streams(&[good.clone(), bad, good]);
        assert!(outcomes[0].is_ok());
        assert!(matches!(
            outcomes[1],
            Err(CoreError::InvalidConfig {
                parameter: "burst",
                ..
            })
        ));
        assert!(outcomes[2].is_ok());
    }
}
