//! The work-queue engine: scoped workers draining an atomic cursor.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use lion_core::{
    AdaptiveConfig, AdaptiveOutcome, AdaptiveTrial, CoreError, Localizer2d, Localizer3d,
    LocalizerConfig, StageMetrics, SweepPlan, Workspace,
};
use lion_geom::Point3;

use crate::job::{Job, JobOutput};
use crate::metrics::{JobTiming, MetricsReport};

/// Runs one job, measuring queue wait (batch start → pickup) and
/// execution time, and emitting an `engine.job` span plus a per-job
/// event when a subscriber is installed. `trace` is the job's root
/// context, minted at submission: attaching it here is what parents the
/// worker-side span tree to the submitting batch, across threads.
fn run_job(
    job: &Job,
    ws: &mut Workspace,
    batch_start: Instant,
    index: usize,
    trace: Option<lion_obs::TraceContext>,
) -> (Result<JobOutput, CoreError>, StageMetrics, JobTiming) {
    let picked = Instant::now();
    let queue_wait_ns =
        u64::try_from(picked.duration_since(batch_start).as_nanos()).unwrap_or(u64::MAX);
    let _trace = trace.map(lion_obs::attach);
    let span = lion_obs::span!("engine.job");
    let result = job.execute(ws);
    drop(span);
    let execute_ns = u64::try_from(picked.elapsed().as_nanos()).unwrap_or(u64::MAX);
    lion_obs::event!(
        lion_obs::Level::Debug,
        "engine.job.done",
        "job" => index as u64,
        "ok" => result.is_ok(),
        "queue_wait_ns" => queue_wait_ns,
        "execute_ns" => execute_ns,
    );
    (
        result,
        ws.take_metrics(),
        JobTiming {
            queue_wait_ns,
            execute_ns,
        },
    )
}

/// Mints one root [`lion_obs::TraceContext`] per job at submission time
/// (`None`s when instrumentation is disabled, keeping the fast path
/// free of id allocation). Minting happens on the submitting thread in
/// index order, so trace ids ascend with job index regardless of which
/// worker later runs each job — the property the causality tests use to
/// pair up traces across worker counts.
pub(crate) fn job_contexts(jobs: usize) -> Vec<Option<lion_obs::TraceContext>> {
    if lion_obs::enabled() {
        (0..jobs)
            .map(|_| Some(lion_obs::TraceContext::root()))
            .collect()
    } else {
        vec![None; jobs]
    }
}

/// Parallel batch executor for [`Job`]s.
///
/// Workers pull jobs from a shared atomic cursor — no locks, no channels
/// — and each keeps one reusable [`Workspace`] for every solve it runs.
/// Results are returned in submission order, and because every job is a
/// pure function of its own inputs, the estimates are **bit-identical**
/// for any worker count (including a serial run). Only the stage *timers*
/// vary run to run; the stage *counters* are deterministic too.
#[derive(Debug, Clone)]
pub struct Engine {
    workers: usize,
}

impl Engine {
    /// An engine with one worker per available CPU (at least one).
    pub fn new() -> Self {
        Engine {
            workers: std::thread::available_parallelism().map_or(1, usize::from),
        }
    }

    /// An engine that runs jobs inline on the calling thread.
    pub fn serial() -> Self {
        Engine { workers: 1 }
    }

    /// A validating builder in the style of the `lion-core` configs.
    pub fn builder() -> EngineBuilder {
        EngineBuilder { workers: None }
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Executes every job and collects results in submission order.
    ///
    /// Individual job failures ([`CoreError`]) land in the corresponding
    /// result slot without affecting the rest of the batch. A batch never
    /// spawns more threads than it has jobs; a single-worker engine runs
    /// inline without spawning at all.
    pub fn run(&self, jobs: &[Job]) -> BatchOutcome {
        let started = Instant::now();
        let workers = self.workers.min(jobs.len()).max(1);
        // Root trace contexts, minted in submission order so trace ids
        // ascend with job index no matter which worker runs what.
        let contexts = job_contexts(jobs.len());
        type Slot = (usize, Result<JobOutput, CoreError>, StageMetrics, JobTiming);
        let mut indexed: Vec<Slot> = if workers == 1 {
            let mut ws = Workspace::new();
            jobs.iter()
                .enumerate()
                .map(|(i, job)| {
                    let (result, metrics, timing) = run_job(job, &mut ws, started, i, contexts[i]);
                    (i, result, metrics, timing)
                })
                .collect()
        } else {
            let cursor = AtomicUsize::new(0);
            let mut collected = Vec::with_capacity(jobs.len());
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut ws = Workspace::new();
                            let mut local = Vec::new();
                            loop {
                                let i = cursor.fetch_add(1, Ordering::Relaxed);
                                let Some(job) = jobs.get(i) else { break };
                                let (result, metrics, timing) =
                                    run_job(job, &mut ws, started, i, contexts[i]);
                                local.push((i, result, metrics, timing));
                            }
                            local
                        })
                    })
                    .collect();
                for handle in handles {
                    collected.extend(handle.join().expect("engine worker panicked"));
                }
            });
            collected.sort_unstable_by_key(|(i, ..)| *i);
            collected
        };
        let wall_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let mut results = Vec::with_capacity(indexed.len());
        let mut job_metrics = Vec::with_capacity(indexed.len());
        let mut timings = Vec::with_capacity(indexed.len());
        for (_, result, metrics, timing) in indexed.drain(..) {
            results.push(result);
            job_metrics.push(metrics);
            timings.push(timing);
        }
        let report = MetricsReport::aggregate(&job_metrics, &results, &timings, workers, wall_ns);
        lion_obs::event!(
            lion_obs::Level::Info,
            "engine.batch.done",
            "jobs" => report.jobs,
            "failed" => report.failed,
            "workers" => report.workers,
            "wall_ns" => report.wall_ns,
        );
        BatchOutcome {
            results,
            job_metrics,
            timings,
            report,
        }
    }

    /// Runs the 2D adaptive sweep with the grid cells fanned out across
    /// the worker pool.
    ///
    /// Preprocessing (unwrap, smooth, frame analysis) happens once on the
    /// calling thread; each worker then solves cells with its own
    /// [`Workspace`], and results are reduced in submission order. The
    /// outcome is **bit-identical** for any worker count — including to
    /// the sequential [`Localizer2d::locate_adaptive`] — see the
    /// [`SweepPlan`] docs for why.
    ///
    /// # Errors
    ///
    /// See [`Localizer2d::locate_adaptive`].
    pub fn locate_adaptive_2d(
        &self,
        measurements: &[(Point3, f64)],
        config: &LocalizerConfig,
        adaptive: &AdaptiveConfig,
    ) -> Result<AdaptiveOutcome, CoreError> {
        let mut ws = Workspace::new();
        let plan = Localizer2d::new(config.clone()).sweep_plan(measurements, adaptive, &mut ws)?;
        self.run_plan(&plan, ws)
    }

    /// Runs the 3D adaptive sweep across the worker pool; see
    /// [`Engine::locate_adaptive_2d`].
    ///
    /// # Errors
    ///
    /// See [`Localizer2d::locate_adaptive`].
    pub fn locate_adaptive_3d(
        &self,
        measurements: &[(Point3, f64)],
        config: &LocalizerConfig,
        adaptive: &AdaptiveConfig,
    ) -> Result<AdaptiveOutcome, CoreError> {
        let mut ws = Workspace::new();
        let plan = Localizer3d::new(config.clone()).sweep_plan(measurements, adaptive, &mut ws)?;
        self.run_plan(&plan, ws)
    }

    /// Fans a [`SweepPlan`]'s cells across the workers (atomic cursor,
    /// per-worker workspaces) and reduces in submission order.
    fn run_plan(&self, plan: &SweepPlan, mut ws: Workspace) -> Result<AdaptiveOutcome, CoreError> {
        let started = Instant::now();
        let cells = plan.cell_count();
        let workers = self.workers.min(cells).max(1);
        let outcome = if workers <= 1 {
            let results: Vec<_> = (0..cells).map(|i| plan.solve_cell(i, &mut ws)).collect();
            plan.finish(results)
        } else {
            let cursor = AtomicUsize::new(0);
            let mut collected: Vec<(usize, Result<AdaptiveTrial, CoreError>)> =
                Vec::with_capacity(cells);
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut ws = Workspace::new();
                            let mut local = Vec::new();
                            loop {
                                let i = cursor.fetch_add(1, Ordering::Relaxed);
                                if i >= cells {
                                    break;
                                }
                                local.push((i, plan.solve_cell(i, &mut ws)));
                            }
                            local
                        })
                    })
                    .collect();
                for handle in handles {
                    collected.extend(handle.join().expect("engine worker panicked"));
                }
            });
            collected.sort_unstable_by_key(|(i, _)| *i);
            plan.finish(collected.into_iter().map(|(_, r)| r))
        };
        let wall_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        lion_obs::event!(
            lion_obs::Level::Info,
            "engine.adaptive.done",
            "cells" => cells as u64,
            "workers" => workers as u64,
            "ok" => outcome.is_ok(),
            "wall_ns" => wall_ns,
        );
        outcome
    }
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

/// Validating builder for [`Engine`].
///
/// ```
/// use lion_engine::Engine;
///
/// let engine = Engine::builder().workers(4).build().expect("valid");
/// assert_eq!(engine.workers(), 4);
/// assert!(Engine::builder().workers(0).build().is_err());
/// ```
#[derive(Debug, Clone, Default)]
pub struct EngineBuilder {
    workers: Option<usize>,
}

impl EngineBuilder {
    /// Sets the worker count (defaults to the available parallelism).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Validates and builds the engine.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] when the worker count is zero.
    pub fn build(self) -> Result<Engine, CoreError> {
        match self.workers {
            Some(0) => Err(CoreError::InvalidConfig {
                parameter: "workers",
                found: "0".to_string(),
            }),
            Some(workers) => Ok(Engine { workers }),
            None => Ok(Engine::new()),
        }
    }
}

/// Everything a batch run produces.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// Per-job outcomes, in submission order.
    pub results: Vec<Result<JobOutput, CoreError>>,
    /// Per-job stage metrics, in submission order.
    pub job_metrics: Vec<StageMetrics>,
    /// Per-job queue-wait/execute timings, in submission order.
    pub timings: Vec<JobTiming>,
    /// Batch-level aggregation of the per-job metrics.
    pub report: MetricsReport,
}

#[cfg(test)]
mod tests {
    use super::*;
    use lion_core::LocalizerConfig;
    use lion_geom::Point3;
    use std::f64::consts::{PI, TAU};

    fn clean_trace(antenna: Point3) -> Vec<(Point3, f64)> {
        let lambda = LocalizerConfig::paper().wavelength;
        (0..120)
            .map(|i| {
                let a = i as f64 * TAU / 120.0;
                let p = Point3::new(0.3 * a.cos(), 0.3 * a.sin(), 0.0);
                (p, (4.0 * PI * antenna.distance(p) / lambda) % TAU)
            })
            .collect()
    }

    #[test]
    fn empty_batch_produces_empty_outcome() {
        let outcome = Engine::serial().run(&[]);
        assert!(outcome.results.is_empty());
        assert!(outcome.job_metrics.is_empty());
        assert_eq!(outcome.report.jobs, 0);
    }

    #[test]
    fn results_come_back_in_submission_order() {
        // Distinct antennas per job: the returned positions identify
        // which job each slot belongs to.
        let jobs: Vec<Job> = (0..16)
            .map(|i| {
                let antenna = Point3::new(1.0 + 0.05 * i as f64, 0.0, 0.0);
                Job::locate_2d(clean_trace(antenna), LocalizerConfig::paper())
            })
            .collect();
        let outcome = Engine::builder()
            .workers(4)
            .build()
            .expect("valid")
            .run(&jobs);
        for (i, result) in outcome.results.iter().enumerate() {
            let expected = Point3::new(1.0 + 0.05 * i as f64, 0.0, 0.0);
            let got = result.as_ref().expect("clean trace locates").position();
            // Identification only needs the error well under the 5 cm
            // antenna spacing.
            assert!(got.distance(expected) < 2e-2, "slot {i}: {got:?}");
        }
    }

    #[test]
    fn failures_stay_in_their_slot() {
        let good = Job::locate_2d(
            clean_trace(Point3::new(1.0, 0.0, 0.0)),
            LocalizerConfig::paper(),
        );
        let bad = Job::locate_2d(Vec::new(), LocalizerConfig::paper());
        let outcome = Engine::serial().run(&[good.clone(), bad, good]);
        assert!(outcome.results[0].is_ok());
        assert!(outcome.results[1].is_err());
        assert!(outcome.results[2].is_ok());
        assert_eq!(outcome.report.failed, 1);
        // The failed job still contributes (possibly empty) metrics.
        assert_eq!(outcome.job_metrics.len(), 3);
    }

    #[test]
    fn worker_count_is_clamped_to_batch_size() {
        let jobs = vec![Job::locate_2d(
            clean_trace(Point3::new(1.0, 0.0, 0.0)),
            LocalizerConfig::paper(),
        )];
        let outcome = Engine::builder()
            .workers(64)
            .build()
            .expect("valid")
            .run(&jobs);
        assert_eq!(outcome.report.workers, 1);
    }
}
