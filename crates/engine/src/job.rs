//! Batch work items: one trace plus the pipeline to run on it.

use lion_core::{
    AdaptiveConfig, AdaptiveOutcome, Calibration, Calibrator, CoreError, Estimate, Localizer2d,
    Localizer3d, LocalizerConfig, Workspace,
};
use lion_geom::Point3;

/// Which pipeline a [`Job`] runs on its trace.
#[derive(Debug, Clone)]
pub enum JobKind {
    /// Plain 2D localization ([`Localizer2d::locate`]).
    Locate2d,
    /// Plain 3D localization ([`Localizer3d::locate`]).
    Locate3d,
    /// 2D localization behind the adaptive range/interval sweep.
    Adaptive2d(AdaptiveConfig),
    /// 3D localization behind the adaptive range/interval sweep.
    Adaptive3d(AdaptiveConfig),
    /// Full antenna calibration against a measured physical center:
    /// 3D phase-center localization (optionally adaptive) plus the
    /// paper's Eq. 17 phase-offset recovery.
    Calibrate {
        /// Physically measured antenna center the displacement is
        /// reported against.
        physical_center: Point3,
        /// Adaptive sweep for the inner localization; `None` locates
        /// directly with the job's [`LocalizerConfig`].
        adaptive: Option<AdaptiveConfig>,
    },
}

/// One independent unit of batch work: a phase trace, a solver
/// configuration, and the pipeline ([`JobKind`]) to run.
///
/// Jobs are immutable once built; the engine may execute them from any
/// worker thread. Construct them with the mode-specific constructors
/// ([`Job::locate_2d`], [`Job::adaptive_3d`], [`Job::calibrate`], …) or
/// as struct literals.
#[derive(Debug, Clone)]
pub struct Job {
    /// The trace: `(tag position, wrapped phase)` samples.
    pub measurements: Vec<(Point3, f64)>,
    /// Solver configuration used by every mode.
    pub config: LocalizerConfig,
    /// The pipeline to run.
    pub kind: JobKind,
}

impl Job {
    /// A plain 2D localization job.
    pub fn locate_2d(measurements: Vec<(Point3, f64)>, config: LocalizerConfig) -> Self {
        Job {
            measurements,
            config,
            kind: JobKind::Locate2d,
        }
    }

    /// A plain 3D localization job.
    pub fn locate_3d(measurements: Vec<(Point3, f64)>, config: LocalizerConfig) -> Self {
        Job {
            measurements,
            config,
            kind: JobKind::Locate3d,
        }
    }

    /// A 2D localization job behind the adaptive parameter sweep.
    pub fn adaptive_2d(
        measurements: Vec<(Point3, f64)>,
        config: LocalizerConfig,
        adaptive: AdaptiveConfig,
    ) -> Self {
        Job {
            measurements,
            config,
            kind: JobKind::Adaptive2d(adaptive),
        }
    }

    /// A 3D localization job behind the adaptive parameter sweep.
    pub fn adaptive_3d(
        measurements: Vec<(Point3, f64)>,
        config: LocalizerConfig,
        adaptive: AdaptiveConfig,
    ) -> Self {
        Job {
            measurements,
            config,
            kind: JobKind::Adaptive3d(adaptive),
        }
    }

    /// A full calibration job with the default adaptive sweep (matching
    /// [`Calibrator::new`]).
    pub fn calibrate(
        measurements: Vec<(Point3, f64)>,
        config: LocalizerConfig,
        physical_center: Point3,
    ) -> Self {
        Job::calibrate_with(
            measurements,
            config,
            physical_center,
            Some(AdaptiveConfig::default()),
        )
    }

    /// A full calibration job with an explicit (or disabled) adaptive
    /// sweep.
    pub fn calibrate_with(
        measurements: Vec<(Point3, f64)>,
        config: LocalizerConfig,
        physical_center: Point3,
        adaptive: Option<AdaptiveConfig>,
    ) -> Self {
        Job {
            measurements,
            config,
            kind: JobKind::Calibrate {
                physical_center,
                adaptive,
            },
        }
    }

    /// Runs the job's pipeline with buffers from (and stage metrics
    /// recorded into) `ws`. Bit-identical to calling the corresponding
    /// `lion-core` entry point directly.
    pub(crate) fn execute(&self, ws: &mut Workspace) -> Result<JobOutput, CoreError> {
        match &self.kind {
            JobKind::Locate2d => Localizer2d::new(self.config.clone())
                .locate_in(&self.measurements, ws)
                .map(JobOutput::Estimate),
            JobKind::Locate3d => Localizer3d::new(self.config.clone())
                .locate_in(&self.measurements, ws)
                .map(JobOutput::Estimate),
            JobKind::Adaptive2d(adaptive) => Localizer2d::new(self.config.clone())
                .locate_adaptive_in(&self.measurements, adaptive, ws)
                .map(JobOutput::Adaptive),
            JobKind::Adaptive3d(adaptive) => Localizer3d::new(self.config.clone())
                .locate_adaptive_in(&self.measurements, adaptive, ws)
                .map(JobOutput::Adaptive),
            JobKind::Calibrate {
                physical_center,
                adaptive,
            } => Calibrator::new(self.config.clone())
                .with_adaptive(adaptive.clone())
                .calibrate_in(&self.measurements, *physical_center, ws)
                .map(Box::new)
                .map(JobOutput::Calibration),
        }
    }
}

/// The successful result of one [`Job`], tagged by pipeline.
#[derive(Debug, Clone)]
pub enum JobOutput {
    /// Result of a [`JobKind::Locate2d`] / [`JobKind::Locate3d`] job.
    Estimate(Estimate),
    /// Result of an adaptive-sweep job.
    Adaptive(AdaptiveOutcome),
    /// Result of a calibration job (boxed: calibrations are large
    /// relative to estimates).
    Calibration(Box<Calibration>),
}

impl JobOutput {
    /// The position estimate, when the job produced one directly
    /// (`Locate*` and `Adaptive*` jobs; `None` for calibrations).
    pub fn estimate(&self) -> Option<&Estimate> {
        match self {
            JobOutput::Estimate(e) => Some(e),
            JobOutput::Adaptive(a) => Some(&a.estimate),
            JobOutput::Calibration(_) => None,
        }
    }

    /// The located point: the position estimate for localization jobs,
    /// the phase center for calibration jobs.
    pub fn position(&self) -> Point3 {
        match self {
            JobOutput::Estimate(e) => e.position,
            JobOutput::Adaptive(a) => a.estimate.position,
            JobOutput::Calibration(c) => c.phase_center,
        }
    }

    /// The calibration, for [`JobKind::Calibrate`] jobs.
    pub fn calibration(&self) -> Option<&Calibration> {
        match self {
            JobOutput::Calibration(c) => Some(c),
            _ => None,
        }
    }
}
