//! Batch-level aggregation of per-job stage metrics.
//!
//! [`MetricsReport`] aggregates the engine's per-job [`StageMetrics`] in
//! two complementary ways: the *sums* in [`MetricsReport::total`]
//! (deterministic counters, total stage time) and the *distributions* in
//! [`MetricsReport::stages`] — one [`Histogram`] per pipeline stage and
//! per job-level timing, so tail latency (p50/p90/p99/max) is visible
//! instead of being averaged away. Failures are counted per
//! [`CoreError`] kind, not just in aggregate.

use std::fmt;

use lion_core::{CoreError, StageMetrics};
use lion_obs::{Histogram, Registry};
use serde::{Deserialize, Serialize};

use crate::job::JobOutput;

/// Per-job queue-wait and execution timing measured by the engine.
///
/// `queue_wait_ns` is the time between batch start and the moment a
/// worker picked the job up; `execute_ns` is the job's own wall time on
/// that worker. Their distributions separate "the engine was saturated"
/// from "the job was slow".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobTiming {
    /// Nanoseconds the job sat in the queue before a worker picked it up.
    pub queue_wait_ns: u64,
    /// Nanoseconds the job spent executing on its worker.
    pub execute_ns: u64,
}

/// Latency distributions for one batch: per pipeline stage and per job.
///
/// Stage histograms record one sample per *job* (that job's total time in
/// the stage), so percentiles answer "how long does a job spend
/// unwrapping at p99?" — the question adaptive-sweep tuning and capacity
/// planning actually ask.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageDistributions {
    /// Per-job phase-unwrap time.
    pub unwrap: Histogram,
    /// Per-job smoothing time.
    pub smooth: Histogram,
    /// Per-job pair-generation time.
    pub pairs: Histogram,
    /// Per-job solver time.
    pub solve: Histogram,
    /// Per-job adaptive-sweep wall time (inclusive of nested stages).
    pub adaptive: Histogram,
    /// Per-job busy time (disjoint stage sum, see
    /// [`StageMetrics::busy_ns`]).
    pub job_busy: Histogram,
    /// Per-job queue wait (batch start → worker pickup).
    pub queue_wait: Histogram,
    /// Per-job execution time on the worker.
    pub execute: Histogram,
}

impl StageDistributions {
    /// Records one job's stage metrics and engine timing.
    fn record(&mut self, metrics: &StageMetrics, timing: &JobTiming) {
        self.unwrap.record(metrics.unwrap_ns);
        self.smooth.record(metrics.smooth_ns);
        self.pairs.record(metrics.pairs_ns);
        self.solve.record(metrics.solve_ns);
        self.adaptive.record(metrics.adaptive_ns);
        self.job_busy.record(metrics.busy_ns());
        self.queue_wait.record(timing.queue_wait_ns);
        self.execute.record(timing.execute_ns);
    }

    /// The named stage histograms, in display order.
    pub fn named(&self) -> [(&'static str, &Histogram); 8] {
        [
            ("unwrap", &self.unwrap),
            ("smooth", &self.smooth),
            ("pairs", &self.pairs),
            ("solve", &self.solve),
            ("adaptive", &self.adaptive),
            ("job_busy", &self.job_busy),
            ("queue_wait", &self.queue_wait),
            ("execute", &self.execute),
        ]
    }
}

/// Aggregated instrumentation for one batch run: job/worker/wall-clock
/// accounting, the sum of every job's [`StageMetrics`], per-stage and
/// per-job latency distributions, and a per-error-kind failure breakdown.
///
/// Serializable with serde; [`fmt::Display`] renders the compact summary
/// `run_experiments` prints alongside each figure. For machine-readable
/// export use [`MetricsReport::to_json_string`] (the exact inverse of
/// [`MetricsReport::from_json_str`]) or [`MetricsReport::record_into`] to
/// feed a [`Registry`] whose snapshots the `lion-obs` exporters render as
/// JSON lines or Prometheus text.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsReport {
    /// Jobs submitted.
    pub jobs: u64,
    /// Jobs that returned an error.
    pub failed: u64,
    /// Failure counts per [`CoreError::kind`], ascending by kind name.
    pub failures_by_kind: Vec<(String, u64)>,
    /// Workers the batch actually ran on (after clamping to the batch
    /// size).
    pub workers: u64,
    /// Wall-clock duration of the whole batch, in nanoseconds.
    pub wall_ns: u64,
    /// Sum of the per-job stage metrics.
    pub total: StageMetrics,
    /// Per-stage and per-job latency distributions.
    pub stages: StageDistributions,
}

impl MetricsReport {
    /// Sums `job_metrics`, builds the per-stage distributions, and counts
    /// failures (total and per error kind) out of `results`.
    pub fn aggregate(
        job_metrics: &[StageMetrics],
        results: &[Result<JobOutput, CoreError>],
        timings: &[JobTiming],
        workers: usize,
        wall_ns: u64,
    ) -> Self {
        let mut total = StageMetrics::default();
        let mut stages = StageDistributions::default();
        let default_timing = JobTiming::default();
        for (i, m) in job_metrics.iter().enumerate() {
            total.merge(m);
            stages.record(m, timings.get(i).unwrap_or(&default_timing));
        }
        let mut failures: Vec<(String, u64)> = Vec::new();
        for kind in results
            .iter()
            .filter_map(|r| r.as_ref().err())
            .map(CoreError::kind)
        {
            match failures.iter_mut().find(|(k, _)| k == kind) {
                Some((_, n)) => *n += 1,
                None => failures.push((kind.to_string(), 1)),
            }
        }
        failures.sort_by(|(a, _), (b, _)| a.cmp(b));
        MetricsReport {
            jobs: job_metrics.len() as u64,
            failed: results.iter().filter(|r| r.is_err()).count() as u64,
            failures_by_kind: failures,
            workers: workers as u64,
            wall_ns,
            total,
            stages,
        }
    }

    /// Total CPU time attributed to pipeline stages across all jobs, in
    /// nanoseconds, as a sum of *disjoint* components (the four pipeline
    /// stages plus sweep-exclusive adaptive overhead) — no clamping
    /// heuristics, no double counting. With more than one worker this
    /// exceeds the wall-clock time — their ratio is the effective
    /// parallel speedup.
    pub fn busy_ns(&self) -> u64 {
        self.total.busy_ns()
    }

    /// Records this report into a telemetry registry under `engine.*`
    /// names: job/failure counters (one per error kind), stage-time
    /// counters, and the per-stage/per-job histograms. Repeated calls
    /// accumulate, so a registry tracks a whole sequence of batches; the
    /// `lion-obs` exporters then render its snapshots as JSON lines or
    /// Prometheus text.
    pub fn record_into(&self, registry: &Registry) {
        registry.counter_add("engine.jobs", self.jobs);
        registry.counter_add("engine.failed", self.failed);
        for (kind, count) in &self.failures_by_kind {
            registry.counter_add(&format!("engine.failures.{kind}"), *count);
        }
        registry.counter_add("engine.wall_ns", self.wall_ns);
        registry.counter_add("engine.busy_ns", self.busy_ns());
        registry.gauge_set("engine.workers", self.workers as f64);
        registry.counter_add("engine.solves", self.total.solves);
        registry.counter_add("engine.irls_iterations", self.total.irls_iterations);
        registry.counter_add("engine.equations", self.total.equations);
        registry.counter_add("engine.reads_dropped", self.total.reads_dropped);
        registry.counter_add("engine.adaptive_trials", self.total.adaptive_trials);
        registry.counter_add("engine.adaptive_skipped", self.total.adaptive_skipped);
        registry.counter_add(
            "engine.adaptive_cells_reused",
            self.total.adaptive_cells_reused,
        );
        registry.counter_add(
            "engine.adaptive_gram_rebuilds",
            self.total.adaptive_gram_rebuilds,
        );
        for (name, hist) in self.stages.named() {
            registry.histogram_merge(&format!("engine.stage.{name}_ns"), hist);
        }
    }

    /// Full-fidelity JSON encoding, the exact inverse of
    /// [`MetricsReport::from_json_str`]. Rendered by hand because the
    /// vendored `serde` is a no-op stub (see `vendor/README.md`); the
    /// field layout mirrors the `Serialize` derive so restoring real
    /// serde keeps the same shape.
    pub fn to_json_string(&self) -> String {
        let t = &self.total;
        let failures = self
            .failures_by_kind
            .iter()
            .map(|(k, n)| format!("[\"{}\",{n}]", lion_obs::json::escape(k)))
            .collect::<Vec<_>>()
            .join(",");
        let stages = self
            .stages
            .named()
            .iter()
            .map(|(name, hist)| format!("\"{name}\":{}", hist.to_json()))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"jobs\":{},\"failed\":{},\"failures_by_kind\":[{}],\"workers\":{},\
             \"wall_ns\":{},\"total\":{{\"unwrap_ns\":{},\"smooth_ns\":{},\"pairs_ns\":{},\
             \"solve_ns\":{},\"adaptive_ns\":{},\"adaptive_exclusive_ns\":{},\"solves\":{},\
             \"irls_iterations\":{},\"equations\":{},\"reads_dropped\":{},\
             \"adaptive_trials\":{},\"adaptive_skipped\":{},\"adaptive_cells_reused\":{},\
             \"adaptive_gram_rebuilds\":{}}},\"stages\":{{{}}}}}",
            self.jobs,
            self.failed,
            failures,
            self.workers,
            self.wall_ns,
            t.unwrap_ns,
            t.smooth_ns,
            t.pairs_ns,
            t.solve_ns,
            t.adaptive_ns,
            t.adaptive_exclusive_ns,
            t.solves,
            t.irls_iterations,
            t.equations,
            t.reads_dropped,
            t.adaptive_trials,
            t.adaptive_skipped,
            t.adaptive_cells_reused,
            t.adaptive_gram_rebuilds,
            stages,
        )
    }

    /// Parses the encoding produced by [`MetricsReport::to_json_string`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or malformed field.
    pub fn from_json_str(text: &str) -> Result<Self, String> {
        let doc = lion_obs::json::parse(text).map_err(|e| e.to_string())?;
        let u = |v: Option<&lion_obs::json::Json>, what: &str| -> Result<u64, String> {
            v.and_then(|v| v.as_u64())
                .ok_or_else(|| format!("metrics report: missing {what}"))
        };
        let total_doc = doc.get("total").ok_or("metrics report: missing total")?;
        let total = StageMetrics {
            unwrap_ns: u(total_doc.get("unwrap_ns"), "unwrap_ns")?,
            smooth_ns: u(total_doc.get("smooth_ns"), "smooth_ns")?,
            pairs_ns: u(total_doc.get("pairs_ns"), "pairs_ns")?,
            solve_ns: u(total_doc.get("solve_ns"), "solve_ns")?,
            adaptive_ns: u(total_doc.get("adaptive_ns"), "adaptive_ns")?,
            adaptive_exclusive_ns: u(
                total_doc.get("adaptive_exclusive_ns"),
                "adaptive_exclusive_ns",
            )?,
            solves: u(total_doc.get("solves"), "solves")?,
            irls_iterations: u(total_doc.get("irls_iterations"), "irls_iterations")?,
            equations: u(total_doc.get("equations"), "equations")?,
            reads_dropped: u(total_doc.get("reads_dropped"), "reads_dropped")?,
            adaptive_trials: u(total_doc.get("adaptive_trials"), "adaptive_trials")?,
            adaptive_skipped: u(total_doc.get("adaptive_skipped"), "adaptive_skipped")?,
            // Added later than the fields above; default to zero so
            // reports exported before the shared-prefix sweep still load.
            adaptive_cells_reused: total_doc
                .get("adaptive_cells_reused")
                .and_then(|v| v.as_u64())
                .unwrap_or(0),
            adaptive_gram_rebuilds: total_doc
                .get("adaptive_gram_rebuilds")
                .and_then(|v| v.as_u64())
                .unwrap_or(0),
        };
        let mut failures = Vec::new();
        for pair in doc
            .get("failures_by_kind")
            .and_then(|v| v.as_array())
            .ok_or("metrics report: missing failures_by_kind")?
        {
            let entries = pair
                .as_array()
                .ok_or("metrics report: malformed failure entry")?;
            let (Some(kind), Some(count)) = (
                entries.first().and_then(|v| v.as_str()),
                entries.get(1).and_then(|v| v.as_u64()),
            ) else {
                return Err("metrics report: malformed failure entry".to_string());
            };
            failures.push((kind.to_string(), count));
        }
        let stages_doc = doc.get("stages").ok_or("metrics report: missing stages")?;
        let hist = |name: &str| -> Result<Histogram, String> {
            Histogram::from_json(
                stages_doc
                    .get(name)
                    .ok_or_else(|| format!("metrics report: missing stage {name}"))?,
            )
        };
        Ok(MetricsReport {
            jobs: u(doc.get("jobs"), "jobs")?,
            failed: u(doc.get("failed"), "failed")?,
            failures_by_kind: failures,
            workers: u(doc.get("workers"), "workers")?,
            wall_ns: u(doc.get("wall_ns"), "wall_ns")?,
            total,
            stages: StageDistributions {
                unwrap: hist("unwrap")?,
                smooth: hist("smooth")?,
                pairs: hist("pairs")?,
                solve: hist("solve")?,
                adaptive: hist("adaptive")?,
                job_busy: hist("job_busy")?,
                queue_wait: hist("queue_wait")?,
                execute: hist("execute")?,
            },
        })
    }
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

fn us(ns: u64) -> f64 {
    ns as f64 / 1e3
}

fn quantile_cell(h: &Histogram) -> String {
    format!("{:.0}/{:.0}/{:.0}", us(h.p50()), us(h.p90()), us(h.p99()))
}

impl fmt::Display for MetricsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "jobs {} ({} failed) | workers {} | wall {:.2} ms | stage-busy {:.2} ms",
            self.jobs,
            self.failed,
            self.workers,
            ms(self.wall_ns),
            ms(self.busy_ns()),
        )?;
        if !self.failures_by_kind.is_empty() {
            // Sort by kind at render time: `aggregate` already orders the
            // list, but hand-built or JSON-loaded reports may not, and
            // telemetry diffs need a stable rendering either way.
            let mut by_kind: Vec<&(String, u64)> = self.failures_by_kind.iter().collect();
            by_kind.sort_by(|(a, _), (b, _)| a.cmp(b));
            let parts: Vec<String> = by_kind
                .iter()
                .map(|(kind, count)| format!("{kind}\u{d7}{count}"))
                .collect();
            writeln!(f, "failures: {}", parts.join(" | "))?;
        }
        writeln!(
            f,
            "stages: unwrap {:.2} ms | smooth {:.2} ms | pairs {:.2} ms | solve {:.2} ms | adaptive {:.2} ms",
            ms(self.total.unwrap_ns),
            ms(self.total.smooth_ns),
            ms(self.total.pairs_ns),
            ms(self.total.solve_ns),
            ms(self.total.adaptive_ns),
        )?;
        writeln!(
            f,
            "stage p50/p90/p99 (\u{b5}s): unwrap {} | smooth {} | pairs {} | solve {} | adaptive {}",
            quantile_cell(&self.stages.unwrap),
            quantile_cell(&self.stages.smooth),
            quantile_cell(&self.stages.pairs),
            quantile_cell(&self.stages.solve),
            quantile_cell(&self.stages.adaptive),
        )?;
        writeln!(
            f,
            "job p50/p90/p99 (\u{b5}s): busy {} | queue-wait {} | execute {}",
            quantile_cell(&self.stages.job_busy),
            quantile_cell(&self.stages.queue_wait),
            quantile_cell(&self.stages.execute),
        )?;
        write!(
            f,
            "counts: {} solves | {} IRLS iters | {} equations | {} reads dropped | {} adaptive trials ({} skipped)",
            self.total.solves,
            self.total.irls_iterations,
            self.total.equations,
            self.total.reads_dropped,
            self.total.adaptive_trials,
            self.total.adaptive_skipped,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_sums_and_counts_failures() {
        let a = StageMetrics {
            solves: 2,
            solve_ns: 100,
            ..StageMetrics::default()
        };
        let b = StageMetrics {
            solves: 3,
            solve_ns: 50,
            ..StageMetrics::default()
        };
        let results: Vec<Result<JobOutput, CoreError>> = vec![Err(CoreError::InvalidConfig {
            parameter: "x",
            found: "y".to_string(),
        })];
        let report = MetricsReport::aggregate(&[a, b], &results, &[], 4, 1234);
        assert_eq!(report.jobs, 2);
        assert_eq!(report.failed, 1);
        assert_eq!(report.workers, 4);
        assert_eq!(report.total.solves, 5);
        assert_eq!(report.total.solve_ns, 150);
        // The solve distribution saw both jobs' stage times.
        assert_eq!(report.stages.solve.count(), 2);
        assert_eq!(report.stages.solve.max(), 100);
    }

    #[test]
    fn busy_ns_is_the_sum_of_disjoint_stage_times() {
        // A crafted report: 40 ns of disjoint pipeline stages, a 100 ns
        // adaptive sweep of which 70 ns re-ran pipeline stages (already
        // counted) and 30 ns was sweep-exclusive orchestration.
        let m = StageMetrics {
            unwrap_ns: 10,
            smooth_ns: 5,
            pairs_ns: 10,
            solve_ns: 15,
            adaptive_ns: 100,
            adaptive_exclusive_ns: 30,
            ..StageMetrics::default()
        };
        let report = MetricsReport::aggregate(&[m], &[], &[], 1, 500);
        assert_eq!(report.busy_ns(), 40 + 30);
        // The old max() heuristic would have reported 100 here, silently
        // dropping the pipeline time spent outside the sweep.
        assert_ne!(
            report.busy_ns(),
            report.total.pipeline_ns().max(report.total.adaptive_ns)
        );
    }

    #[test]
    fn failures_are_broken_down_by_kind_in_sorted_order() {
        let results: Vec<Result<JobOutput, CoreError>> = vec![
            Err(CoreError::NoPairs),
            Err(CoreError::TooFewMeasurements { got: 1, needed: 4 }),
            Err(CoreError::NoPairs),
        ];
        let report = MetricsReport::aggregate(&[], &results, &[], 1, 0);
        assert_eq!(report.failed, 3);
        assert_eq!(
            report.failures_by_kind,
            vec![
                ("no_pairs".to_string(), 2),
                ("too_few_measurements".to_string(), 1)
            ]
        );
        let text = report.to_string();
        assert!(text.contains("no_pairs\u{d7}2"), "{text}");
        assert!(text.contains("too_few_measurements\u{d7}1"), "{text}");
    }

    #[test]
    fn display_mentions_all_stages_and_percentiles() {
        let report = MetricsReport::aggregate(&[], &[], &[], 1, 0);
        let text = report.to_string();
        for needle in [
            "unwrap",
            "smooth",
            "pairs",
            "solve",
            "adaptive",
            "IRLS",
            "p50/p90/p99",
            "queue-wait",
        ] {
            assert!(text.contains(needle), "missing {needle}: {text}");
        }
        // No failures → no failure line.
        assert!(!text.contains("failures:"), "{text}");
    }

    #[test]
    fn json_round_trip_preserves_the_whole_report() {
        let m = StageMetrics {
            unwrap_ns: 11,
            smooth_ns: 7,
            pairs_ns: 13,
            solve_ns: 29,
            adaptive_ns: 100,
            adaptive_exclusive_ns: 40,
            solves: 3,
            irls_iterations: 9,
            equations: 120,
            reads_dropped: 4,
            adaptive_trials: 30,
            adaptive_skipped: 6,
            adaptive_cells_reused: 25,
            adaptive_gram_rebuilds: 31,
        };
        let results: Vec<Result<JobOutput, CoreError>> = vec![Err(CoreError::NoPairs)];
        let timings = [JobTiming {
            queue_wait_ns: 1_000,
            execute_ns: 55_000,
        }];
        let report = MetricsReport::aggregate(&[m], &results, &timings, 2, 777);
        let text = report.to_json_string();
        let back = MetricsReport::from_json_str(&text).expect("well-formed");
        assert_eq!(report, back);
    }

    #[test]
    fn record_into_populates_registry() {
        let m = StageMetrics {
            solve_ns: 100,
            solves: 1,
            ..StageMetrics::default()
        };
        let results: Vec<Result<JobOutput, CoreError>> = vec![Err(CoreError::NoPairs)];
        let report = MetricsReport::aggregate(&[m], &results, &[], 2, 999);
        let registry = Registry::new();
        report.record_into(&registry);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("engine.jobs"), Some(1));
        assert_eq!(snap.counter("engine.failures.no_pairs"), Some(1));
        assert_eq!(snap.gauge("engine.workers"), Some(2.0));
        assert_eq!(
            snap.histogram("engine.stage.solve_ns").map(|h| h.count()),
            Some(1)
        );
        // Accumulation across batches.
        report.record_into(&registry);
        assert_eq!(registry.snapshot().counter("engine.jobs"), Some(2));
    }
}
