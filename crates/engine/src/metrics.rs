//! Batch-level aggregation of per-job stage metrics.

use std::fmt;

use lion_core::{CoreError, StageMetrics};
use serde::{Deserialize, Serialize};

use crate::job::JobOutput;

/// Aggregated instrumentation for one batch run: job/worker/wall-clock
/// accounting plus the sum of every job's [`StageMetrics`].
///
/// Serializable with serde; [`fmt::Display`] renders the compact
/// three-line summary `run_experiments` prints alongside each figure.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsReport {
    /// Jobs submitted.
    pub jobs: u64,
    /// Jobs that returned an error.
    pub failed: u64,
    /// Workers the batch actually ran on (after clamping to the batch
    /// size).
    pub workers: u64,
    /// Wall-clock duration of the whole batch, in nanoseconds.
    pub wall_ns: u64,
    /// Sum of the per-job stage metrics.
    pub total: StageMetrics,
}

impl MetricsReport {
    /// Sums `job_metrics` and counts failures out of `results`.
    pub fn aggregate(
        job_metrics: &[StageMetrics],
        results: &[Result<JobOutput, CoreError>],
        workers: usize,
        wall_ns: u64,
    ) -> Self {
        let mut total = StageMetrics::default();
        for m in job_metrics {
            total.merge(m);
        }
        MetricsReport {
            jobs: job_metrics.len() as u64,
            failed: results.iter().filter(|r| r.is_err()).count() as u64,
            workers: workers as u64,
            wall_ns,
            total,
        }
    }

    /// Total CPU time attributed to pipeline stages across all jobs, in
    /// nanoseconds. With more than one worker this exceeds the
    /// wall-clock time — their ratio is the effective parallel speedup.
    pub fn busy_ns(&self) -> u64 {
        // `adaptive_ns` brackets the whole sweep (including the inner
        // pair/solve stages it re-runs); the disjoint pipeline stages
        // cover everything outside a sweep. Their sum is therefore the
        // busy time without double counting only when clamped by which
        // of the two views recorded more work.
        self.total.pipeline_ns().max(self.total.adaptive_ns)
    }
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

impl fmt::Display for MetricsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "jobs {} ({} failed) | workers {} | wall {:.2} ms | stage-busy {:.2} ms",
            self.jobs,
            self.failed,
            self.workers,
            ms(self.wall_ns),
            ms(self.busy_ns()),
        )?;
        writeln!(
            f,
            "stages: unwrap {:.2} ms | smooth {:.2} ms | pairs {:.2} ms | solve {:.2} ms | adaptive {:.2} ms",
            ms(self.total.unwrap_ns),
            ms(self.total.smooth_ns),
            ms(self.total.pairs_ns),
            ms(self.total.solve_ns),
            ms(self.total.adaptive_ns),
        )?;
        write!(
            f,
            "counts: {} solves | {} IRLS iters | {} equations | {} reads dropped | {} adaptive trials ({} skipped)",
            self.total.solves,
            self.total.irls_iterations,
            self.total.equations,
            self.total.reads_dropped,
            self.total.adaptive_trials,
            self.total.adaptive_skipped,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_sums_and_counts_failures() {
        let a = StageMetrics {
            solves: 2,
            solve_ns: 100,
            ..StageMetrics::default()
        };
        let b = StageMetrics {
            solves: 3,
            solve_ns: 50,
            ..StageMetrics::default()
        };
        let results: Vec<Result<JobOutput, CoreError>> = vec![Err(CoreError::InvalidConfig {
            parameter: "x",
            found: "y".to_string(),
        })];
        let report = MetricsReport::aggregate(&[a, b], &results, 4, 1234);
        assert_eq!(report.jobs, 2);
        assert_eq!(report.failed, 1);
        assert_eq!(report.workers, 4);
        assert_eq!(report.total.solves, 5);
        assert_eq!(report.total.solve_ns, 150);
    }

    #[test]
    fn display_mentions_all_stages() {
        let report = MetricsReport::aggregate(&[], &[], 1, 0);
        let text = report.to_string();
        for needle in ["unwrap", "smooth", "pairs", "solve", "adaptive", "IRLS"] {
            assert!(text.contains(needle), "missing {needle}: {text}");
        }
    }
}
