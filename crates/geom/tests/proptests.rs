//! Property-based tests for the geometry substrate.

use proptest::prelude::*;

use lion_geom::{
    circle_intersections, line_intersection, radical_line, radical_plane, Circle, CircularArc,
    LineSegment, Point2, Point3, Sphere, ThreeLineScan, Trajectory, Vec3,
};

fn point2() -> impl Strategy<Value = Point2> {
    (-5.0_f64..5.0, -5.0_f64..5.0).prop_map(|(x, y)| Point2::new(x, y))
}

fn point3() -> impl Strategy<Value = Point3> {
    (-5.0_f64..5.0, -5.0_f64..5.0, -5.0_f64..5.0).prop_map(|(x, y, z)| Point3::new(x, y, z))
}

proptest! {
    #[test]
    fn radical_line_passes_through_common_point(
        target in point2(),
        c1 in point2(),
        c2 in point2(),
    ) {
        prop_assume!(c1.distance(c2) > 1e-3);
        let circle1 = Circle::new(c1, target.distance(c1));
        let circle2 = Circle::new(c2, target.distance(c2));
        let line = radical_line(&circle1, &circle2).expect("distinct centers");
        prop_assert!(line.distance_to(target) < 1e-7, "distance {}", line.distance_to(target));
    }

    #[test]
    fn radical_line_is_symmetric(
        c1 in point2(),
        c2 in point2(),
        r1 in 0.1_f64..3.0,
        r2 in 0.1_f64..3.0,
    ) {
        prop_assume!(c1.distance(c2) > 1e-3);
        let a = Circle::new(c1, r1);
        let b = Circle::new(c2, r2);
        let lab = radical_line(&a, &b).expect("ok");
        let lba = radical_line(&b, &a).expect("ok");
        // Same line up to sign: both normals unit, distances agree.
        for p in [Point2::new(0.0, 0.0), Point2::new(1.0, 2.0), Point2::new(-3.0, 0.5)] {
            prop_assert!((lab.distance_to(p) - lba.distance_to(p)).abs() < 1e-9);
        }
    }

    #[test]
    fn circle_intersections_lie_on_both(
        c1 in point2(),
        c2 in point2(),
        r1 in 0.1_f64..3.0,
        r2 in 0.1_f64..3.0,
    ) {
        prop_assume!(c1.distance(c2) > 1e-3);
        let a = Circle::new(c1, r1);
        let b = Circle::new(c2, r2);
        for p in circle_intersections(&a, &b).expect("not concentric") {
            prop_assert!(a.contains(p, 1e-7));
            prop_assert!(b.contains(p, 1e-7));
            // Intersection points have equal power ⇒ on the radical line.
            let line = radical_line(&a, &b).expect("ok");
            prop_assert!(line.contains(p, 1e-7));
        }
    }

    #[test]
    fn radical_plane_contains_common_point_3d(
        target in point3(),
        c1 in point3(),
        c2 in point3(),
    ) {
        prop_assume!(c1.distance(c2) > 1e-3);
        let s1 = Sphere::new(c1, target.distance(c1));
        let s2 = Sphere::new(c2, target.distance(c2));
        let plane = radical_plane(&s1, &s2).expect("distinct centers");
        prop_assert!(plane.distance_to(target) < 1e-7);
    }

    #[test]
    fn pairwise_radical_lines_meet_at_common_point(
        target in point2(),
        c1 in point2(),
        c2 in point2(),
        c3 in point2(),
    ) {
        prop_assume!(c1.distance(c2) > 0.05);
        prop_assume!(c2.distance(c3) > 0.05);
        prop_assume!(c1.distance(c3) > 0.05);
        // Skip nearly-collinear centers (radical lines nearly parallel).
        let v1 = c2 - c1;
        let v2 = c3 - c1;
        prop_assume!(v1.cross(v2).abs() > 0.05);
        let circles = [
            Circle::new(c1, target.distance(c1)),
            Circle::new(c2, target.distance(c2)),
            Circle::new(c3, target.distance(c3)),
        ];
        let l12 = radical_line(&circles[0], &circles[1]).expect("ok");
        let l23 = radical_line(&circles[1], &circles[2]).expect("ok");
        let meet = line_intersection(&l12, &l23).expect("not parallel");
        prop_assert!(meet.distance(target) < 1e-5, "meet {} target {}", meet, target);
    }

    #[test]
    fn segment_positions_interpolate_monotonically(
        a in point3(),
        b in point3(),
        t1 in 0.0_f64..1.0,
        t2 in 0.0_f64..1.0,
    ) {
        prop_assume!(a.distance(b) > 1e-6);
        let seg = LineSegment::new(a, b).expect("distinct");
        let len = seg.length();
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let p_lo = seg.position(lo * len);
        let p_hi = seg.position(hi * len);
        // Distance from start is monotone in arc length.
        prop_assert!(a.distance(p_lo) <= a.distance(p_hi) + 1e-9);
        // Positions stay on the segment (within its bounding length).
        prop_assert!(a.distance(p_hi) <= len + 1e-9);
    }

    #[test]
    fn sampling_spacing_is_uniform(
        speed in 0.01_f64..1.0,
        rate in 5.0_f64..200.0,
    ) {
        let seg = LineSegment::along_x(0.0, 1.0, 0.0, 0.0).expect("valid");
        let pts = seg.sample(speed, rate);
        prop_assume!(pts.len() >= 3);
        let step = speed / rate;
        for w in pts.windows(2) {
            let d = w[0].position.distance(w[1].position);
            // All but the final (possibly truncated) step are `step` long.
            prop_assert!(d <= step + 1e-9);
        }
        for w in pts[..pts.len() - 1].windows(2) {
            let d = w[0].position.distance(w[1].position);
            prop_assert!((d - step).abs() < 1e-9);
        }
    }

    #[test]
    fn arc_points_at_constant_radius(
        r in 0.05_f64..2.0,
        s in 0.0_f64..1.0,
    ) {
        let arc = CircularArc::turntable(Point3::new(0.3, 0.7, 0.1), r).expect("valid");
        let p = arc.position(s * arc.length());
        prop_assert!((p.distance(arc.center()) - r).abs() < 1e-9);
        prop_assert!((p.z - 0.1).abs() < 1e-12); // stays in plane
    }

    #[test]
    fn three_line_scan_path_is_always_continuous(
        half in 0.1_f64..1.0,
        y_o in 0.05_f64..0.5,
        z_o in 0.05_f64..0.5,
    ) {
        let scan = ThreeLineScan::new(-half, half, y_o, z_o).expect("valid");
        let path = scan.to_path();
        prop_assert!(path.is_continuous(1e-9));
        // Path length ≥ three line lengths.
        prop_assert!(path.length() >= 3.0 * 2.0 * half - 1e-9);
        // Every sampled point lies on one of the lines or a connector
        // (sanity: x stays within the scanned range).
        for w in path.sample(0.1, 20.0) {
            prop_assert!(w.position.x >= -half - 1e-9 && w.position.x <= half + 1e-9);
        }
    }

    #[test]
    fn vector_algebra_roundtrips(
        p in point3(),
        q in point3(),
    ) {
        let v = q - p;
        prop_assert!((p + v).distance(q) < 1e-12);
        prop_assert!((q - v).distance(p) < 1e-12);
        prop_assert!((v.norm() - p.distance(q)).abs() < 1e-12);
        // Cross product is perpendicular to both factors.
        let w = Vec3::new(1.0, 2.0, -0.5);
        let c = v.cross(w);
        prop_assert!(c.dot(v).abs() < 1e-6 * (1.0 + v.norm() * w.norm()));
        prop_assert!(c.dot(w).abs() < 1e-6 * (1.0 + v.norm() * w.norm()));
    }
}
